// Fuzz target: the statement parser (server/statement.h).
//
// The input is treated as the text of one request batch, exactly as it
// arrives over the wire: split into statements with SplitStatements,
// then each piece handed to ParseStatement. The parser must be total —
// any byte sequence either parses or yields a Status, never a crash,
// hang, or out-of-bounds read. ASan/UBSan builds of this target are the
// real teeth.
//
// Build modes: see fuzz_frame.cc.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "server/statement.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  for (const auto& stmt : cactis::server::SplitStatements(text)) {
    (void)cactis::server::ParseStatement(stmt);
  }
  // Also parse the raw input as a single statement: SplitStatements
  // normalizes some byte sequences away, and the parser must survive
  // the un-normalized form too.
  (void)cactis::server::ParseStatement(text);
  return 0;
}
