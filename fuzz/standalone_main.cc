// Standalone driver for LLVMFuzzerTestOneInput targets.
//
// The container toolchain is g++ (no libFuzzer), so by default fuzz
// targets link against this driver instead: it replays every file in
// the corpus directories given on the command line, then runs a
// deterministic mutation loop over the corpus (bit flips, truncations,
// byte stores, splices, and repetitions from a fixed-seed xorshift
// RNG). Deterministic means a CI failure reproduces locally with the
// same binary and corpus — no saved-crash file needed, though the
// driver writes one anyway.
//
//   fuzz_frame fuzz/corpus/frame [more dirs/files...]
//   CACTIS_FUZZ_ITERS=200000 fuzz_frame fuzz/corpus/frame
//
// Exit status: 0 when every input ran to completion; the target itself
// aborts (assert) on an invariant violation. With -DCACTIS_FUZZER=ON
// and a clang toolchain this file is not linked and the targets become
// real libFuzzer binaries.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

struct Xorshift {
  uint64_t s;
  explicit Xorshift(uint64_t seed) : s(seed ? seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t Next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
  uint64_t Uniform(uint64_t n) { return n ? Next() % n : 0; }
};

std::vector<std::string> LoadCorpus(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> corpus;
  for (int i = 1; i < argc; ++i) {
    std::error_code ec;
    std::vector<fs::path> files;
    if (fs::is_directory(argv[i], ec)) {
      for (const auto& e : fs::directory_iterator(argv[i], ec)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
    } else if (fs::is_regular_file(argv[i], ec)) {
      files.emplace_back(argv[i]);
    } else {
      std::fprintf(stderr, "warning: skipping %s (not a file or dir)\n",
                   argv[i]);
    }
    // Sort for determinism: directory iteration order is unspecified.
    std::sort(files.begin(), files.end());
    for (const auto& p : files) {
      std::ifstream in(p, std::ios::binary);
      corpus.emplace_back(std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>());
    }
  }
  return corpus;
}

std::string Mutate(const std::vector<std::string>& corpus, Xorshift* rng) {
  std::string out = corpus[rng->Uniform(corpus.size())];
  const int rounds = 1 + static_cast<int>(rng->Uniform(4));
  for (int r = 0; r < rounds; ++r) {
    switch (rng->Uniform(6)) {
      case 0:  // bit flip
        if (!out.empty()) {
          out[rng->Uniform(out.size())] ^=
              static_cast<char>(1u << rng->Uniform(8));
        }
        break;
      case 1:  // byte store (interesting values: 0, 0xff, small ints)
        if (!out.empty()) {
          static const unsigned char kBytes[] = {0x00, 0x01, 0x7f, 0x80,
                                                 0xff, 0x0a, 0x20, 0x3b};
          out[rng->Uniform(out.size())] =
              static_cast<char>(kBytes[rng->Uniform(sizeof(kBytes))]);
        }
        break;
      case 2:  // truncate
        if (!out.empty()) out.resize(rng->Uniform(out.size()));
        break;
      case 3: {  // splice a slice of another corpus entry
        const std::string& other = corpus[rng->Uniform(corpus.size())];
        if (!other.empty()) {
          size_t from = rng->Uniform(other.size());
          size_t len = rng->Uniform(other.size() - from + 1);
          size_t at = rng->Uniform(out.size() + 1);
          out.insert(at, other, from, len);
        }
        break;
      }
      case 4:  // duplicate self (coalesced frames / statement runs)
        if (out.size() < (1u << 16)) out += out;
        break;
      default:  // insert a random byte
        out.insert(out.begin() + static_cast<long>(rng->Uniform(out.size() + 1)),
                   static_cast<char>(rng->Next()));
        break;
    }
  }
  // Keep the per-input cost bounded; real frames cap payloads anyway.
  if (out.size() > (1u << 20)) out.resize(1u << 20);
  return out;
}

void SaveCrash(const std::string& input) {
  std::ofstream out("fuzz-crash-input.bin", std::ios::binary);
  out.write(input.data(), static_cast<long>(input.size()));
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> corpus = LoadCorpus(argc, argv);
  if (corpus.empty()) {
    // Never run zero inputs silently: an empty corpus means a broken
    // invocation, and "0 crashes out of 0 runs" must not pass CI.
    std::fprintf(stderr, "error: empty corpus (args: dirs or files)\n");
    return 2;
  }

  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }

  long iters = 50'000;
  if (const char* env = std::getenv("CACTIS_FUZZ_ITERS")) {
    iters = std::strtol(env, nullptr, 10);
  }
  uint64_t seed = 0xCAC7152026ull;
  if (const char* env = std::getenv("CACTIS_FUZZ_SEED")) {
    seed = std::strtoull(env, nullptr, 0);
  }
  Xorshift rng(seed);
  for (long i = 0; i < iters; ++i) {
    std::string input = Mutate(corpus, &rng);
    // Breadcrumb for an abort mid-run: the exact input is on disk before
    // the target sees it (the run is deterministic anyway — rerunning
    // with the same seed reproduces — but the file skips the wait).
    SaveCrash(input);
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }
  std::remove("fuzz-crash-input.bin");
  std::printf("fuzz ok: %zu corpus inputs + %ld mutated inputs, 0 crashes\n",
              corpus.size(), iters);
  return 0;
}
