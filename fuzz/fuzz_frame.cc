// Fuzz target: wire frame decoding (net/wire.h).
//
// The input is treated as raw bytes off a socket. The first byte selects
// a chunking pattern so the SAME input also exercises the incremental
// reassembly paths (1-byte feeds, header/payload splits, whole-buffer).
// The harness asserts the decoder's contract rather than just "no
// crash":
//   * a poisoned reader never yields another frame,
//   * every yielded frame re-encodes to a byte-identical frame
//     (decode(encode(x)) == x round-trip through the real encoder),
//   * structured payload decoders (request / response / error) never
//     crash on a decoded frame's payload, and a successful request
//     decode re-encodes to the identical payload.
//
// Build modes (fuzz/CMakeLists.txt):
//   * default: linked against standalone_main.cc — replays the seed
//     corpus plus deterministic mutations (works with plain g++; used
//     by ctest and the CI fuzz-smoke job),
//   * -DCACTIS_FUZZER=ON with clang: a real libFuzzer binary.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "net/wire.h"

namespace {

using cactis::net::DecodeErrorPayload;
using cactis::net::DecodeRequestPayload;
using cactis::net::DecodeResponsePayload;
using cactis::net::EncodeFrame;
using cactis::net::EncodeRequestPayload;
using cactis::net::Frame;
using cactis::net::FrameReader;

void CheckFrame(const Frame& f) {
  // Round-trip: a frame the decoder accepted must re-encode to bytes the
  // decoder accepts again, yielding the same frame.
  std::string bytes = EncodeFrame(f.type, f.session, f.payload);
  FrameReader again;
  again.Feed(bytes);
  auto f2 = again.Next();
  assert(f2.has_value());
  assert(!again.poisoned());
  assert(f2->type == f.type);
  assert(f2->session == f.session);
  assert(f2->payload == f.payload);

  // Structured payload decoders must be total on arbitrary payloads.
  auto req = DecodeRequestPayload(f.payload);
  if (req.ok()) {
    // ...and a successful decode must round-trip byte-identically.
    assert(EncodeRequestPayload(*req) == f.payload);
  }
  (void)DecodeResponsePayload(f.payload);
  (void)DecodeErrorPayload(f.payload);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t mode = data[0] % 4;
  std::string_view bytes(reinterpret_cast<const char*>(data + 1), size - 1);

  FrameReader reader;
  bool was_poisoned = false;
  auto drain = [&] {
    while (auto f = reader.Next()) {
      assert(!was_poisoned);  // poisoned readers must stay silent
      CheckFrame(*f);
    }
    was_poisoned = was_poisoned || reader.poisoned();
  };

  switch (mode) {
    case 0:  // whole buffer at once
      reader.Feed(bytes);
      drain();
      break;
    case 1:  // one byte at a time: worst-case reassembly
      for (char c : bytes) {
        reader.Feed(std::string_view(&c, 1));
        drain();
      }
      break;
    case 2: {  // split at a data-dependent pivot (header/payload seams)
      size_t pivot = bytes.empty() ? 0 : data[0] % (bytes.size() + 1);
      reader.Feed(bytes.substr(0, pivot));
      drain();
      reader.Feed(bytes.substr(pivot));
      drain();
      break;
    }
    default: {  // 7-byte chunks: straddle every header field boundary
      for (size_t off = 0; off < bytes.size(); off += 7) {
        reader.Feed(bytes.substr(off, 7));
        drain();
      }
      break;
    }
  }
  return 0;
}
