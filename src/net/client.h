// Client: the blocking client library for the Cactis TCP transport.
//
// One Client owns one connection and one server session. The protocol is
// strictly request/response, so every call writes a frame and blocks for
// the reply; a per-request timeout (poll-based) bounds the wait. The
// client is NOT thread-safe — use one Client per thread (sessions
// serialize their batches server-side anyway).
//
// Recovery:
//   * Connect() establishes the socket and performs the kHello
//     handshake, yielding a fresh session.
//   * A connection-level failure (send/recv error, timeout, poisoned
//     stream) closes the socket and marks the client disconnected; the
//     server eager-closes the orphaned session, rolling back its open
//     transaction.
//   * CallRetry() reconnects on connection loss and retries retryable
//     outcomes (kConflict/kTransactionAborted aborts, admission-control
//     kRejected, degraded-mode refusals) with the shared bounded-backoff
//     policy from common/backoff.h. Each reconnect yields a NEW session:
//     any transactional state is gone, which is exactly the semantics of
//     a retried OCB-style transaction.

#ifndef CACTIS_NET_CLIENT_H_
#define CACTIS_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"

namespace cactis::net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Connect() deadline, milliseconds.
  uint64_t connect_timeout_ms = 5'000;
  /// Per-request reply deadline, milliseconds. 0 waits forever.
  uint64_t request_timeout_ms = 30'000;
  /// Retry budget + delay shape for CallRetry.
  BackoffPolicy retry;
};

class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the hello handshake. Idempotent while
  /// connected; reconnecting after a failure yields a new session.
  Status Connect();

  /// Sends kGoodbye (closing the server session cleanly) and closes the
  /// socket. Safe to call at any time.
  void Close();

  /// Closes the socket WITHOUT the goodbye handshake — simulates a
  /// crashed client. The server notices the dead connection and
  /// eager-closes the session, rolling back its open transaction (soak
  /// bench + disconnect tests).
  void Abandon() { Drop(); }

  bool connected() const { return fd_ >= 0; }
  /// The server session token (0 when disconnected).
  uint64_t session() const { return session_; }

  /// Executes one statement batch and returns the decoded response.
  /// Connection-level failures come back as a Status and leave the
  /// client disconnected.
  Result<WireResponse> Call(const std::vector<std::string>& statements);

  /// Call(), but reconnecting on connection loss and retrying retryable
  /// outcomes under the bounded-backoff policy. Returns the last
  /// response (retryable or not) once the budget is spent.
  Result<WireResponse> CallRetry(const std::vector<std::string>& statements);

  /// Loads schema declarations server-side.
  Status LoadSchema(std::string_view source);

  /// Fetches the server's metrics snapshot (JSON).
  Result<std::string> Metrics();

  /// Retries consumed by the last CallRetry (tests, bench accounting).
  int last_retries() const { return last_retries_; }

  /// Trace id minted for the most recent Call/CallRetry batch. The
  /// server runs statement i of that batch under `last_trace_id() + i`,
  /// so a `profile` response's "trace_id" field matches this value —
  /// clients can correlate their own logs with server-side slow-log and
  /// trace-sink entries. 0 until the first Call.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  /// Writes one frame and blocks for the peer's reply frame.
  Result<Frame> Roundtrip(FrameType type, std::string_view payload);
  Status SendAll(std::string_view bytes);
  /// Reads until the FrameReader yields a frame (or timeout / error).
  Result<Frame> RecvFrame();
  /// Closes the socket without the goodbye handshake.
  void Drop();
  /// Mints the next per-batch trace id (see last_trace_id()).
  uint64_t MintTraceId();

  ClientOptions options_;
  int fd_ = -1;
  uint64_t session_ = 0;
  FrameReader reader_;
  int last_retries_ = 0;
  uint64_t next_call_ = 0;
  uint64_t last_trace_id_ = 0;
};

}  // namespace cactis::net

#endif  // CACTIS_NET_CLIENT_H_
