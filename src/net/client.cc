#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

namespace cactis::net {

namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status Errno(const char* what) {
  return Status(StatusCode::kIoError,
                std::string(what) + ": " + std::strerror(errno));
}

Status Timeout(const char* what) {
  return Status(StatusCode::kUnavailable,
                std::string(what) + ": timed out");
}

/// Waits for `events` on fd. deadline_ms == 0 waits forever. Returns
/// OK when ready, kUnavailable on timeout, kIoError otherwise.
Status WaitFd(int fd, short events, uint64_t deadline_ms, const char* what) {
  for (;;) {
    int timeout = -1;
    if (deadline_ms != 0) {
      uint64_t now = NowMs();
      if (now >= deadline_ms) return Timeout(what);
      timeout = static_cast<int>(deadline_ms - now);
    }
    pollfd pfd{fd, events, 0};
    int n = ::poll(&pfd, 1, timeout);
    if (n > 0) {
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        return Status(StatusCode::kIoError,
                      std::string(what) + ": connection closed");
      }
      return Status::OK();
    }
    if (n == 0) return Timeout(what);
    if (errno == EINTR) continue;
    return Errno(what);
  }
}

}  // namespace

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { Close(); }

Status Client::Connect() {
  if (connected()) return Status::OK();
  reader_ = FrameReader();
  session_ = 0;

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad address: " + options_.host);
  }
  uint64_t deadline =
      options_.connect_timeout_ms ? NowMs() + options_.connect_timeout_ms : 0;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      Status s = Errno("connect");
      ::close(fd);
      return s;
    }
    Status s = WaitFd(fd, POLLOUT, deadline, "connect");
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      errno = err;
      return Errno("connect");
    }
  }
  fd_ = fd;

  // Hello handshake: the session token arrives in the kHelloOk header.
  auto reply = Roundtrip(FrameType::kHello, "");
  if (!reply.ok()) {
    Drop();
    return reply.status();
  }
  if (reply->type == FrameType::kError) {
    auto err = DecodeErrorPayload(reply->payload);
    Drop();
    if (err.ok()) return StatusFromWireCode(err->first, err->second);
    return Status(StatusCode::kInternal, "undecodable hello error");
  }
  if (reply->type != FrameType::kHelloOk) {
    Drop();
    return Status(StatusCode::kInternal, "unexpected hello reply");
  }
  session_ = reply->session;
  return Status::OK();
}

void Client::Close() {
  if (!connected()) return;
  if (session_ != 0) {
    // Best-effort clean goodbye; any failure still ends with Drop().
    (void)Roundtrip(FrameType::kGoodbye, "");
  }
  Drop();
}

void Client::Drop() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  session_ = 0;
  reader_ = FrameReader();
}

Status Client::SendAll(std::string_view bytes) {
  uint64_t deadline =
      options_.request_timeout_ms ? NowMs() + options_.request_timeout_ms : 0;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status s = WaitFd(fd_, POLLOUT, deadline, "send");
      if (!s.ok()) return s;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<Frame> Client::RecvFrame() {
  uint64_t deadline =
      options_.request_timeout_ms ? NowMs() + options_.request_timeout_ms : 0;
  char buf[64 * 1024];
  for (;;) {
    if (auto frame = reader_.Next()) return std::move(*frame);
    if (reader_.poisoned()) {
      return Status(StatusCode::kCorruption,
                    "wire stream poisoned: " + reader_.error_message());
    }
    Status s = WaitFd(fd_, POLLIN, deadline, "recv");
    if (!s.ok()) return s;
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status(StatusCode::kIoError, "recv: connection closed by peer");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
    return Errno("recv");
  }
}

Result<Frame> Client::Roundtrip(FrameType type, std::string_view payload) {
  if (!connected()) {
    return Status(StatusCode::kUnavailable, "not connected");
  }
  Status s = SendAll(EncodeFrame(type, session_, payload));
  if (!s.ok()) {
    Drop();
    return s;
  }
  auto reply = RecvFrame();
  if (!reply.ok()) {
    Drop();
    return reply.status();
  }
  return reply;
}

uint64_t Client::MintTraceId() {
  // High bit marks client-minted ids (server-minted ones are small
  // sequential integers), the middle bits fold in the session token so
  // concurrent clients stay distinct, and the low byte is left clear for
  // the server's per-statement `+ i` offset within the batch.
  ++next_call_;
  return (1ull << 63) | ((session_ & 0x7F'FFFFull) << 40) |
         ((next_call_ & 0xFFFF'FFFFull) << 8);
}

Result<WireResponse> Client::Call(const std::vector<std::string>& statements) {
  RequestPayload request;
  request.trace_id = MintTraceId();
  request.statements = statements;
  last_trace_id_ = request.trace_id;
  auto reply = Roundtrip(FrameType::kRequest,
                         EncodeRequestPayload(request));
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kError) {
    auto err = DecodeErrorPayload(reply->payload);
    Drop();  // the server closes poisoned/protocol-violating connections
    if (err.ok()) return StatusFromWireCode(err->first, err->second);
    return Status(StatusCode::kInternal, "undecodable error frame");
  }
  if (reply->type != FrameType::kResponse) {
    Drop();
    return Status(StatusCode::kInternal, "unexpected reply frame type");
  }
  auto resp = DecodeResponsePayload(reply->payload);
  if (!resp.ok()) {
    Drop();
    return resp.status();
  }
  return resp;
}

Result<WireResponse> Client::CallRetry(
    const std::vector<std::string>& statements) {
  Backoff backoff(options_.retry);
  last_retries_ = 0;
  for (;;) {
    if (!connected()) {
      Status s = Connect();
      if (!s.ok()) {
        if (!backoff.ShouldRetry()) return s;
        last_retries_ = backoff.retries();
        continue;
      }
    }
    auto resp = Call(statements);
    if (!resp.ok()) {
      // Connection-level failure: the socket is gone; reconnect (with a
      // fresh session) and retry within the budget.
      if (!backoff.ShouldRetry()) return resp.status();
      last_retries_ = backoff.retries();
      continue;
    }
    if (!resp->retryable()) return resp;
    if (!backoff.ShouldRetry()) return resp;
    last_retries_ = backoff.retries();
  }
}

Status Client::LoadSchema(std::string_view source) {
  auto reply = Roundtrip(FrameType::kSchema, source);
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kSchemaOk) return Status::OK();
  if (reply->type == FrameType::kError) {
    auto err = DecodeErrorPayload(reply->payload);
    if (err.ok()) return StatusFromWireCode(err->first, err->second);
  }
  Drop();
  return Status(StatusCode::kInternal, "unexpected schema reply");
}

Result<std::string> Client::Metrics() {
  auto reply = Roundtrip(FrameType::kMetrics, "");
  if (!reply.ok()) return reply.status();
  if (reply->type == FrameType::kMetricsOk) return std::move(reply->payload);
  Drop();
  return Status(StatusCode::kInternal, "unexpected metrics reply");
}

}  // namespace cactis::net
