// TcpServer: the real network front end of the service layer.
//
// Architecture (DESIGN.md "Network transport"):
//
//   sockets -> epoll event loop -> Executor queue -> worker pool
//                   ^                    |
//                   +---- wakeup <-- completion callbacks
//
// One event-loop thread multiplexes every connection with epoll
// (level-triggered, nonblocking fds). The loop NEVER blocks on database
// work: complete frames are handed to the Executor through
// SubmitWithCallback, and the completion callback — running on a worker
// thread — appends the encoded response to the connection's outbound
// buffer and wakes the loop through an eventfd. Slow control operations
// (schema load, metrics snapshot, session close) run on a small
// auxiliary thread for the same reason.
//
// Backpressure is layered:
//   * Admission control. The executor's bounded queue rejects a request
//     when full; the rejection travels back as a typed kResponse frame
//     (status kRejected, WireCode 100) — bytes are never dropped.
//     Degraded read-only mode surfaces the same way (WireCode 102).
//   * Write-side flow control. When a connection's outbound buffer
//     exceeds write_buffer_limit (a client pipelines without reading),
//     the loop stops reading from that socket until the buffer drains
//     below half — per-connection memory stays bounded.
//
// Connection teardown: a clean kGoodbye closes the session waiting for
// any in-flight batch; an unclean disconnect (EOF, reset, poisoned frame
// stream) goes through Executor::CloseSessionEager on the auxiliary
// thread, so an orphaned transaction rolls back immediately instead of
// lingering to idle-timeout.

#ifndef CACTIS_NET_TCP_SERVER_H_
#define CACTIS_NET_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "net/wire.h"
#include "server/executor.h"

namespace cactis::net {

struct TcpServerOptions {
  /// Listen address. Loopback by default; "0.0.0.0" to accept remotely.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is reported by port().
  uint16_t port = 0;
  /// Listen backlog.
  int backlog = 512;
  /// Per-connection outbound-buffer ceiling before the loop stops
  /// reading from the socket (write-side flow control).
  size_t write_buffer_limit = 4u << 20;  // 4 MiB
  /// Per-frame payload ceiling accepted from clients.
  uint32_t max_payload = kMaxPayloadBytes;
};

/// Network-layer counters, exported as the "net" metrics group. All
/// atomics: the event loop, worker callbacks and the metrics exporter
/// touch them without locks.
struct NetStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> connections_active{0};  // gauge
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> framing_errors{0};    // poisoned streams
  std::atomic<uint64_t> protocol_errors{0};   // valid frame, wrong state
  std::atomic<uint64_t> backpressure_stalls{0};
  std::atomic<uint64_t> eager_closes{0};      // unclean disconnects w/ session
  std::atomic<uint64_t> requests_relayed{0};
};

class TcpServer {
 public:
  /// `executor` must be started and must outlive the server.
  TcpServer(server::Executor* executor, TcpServerOptions options);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens and starts the event-loop + auxiliary threads.
  Status Start();

  /// Closes every connection (eager-closing their sessions), drains
  /// in-flight completion callbacks, stops the threads. Idempotent.
  /// Call before shutting the executor down (either order is safe, but
  /// this order avoids a burst of kRejected responses).
  void Shutdown();

  /// The bound port (valid after Start(); resolves port 0 requests).
  uint16_t port() const { return port_; }
  const NetStats& stats() const { return stats_; }
  /// Connections currently registered with the loop.
  size_t connection_count() const;

 private:
  struct Conn {
    Conn(int fd_in, uint32_t max_payload)
        : fd(fd_in), reader(max_payload) {}

    const int fd;

    // --- event-loop thread only ---
    FrameReader reader;
    bool has_session = false;
    uint64_t session = 0;       // token (SessionId.value)
    bool goodbye_pending = false;  // clean close in flight on aux thread
    bool read_stalled = false;  // EPOLLIN parked by flow control
    bool want_close = false;    // close once the outbound buffer drains
    bool epollout_armed = false;

    // --- shared with worker callbacks ---
    std::mutex out_mu;
    std::string out;          // outbound bytes not yet written
    size_t out_off = 0;       // bytes of `out` already written
    bool dead = false;        // unregistered; callbacks must not touch fd
  };

  void EventLoop();
  void AuxLoop();
  /// Enqueues a closure on the auxiliary thread (session teardown,
  /// schema load, metrics snapshot — anything that may block).
  void PostAux(std::function<void()> fn);
  void Wake();

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void WriteReady(const std::shared_ptr<Conn>& conn);
  /// Dispatches one decoded frame (event-loop thread).
  void HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame);
  /// Appends an encoded frame to the outbound buffer and arms the
  /// writer. Safe from any thread; no-op on dead connections.
  void SendFrame(const std::shared_ptr<Conn>& conn, FrameType type,
                 uint64_t session, std::string_view payload);
  /// Sends kError and schedules the connection to close once flushed.
  void SendErrorAndClose(const std::shared_ptr<Conn>& conn, WireCode code,
                         std::string_view message);
  /// Flushes as much outbound data as the socket accepts; manages
  /// EPOLLOUT arming, flow-control unstall and deferred close
  /// (event-loop thread).
  void FlushConn(const std::shared_ptr<Conn>& conn);
  /// Unregisters the fd, closes it, eager-closes the session if the
  /// client never said goodbye (event-loop thread).
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void UpdateEpoll(Conn* conn, bool want_read, bool want_write);

  server::Executor* executor_;
  TcpServerOptions options_;
  NetStats stats_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  bool shut_down_ = false;

  std::thread loop_thread_;
  std::thread aux_thread_;

  /// Live connections, keyed by fd (event-loop thread, plus sized by
  /// connection_count() under conns_mu_).
  mutable std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Connections with freshly appended outbound data, flushed by the
  /// loop after a wakeup.
  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Conn>> dirty_;

  /// Auxiliary work queue.
  std::mutex aux_mu_;
  std::condition_variable aux_cv_;
  std::deque<std::function<void()>> aux_q_;
  bool aux_stop_ = false;

  /// Executor callbacks not yet delivered; Shutdown drains to zero
  /// before tearing state down.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  uint64_t inflight_ = 0;
};

}  // namespace cactis::net

#endif  // CACTIS_NET_TCP_SERVER_H_
