// The Cactis binary wire protocol (src/net).
//
// Every message between a client and the TCP server is one *frame*: a
// fixed 24-byte header followed by a length-prefixed payload, CRC-framed
// the same way the block layer frames disk blocks (storage/checksum.h),
// so a torn or corrupted frame is detected and surfaced as a *typed*
// error — never decoded as garbage and never silently dropped.
//
//   offset  size  field
//   ------  ----  ------------------------------------------------------
//        0     4  magic      0xCAC71DB0, little-endian
//        4     1  version    kWireVersion (currently 1)
//        5     1  type       FrameType
//        6     2  flags      reserved, must be 0
//        8     8  session    session token (SessionId.value; 0 = none)
//       16     4  length     payload byte count (<= kMaxPayloadBytes)
//       20     4  crc32      CRC-32 of header bytes [0,20) ++ payload
//       24     N  payload
//
// The protocol is strictly request/response per connection: the client
// sends one frame and blocks for the reply, so no correlation ids are
// needed. Frame types:
//
//   client -> server                server -> client
//   ----------------                ----------------
//   kHello     open a session       kHelloOk    session token in header
//   kRequest   statement batch      kResponse   encoded batch outcome
//   kSchema    load declarations    kSchemaOk   (empty)
//   kMetrics   metrics snapshot     kMetricsOk  JSON payload
//   kGoodbye   close the session    kGoodbyeOk  (empty)
//                                   kError      WireCode + message
//
// Error taxonomy on the wire. Every Status a statement can produce, every
// response-level outcome (rejected, no-session, degraded) and every
// framing failure maps to a *stable* numeric WireCode so clients can
// distinguish retryable conflicts from permanent failures without parsing
// message strings. The full table lives in DESIGN.md "Network transport";
// the invariant: codes never change meaning once shipped, new codes are
// only appended.

#ifndef CACTIS_NET_WIRE_H_
#define CACTIS_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "server/protocol.h"

namespace cactis::net {

inline constexpr uint32_t kWireMagic = 0xCAC71DB0u;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Hard ceiling on a single frame's payload. Large enough for a full
/// metrics snapshot with thousands of per-session rows; small enough
/// that a malicious length field cannot balloon server memory.
inline constexpr uint32_t kMaxPayloadBytes = 8u << 20;  // 8 MiB

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloOk = 2,
  kRequest = 3,
  kResponse = 4,
  kError = 5,
  kGoodbye = 6,
  kGoodbyeOk = 7,
  kSchema = 8,
  kSchemaOk = 9,
  kMetrics = 10,
  kMetricsOk = 11,
};

/// True for the type values a decoder accepts (dense range check).
bool IsKnownFrameType(uint8_t t);

/// Stable numeric error codes on the wire. Three bands:
///   1..99    statement-level Status codes (mirror StatusCode)
///   100..199 response-level outcomes (admission control, sessions)
///   200..299 framing / protocol violations (connection is poisoned)
enum class WireCode : uint16_t {
  kOk = 0,
  // --- statement-level (StatusCode mirror) ---
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kTypeMismatch = 4,
  kConstraintViolation = 5,
  kCycleDetected = 6,
  kTransactionAborted = 7,
  kConflict = 8,
  kIoError = 9,
  kUnavailable = 10,
  kCorruption = 11,
  kParseError = 12,
  kOutOfRange = 13,
  kInternal = 14,
  // --- response-level ---
  kRejected = 100,     // admission control refused (queue full / shutdown)
  kNoSession = 101,    // unknown, closed, or expired session
  kDegraded = 102,     // server is in degraded read-only mode
  // --- framing / protocol ---
  kBadMagic = 200,         // stream desynchronized or not a Cactis peer
  kVersionMismatch = 201,  // peer speaks a different protocol version
  kBadCrc = 202,           // checksum failure: torn or corrupted frame
  kFrameTooLarge = 203,    // length field exceeds kMaxPayloadBytes
  kBadFrame = 204,         // malformed frame (unknown type, bad flags,
                           // undecodable payload)
  kUnexpectedFrame = 205,  // valid frame, wrong state (e.g. kRequest
                           // before kHello)
  kSessionMismatch = 206,  // token does not match the connection's session
};

std::string_view WireCodeToString(WireCode c);

/// Statement-level Status -> wire code (kOk for OK).
WireCode WireCodeFromStatus(const Status& s);
/// Wire code -> Status (best-effort inverse; response-level and framing
/// codes map onto the nearest StatusCode so client code can reuse the
/// Status plumbing).
Status StatusFromWireCode(WireCode c, std::string message);

/// True when a client should retry (possibly after backoff): transaction
/// conflicts, admission-control rejections, transient unavailability.
/// Framing errors, parse errors, unknown names etc. are permanent.
bool IsRetryableWireCode(WireCode c);

/// ResponseStatus <-> stable wire byte.
uint8_t WireByteFromResponseStatus(server::ResponseStatus s);
std::optional<server::ResponseStatus> ResponseStatusFromWireByte(uint8_t b);

// --- Frame encoding -----------------------------------------------------------

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kHello;
  uint64_t session = 0;
  std::string payload;
};

/// Encodes a complete frame (header + CRC + payload).
std::string EncodeFrame(FrameType type, uint64_t session,
                        std::string_view payload);

/// Incremental frame decoder. Feed arbitrary byte chunks as they arrive
/// off a socket (partial reads, coalesced frames — any segmentation);
/// Next() yields complete frames in order. The first malformed byte
/// sequence poisons the reader: error() reports the typed WireCode and
/// Next() returns nothing further, because a desynchronized byte stream
/// cannot be trusted (the connection must be torn down).
class FrameReader {
 public:
  explicit FrameReader(uint32_t max_payload = kMaxPayloadBytes)
      : max_payload_(max_payload) {}

  /// Appends raw bytes off the wire. Cheap; no decoding happens here.
  void Feed(std::string_view bytes);

  /// Returns the next complete frame, or nullopt when more bytes are
  /// needed or the reader is poisoned (check error()).
  std::optional<Frame> Next();

  /// kOk while the stream is healthy; the poisoning WireCode otherwise.
  WireCode error() const { return error_; }
  const std::string& error_message() const { return error_message_; }
  bool poisoned() const { return error_ != WireCode::kOk; }

  /// Bytes currently buffered (tests; memory accounting).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  void Poison(WireCode code, std::string message);
  void Compact();

  uint32_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;
  WireCode error_ = WireCode::kOk;
  std::string error_message_;
};

// --- Response payload encoding ------------------------------------------------

/// Client-side view of one statement's outcome.
struct WireStatementResult {
  WireCode code = WireCode::kOk;
  std::string text;  // payload when ok, error message otherwise
};

/// Client-side view of a batch response (mirror of server::Response).
struct WireResponse {
  server::ResponseStatus status = server::ResponseStatus::kOk;
  /// Batch outcome code: kOk, or the first failing statement's code, or
  /// the response-level code (kRejected / kNoSession / kDegraded).
  WireCode code = WireCode::kOk;
  std::string payload;  // per-statement payloads joined with '\n'
  uint64_t queue_wait_us = 0;
  uint64_t exec_us = 0;
  uint64_t session_ts = 0;
  uint32_t statements_run = 0;
  std::vector<WireStatementResult> statements;

  bool ok() const { return status == server::ResponseStatus::kOk; }
  bool aborted() const { return status == server::ResponseStatus::kAborted; }
  bool rejected() const { return status == server::ResponseStatus::kRejected; }
  /// True when the outcome is worth retrying (conflict abort, admission
  /// rejection, degraded-mode refusal).
  bool retryable() const { return IsRetryableWireCode(code); }
};

/// Decoded kRequest frame payload: the statement batch plus the
/// client-minted trace id (0 = server mints). The id rides the wire so a
/// remote `profile` response carries the same trace id the client
/// logged — the end-to-end correlation handle.
struct RequestPayload {
  uint64_t trace_id = 0;
  std::vector<std::string> statements;

  bool operator==(const RequestPayload& o) const {
    return trace_id == o.trace_id && statements == o.statements;
  }
};

/// Serializes a statement batch into a kRequest frame payload
/// (u64 trace id, then length-prefixed statements so they may contain
/// any bytes).
std::string EncodeRequestPayload(const RequestPayload& request);
std::string EncodeRequestPayload(const std::vector<std::string>& statements);

/// Decodes a kRequest frame payload. Malformed bytes yield a Status
/// (mapped to kBadFrame on the wire).
Result<RequestPayload> DecodeRequestPayload(std::string_view payload);

/// Serializes a server::Response into a kResponse frame payload.
std::string EncodeResponsePayload(const server::Response& r);

/// Decodes a kResponse frame payload. Malformed bytes yield kBadFrame.
Result<WireResponse> DecodeResponsePayload(std::string_view payload);

/// Serializes / decodes a kError frame payload (code + message).
std::string EncodeErrorPayload(WireCode code, std::string_view message);
Result<std::pair<WireCode, std::string>> DecodeErrorPayload(
    std::string_view payload);

}  // namespace cactis::net

#endif  // CACTIS_NET_WIRE_H_
