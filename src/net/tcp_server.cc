#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace cactis::net {

namespace {

Status Errno(const char* what) {
  return Status(StatusCode::kIoError,
                std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

TcpServer::TcpServer(server::Executor* executor, TcpServerOptions options)
    : executor_(executor), options_(std::move(options)) {}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start() {
  if (started_) return Status::OK();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    Status s = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, options_.backlog) != 0) {
    Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }

  executor_->db()->metrics()->RegisterSource(
      "net", [this](obs::MetricsGroup* g) {
        auto c = [&](const char* n, const std::atomic<uint64_t>& v) {
          g->AddCounter(n, v.load(std::memory_order_relaxed));
        };
        c("connections_accepted", stats_.connections_accepted);
        c("connections_closed", stats_.connections_closed);
        g->AddGauge("connections_active",
                    static_cast<double>(stats_.connections_active.load(
                        std::memory_order_relaxed)));
        c("frames_received", stats_.frames_received);
        c("frames_sent", stats_.frames_sent);
        c("bytes_received", stats_.bytes_received);
        c("bytes_sent", stats_.bytes_sent);
        c("framing_errors", stats_.framing_errors);
        c("protocol_errors", stats_.protocol_errors);
        c("backpressure_stalls", stats_.backpressure_stalls);
        c("eager_closes", stats_.eager_closes);
        c("requests_relayed", stats_.requests_relayed);
      });

  stop_.store(false, std::memory_order_release);
  loop_thread_ = std::thread([this] { EventLoop(); });
  aux_thread_ = std::thread([this] { AuxLoop(); });
  started_ = true;
  return Status::OK();
}

void TcpServer::Shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  stop_.store(true, std::memory_order_release);
  Wake();
  loop_thread_.join();

  // Every connection is closed; executor callbacks in flight still hold
  // their Conn and may call SendFrame (a no-op on dead connections) and
  // Wake. Wait for the last one before tearing state down.
  {
    std::unique_lock<std::mutex> lk(inflight_mu_);
    inflight_cv_.wait(lk, [this] { return inflight_ == 0; });
  }

  // The loop posted eager-closes for every torn-down session; drain the
  // auxiliary queue before stopping so no transaction outlives us.
  {
    std::lock_guard<std::mutex> lk(aux_mu_);
    aux_stop_ = true;
  }
  aux_cv_.notify_all();
  aux_thread_.join();

  executor_->db()->metrics()->UnregisterSource("net");

  ::close(wake_fd_);
  ::close(epoll_fd_);
  ::close(listen_fd_);
  wake_fd_ = epoll_fd_ = listen_fd_ = -1;
}

size_t TcpServer::connection_count() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  return conns_.size();
}

void TcpServer::Wake() {
  uint64_t one = 1;
  ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  (void)n;  // EAGAIN means a wakeup is already pending — that's fine.
}

void TcpServer::PostAux(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(aux_mu_);
    aux_q_.push_back(std::move(fn));
  }
  aux_cv_.notify_one();
}

void TcpServer::AuxLoop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(aux_mu_);
      aux_cv_.wait(lk, [this] { return aux_stop_ || !aux_q_.empty(); });
      if (aux_q_.empty()) return;  // stop requested and queue drained
      fn = std::move(aux_q_.front());
      aux_q_.pop_front();
    }
    fn();
  }
}

void TcpServer::EventLoop() {
  std::vector<epoll_event> events(128);
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed; nothing sane to do but stop
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == wake_fd_) {
        uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (ev.data.fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lk(conns_mu_);
        auto it = conns_.find(ev.data.fd);
        if (it == conns_.end()) continue;  // closed earlier this batch
        conn = it->second;
      }
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(conn);
        continue;
      }
      if (ev.events & EPOLLIN) ReadReady(conn);
      if (ev.events & EPOLLOUT) WriteReady(conn);
    }
    // Flush connections that worker callbacks (or this iteration's
    // handlers) marked dirty.
    std::vector<std::shared_ptr<Conn>> dirty;
    {
      std::lock_guard<std::mutex> lk(dirty_mu_);
      dirty.swap(dirty_);
    }
    for (auto& conn : dirty) FlushConn(conn);
  }

  // Teardown: close every connection (posting eager session closes).
  std::vector<std::shared_ptr<Conn>> all;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    all.reserve(conns_.size());
    for (auto& [fd, c] : conns_) all.push_back(c);
  }
  for (auto& conn : all) CloseConn(conn);
}

void TcpServer::AcceptReady() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure (EMFILE, ...): retry on next event
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>(fd, options_.max_payload);
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.emplace(fd, conn);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.erase(fd);
      ::close(fd);
      continue;
    }
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void TcpServer::UpdateEpoll(Conn* conn, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void TcpServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      stats_.bytes_received.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
      conn->reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {  // EOF: client went away
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);  // ECONNRESET and friends
    return;
  }

  while (auto frame = conn->reader.Next()) {
    stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
    HandleFrame(conn, std::move(*frame));
    std::lock_guard<std::mutex> lk(conn->out_mu);
    if (conn->dead || conn->want_close) return;
  }
  if (conn->reader.poisoned()) {
    stats_.framing_errors.fetch_add(1, std::memory_order_relaxed);
    SendErrorAndClose(conn, conn->reader.error(),
                      conn->reader.error_message());
    return;
  }

  // Write-side flow control: a client that pipelines without reading
  // responses gets its reads parked until the buffer drains.
  size_t pending;
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    pending = conn->out.size() - conn->out_off;
  }
  if (!conn->read_stalled && pending > options_.write_buffer_limit) {
    conn->read_stalled = true;
    stats_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
    UpdateEpoll(conn.get(), /*want_read=*/false, conn->epollout_armed);
  }
}

void TcpServer::HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      if (conn->has_session) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kUnexpectedFrame,
                          "hello on a connection with a session");
        return;
      }
      auto sid = executor_->OpenSession();
      if (!sid.ok()) {
        SendErrorAndClose(conn, WireCodeFromStatus(sid.status()),
                          sid.status().message());
        return;
      }
      conn->has_session = true;
      conn->session = sid->value;
      SendFrame(conn, FrameType::kHelloOk, conn->session, "");
      return;
    }

    case FrameType::kRequest: {
      if (!conn->has_session) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kUnexpectedFrame,
                          "request before hello");
        return;
      }
      if (frame.session != conn->session) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kSessionMismatch,
                          "request token does not match the session");
        return;
      }
      auto request = DecodeRequestPayload(frame.payload);
      if (!request.ok()) {
        stats_.framing_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kBadFrame,
                          request.status().message());
        return;
      }
      server::Request req;
      req.session = SessionId(conn->session);
      req.statements = std::move(request->statements);
      req.trace_id = request->trace_id;
      {
        std::lock_guard<std::mutex> lk(inflight_mu_);
        ++inflight_;
      }
      stats_.requests_relayed.fetch_add(1, std::memory_order_relaxed);
      const uint64_t token = conn->session;
      executor_->SubmitWithCallback(
          std::move(req), [this, conn, token](server::Response r) {
            SendFrame(conn, FrameType::kResponse, token,
                      EncodeResponsePayload(r));
            {
              // Notify under the lock: Shutdown() may destroy the cv the
              // instant it observes inflight_ == 0, and it can only make
              // that observation after this lock is released — which is
              // strictly after notify_all() has returned.
              std::lock_guard<std::mutex> lk(inflight_mu_);
              --inflight_;
              inflight_cv_.notify_all();
            }
          });
      return;
    }

    case FrameType::kSchema: {
      if (!conn->has_session || frame.session != conn->session) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kUnexpectedFrame,
                          "schema frame without a session");
        return;
      }
      const uint64_t token = conn->session;
      PostAux([this, conn, token, source = std::move(frame.payload)] {
        Status s = executor_->LoadSchema(source);
        if (s.ok()) {
          SendFrame(conn, FrameType::kSchemaOk, token, "");
        } else {
          SendFrame(conn, FrameType::kError, token,
                    EncodeErrorPayload(WireCodeFromStatus(s), s.message()));
        }
      });
      return;
    }

    case FrameType::kMetrics: {
      if (!conn->has_session || frame.session != conn->session) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kUnexpectedFrame,
                          "metrics frame without a session");
        return;
      }
      const uint64_t token = conn->session;
      PostAux([this, conn, token] {
        SendFrame(conn, FrameType::kMetricsOk, token,
                  executor_->SnapshotMetrics());
      });
      return;
    }

    case FrameType::kGoodbye: {
      if (!conn->has_session || frame.session != conn->session) {
        stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendErrorAndClose(conn, WireCode::kUnexpectedFrame,
                          "goodbye without a session");
        return;
      }
      // Goodbye is terminal for the connection: the session closes
      // cleanly (waiting on any in-flight batch, hence the aux thread),
      // kGoodbyeOk is flushed, then the connection closes.
      conn->has_session = false;
      conn->goodbye_pending = true;
      const uint64_t token = conn->session;
      PostAux([this, conn, token] {
        (void)executor_->CloseSession(SessionId(token));
        SendFrame(conn, FrameType::kGoodbyeOk, token, "");
        {
          std::lock_guard<std::mutex> lk(conn->out_mu);
          conn->want_close = true;
        }
        // Already dirty from SendFrame; the loop closes after flushing.
      });
      return;
    }

    default: {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendErrorAndClose(conn, WireCode::kUnexpectedFrame,
                        "server-to-client frame type from a client");
      return;
    }
  }
}

void TcpServer::SendFrame(const std::shared_ptr<Conn>& conn, FrameType type,
                          uint64_t session, std::string_view payload) {
  std::string bytes = EncodeFrame(type, session, payload);
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    if (conn->dead) return;
    conn->out.append(bytes);
  }
  stats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(dirty_mu_);
    dirty_.push_back(conn);
  }
  Wake();
}

void TcpServer::SendErrorAndClose(const std::shared_ptr<Conn>& conn,
                                  WireCode code, std::string_view message) {
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    conn->want_close = true;
  }
  SendFrame(conn, FrameType::kError, conn->session,
            EncodeErrorPayload(code, message));
}

void TcpServer::WriteReady(const std::shared_ptr<Conn>& conn) {
  FlushConn(conn);
}

void TcpServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool close_now = false;
  {
    std::unique_lock<std::mutex> lk(conn->out_mu);
    if (conn->dead) return;
    while (conn->out_off < conn->out.size()) {
      ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_off,
                          conn->out.size() - conn->out_off);
      if (n > 0) {
        conn->out_off += static_cast<size_t>(n);
        stats_.bytes_sent.fetch_add(static_cast<uint64_t>(n),
                                    std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->epollout_armed) {
          conn->epollout_armed = true;
          UpdateEpoll(conn.get(), !conn->read_stalled, /*want_write=*/true);
        }
        break;
      }
      if (n < 0 && errno == EINTR) continue;
      lk.unlock();
      CloseConn(conn);  // EPIPE / ECONNRESET
      return;
    }
    const size_t pending = conn->out.size() - conn->out_off;
    if (pending == 0) {
      conn->out.clear();
      conn->out_off = 0;
      if (conn->epollout_armed) {
        conn->epollout_armed = false;
        UpdateEpoll(conn.get(), !conn->read_stalled, /*want_write=*/false);
      }
      if (conn->want_close) close_now = true;
    }
    // Flow-control unstall once the buffer drains below half the limit.
    if (conn->read_stalled && pending < options_.write_buffer_limit / 2 &&
        !close_now) {
      conn->read_stalled = false;
      UpdateEpoll(conn.get(), /*want_read=*/true, conn->epollout_armed);
    }
  }
  if (close_now) CloseConn(conn);
}

void TcpServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    if (conns_.erase(conn->fd) == 0) return;  // already closed
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  {
    std::lock_guard<std::mutex> lk(conn->out_mu);
    conn->dead = true;
  }
  ::close(conn->fd);
  stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);

  // Unclean disconnect with a live session: roll its transaction back
  // now. (A clean kGoodbye already cleared has_session and posted the
  // blocking close.)
  if (conn->has_session) {
    conn->has_session = false;
    stats_.eager_closes.fetch_add(1, std::memory_order_relaxed);
    const uint64_t token = conn->session;
    server::Executor* exec = executor_;
    PostAux([exec, token] { (void)exec->CloseSessionEager(SessionId(token)); });
  }
}

}  // namespace cactis::net
