#include "net/wire.h"

#include <cstdio>
#include <cstring>

#include "storage/checksum.h"

namespace cactis::net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8;
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

/// Bounds-checked cursor over a payload being decoded. Every read checks
/// remaining length so malformed frames surface as typed errors, never
/// out-of-bounds reads (the fuzzers hammer exactly this).
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = GetU16(data_.data() + pos_);
    pos_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = GetU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = GetU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadBytes(uint32_t len, std::string* out) {
    if (len > data_.size() || pos_ > data_.size() - len) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status BadPayload(const char* what) {
  return Status(StatusCode::kInvalidArgument,
                std::string("malformed frame payload: ") + what);
}

}  // namespace

bool IsKnownFrameType(uint8_t t) {
  return t >= static_cast<uint8_t>(FrameType::kHello) &&
         t <= static_cast<uint8_t>(FrameType::kMetricsOk);
}

std::string_view WireCodeToString(WireCode c) {
  switch (c) {
    case WireCode::kOk:
      return "ok";
    case WireCode::kInvalidArgument:
      return "invalid-argument";
    case WireCode::kNotFound:
      return "not-found";
    case WireCode::kAlreadyExists:
      return "already-exists";
    case WireCode::kTypeMismatch:
      return "type-mismatch";
    case WireCode::kConstraintViolation:
      return "constraint-violation";
    case WireCode::kCycleDetected:
      return "cycle-detected";
    case WireCode::kTransactionAborted:
      return "transaction-aborted";
    case WireCode::kConflict:
      return "conflict";
    case WireCode::kIoError:
      return "io-error";
    case WireCode::kUnavailable:
      return "unavailable";
    case WireCode::kCorruption:
      return "corruption";
    case WireCode::kParseError:
      return "parse-error";
    case WireCode::kOutOfRange:
      return "out-of-range";
    case WireCode::kInternal:
      return "internal";
    case WireCode::kRejected:
      return "rejected";
    case WireCode::kNoSession:
      return "no-session";
    case WireCode::kDegraded:
      return "degraded";
    case WireCode::kBadMagic:
      return "bad-magic";
    case WireCode::kVersionMismatch:
      return "version-mismatch";
    case WireCode::kBadCrc:
      return "bad-crc";
    case WireCode::kFrameTooLarge:
      return "frame-too-large";
    case WireCode::kBadFrame:
      return "bad-frame";
    case WireCode::kUnexpectedFrame:
      return "unexpected-frame";
    case WireCode::kSessionMismatch:
      return "session-mismatch";
  }
  return "unknown";
}

WireCode WireCodeFromStatus(const Status& s) {
  switch (s.code()) {
    case StatusCode::kOk:
      return WireCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireCode::kAlreadyExists;
    case StatusCode::kTypeMismatch:
      return WireCode::kTypeMismatch;
    case StatusCode::kConstraintViolation:
      return WireCode::kConstraintViolation;
    case StatusCode::kCycleDetected:
      return WireCode::kCycleDetected;
    case StatusCode::kTransactionAborted:
      return WireCode::kTransactionAborted;
    case StatusCode::kConflict:
      return WireCode::kConflict;
    case StatusCode::kIoError:
      return WireCode::kIoError;
    case StatusCode::kUnavailable:
      return WireCode::kUnavailable;
    case StatusCode::kCorruption:
      return WireCode::kCorruption;
    case StatusCode::kParseError:
      return WireCode::kParseError;
    case StatusCode::kOutOfRange:
      return WireCode::kOutOfRange;
    case StatusCode::kInternal:
      return WireCode::kInternal;
  }
  return WireCode::kInternal;
}

Status StatusFromWireCode(WireCode c, std::string message) {
  switch (c) {
    case WireCode::kOk:
      return Status::OK();
    case WireCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireCode::kNotFound:
      return Status::NotFound(std::move(message));
    case WireCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case WireCode::kTypeMismatch:
      return Status::TypeMismatch(std::move(message));
    case WireCode::kConstraintViolation:
      return Status::ConstraintViolation(std::move(message));
    case WireCode::kCycleDetected:
      return Status::CycleDetected(std::move(message));
    case WireCode::kTransactionAborted:
      return Status::TransactionAborted(std::move(message));
    case WireCode::kConflict:
      return Status::Conflict(std::move(message));
    case WireCode::kIoError:
      return Status::IoError(std::move(message));
    case WireCode::kUnavailable:
    case WireCode::kRejected:
    case WireCode::kDegraded:
      return Status::Unavailable(std::move(message));
    case WireCode::kCorruption:
    case WireCode::kBadCrc:
      return Status::Corruption(std::move(message));
    case WireCode::kParseError:
      return Status::ParseError(std::move(message));
    case WireCode::kOutOfRange:
    case WireCode::kFrameTooLarge:
      return Status::OutOfRange(std::move(message));
    case WireCode::kInternal:
      return Status::Internal(std::move(message));
    case WireCode::kNoSession:
      return Status::NotFound(std::move(message));
    case WireCode::kBadMagic:
    case WireCode::kVersionMismatch:
    case WireCode::kBadFrame:
    case WireCode::kUnexpectedFrame:
    case WireCode::kSessionMismatch:
      return Status::InvalidArgument(std::move(message));
  }
  return Status::Internal(std::move(message));
}

bool IsRetryableWireCode(WireCode c) {
  switch (c) {
    case WireCode::kTransactionAborted:
    case WireCode::kConflict:
    case WireCode::kUnavailable:
    case WireCode::kRejected:
    case WireCode::kDegraded:
      return true;
    default:
      return false;
  }
}

uint8_t WireByteFromResponseStatus(server::ResponseStatus s) {
  switch (s) {
    case server::ResponseStatus::kOk:
      return 0;
    case server::ResponseStatus::kError:
      return 1;
    case server::ResponseStatus::kAborted:
      return 2;
    case server::ResponseStatus::kRejected:
      return 3;
    case server::ResponseStatus::kNoSession:
      return 4;
    case server::ResponseStatus::kUnavailable:
      return 5;
  }
  return 1;
}

std::optional<server::ResponseStatus> ResponseStatusFromWireByte(uint8_t b) {
  switch (b) {
    case 0:
      return server::ResponseStatus::kOk;
    case 1:
      return server::ResponseStatus::kError;
    case 2:
      return server::ResponseStatus::kAborted;
    case 3:
      return server::ResponseStatus::kRejected;
    case 4:
      return server::ResponseStatus::kNoSession;
    case 5:
      return server::ResponseStatus::kUnavailable;
    default:
      return std::nullopt;
  }
}

// --- Frame encoding -----------------------------------------------------------

std::string EncodeFrame(FrameType type, uint64_t session,
                        std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kWireMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  PutU16(&out, 0);  // flags
  PutU64(&out, session);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  // CRC over the 20 header bytes written so far plus the payload — the
  // same integrity discipline as the block layer, covering the header
  // fields (a flipped length or session byte fails the check too).
  std::string crc_input(out);
  crc_input.append(payload);
  PutU32(&out, storage::Crc32(crc_input));
  out.append(payload);
  return out;
}

void FrameReader::Feed(std::string_view bytes) {
  if (poisoned()) return;  // drained by teardown; don't buffer garbage
  buffer_.append(bytes);
}

void FrameReader::Poison(WireCode code, std::string message) {
  error_ = code;
  error_message_ = std::move(message);
  buffer_.clear();
  consumed_ = 0;
}

void FrameReader::Compact() {
  // Reclaim consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

std::optional<Frame> FrameReader::Next() {
  if (poisoned()) return std::nullopt;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return std::nullopt;
  const char* h = buffer_.data() + consumed_;

  const uint32_t magic = GetU32(h);
  if (magic != kWireMagic) {
    Poison(WireCode::kBadMagic, "bad magic 0x" + [&] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x", magic);
      return std::string(buf);
    }());
    return std::nullopt;
  }
  const uint8_t version = static_cast<uint8_t>(h[4]);
  if (version != kWireVersion) {
    Poison(WireCode::kVersionMismatch,
           "protocol version " + std::to_string(version) + " (expected " +
               std::to_string(kWireVersion) + ")");
    return std::nullopt;
  }
  const uint8_t type = static_cast<uint8_t>(h[5]);
  if (!IsKnownFrameType(type)) {
    Poison(WireCode::kBadFrame,
           "unknown frame type " + std::to_string(type));
    return std::nullopt;
  }
  const uint16_t flags = GetU16(h + 6);
  if (flags != 0) {
    Poison(WireCode::kBadFrame,
           "nonzero reserved flags " + std::to_string(flags));
    return std::nullopt;
  }
  const uint64_t session = GetU64(h + 8);
  const uint32_t length = GetU32(h + 16);
  if (length > max_payload_) {
    Poison(WireCode::kFrameTooLarge,
           "payload of " + std::to_string(length) + " bytes exceeds limit " +
               std::to_string(max_payload_));
    return std::nullopt;
  }
  if (avail < kFrameHeaderBytes + length) return std::nullopt;  // need more

  const uint32_t wire_crc = GetU32(h + 20);
  std::string crc_input(h, 20);
  crc_input.append(h + kFrameHeaderBytes, length);
  if (storage::Crc32(crc_input) != wire_crc) {
    Poison(WireCode::kBadCrc, "frame checksum mismatch");
    return std::nullopt;
  }

  Frame f;
  f.type = static_cast<FrameType>(type);
  f.session = session;
  f.payload.assign(h + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  Compact();
  return f;
}

// --- Response payload encoding ------------------------------------------------

std::string EncodeResponsePayload(const server::Response& r) {
  // Batch outcome code: response-level outcomes win; otherwise the first
  // failing statement's code; kOk when everything succeeded.
  WireCode code = WireCode::kOk;
  switch (r.status) {
    case server::ResponseStatus::kRejected:
      code = WireCode::kRejected;
      break;
    case server::ResponseStatus::kNoSession:
      code = WireCode::kNoSession;
      break;
    case server::ResponseStatus::kUnavailable:
      code = WireCode::kDegraded;
      break;
    default:
      for (const auto& st : r.statements) {
        if (!st.status.ok()) {
          code = WireCodeFromStatus(st.status);
          break;
        }
      }
      break;
  }

  std::string out;
  out.push_back(static_cast<char>(WireByteFromResponseStatus(r.status)));
  PutU16(&out, static_cast<uint16_t>(code));
  PutU32(&out, r.metrics.statements_run);
  PutU64(&out, r.metrics.queue_wait_us);
  PutU64(&out, r.metrics.exec_us);
  PutU64(&out, r.metrics.session_ts);
  PutU32(&out, static_cast<uint32_t>(r.statements.size()));
  for (const auto& st : r.statements) {
    PutU16(&out, static_cast<uint16_t>(WireCodeFromStatus(st.status)));
    const std::string& text =
        st.status.ok() ? st.payload : st.status.ToString();
    PutU32(&out, static_cast<uint32_t>(text.size()));
    out.append(text);
  }
  PutU32(&out, static_cast<uint32_t>(r.payload.size()));
  out.append(r.payload);
  return out;
}

std::string EncodeRequestPayload(const RequestPayload& request) {
  std::string out;
  PutU64(&out, request.trace_id);
  PutU32(&out, static_cast<uint32_t>(request.statements.size()));
  for (const auto& s : request.statements) {
    PutU32(&out, static_cast<uint32_t>(s.size()));
    out.append(s);
  }
  return out;
}

std::string EncodeRequestPayload(const std::vector<std::string>& statements) {
  RequestPayload request;
  request.statements = statements;
  return EncodeRequestPayload(request);
}

Result<RequestPayload> DecodeRequestPayload(std::string_view payload) {
  Cursor c(payload);
  RequestPayload request;
  uint32_t n = 0;
  if (!c.ReadU64(&request.trace_id)) return BadPayload("truncated trace id");
  if (!c.ReadU32(&n)) return BadPayload("truncated statement count");
  // Each statement entry is at least 4 bytes; bound n before reserving.
  if (n > payload.size() / 4 + 1) return BadPayload("statement count");
  request.statements.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t len = 0;
    std::string s;
    if (!c.ReadU32(&len) || !c.ReadBytes(len, &s)) {
      return BadPayload("truncated statement");
    }
    request.statements.push_back(std::move(s));
  }
  if (!c.AtEnd()) return BadPayload("trailing bytes");
  return request;
}

Result<WireResponse> DecodeResponsePayload(std::string_view payload) {
  Cursor c(payload);
  WireResponse r;
  uint8_t status_byte = 0;
  uint16_t code = 0;
  if (!c.ReadU8(&status_byte) || !c.ReadU16(&code) ||
      !c.ReadU32(&r.statements_run) || !c.ReadU64(&r.queue_wait_us) ||
      !c.ReadU64(&r.exec_us) || !c.ReadU64(&r.session_ts)) {
    return BadPayload("truncated response header");
  }
  auto status = ResponseStatusFromWireByte(status_byte);
  if (!status.has_value()) return BadPayload("unknown response status");
  r.status = *status;
  r.code = static_cast<WireCode>(code);
  uint32_t n = 0;
  if (!c.ReadU32(&n)) return BadPayload("truncated statement count");
  // Each statement entry is at least 6 bytes; bound n before reserving.
  if (n > payload.size() / 6 + 1) return BadPayload("statement count");
  r.statements.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    WireStatementResult st;
    uint16_t st_code = 0;
    uint32_t len = 0;
    if (!c.ReadU16(&st_code) || !c.ReadU32(&len) ||
        !c.ReadBytes(len, &st.text)) {
      return BadPayload("truncated statement result");
    }
    st.code = static_cast<WireCode>(st_code);
    r.statements.push_back(std::move(st));
  }
  uint32_t plen = 0;
  if (!c.ReadU32(&plen) || !c.ReadBytes(plen, &r.payload)) {
    return BadPayload("truncated joined payload");
  }
  if (!c.AtEnd()) return BadPayload("trailing bytes");
  return r;
}

std::string EncodeErrorPayload(WireCode code, std::string_view message) {
  std::string out;
  PutU16(&out, static_cast<uint16_t>(code));
  PutU32(&out, static_cast<uint32_t>(message.size()));
  out.append(message);
  return out;
}

Result<std::pair<WireCode, std::string>> DecodeErrorPayload(
    std::string_view payload) {
  Cursor c(payload);
  uint16_t code = 0;
  uint32_t len = 0;
  std::string message;
  if (!c.ReadU16(&code) || !c.ReadU32(&len) || !c.ReadBytes(len, &message) ||
      !c.AtEnd()) {
    return BadPayload("truncated error frame");
  }
  return std::make_pair(static_cast<WireCode>(code), std::move(message));
}

}  // namespace cactis::net
