// EvalEngine: the incremental attribute-evaluation algorithm of paper
// section 2.2, expressed as chunked traversals (section 2.3).
//
// Phase 1 — mark out of date. From a changed intrinsic attribute or a
// structural change, traverse the attribute dependency graph forward,
// marking dependents out of date. Traversal stops at attributes that are
// already out of date (the O(1) repeated-update cut-off). Important
// attributes encountered — constraints, subtype predicates, subscribed
// attributes — are collected for phase 2.
//
// Phase 2 — demand-driven evaluation. Only important out-of-date
// attributes (and the out-of-date attributes they transitively need) are
// evaluated, each at most once. Evaluation of one attribute is two chunks:
// the first requests the values it depends on; the second, scheduled when
// they are all available, executes the rule and publishes the value.
//
// Both phases run through the ChunkScheduler, so the traversal order is a
// pure scheduling decision: resident instances first, then least expected
// disk I/O (decaying averages for evaluation, cluster-time worst-case
// statistics for marking).

#ifndef CACTIS_CORE_EVAL_ENGINE_H_
#define CACTIS_CORE_EVAL_ENGINE_H_

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/value.h"
#include "core/instance.h"
#include "lang/interpreter.h"
#include "obs/metrics.h"
#include "schema/catalog.h"

namespace cactis::core {

class Database;
class Transaction;

/// An attribute instance: (instance id, attribute index within its class).
struct AttrSite {
  InstanceId instance;
  uint32_t attr = 0;
  auto operator<=>(const AttrSite&) const = default;
};

struct AttrSiteHash {
  size_t operator()(const AttrSite& s) const {
    uint64_t h = s.instance.value * 1099511628211ull;
    h ^= s.attr + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

struct EvalStats {
  uint64_t attrs_marked = 0;      // slots transitioned to out-of-date
  uint64_t mark_visits = 0;       // marking steps incl. cut-offs
  uint64_t mark_cutoffs = 0;      // visits stopped at already-out-of-date
  uint64_t rule_evaluations = 0;  // rule executions (each attr at most once
                                  // per invalidation)
  uint64_t eval_requests = 0;     // demand requests incl. up-to-date hits
  uint64_t constraint_checks = 0;
  uint64_t constraint_violations = 0;
  uint64_t recoveries_run = 0;
  uint64_t sync_fallbacks = 0;    // dynamic deps missed by static analysis

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("attrs_marked", attrs_marked);
    g->AddCounter("mark_visits", mark_visits);
    g->AddCounter("mark_cutoffs", mark_cutoffs);
    g->AddCounter("rule_evaluations", rule_evaluations);
    g->AddCounter("eval_requests", eval_requests);
    g->AddCounter("constraint_checks", constraint_checks);
    g->AddCounter("constraint_violations", constraint_violations);
    g->AddCounter("recoveries_run", recoveries_run);
    g->AddCounter("sync_fallbacks", sync_fallbacks);
  }
};

class EvalEngine {
 public:
  explicit EvalEngine(Database* db) : db_(db) {}

  /// Phase-1 entry: an intrinsic attribute of `site` changed; mark all
  /// attributes reachable through dependencies. Collects important ones.
  Status MarkDependentsOf(const AttrSite& site);

  /// Phase-1 entry for structural changes: an edge on (instance, port) was
  /// established or broken; marks structural dependents and consumers of
  /// values received across that port.
  Status MarkPortChanged(InstanceId instance, size_t port_index);

  /// Directly marks one derived attribute out of date (undo/redo path, and
  /// the environment layer's external-change hook).
  Status MarkAttribute(const AttrSite& site);

  /// Queues a derived attribute for evaluation in the next
  /// EvaluateImportant (used when instances are created: their constraints
  /// and subtype predicates must be established).
  void QueueImportant(const AttrSite& site) { to_evaluate_.push_back(site); }

  /// Phase 2: evaluates every queued important attribute (and what they
  /// need), checks constraints, runs recovery actions, re-checks. Returns
  /// ConstraintViolation when a constraint cannot be satisfied (the caller
  /// rolls the transaction back), CycleDetected on dependency cycles.
  Status EvaluateImportant(Transaction* txn);

  /// Demand a single attribute's current value (the user-query path;
  /// marks the chunk as a direct user request). Runs phase 2 for it.
  Result<Value> DemandValue(const AttrSite& site, Transaction* txn,
                            bool user_request);

  /// Synchronous recursive evaluation (also the fallback when a rule
  /// dynamically reads something static analysis missed).
  Result<Value> EvalSync(const AttrSite& site, Transaction* txn);

  /// Evaluates an ad-hoc rule body against one instance (the SelectWhere
  /// query path): a throwaway rule with full read access and no caching.
  Result<Value> EvalAdHoc(InstanceId instance,
                          const schema::ObjectClass* cls,
                          const lang::RuleBody& body, Transaction* txn);

  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats{}; }

  /// True while the engine is applying an undo/redo delta; constraint
  /// violations are not enforced then (the target state was consistent
  /// when it was current).
  void set_replay_mode(bool on) { replay_mode_ = on; }

 private:
  friend class RuleContext;

  struct EvalNode {
    AttrSite site;
    int pending = 0;           // dependency evaluations outstanding
    bool requested = false;    // chunk1 scheduled
    bool gathered = false;     // chunk1 ran
    bool done = false;
    bool charged = false;      // io_cost already credited to a parent
    double io_cost = 0;        // block misses incurred for this subtree
    EdgeId via_edge;           // edge crossed by the first requester
    std::vector<AttrSite> waiters;
  };

  /// Enumerates the attributes that depend on `site` (local dependents of
  /// the same instance, then remote dependents across relationships),
  /// passing the relationship edge crossed (invalid for local).
  Status ForEachDependent(
      const AttrSite& site,
      const std::function<Status(const AttrSite&, EdgeId)>& fn);

  /// Requests evaluation of `site` on behalf of `waiter` (nullopt for
  /// roots). `via_edge` is the relationship crossed, for I/O statistics.
  Status RequestEval(const AttrSite& site, std::optional<AttrSite> waiter,
                     EdgeId via_edge, bool user_request);

  Status RunGatherChunk(const AttrSite& site);   // chunk 1
  /// Touches a remote dependency's instance, resolves the value name to an
  /// attribute of its class, and requests its evaluation if stale.
  Status RunResolveChunk(const AttrSite& parent, const EdgeRecord& edge,
                         const std::string& name);
  Status NotifyDependencyDone(const AttrSite& site);
  void ScheduleCompute(const AttrSite& site);
  Status RunComputeChunk(const AttrSite& site);  // chunk 2
  Status CompleteNode(const AttrSite& site);
  Status EvaluateImportantImpl(Transaction* txn);

  /// Schedules a marking chunk for `site` reached across `via_edge`
  /// (invalid id for local steps).
  void ScheduleMark(const AttrSite& site, EdgeId via_edge);
  Status RunMarkChunk(const AttrSite& site);

  /// Executes the attribute's rule and publishes the value; shared by the
  /// chunked and synchronous paths.
  Result<Value> ExecuteRule(const AttrSite& site, Transaction* txn);
  Status PublishValue(const AttrSite& site, Value value);

  /// Runs the scheduler dry. Stuck evaluation nodes mean a dependency
  /// cycle: if every stuck attribute is declared `circular`, the cycle is
  /// resolved by fixed-point iteration ([Far86]; paper section 4 notes
  /// these techniques "are being incorporated into Cactis"); otherwise it
  /// is an error ("Cactis does not support data cycles").
  Status DrainAndCheck();

  /// Fixed-point evaluation of a strongly-coupled set of circular
  /// attributes: initialise each to its declared default (the lattice
  /// bottom), then re-run all rules until no value changes.
  Status FixpointEvaluate(std::vector<AttrSite> sites);

  /// Post-evaluation constraint handling with recovery rounds.
  Status ProcessViolations(Transaction* txn);

  Database* db_;
  EvalStats stats_;
  bool replay_mode_ = false;

  std::unordered_map<AttrSite, EvalNode, AttrSiteHash> nodes_;
  std::deque<AttrSite> to_evaluate_;
  std::vector<AttrSite> violations_;
  std::vector<AttrSite> sync_stack_;
  Transaction* current_txn_ = nullptr;
};

}  // namespace cactis::core

#endif  // CACTIS_CORE_EVAL_ENGINE_H_
