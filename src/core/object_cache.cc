#include "core/object_cache.h"

#include <cassert>

namespace cactis::core {

Result<Instance*> ObjectCache::Fetch(InstanceId id) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  ++generation_;  // Touch/Get below can fault; prior handles go stale.
  // Touch first: this may evict another block (dropping its cached
  // instances) but guarantees our block is resident afterwards.
  CACTIS_RETURN_IF_ERROR(store_->Touch(id));
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    it->second->set_cache_epoch(generation_);
    return it->second.get();
  }

  CACTIS_ASSIGN_OR_RETURN(std::string payload, store_->Get(id));
  CACTIS_ASSIGN_OR_RETURN(Instance inst,
                          Instance::Deserialize(payload, *catalog_));
  auto owned = std::make_unique<Instance>(std::move(inst));
  Instance* raw = owned.get();
  raw->set_cache_epoch(generation_);
  cache_[id] = std::move(owned);
  IndexUnderBlock(id);
  return raw;
}

Status ObjectCache::WriteThrough(const Instance& inst) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  // Writing through a stale cached copy means the caller held the
  // pointer across a faulting operation — exactly the bug the pointer
  // discipline forbids. (An uncached `inst`, e.g. a caller-owned copy
  // being flushed, is exempt: its lifetime is the caller's business.)
  assert(!IsCached(inst.id()) || cache_.find(inst.id())->second.get() != &inst ||
         IsFresh(&inst));
  ++generation_;  // Put below can fault; prior handles go stale.
  std::string payload = inst.Serialize();
  InstanceId id = inst.id();
  // NOTE: `inst` may be *the cached copy*; Put can evict or discard
  // blocks, and loss of our own block would destroy it mid-call.
  // Serialising first (above) makes that safe; we must not touch `inst`
  // after Put.
  CACTIS_RETURN_IF_ERROR(store_->Put(id, std::move(payload)));
  IndexUnderBlock(id);  // the record may have moved to a new block
  auto it = cache_.find(id);
  if (it != cache_.end()) it->second->set_cache_epoch(generation_);
  return Status::OK();
}

Status ObjectCache::Insert(Instance inst) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  ++generation_;  // Put below can fault; prior handles go stale.
  InstanceId id = inst.id();
  std::string payload = inst.Serialize();
  auto owned = std::make_unique<Instance>(std::move(inst));
  owned->set_cache_epoch(generation_);
  CACTIS_RETURN_IF_ERROR(store_->Put(id, std::move(payload)));
  // Put may have evicted blocks but cannot have evicted this instance's
  // (it was just fetched by Put). Cache the decoded copy.
  cache_[id] = std::move(owned);
  IndexUnderBlock(id);
  return Status::OK();
}

const Instance* ObjectCache::PeekCached(InstanceId id) const {
  CACTIS_SHARED_GUARD(serial_guard_);
  auto it = cache_.find(id);
  return it == cache_.end() ? nullptr : it->second.get();
}

void ObjectCache::NoteSharedTouch(InstanceId id) {
  TouchShard& shard =
      touch_shards_[std::hash<InstanceId>{}(id) % kTouchShards];
  std::lock_guard<std::mutex> lk(shard.mu);
  if (shard.touches.size() < kTouchShardCapacity) shard.touches.push_back(id);
}

void ObjectCache::DrainTouches(
    std::unordered_map<InstanceId, uint64_t>* counts) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  for (TouchShard& shard : touch_shards_) {
    std::lock_guard<std::mutex> lk(shard.mu);
    for (InstanceId id : shard.touches) ++(*counts)[id];
    shard.touches.clear();
  }
}

Status ObjectCache::Remove(InstanceId id) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  ++generation_;  // Delete below can fault; prior handles go stale.
  auto blk = block_of_.find(id);
  if (blk != block_of_.end()) {
    auto set = by_block_.find(blk->second);
    if (set != by_block_.end()) set->second.erase(id);
    block_of_.erase(blk);
  }
  cache_.erase(id);
  return store_->Delete(id);
}

void ObjectCache::OnBlockEvicted(BlockId id) {
  // Covers both pool evictions (mid-faulting-operation) and discards of
  // freed/relocated blocks arriving from record-store maintenance: any
  // outstanding handle may now dangle, so all of them go stale.
  ++generation_;
  auto it = by_block_.find(id);
  if (it == by_block_.end()) return;
  for (InstanceId inst : it->second) {
    cache_.erase(inst);
    block_of_.erase(inst);
  }
  by_block_.erase(it);
}

void ObjectCache::IndexUnderBlock(InstanceId id) {
  auto block = store_->BlockOf(id);
  if (!block.ok()) return;
  auto prev = block_of_.find(id);
  if (prev != block_of_.end()) {
    if (prev->second == *block) return;
    auto set = by_block_.find(prev->second);
    if (set != by_block_.end()) set->second.erase(id);
  }
  block_of_[id] = *block;
  by_block_[*block].insert(id);
}

}  // namespace cactis::core
