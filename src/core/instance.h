// Instance: the runtime (and serialized) form of one abstract object —
// one node of the attributed graph.
//
// An instance holds one slot per class attribute (value + out-of-date /
// subscribed flags) and one edge list per relationship port. The flags are
// part of the persistent state: an attribute may "remain out of date for
// long periods" (paper 2.2) across transactions, so the lazy-evaluation
// state must survive eviction.

#ifndef CACTIS_CORE_INSTANCE_H_
#define CACTIS_CORE_INSTANCE_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/value.h"
#include "schema/catalog.h"

namespace cactis::core {

/// One relationship edge endpoint as stored on an instance.
struct EdgeRecord {
  EdgeId id;
  InstanceId peer;
  uint32_t peer_port = 0;  // port index on the peer's class
};

/// One attribute slot.
struct AttrSlot {
  Value value;
  /// Derived attributes start out of date; intrinsic slots are never out
  /// of date.
  bool out_of_date = false;
  /// Sticky "the user asked for this value" importance (paper 2.2).
  bool subscribed = false;
};

class Instance {
 public:
  /// Builds a fresh instance of `cls` with default attribute values;
  /// derived slots start out of date.
  static Instance Create(InstanceId id, const schema::ObjectClass& cls);

  InstanceId id() const { return id_; }
  ClassId class_id() const { return class_id_; }

  std::vector<AttrSlot>& attrs() { return attrs_; }
  const std::vector<AttrSlot>& attrs() const { return attrs_; }
  std::vector<std::vector<EdgeRecord>>& ports() { return ports_; }
  const std::vector<std::vector<EdgeRecord>>& ports() const { return ports_; }

  /// Grows slot/port vectors to match an extended class definition
  /// (paper's dynamic type extension); new derived slots start out of
  /// date, new intrinsic slots take their default.
  void MigrateTo(const schema::ObjectClass& cls);

  /// Flat binary encoding for the record store.
  std::string Serialize() const;

  /// Decodes and migrates to the current class definition.
  static Result<Instance> Deserialize(const std::string& payload,
                                      const schema::Catalog& catalog);

  /// Staleness cookie for the ObjectCache pointer discipline: the cache
  /// generation at which this decoded copy was last handed out. Not
  /// serialized; see ObjectCache::IsFresh().
  uint64_t cache_epoch() const { return cache_epoch_; }
  void set_cache_epoch(uint64_t epoch) { cache_epoch_ = epoch; }

 private:
  Instance() = default;

  InstanceId id_;
  ClassId class_id_;
  std::vector<AttrSlot> attrs_;
  std::vector<std::vector<EdgeRecord>> ports_;
  uint64_t cache_epoch_ = 0;
};

}  // namespace cactis::core

#endif  // CACTIS_CORE_INSTANCE_H_
