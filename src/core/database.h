// Database: the public API of the Cactis object-oriented DBMS.
//
// A Database owns the full stack: simulated disk, buffer pool, record
// store, object cache, catalog, chunk scheduler, evaluation engine,
// timestamp concurrency control, and the delta/version store.
//
// The data-manipulation primitives are the paper's (section 2.2):
// creating and deleting object instances, establishing and breaking
// relationships, retrieving and replacing attribute values — plus the
// meta-action Undo, version management, and maintenance (clustering
// reorganisation). All mutation happens inside a Transaction; the
// Database-level convenience methods run one-operation auto-commit
// transactions.
//
// THREADING: mutating entry points are single-threaded — concurrent
// clients go through the service layer (src/server), whose Executor
// serializes mutating statements behind the exclusive side of a
// reader/writer statement lock. Read-only statements may instead run
// concurrently under the shared side, but only through the explicitly
// shared entry points (TryGetShared, InstancesOfShared,
// TrySelectWhereShared, TryMembersOfSubtypeShared): those touch nothing
// but already-cached, up-to-date state (plus the atomic read_ts marks)
// and report a miss so the caller can retry under the exclusive lock.
// Every other entry point — including SnapshotMetrics(), which reads
// live counters — is exclusive-only; a ThreadSharedGuard aborts with a
// diagnostic on any violation (use server::Executor::SnapshotMetrics()
// when a server is running).
//
// Usage:
//
//   cactis::core::Database db;
//   db.LoadSchema("object class task is ... end object;");
//   auto t = db.Begin();
//   auto id = t->Create("task");
//   t->Set(*id, "effort", cactis::Value::Int(3));
//   t->Commit();
//   auto v = db.Get(*id, "total_effort");   // derived, evaluated on demand

#ifndef CACTIS_CORE_DATABASE_H_
#define CACTIS_CORE_DATABASE_H_

#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/policy.h"
#include "cluster/reorganizer.h"
#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/thread_guard.h"
#include "common/value.h"
#include "core/eval_engine.h"
#include "core/instance.h"
#include "core/object_cache.h"
#include "lang/builtins.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/decaying_average.h"
#include "sched/scheduler.h"
#include "schema/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/record_store.h"
#include "storage/simulated_disk.h"
#include "txn/checkpoint.h"
#include "txn/delta.h"
#include "txn/snapshot_index.h"
#include "txn/timestamp_cc.h"
#include "txn/version_store.h"
#include "txn/wal.h"

namespace cactis::core {

struct DatabaseOptions {
  /// Usable bytes per simulated disk block.
  size_t block_size = 4096;
  /// Buffer pool capacity in blocks.
  size_t buffer_capacity = 64;
  /// Traversal scheduling policy (paper 2.3; baselines for experiment E4).
  sched::SchedulingPolicy policy = sched::SchedulingPolicy::kGreedyAdaptive;
  /// Update decaying averages from observed I/O (off = cluster-time
  /// estimates only; the ablation of experiment E6).
  bool adaptive_stats = true;
  /// Weight of new samples in the decaying averages.
  double decay_alpha = 0.25;
  /// Enforce timestamp-ordering concurrency control.
  bool timestamp_cc = true;
  /// Maximum constraint-recovery rounds per operation before giving up.
  int max_recovery_rounds = 4;
  /// Iteration cap for fixed-point evaluation of `circular` attributes.
  int max_fixpoint_iterations = 100;
  /// Journal committed deltas (and version meta-actions) to a write-ahead
  /// log before acknowledging them, enabling Recover() after a crash.
  bool enable_wal = true;
  /// Enable registry-owned metric instruments (transaction counters,
  /// delta-size histograms). Subsystem stats structs always count;
  /// disabling this only gates the registry's own instruments.
  bool enable_metrics = true;
  /// Record span events (chunk runs, block traffic, WAL appends,
  /// transaction lifecycle) into the trace ring. Off by default: tracing
  /// is a debugging/analysis aid, not a production counter.
  bool enable_tracing = false;
  /// Trace ring capacity in events (oldest events drop beyond this).
  size_t trace_capacity = obs::TraceSink::kDefaultCapacity;
  /// Prune committed deltas (and their snapshot-index versions) once the
  /// retained history exceeds this many transactions. 0 disables pruning
  /// (history grows without bound). The pruner never passes the oldest
  /// live snapshot, the oldest named version, or the current checkout
  /// position.
  size_t version_prune_threshold = 1024;
  /// Recent deltas always retained by a prune: bounds how far Undo can
  /// walk back after pruning and absorbs the snapshot-acquire race.
  size_t version_prune_slack = 128;
  /// Clustering policy Reorganize() packs with (cluster/policy.h).
  cluster::PolicyKind cluster_policy = cluster::kDefaultPolicy;
  /// Weight of the newest observation period in the clustering decayed
  /// counters (the DSTC statistic). High on purpose — the point of the
  /// decayed policy is that the *recent* access pattern dictates
  /// placement; at 0.8 one period of silence costs a counter 80% of its
  /// weight. Distinct from decay_alpha, which smooths I/O estimates and
  /// wants the opposite bias (stability).
  double cluster_decay_alpha = 0.8;
};

/// Counters for the clustering subsystem (metrics group "cluster").
/// "Last run" fields describe the most recent Reorganize().
struct ClusterStats {
  uint64_t reorg_runs = 0;
  uint64_t stat_folds = 0;            // observation periods closed
  uint64_t instances_placed = 0;      // last run
  uint64_t clusters_produced = 0;     // last run
  uint64_t blocks_produced = 0;       // last run
  double fill_factor = 0.0;           // last run, 0..1 of usable bytes
  uint64_t placement_us = 0;          // last run: policy Place() wall time
  uint64_t reorg_blocks_read = 0;     // last run: ApplyPlacement disk reads
  uint64_t reorg_blocks_written = 0;  // last run: ApplyPlacement disk writes
  // Decayed-vs-raw divergence at the last fold: when the decayed total
  // is far below the raw total, history no longer matches the present
  // access pattern (the regime where DstcPolicy beats GreedyUsage).
  uint64_t raw_access_total = 0;
  double decayed_access_total = 0.0;
  // Epoch recorded by Reorganize() at completion (cumulative disk reads
  // and traversal crossings, the rewrite's own I/O excluded): the origin
  // the drift watchdog measures its post-reorg blocks/traversal figure
  // from.
  uint64_t post_reorg_disk_reads = 0;
  uint64_t post_reorg_crossings = 0;
  void ExportTo(obs::MetricsGroup* g) const;
};

class Database;

/// One transaction. Obtained from Database::Begin(); aborted on
/// destruction if still open. Not thread-safe (Cactis concurrency is the
/// paper's simulated multi-user interleaving).
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  uint64_t ts() const { return ts_; }
  bool open() const { return open_; }
  bool aborted() const { return aborted_; }

  /// Creates an instance of the named class. Its constraints and subtype
  /// predicates are established immediately.
  Result<InstanceId> Create(const std::string& class_name);

  /// Deletes an instance, first breaking all its relationships.
  Status Delete(InstanceId id);

  /// Replaces an intrinsic attribute value. Derived dependents are marked
  /// out of date; important ones are re-evaluated and constraints checked.
  Status Set(InstanceId id, const std::string& attr, Value value);

  /// Retrieves an attribute value, evaluating it first when it is a
  /// derived attribute that is out of date. Marks the attribute as
  /// important ("the user has asked the database to retrieve it").
  Result<Value> Get(InstanceId id, const std::string& attr);

  /// Establishes a relationship between a plug port of one instance and a
  /// socket port of another (same relationship type).
  Result<EdgeId> Connect(InstanceId a, const std::string& a_port,
                         InstanceId b, const std::string& b_port);

  /// Breaks a relationship.
  Status Disconnect(EdgeId edge);

  /// Commits; the transaction's delta is appended to the version history.
  /// Equivalent to StageCommit + WaitCommitDurable + FinishCommit.
  Status Commit();

  // Split-phase commit for the service layer's group-commit path: Stage
  // under the exclusive statement lock, wait for durability WITHOUT the
  // lock (so other statements proceed while the WAL flush leader is on
  // the disk), then finish under the exclusive lock again.

  /// Stages the commit in the WAL's group-commit queue and closes the
  /// transaction. Returns the WAL ticket, or 0 when no journaling was
  /// needed (empty delta or WAL disabled) and the commit completed here.
  Result<uint64_t> StageCommit();

  /// Blocks until ticket's batch is flushed; pass the result to
  /// FinishCommit. Must NOT be called under the statement lock.
  Status WaitCommitDurable(uint64_t ticket);

  /// Publishes (or, on flush failure, aborts) the staged commit. Returns
  /// the overall commit status.
  Status FinishCommit(uint64_t ticket, Status durable);

  /// The Undo meta-action: rolls this transaction back. "This meta-action
  /// allows the user to freely explore the database, knowing that no
  /// actions need have permanent effect."
  Status Undo();

 private:
  friend class Database;
  friend class RuleContext;
  Transaction(Database* db, TxnId id, uint64_t ts)
      : db_(db), id_(id), ts_(ts) {}

  Database* db_;
  TxnId id_;
  uint64_t ts_;
  bool open_ = true;
  bool aborted_ = false;
  txn::TransactionDelta delta_;
  // Instances this transaction passed CheckWrite for; their pending-
  // writer marks are released when the commit stages or the txn rolls
  // back. Kept here (not derived from delta_) so release is exactly
  // symmetric with the CC checks even when an op fails after the check.
  std::vector<InstanceId> cc_writes_;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Schema ---------------------------------------------------------

  schema::Catalog* catalog() { return &catalog_; }
  const schema::Catalog& catalog() const { return catalog_; }
  lang::BuiltinRegistry* builtins() { return &builtins_; }

  /// Loads data-language schema source (classes, subtypes).
  Status LoadSchema(std::string_view source);

  /// Dynamic type extension with live instances: appends a derived
  /// attribute / constraint / subtype predicate to an existing class.
  /// Cached instances migrate immediately, stored ones lazily on load.
  Result<size_t> ExtendClassWithDerived(const std::string& class_name,
                                        const std::string& attr_name,
                                        ValueType type,
                                        const std::string& rule_source);
  Result<size_t> ExtendClassWithConstraint(
      const std::string& class_name, const std::string& constraint_name,
      const std::string& predicate_source,
      const std::string& recovery_source = "");
  Result<SubtypeId> DefineSubtype(const std::string& subtype_name,
                                  const std::string& class_name,
                                  const std::string& predicate_source);

  // --- Transactions -----------------------------------------------------

  std::unique_ptr<Transaction> Begin();

  // Auto-commit conveniences.
  Result<InstanceId> Create(const std::string& class_name);
  Status Delete(InstanceId id);
  Status Set(InstanceId id, const std::string& attr, Value value);
  Result<Value> Get(InstanceId id, const std::string& attr);
  Result<EdgeId> Connect(InstanceId a, const std::string& a_port,
                         InstanceId b, const std::string& b_port);
  Status Disconnect(EdgeId edge);

  /// Like Get, but does not mark the attribute important: the value is
  /// brought up to date for this read, yet future invalidations will not
  /// eagerly re-evaluate it. For polling reads (e.g. the make facility)
  /// where sticky importance would force evaluation against
  /// partially-updated inputs.
  Result<Value> Peek(InstanceId id, const std::string& attr);

  // --- Undo / versions ---------------------------------------------------

  /// Rolls back the most recently committed transaction.
  Status UndoLast();

  /// Names the current state.
  Result<VersionId> CreateVersion(const std::string& name);

  /// Moves the database to a named version (backwards via undo deltas,
  /// forwards via redo deltas).
  Status CheckoutVersion(const std::string& name);

  // --- Crash recovery ----------------------------------------------------

  /// Rebuilds database state from the write-ahead log of another disk
  /// (typically the platter of a crashed database). Must be called on a
  /// fresh database after LoadSchema with the same schema source the
  /// crashed database used (catalog ids are deterministic). Committed
  /// transactions are redone in order; an entry torn by the crash is
  /// discarded, so the result is exactly the state acknowledged before the
  /// failure. The replayed events are re-journaled to this database's own
  /// WAL, so the recovered database is itself durable.
  Status Recover(const storage::SimulatedDisk& platter);

  /// Writes a checkpoint: a consistent snapshot of the whole database to
  /// the reserved platter region (txn/checkpoint.h), then truncates the
  /// WAL past the checkpoint LSN. Recovery afterwards is load-image +
  /// replay-tail, O(WAL tail) instead of O(history). Crash-safe: a crash
  /// at any write during checkpointing recovers to either the previous or
  /// the new checkpoint, never garbage. Requires the WAL; exclusive lock.
  Status Checkpoint();

  /// Number of transactions in the committed history (the crash-point
  /// harness compares this against its commit oracle).
  uint64_t committed_transactions() const { return versions_.end(); }

  /// The write-ahead log, or null when options.enable_wal is false.
  /// Exposed for the recovery bench (WAL write overhead) and tests.
  const txn::WriteAheadLog* wal() const { return wal_.get(); }
  /// Mutable WAL access for tests (retry policies, truncation state).
  txn::WriteAheadLog* mutable_wal() { return wal_.get(); }

  /// The checkpoint store, or null when the WAL is disabled (checkpoints
  /// are meaningless without a journal to truncate).
  const txn::CheckpointStore* checkpoint_store() const { return ckpt_.get(); }

  /// Bytes retained by all committed deltas (experiment E7).
  size_t delta_bytes() const { return versions_.TotalDeltaBytes(); }
  std::vector<std::string> VersionNames() const {
    return versions_.VersionNames();
  }

  // --- Queries -----------------------------------------------------------

  Result<std::vector<InstanceId>> InstancesOf(const std::string& class_name);

  /// Current members of a predicate subtype; predicates are (re)evaluated
  /// on demand, so the answer reflects dynamic membership migration.
  Result<std::vector<InstanceId>> MembersOfSubtype(const std::string& name);

  Result<ClassId> ClassOf(InstanceId id);

  // --- Shared (concurrent) read path --------------------------------------
  //
  // These entry points may be called from any number of threads holding
  // the *shared* side of the service layer's statement lock. They answer
  // only from already-cached, up-to-date state; a disengaged optional
  // means "fast path miss — retry under the exclusive lock", never an
  // error. An engaged optional carries exactly the result the exclusive
  // path would have produced.

  /// Shared-path Get/Peek. `t` may be null (auto-commit read; a fresh
  /// timestamp is issued for the CC check). `subscribe` distinguishes
  /// Get (true) from Peek (false); a Get of a not-yet-subscribed derived
  /// attribute misses, because subscribing mutates the instance.
  std::optional<Result<Value>> TryGetShared(Transaction* t, InstanceId id,
                                            const std::string& attr,
                                            bool subscribe);

  /// Shared-path InstancesOf. Never misses: the class index is only
  /// reshaped under the exclusive lock.
  Result<std::vector<InstanceId>> InstancesOfShared(
      const std::string& class_name);

  /// Shared-path MembersOfSubtype. Misses when any member's predicate is
  /// out of date (the exclusive path would re-evaluate it).
  std::optional<Result<std::vector<InstanceId>>> TryMembersOfSubtypeShared(
      const std::string& name);

  /// Shared-path SelectWhere. Misses when any touched instance is not
  /// cached or any needed derived value is out of date.
  std::optional<Result<std::vector<InstanceId>>> TrySelectWhereShared(
      const std::string& class_name, const std::string& predicate_source);

  /// Publishes every commit whose WAL batch has been flushed. Exclusive
  /// lock required. Called by the service layer before reading state that
  /// depends on the committed history (version meta-actions, metrics
  /// snapshots, shutdown).
  Status DrainCommits();

  // --- MVCC snapshot read path --------------------------------------------
  //
  // Unlike the shared path above, these entry points take NO statement
  // lock at all (neither side) and never touch the timestamp-ordering
  // marks: they resolve reads against the snapshot index's immutable
  // per-instance version chains, pinned at the latest published commit
  // sequence. They may therefore run concurrently with exclusive
  // mutators. A disengaged optional is a miss — the chain cannot prove
  // the committed value (derived attribute, unproven instance, pruned
  // history, expired snapshot) — and the caller falls back to the locked
  // paths. The caller must pin the schema against concurrent LoadSchema
  // (the executor's schema_mu_), because these consult the catalog.

  /// Registers a snapshot at the latest published commit. Lock-free;
  /// invalid (always-miss) when all snapshot slots are busy.
  txn::SnapshotIndex::Snapshot AcquireSnapshot() {
    return snapshots_.Acquire();
  }

  /// Snapshot-path Get/Peek of an intrinsic attribute.
  std::optional<Result<Value>> TryGetSnapshot(
      const txn::SnapshotIndex::Snapshot& snap, InstanceId id,
      const std::string& attr);

  /// Snapshot-path InstancesOf.
  std::optional<Result<std::vector<InstanceId>>> TryInstancesOfSnapshot(
      const txn::SnapshotIndex::Snapshot& snap,
      const std::string& class_name);

  /// Snapshot-path SelectWhere (intrinsic-only predicates; anything
  /// touching derived state or relationships misses).
  std::optional<Result<std::vector<InstanceId>>> TrySelectWhereSnapshot(
      const txn::SnapshotIndex::Snapshot& snap,
      const std::string& class_name, const std::string& predicate_source);

  /// The snapshot index (tests and metrics).
  const txn::SnapshotIndex& snapshot_index() const { return snapshots_; }

  /// Ad-hoc query: the instances of `class_name` for which the
  /// data-language boolean expression holds (it may read any attribute,
  /// relationship or builtin, like a subtype predicate, but is evaluated
  /// once per call rather than maintained). Example:
  ///   db.SelectWhere("milestone", "late and count(depends_on) > 2")
  Result<std::vector<InstanceId>> SelectWhere(
      const std::string& class_name, const std::string& predicate_source);

  /// Instances related via the named port, in edge order.
  Result<std::vector<InstanceId>> NeighborsOf(InstanceId id,
                                              const std::string& port);

  /// Edges incident to the named port.
  Result<std::vector<EdgeId>> EdgesOf(InstanceId id, const std::string& port);

  size_t instance_count() const { return store_.record_count(); }
  /// Blocks currently holding at least one record (fill-factor metric).
  size_t block_count() const { return store_.block_count(); }

  // --- Maintenance / stats ------------------------------------------------

  /// Clustering reorganisation (paper 2.3): packs instances into blocks
  /// with the configured cluster::Policy (options.cluster_policy), then
  /// recomputes worst-case marking statistics and reseeds the decaying
  /// averages. Closes the current usage-statistics observation period
  /// first. Results land in cluster_stats().
  Status Reorganize();

  /// Closes one usage-statistics observation period: folds the raw
  /// access/crossing counter deltas accumulated since the previous fold
  /// into the decayed counters (DSTC statistic; cluster_decay_alpha).
  /// Called by Reorganize(); callable on its own so a workload's phase
  /// boundaries can be observed without repacking.
  void FoldUsageStatistics();

  const ClusterStats& cluster_stats() const { return cluster_stats_; }
  cluster::PolicyKind cluster_policy() const {
    return options_.cluster_policy;
  }
  void set_cluster_policy(cluster::PolicyKind kind) {
    options_.cluster_policy = kind;
  }

  /// Records a relationship crossing made by an external traversal engine
  /// (the environment layer, workload harnesses): clustering statistics
  /// must see traversals that bypass rule evaluation too.
  void NoteTraversal(EdgeId edge) {
    CACTIS_SERIAL_GUARD(serial_guard_);
    RecordCrossing(edge);
  }

  /// The decayed crossing counter for `edge` (white-box tests, E16).
  double EdgeDecayedUsage(EdgeId edge) {
    return EdgeStatsFor(edge).usage_decay.value();
  }

  /// Writes every dirty block back.
  Status Flush();

  const storage::DiskStats& disk_stats() const { return disk_.stats(); }
  const storage::BufferPoolStats& buffer_stats() const {
    return pool_.stats();
  }
  const EvalStats& eval_stats() const { return engine_->stats(); }
  const sched::SchedulerStats& scheduler_stats() const {
    return scheduler_->stats();
  }
  const txn::ConcurrencyStats& cc_stats() const { return tsm_.stats(); }
  /// The committed-delta history (positions, pruning counters). White-box
  /// access for tests and benchmarks.
  const txn::VersionStore& version_store() const { return versions_; }
  void ResetStats();

  // --- Observability ------------------------------------------------------

  /// One JSON document aggregating every subsystem's counters — disk,
  /// buffer pool, eval engine, scheduler, concurrency control, WAL —
  /// plus database-level gauges and the registry-owned transaction
  /// instruments. Schema documented in DESIGN.md ("Observability").
  std::string SnapshotMetrics() const {
    CACTIS_SERIAL_GUARD(serial_guard_);
    return metrics_.SnapshotJson();
  }

  /// The metrics registry (for registering extra sources/instruments).
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// The span tracer. Disabled unless options.enable_tracing (or
  /// set_tracing) turns it on; events drain via trace()->ToJson().
  obs::TraceSink* trace() { return &trace_; }
  const obs::TraceSink& trace() const { return trace_; }
  void set_tracing(bool on) { trace_.set_enabled(on); }

  const DatabaseOptions& options() const { return options_; }
  void set_policy(sched::SchedulingPolicy policy) {
    options_.policy = policy;
    scheduler_->set_policy(policy);
  }
  void set_adaptive_stats(bool on) { options_.adaptive_stats = on; }

  /// Direct access for tests and benchmarks.
  storage::SimulatedDisk* disk() { return &disk_; }
  storage::BufferPool* buffer_pool() { return &pool_; }

  /// Fetches the live decoded instance (no access-count side effect).
  /// Exposed for the environment layer and white-box tests; the returned
  /// pointer is valid only until the next database call.
  Result<Instance*> FetchInstancePublic(InstanceId id);

  /// The scheduler's current expected-I/O estimate for values requested
  /// across `edge` (the per-relationship decaying average of section 2.3),
  /// and the worst-case estimate gathered at the last reorganisation.
  /// Exposed for experiment E6 and white-box tests.
  double EdgeExpectedIo(EdgeId edge) { return EdgeStatsFor(edge).decay.value(); }
  double EdgeWorstCaseIo(EdgeId edge) { return EdgeStatsFor(edge).worst_case; }
  uint64_t EdgeUsageCount(EdgeId edge) { return EdgeStatsFor(edge).usage; }

  /// External-change hook used by the environment layer: marks a derived
  /// attribute (by name) of an instance out of date, as if an intrinsic it
  /// depends on had changed outside the database's view.
  Status InvalidateAttribute(InstanceId id, const std::string& attr);

  // --- Introspection (service layer `explain`) ----------------------------

  /// What touching one attribute would involve, read from catalog and
  /// cache state. No *logical* side effects: no marks, no importance
  /// subscription, no evaluation, no concurrency-control interaction —
  /// though inspecting a cold instance faults its block in (a plain
  /// read), so `resident`/`cached` report the state found on entry.
  struct AttrExplainInfo {
    std::string class_name;
    std::string attr_kind;  // "intrinsic" | "derived" | "export" |
                            // "constraint"
    uint64_t block = 0;     // disk block holding the instance record
    bool resident = false;  // that block was in the buffer pool on entry
    bool cached = false;    // a decoded copy was in the object cache
    bool out_of_date = false;  // derived: evaluation pending
    bool subscribed = false;   // sticky importance from a previous get
    /// Rule dependencies, as "attr", "port.value" or "structure(port)".
    std::vector<std::string> depends_on;
    /// Local attributes that a write here would mark out of date.
    std::vector<std::string> dependents;
  };
  Result<AttrExplainInfo> ExplainAttr(InstanceId id, const std::string& attr);

  // --- Distribution hooks (src/dist; paper section 5) ---------------------

  /// Creates an instance without establishing its constraints or subtype
  /// predicates: the path used for mirror instances of remote objects
  /// (their derived values, constraints included, are fetched from the
  /// owning site on demand) and for bulk loads that validate afterwards.
  Result<InstanceId> CreateDetached(const std::string& class_name);

  /// Value source consulted instead of the attribute's rule: attr index ->
  /// value. Used for mirrors of instances owned by another site.
  using MirrorResolver = std::function<Result<Value>(uint32_t attr_index)>;

  /// Registers `id` as a mirror: whenever one of its derived attributes
  /// must be (re)evaluated, `resolver` supplies the value.
  void RegisterMirror(InstanceId id, MirrorResolver resolver) {
    mirror_resolvers_[id] = std::move(resolver);
  }
  void UnregisterMirror(InstanceId id) { mirror_resolvers_.erase(id); }
  bool IsMirror(InstanceId id) const {
    return mirror_resolvers_.contains(id);
  }

  /// Change listener: invoked after an intrinsic attribute is written and
  /// whenever a derived attribute transitions to out-of-date. The
  /// distribution layer uses it to ship invalidations/pushes to remote
  /// mirrors. The listener must not re-enter this database.
  using ChangeListener = std::function<void(InstanceId, uint32_t attr_index)>;
  void SetChangeListener(ChangeListener listener) {
    change_listener_ = std::move(listener);
  }

 private:
  friend class Transaction;
  friend class EvalEngine;
  friend class RuleContext;

  struct EdgeInfo {
    InstanceId from;
    uint32_t from_port = 0;
    InstanceId to;
    uint32_t to_port = 0;
  };

  struct EdgeStatEntry {
    sched::DecayingAverage decay;
    uint64_t usage = 0;        // crossings (clustering statistic)
    double worst_case = 1.0;   // cluster-time marking estimate
    // DSTC statistic: crossings per observation period, decayed. Folded
    // from `usage` deltas by FoldUsageStatistics.
    sched::DecayingAverage usage_decay;
    uint64_t usage_at_last_fold = 0;
    EdgeStatEntry(double alpha, double cluster_alpha)
        : decay(alpha, 1.0), usage_decay(cluster_alpha, 0.0) {}
  };

  // DSTC statistic per instance: accesses per observation period,
  // decayed. Folded from access_counts_ deltas by FoldUsageStatistics.
  struct AccessDecayEntry {
    sched::DecayingAverage decay;
    uint64_t at_last_fold = 0;
    explicit AccessDecayEntry(double cluster_alpha)
        : decay(cluster_alpha, 0.0) {}
  };

  // Operation wrappers: validate txn state, run, abort-on-violation.
  Result<InstanceId> OpCreate(Transaction* t, const std::string& class_name);
  Status OpDelete(Transaction* t, InstanceId id);
  Status OpSet(Transaction* t, InstanceId id, const std::string& attr,
               Value value);
  Result<Value> OpGet(Transaction* t, InstanceId id, const std::string& attr,
                      bool subscribe = true);
  Result<EdgeId> OpConnect(Transaction* t, InstanceId a,
                           const std::string& a_port, InstanceId b,
                           const std::string& b_port);
  Status OpDisconnect(Transaction* t, EdgeId edge);
  Status OpCommit(Transaction* t);
  Status OpUndo(Transaction* t);

  // Split-phase commit (see Transaction::StageCommit). A commit whose
  // delta must be journaled is staged in the WAL's group-commit queue and
  // parked in pending_commits_; it is published (version store append +
  // counters + trace) only once its batch is durable, in ticket order, so
  // the version history always matches the WAL.
  Result<uint64_t> CommitStage(Transaction* t);
  Status CommitPublish(Transaction* t, uint64_t ticket, Status durable);
  /// Publishes pending commits with ticket <= `ticket`, front to back.
  /// Entries whose WAL flush failed are dropped and counted as aborts
  /// (their owner's ForgetTicket happens in CommitPublish).
  void PublishDurableUpTo(uint64_t ticket);

  /// Core mutators (log + mutate + mark; no importance evaluation, no
  /// abort handling). `log` is null during undo/redo replay.
  Result<InstanceId> DoCreate(txn::TransactionDelta* log,
                              const schema::ObjectClass& cls,
                              InstanceId forced_id);
  Status DoDelete(txn::TransactionDelta* log, Transaction* t, InstanceId id);
  Status DoSet(txn::TransactionDelta* log, Transaction* t, InstanceId id,
               size_t attr_index, Value value);
  Result<EdgeId> DoConnect(txn::TransactionDelta* log, InstanceId from,
                           uint32_t from_port, InstanceId to, uint32_t to_port,
                           EdgeId forced_id);
  Status DoDisconnect(txn::TransactionDelta* log, EdgeId edge);

  /// Rolls back every record of `delta`, newest first (marking included),
  /// then re-evaluates important attributes in replay mode.
  Status ApplyUndo(const txn::TransactionDelta& delta);
  /// Replays a delta forwards.
  Status ApplyRedo(const txn::TransactionDelta& delta);

  /// Appends an event to the WAL (no-op when the WAL is disabled). Commit
  /// calls this *before* applying to the version store; meta-actions call
  /// it after they succeed.
  Status JournalEvent(const txn::WalEvent& event);
  /// UndoLast without journaling (shared by UndoLast and Recover).
  Status UndoLastInternal();
  /// Builds the checkpoint image from live state: id counters, a
  /// bootstrap delta recreating every instance/attribute/edge, and the
  /// version-store state. Exclusive lock, commits drained, WAL idle.
  Result<txn::CheckpointImage> BuildCheckpointImage();
  /// Replays a checkpoint image into this (fresh) database.
  Status LoadCheckpointImage(const txn::CheckpointImage& image);
  /// Moves history to `target` by undo/redo, without journaling (shared by
  /// CheckoutVersion and Recover).
  Status CheckoutPosition(uint64_t target);

  /// Appends a committed delta to the version store AND mirrors it into
  /// the snapshot index (publishing the new sequence), then prunes old
  /// history when it outgrew the configured threshold. The single entry
  /// point for committed history — every former versions_.Append call
  /// site routes through here so chains never diverge from the log.
  uint64_t AppendCommitted(txn::TransactionDelta delta);
  /// Mirrors one committed delta's records into the snapshot index.
  void IngestDeltaIntoSnapshots(const txn::TransactionDelta& delta,
                                uint64_t seq, bool track_membership = true);
  /// Full intrinsic default state of a fresh `cls` instance (kCreate
  /// chain nodes).
  static std::vector<std::pair<size_t, Value>> IntrinsicDefaults(
      const schema::ObjectClass& cls);
  void MaybePruneVersions();

  /// Turns a non-OK status from an operation into a transaction abort when
  /// it reflects a consistency failure (constraint violation or
  /// concurrency conflict).
  Status MaybeAbort(Transaction* t, Status s);
  /// Like MaybeAbort, but every failure aborts (used for post-mutation
  /// importance propagation, whose failure means inconsistency).
  Status AbortOnError(Transaction* t, Status s);
  Status RollbackTxn(Transaction* t);

  // Shared helpers (used by the engine and rule contexts too).
  Result<Instance*> FetchInstance(InstanceId id, bool count_access = true);
  Result<const schema::ObjectClass*> ClassOfInstancePtr(InstanceId id);
  void UpdateSubtypeMembership(SubtypeId subtype, InstanceId instance,
                               bool member);
  Status WriteInstance(const Instance& inst) {
    return cache_.WriteThrough(inst);
  }
  Status CheckRead(Transaction* t, InstanceId id);
  Status CheckWrite(Transaction* t, InstanceId id);
  // Drops the txn's pending-writer marks (first-updater-wins) once its
  // replay order is fixed (commit staged) or moot (rolled back).
  void ReleaseCcWrites(Transaction* t);
  EdgeStatEntry& EdgeStatsFor(EdgeId id);
  void RecordCrossing(EdgeId id) {
    ++EdgeStatsFor(id).usage;
    // Cumulative crossing count across all edges: the denominator of the
    // observed blocks/traversal figure the drift watchdog samples.
    ++traversal_crossings_;
  }

  Status RecomputeWorstCaseStats();

  /// Migrates every live instance of an extended class (adds the new
  /// slots) and establishes newly-appended constraints / predicates.
  Status MigrateLiveInstances(const schema::ObjectClass& cls);

  /// Coerces `value` to the declared type (int<->real<->time promotions).
  static Result<Value> CoerceToType(Value value, ValueType declared);

  /// Called from every abort path (explicit undo, consistency abort,
  /// destructor rollback) so the counter and trace agree on what an
  /// abort is.
  void NoteTxnAborted(TxnId id);

  struct PendingCommit {
    uint64_t ticket;
    TxnId txn;
    txn::TransactionDelta delta;
  };

  DatabaseOptions options_;
  // Detects unsynchronized concurrent entry: exclusive entry points
  // conflict with everything, shared entry points only with exclusive
  // ones (see the class comment; entry points in database.cc).
  mutable ThreadSharedGuard serial_guard_;
  // Declared before the storage stack: components hold pointers into the
  // registry and trace sink, so these must outlive them.
  obs::MetricsRegistry metrics_;
  obs::TraceSink trace_;
  storage::SimulatedDisk disk_;
  storage::BufferPool pool_;
  storage::RecordStore store_;
  schema::Catalog catalog_;
  lang::BuiltinRegistry builtins_;
  ObjectCache cache_;
  std::unique_ptr<sched::ChunkScheduler> scheduler_;
  std::unique_ptr<EvalEngine> engine_;
  txn::TimestampManager tsm_;
  txn::VersionStore versions_;
  txn::SnapshotIndex snapshots_;
  std::unique_ptr<txn::WriteAheadLog> wal_;
  std::unique_ptr<txn::CheckpointStore> ckpt_;
  // Staged-but-unpublished commits, in WAL ticket order.
  std::deque<PendingCommit> pending_commits_;

  // Registry-owned transaction instruments (see ctor for registration).
  obs::Counter* txn_begun_ = nullptr;
  obs::Counter* txn_committed_ = nullptr;
  obs::Counter* txn_aborted_ = nullptr;
  obs::Histogram* commit_delta_records_ = nullptr;

  uint64_t next_instance_ = 0;
  uint64_t next_txn_ = 0;
  uint64_t next_edge_ = 0;

  std::unordered_map<EdgeId, EdgeInfo> edges_;
  std::unordered_map<ClassId, std::set<InstanceId>> instances_by_class_;
  std::unordered_map<SubtypeId, std::set<InstanceId>> subtype_members_;
  std::unordered_map<EdgeId, EdgeStatEntry> edge_stats_;
  std::unordered_map<InstanceId, uint64_t> access_counts_;
  std::unordered_map<InstanceId, AccessDecayEntry> access_decay_;
  ClusterStats cluster_stats_;
  // Lifetime crossings across all edges (exclusive-path only, like the
  // per-edge usage statistics); exported as cluster.traversal_crossings.
  uint64_t traversal_crossings_ = 0;
  std::unordered_map<InstanceId, MirrorResolver> mirror_resolvers_;
  ChangeListener change_listener_;
};

}  // namespace cactis::core

#endif  // CACTIS_CORE_DATABASE_H_
