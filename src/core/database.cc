#include "core/database.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <unordered_set>

#include "lang/interpreter.h"
#include "lang/parser.h"
#include "schema/schema_loader.h"

namespace cactis::core {

// --- Transaction -----------------------------------------------------------

Transaction::~Transaction() {
  if (open_) {
    CACTIS_SERIAL_GUARD(db_->serial_guard_);
    (void)db_->RollbackTxn(this);
    open_ = false;
    aborted_ = true;
  }
}

Result<InstanceId> Transaction::Create(const std::string& class_name) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpCreate(this, class_name);
}
Status Transaction::Delete(InstanceId id) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpDelete(this, id);
}
Status Transaction::Set(InstanceId id, const std::string& attr, Value value) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpSet(this, id, attr, std::move(value));
}
Result<Value> Transaction::Get(InstanceId id, const std::string& attr) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpGet(this, id, attr);
}
Result<EdgeId> Transaction::Connect(InstanceId a, const std::string& a_port,
                                    InstanceId b, const std::string& b_port) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpConnect(this, a, a_port, b, b_port);
}
Status Transaction::Disconnect(EdgeId edge) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpDisconnect(this, edge);
}
Status Transaction::Commit() {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpCommit(this);
}
Result<uint64_t> Transaction::StageCommit() {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->CommitStage(this);
}
Status Transaction::WaitCommitDurable(uint64_t ticket) {
  // Deliberately no guard: this blocks on the WAL flush and is called
  // without the statement lock, concurrent with other statements.
  if (ticket == 0) return Status::OK();
  return db_->wal_->WaitDurable(ticket);
}
Status Transaction::FinishCommit(uint64_t ticket, Status durable) {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->CommitPublish(this, ticket, std::move(durable));
}
Status Transaction::Undo() {
  CACTIS_SERIAL_GUARD(db_->serial_guard_);
  return db_->OpUndo(this);
}

// --- Construction ----------------------------------------------------------

Database::Database(DatabaseOptions options)
    : options_(options),
      metrics_(options.enable_metrics),
      trace_(options.trace_capacity),
      disk_(options.block_size),
      pool_(&disk_, options.buffer_capacity),
      store_(&disk_, &pool_),
      cache_(&catalog_, &store_) {
  builtins_ = lang::BuiltinRegistry::WithDefaults();
  scheduler_ =
      std::make_unique<sched::ChunkScheduler>(&store_, options_.policy);
  engine_ = std::make_unique<EvalEngine>(this);
  pool_.AddListener(&cache_);
  pool_.AddListener(scheduler_.get());
  trace_.set_enabled(options_.enable_tracing);
  pool_.set_trace_sink(&trace_);
  if (options_.enable_wal) {
    // Nothing has touched the disk yet, so the WAL superblock becomes the
    // first allocated block — the address Recover() looks for.
    wal_ = std::make_unique<txn::WriteAheadLog>(&disk_);
    if (!wal_->Initialize().ok()) {
      // Block size too small for a WAL chunk: run without durability
      // rather than with a log that cannot hold an entry.
      wal_.reset();
      options_.enable_wal = false;
    } else {
      wal_->set_trace_sink(&trace_);
      // Reserve the checkpoint slot blocks immediately (allocate-only, no
      // writes): they must land at the conventional addresses right after
      // the WAL's blocks, and a fresh platter carries no checkpoint until
      // the first Checkpoint() call.
      ckpt_ = std::make_unique<txn::CheckpointStore>(&disk_);
      if (!ckpt_->AllocateSlots().ok()) ckpt_.reset();
    }
  }

  // Every subsystem's stats struct registers itself as a snapshot source:
  // the counting stays in the struct, the registry only reads it when a
  // snapshot is taken.
  metrics_.RegisterSource(
      "disk", [this](obs::MetricsGroup* g) { disk_.stats().ExportTo(g); });
  metrics_.RegisterSource("buffer_pool", [this](obs::MetricsGroup* g) {
    pool_.stats().ExportTo(g);
  });
  metrics_.RegisterSource("eval", [this](obs::MetricsGroup* g) {
    engine_->stats().ExportTo(g);
  });
  metrics_.RegisterSource("scheduler", [this](obs::MetricsGroup* g) {
    scheduler_->stats().ExportTo(g);
  });
  metrics_.RegisterSource("concurrency", [this](obs::MetricsGroup* g) {
    tsm_.stats().ExportTo(g);
  });
  metrics_.RegisterSource("wal", [this](obs::MetricsGroup* g) {
    if (wal_ != nullptr) {
      g->AddGauge("enabled", 1);
      wal_->stats().ExportTo(g);
    } else {
      g->AddGauge("enabled", 0);
      txn::WalStats{}.ExportTo(g);
    }
  });
  metrics_.RegisterSource("checkpoint", [this](obs::MetricsGroup* g) {
    if (ckpt_ != nullptr) {
      g->AddGauge("enabled", 1);
      ckpt_->stats().ExportTo(g);
    } else {
      g->AddGauge("enabled", 0);
      txn::CheckpointStats{}.ExportTo(g);
    }
  });
  metrics_.RegisterSource("database", [this](obs::MetricsGroup* g) {
    g->AddGauge("instances", static_cast<double>(store_.record_count()));
    g->AddGauge("allocated_blocks",
                static_cast<double>(disk_.num_allocated_blocks()));
    g->AddGauge("resident_blocks",
                static_cast<double>(pool_.resident_blocks()));
    g->AddGauge("committed_transactions",
                static_cast<double>(versions_.end()));
    g->AddGauge("delta_bytes", static_cast<double>(delta_bytes()));
    g->AddCounter("pruned_deltas", versions_.pruned_deltas());
    // The trace ring drops oldest events silently once full; surface the
    // loss so a drained trace is never mistaken for a complete one.
    g->AddCounter("trace_events_total", trace_.total_recorded());
    g->AddCounter("trace_dropped_events", trace_.dropped());
  });
  metrics_.RegisterSource("snapshot", [this](obs::MetricsGroup* g) {
    snapshots_.ExportTo(g);
  });
  metrics_.RegisterSource("cluster", [this](obs::MetricsGroup* g) {
    g->AddJson("policy",
               "\"" +
                   std::string(cluster::PolicyKindName(
                       options_.cluster_policy)) +
                   "\"");
    g->AddGauge("decay_alpha", options_.cluster_decay_alpha);
    g->AddCounter("traversal_crossings", traversal_crossings_);
    cluster_stats_.ExportTo(g);
  });

  txn_begun_ = metrics_.GetCounter("txn.begun");
  txn_committed_ = metrics_.GetCounter("txn.committed");
  txn_aborted_ = metrics_.GetCounter("txn.aborted");
  commit_delta_records_ = metrics_.GetHistogram("txn.commit_delta_records");
}

Database::~Database() = default;

// --- Schema ----------------------------------------------------------------

Status Database::LoadSchema(std::string_view source) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  CACTIS_RETURN_IF_ERROR(schema::LoadSchema(&catalog_, source).status());
  // Open a membership chain per class so an empty extent is provable on
  // the snapshot path ("no members" vs "never tracked").
  for (const schema::ObjectClass* cls : catalog_.AllClasses()) {
    snapshots_.EnsureMembership(cls->id());
  }
  return Status::OK();
}


/// After a class is replaced (extension), migrate every live instance so
/// its slot vector matches, and establish any newly-appended important
/// attributes (constraints, subtype predicates) on each of them.
Status Database::MigrateLiveInstances(const schema::ObjectClass& cls) {
  const std::set<InstanceId>& instances = instances_by_class_[cls.id()];
  for (InstanceId id : instances) {
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
    size_t old_count = inst->attrs().size();
    inst->MigrateTo(cls);
    CACTIS_RETURN_IF_ERROR(cache_.WriteThrough(*inst));
    for (size_t i = old_count; i < cls.attributes().size(); ++i) {
      if (cls.attributes()[i].intrinsically_important()) {
        engine_->QueueImportant(AttrSite{id, static_cast<uint32_t>(i)});
      }
    }
  }
  return engine_->EvaluateImportant(nullptr);
}

Result<size_t> Database::ExtendClassWithDerived(const std::string& class_name,
                                                const std::string& attr_name,
                                                ValueType type,
                                                const std::string& rule_source) {
  CACTIS_ASSIGN_OR_RETURN(size_t index,
                          catalog_.ExtendClassWithDerived(
                              class_name, attr_name, type, rule_source));
  CACTIS_RETURN_IF_ERROR(
      MigrateLiveInstances(*catalog_.FindClass(class_name)));
  return index;
}

Result<size_t> Database::ExtendClassWithConstraint(
    const std::string& class_name, const std::string& constraint_name,
    const std::string& predicate_source, const std::string& recovery_source) {
  CACTIS_ASSIGN_OR_RETURN(
      size_t index,
      catalog_.ExtendClassWithConstraint(class_name, constraint_name,
                                         predicate_source, recovery_source));
  CACTIS_RETURN_IF_ERROR(
      MigrateLiveInstances(*catalog_.FindClass(class_name)));
  return index;
}

Result<SubtypeId> Database::DefineSubtype(const std::string& subtype_name,
                                          const std::string& class_name,
                                          const std::string& predicate_source) {
  CACTIS_ASSIGN_OR_RETURN(SubtypeId id,
                          catalog_.DefineSubtype(subtype_name, class_name,
                                                 predicate_source));
  CACTIS_RETURN_IF_ERROR(
      MigrateLiveInstances(*catalog_.FindClass(class_name)));
  return id;
}

// --- Transactions ----------------------------------------------------------

std::unique_ptr<Transaction> Database::Begin() {
  CACTIS_SERIAL_GUARD(serial_guard_);
  TxnId id(++next_txn_);
  uint64_t ts = tsm_.BeginTransaction();
  txn_begun_->Increment();
  trace_.Record(obs::SpanKind::kTxnBegin, id.value);
  auto t = std::unique_ptr<Transaction>(new Transaction(this, id, ts));
  t->delta_.txn = id;
  return t;
}

void Database::NoteTxnAborted(TxnId id) {
  txn_aborted_->Increment();
  trace_.Record(obs::SpanKind::kTxnAbort, id.value);
}

Status Database::MaybeAbort(Transaction* t, Status s) {
  if (s.ok()) return s;
  if (s.IsConstraintViolation() || s.IsConflict()) {
    (void)RollbackTxn(t);
    t->open_ = false;
    t->aborted_ = true;
    return Status::TransactionAborted("transaction " +
                                      std::to_string(t->id_.value) +
                                      " aborted: " + s.ToString());
  }
  return s;
}

Status Database::AbortOnError(Transaction* t, Status s) {
  // Importance propagation after a mutation must succeed: a rule that
  // cannot evaluate (type error, missing value, cycle) means the update
  // left the database inconsistent, so the whole transaction rolls back.
  if (s.ok()) return s;
  (void)RollbackTxn(t);
  t->open_ = false;
  t->aborted_ = true;
  return Status::TransactionAborted("transaction " +
                                    std::to_string(t->id_.value) +
                                    " aborted: " + s.ToString());
}

Status Database::RollbackTxn(Transaction* t) {
  // Every abort path funnels through here (consistency aborts, explicit
  // Undo, destructor rollback of an open transaction).
  NoteTxnAborted(t->id_);
  ReleaseCcWrites(t);
  return ApplyUndo(t->delta_);
}

static Status RequireOpen(const Transaction* t) {
  if (!t->open()) {
    return Status::TransactionAborted(
        "transaction " + std::to_string(t->id().value) +
        (t->aborted() ? " was aborted" : " is already committed"));
  }
  return Status::OK();
}

Result<InstanceId> Database::OpCreate(Transaction* t,
                                      const std::string& class_name) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  const schema::ObjectClass* cls = catalog_.FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("unknown object class '" + class_name + "'");
  }
  CACTIS_ASSIGN_OR_RETURN(InstanceId id,
                          DoCreate(&t->delta_, *cls, InstanceId()));
  // Register the creator as the instance's pending writer: another
  // transaction must not write it and journal ahead of the create entry.
  CACTIS_RETURN_IF_ERROR(CheckWrite(t, id));
  // Establish the new instance's constraints and subtype predicates.
  for (size_t idx : cls->constraint_attrs()) {
    engine_->QueueImportant(AttrSite{id, static_cast<uint32_t>(idx)});
  }
  Status s = AbortOnError(t, engine_->EvaluateImportant(t));
  if (!s.ok()) return s;
  return id;
}

Status Database::OpDelete(Transaction* t, InstanceId id) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  CACTIS_RETURN_IF_ERROR(CheckWrite(t, id));
  CACTIS_RETURN_IF_ERROR(DoDelete(&t->delta_, t, id));
  return AbortOnError(t, engine_->EvaluateImportant(t));
}

Status Database::OpSet(Transaction* t, InstanceId id, const std::string& attr,
                       Value value) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  size_t idx = cls->AttrIndexOf(attr);
  if (idx == SIZE_MAX) {
    return Status::NotFound("class " + cls->name() + " has no attribute '" +
                            attr + "'");
  }
  if (cls->attributes()[idx].is_derived()) {
    return Status::InvalidArgument(
        "attribute '" + attr + "' is derived; only intrinsic attributes "
        "may be given new values directly");
  }
  Status cc = MaybeAbort(t, CheckWrite(t, id));
  if (!cc.ok()) return cc;
  CACTIS_RETURN_IF_ERROR(DoSet(&t->delta_, t, id, idx, std::move(value)));
  return AbortOnError(t, engine_->EvaluateImportant(t));
}

Result<Value> Database::OpGet(Transaction* t, InstanceId id,
                              const std::string& attr, bool subscribe) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  size_t idx = cls->AttrIndexOf(attr);
  if (idx == SIZE_MAX) {
    return Status::NotFound("class " + cls->name() + " has no attribute '" +
                            attr + "'");
  }
  Status cc = MaybeAbort(t, CheckRead(t, id));
  if (!cc.ok()) return cc;

  const schema::AttributeDef& def = cls->attributes()[idx];
  AttrSite site{id, static_cast<uint32_t>(idx)};
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id));
  if (!def.is_derived()) return inst->attrs()[idx].value;

  // "If the user explicitly requests the value of attributes (i.e. makes a
  // query) they become important" — sticky subscription.
  if (subscribe && !inst->attrs()[idx].subscribed) {
    inst->attrs()[idx].subscribed = true;
    CACTIS_RETURN_IF_ERROR(WriteInstance(*inst));
  }
  CACTIS_ASSIGN_OR_RETURN(inst, FetchInstance(id, /*count_access=*/false));
  if (!inst->attrs()[idx].out_of_date) return inst->attrs()[idx].value;

  Result<Value> v = engine_->DemandValue(site, t, /*user_request=*/true);
  if (!v.ok()) {
    Status s = MaybeAbort(t, v.status());
    return s.ok() ? v : s;
  }
  return v;
}

Result<EdgeId> Database::OpConnect(Transaction* t, InstanceId a,
                                   const std::string& a_port, InstanceId b,
                                   const std::string& b_port) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* a_cls,
                          ClassOfInstancePtr(a));
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* b_cls,
                          ClassOfInstancePtr(b));
  size_t ap = a_cls->PortIndexOf(a_port);
  size_t bp = b_cls->PortIndexOf(b_port);
  if (ap == SIZE_MAX) {
    return Status::NotFound("class " + a_cls->name() +
                            " has no relationship '" + a_port + "'");
  }
  if (bp == SIZE_MAX) {
    return Status::NotFound("class " + b_cls->name() +
                            " has no relationship '" + b_port + "'");
  }
  const schema::PortDef& apd = a_cls->ports()[ap];
  const schema::PortDef& bpd = b_cls->ports()[bp];
  if (apd.rel_type != bpd.rel_type) {
    return Status::InvalidArgument(
        "ports '" + a_port + "' and '" + b_port +
        "' belong to different relationship types");
  }
  if (apd.side == bpd.side) {
    return Status::InvalidArgument(
        "a relationship must connect a plug to a socket ('" + a_port +
        "' and '" + b_port + "' are both " +
        (apd.side == schema::Side::kPlug ? "plugs" : "sockets") + ")");
  }
  auto check_single = [this](InstanceId id, const schema::PortDef& pd,
                             size_t port) -> Status {
    if (pd.cardinality != schema::Cardinality::kSingle) return Status::OK();
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id));
    if (!inst->ports()[port].empty()) {
      return Status::InvalidArgument("single relationship '" + pd.name +
                                     "' of instance " +
                                     std::to_string(id.value) +
                                     " is already connected");
    }
    return Status::OK();
  };
  CACTIS_RETURN_IF_ERROR(check_single(a, apd, ap));
  CACTIS_RETURN_IF_ERROR(check_single(b, bpd, bp));

  Status cc = MaybeAbort(t, CheckWrite(t, a));
  if (!cc.ok()) return cc;
  cc = MaybeAbort(t, CheckWrite(t, b));
  if (!cc.ok()) return cc;

  CACTIS_ASSIGN_OR_RETURN(
      EdgeId edge, DoConnect(&t->delta_, a, static_cast<uint32_t>(ap), b,
                             static_cast<uint32_t>(bp), EdgeId()));
  Status s = AbortOnError(t, engine_->EvaluateImportant(t));
  if (!s.ok()) return s;
  return edge;
}

Status Database::OpDisconnect(Transaction* t, EdgeId edge) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  auto it = edges_.find(edge);
  if (it == edges_.end()) {
    return Status::NotFound("unknown relationship edge " +
                            std::to_string(edge.value));
  }
  Status cc = MaybeAbort(t, CheckWrite(t, it->second.from));
  if (!cc.ok()) return cc;
  cc = MaybeAbort(t, CheckWrite(t, it->second.to));
  if (!cc.ok()) return cc;
  CACTIS_RETURN_IF_ERROR(DoDisconnect(&t->delta_, edge));
  return AbortOnError(t, engine_->EvaluateImportant(t));
}

Status Database::OpCommit(Transaction* t) {
  CACTIS_ASSIGN_OR_RETURN(uint64_t ticket, CommitStage(t));
  // Write-ahead: the delta must be on disk before the commit is
  // acknowledged. Under the exclusive statement lock this wait is safe —
  // the flush leader never takes the statement lock.
  Status durable = ticket == 0 ? Status::OK() : wal_->WaitDurable(ticket);
  return CommitPublish(t, ticket, std::move(durable));
}

Result<uint64_t> Database::CommitStage(Transaction* t) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  if (t->delta_.empty() || !wal_) {
    // Nothing to journal: the commit completes right here; ticket 0 tells
    // the caller there is nothing to wait for.
    t->open_ = false;
    ReleaseCcWrites(t);
    txn_committed_->Increment();
    commit_delta_records_->Record(t->delta_.records.size());
    trace_.Record(obs::SpanKind::kTxnCommit, t->id_.value,
                  t->delta_.records.size());
    if (!t->delta_.empty()) {
      AppendCommitted(std::move(t->delta_));
      t->delta_ = txn::TransactionDelta{};
    }
    return uint64_t{0};
  }
  uint64_t ticket = wal_->Stage(txn::WalEvent::Commit(t->delta_));
  t->open_ = false;
  // The WAL ticket is fixed now: any later writer of the same instances
  // will stage after us, so replay order matches apply order and the
  // pending-writer marks can be released.
  ReleaseCcWrites(t);
  pending_commits_.push_back(
      PendingCommit{ticket, t->id_, std::move(t->delta_)});
  t->delta_ = txn::TransactionDelta{};
  return ticket;
}

Status Database::CommitPublish(Transaction* t, uint64_t ticket,
                               Status durable) {
  if (ticket == 0) return durable;
  if (!durable.ok()) {
    // The batch never reached disk: every transaction it carried is NOT
    // committed. Undo their in-memory effects — newest first, so
    // overlapping writes restore correctly — because the server keeps
    // serving reads from this state in degraded mode and may resume
    // committing after a health probe, so it must reflect only durable
    // commits. The WAL wedges itself after a failed flush (no later
    // batch lands on the platter until the probe clears it), which keeps
    // this rollback race-free against succeeding commits. The sweep also
    // rolls back OTHER sessions' entries from the same failed flush;
    // whoever drops an entry counts its abort, exactly once.
    auto it = pending_commits_.end();
    while (it != pending_commits_.begin()) {
      --it;
      if (it->ticket != ticket && !wal_->TicketFailed(it->ticket)) continue;
      NoteTxnAborted(it->txn);
      (void)ApplyUndo(it->delta);
      it = pending_commits_.erase(it);
    }
    wal_->ForgetTicket(ticket);
    t->aborted_ = true;
    return durable;
  }
  PublishDurableUpTo(ticket);
  return Status::OK();
}

void Database::PublishDurableUpTo(uint64_t ticket) {
  while (!pending_commits_.empty() &&
         pending_commits_.front().ticket <= ticket) {
    PendingCommit pc = std::move(pending_commits_.front());
    pending_commits_.pop_front();
    if (wal_->TicketFailed(pc.ticket)) {
      // The batch never reached disk: not committed — undo its in-memory
      // effects, as CommitPublish does (the owner has not observed the
      // failure yet; whoever drops the entry rolls it back). The failure
      // record is the owner's to clear (its WaitDurable must still
      // observe it), so no ForgetTicket.
      NoteTxnAborted(pc.txn);
      (void)ApplyUndo(pc.delta);
      continue;
    }
    txn_committed_->Increment();
    commit_delta_records_->Record(pc.delta.records.size());
    trace_.Record(obs::SpanKind::kTxnCommit, pc.txn.value,
                  pc.delta.records.size());
    AppendCommitted(std::move(pc.delta));
  }
}

uint64_t Database::AppendCommitted(txn::TransactionDelta delta) {
  // Appending below the end truncates the redo tail (VersionStore) and
  // must expire those sequence numbers in the snapshot index too before
  // they get reissued.
  if (versions_.position() < versions_.end()) {
    snapshots_.TruncateAfter(versions_.position());
  }
  uint64_t seq = versions_.Append(std::move(delta));
  IngestDeltaIntoSnapshots(versions_.history().back(), seq);
  // Release-publish AFTER the chain nodes exist: a snapshot acquired at
  // `seq` must find every node it implies.
  snapshots_.SetLatestPublished(seq);
  MaybePruneVersions();
  return seq;
}

void Database::IngestDeltaIntoSnapshots(const txn::TransactionDelta& delta,
                                        uint64_t seq,
                                        bool track_membership) {
  for (const txn::DeltaRecord& r : delta.records) {
    switch (r.op) {
      case txn::DeltaOp::kSetAttr:
        snapshots_.RecordWrite(r.instance, seq, r.attr_index, r.new_value);
        break;
      case txn::DeltaOp::kCreate: {
        // Creation installs the class defaults; same-transaction writes
        // follow as kSetAttr records and layer on top within `seq`.
        const schema::ObjectClass* cls = catalog_.GetClass(r.class_id);
        if (cls == nullptr) break;  // unknown class: reads will fall back
        snapshots_.RecordCreate(r.instance, seq, r.class_id,
                                IntrinsicDefaults(*cls), track_membership);
        break;
      }
      case txn::DeltaOp::kDelete:
        snapshots_.RecordDelete(r.instance, seq, r.class_id,
                                track_membership);
        break;
      case txn::DeltaOp::kConnect:
      case txn::DeltaOp::kDisconnect:
        // Relationship structure is not chained: port reads and derived
        // values always fall back to the locked paths.
        break;
    }
  }
}

std::vector<std::pair<size_t, Value>> Database::IntrinsicDefaults(
    const schema::ObjectClass& cls) {
  Instance fresh = Instance::Create(InstanceId(1), cls);
  std::vector<std::pair<size_t, Value>> out;
  const auto& attrs = cls.attributes();
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].kind != schema::AttrKind::kIntrinsic) continue;
    out.emplace_back(i, fresh.attrs()[i].value);
  }
  return out;
}

void Database::MaybePruneVersions() {
  size_t threshold = options_.version_prune_threshold;
  if (threshold == 0) return;
  if (versions_.end() - versions_.base() <= threshold) return;
  uint64_t slack = options_.version_prune_slack;
  uint64_t floor = versions_.end() > slack ? versions_.end() - slack : 0;
  floor = std::min(floor, snapshots_.OldestLiveSnapshot());
  floor = std::min(floor, versions_.OldestNamedPosition());
  floor = std::min(floor, versions_.position());
  if (versions_.PruneTo(floor) == 0) return;
  snapshots_.Prune(versions_.base());
}

Status Database::DrainCommits() {
  CACTIS_SERIAL_GUARD(serial_guard_);
  if (!wal_) return Status::OK();
  wal_->WaitIdle();
  PublishDurableUpTo(wal_->ResolvedTicket());
  return Status::OK();
}

Status Database::OpUndo(Transaction* t) {
  CACTIS_RETURN_IF_ERROR(RequireOpen(t));
  Status s = RollbackTxn(t);
  t->open_ = false;
  t->aborted_ = true;
  return s;
}

// --- Auto-commit conveniences ------------------------------------------------

Result<InstanceId> Database::CreateDetached(const std::string& class_name) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  const schema::ObjectClass* cls = catalog_.FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("unknown object class '" + class_name + "'");
  }
  auto t = Begin();
  CACTIS_ASSIGN_OR_RETURN(InstanceId id,
                          DoCreate(&t->delta_, *cls, InstanceId()));
  CACTIS_RETURN_IF_ERROR(t->Commit());
  return id;
}

Result<InstanceId> Database::Create(const std::string& class_name) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, t->Create(class_name));
  CACTIS_RETURN_IF_ERROR(t->Commit());
  return id;
}

Status Database::Delete(InstanceId id) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_RETURN_IF_ERROR(t->Delete(id));
  return t->Commit();
}

Status Database::Set(InstanceId id, const std::string& attr, Value value) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_RETURN_IF_ERROR(t->Set(id, attr, std::move(value)));
  return t->Commit();
}

Result<Value> Database::Get(InstanceId id, const std::string& attr) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_ASSIGN_OR_RETURN(Value v, t->Get(id, attr));
  CACTIS_RETURN_IF_ERROR(t->Commit());
  return v;
}

Result<Value> Database::Peek(InstanceId id, const std::string& attr) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_ASSIGN_OR_RETURN(Value v,
                          OpGet(t.get(), id, attr, /*subscribe=*/false));
  CACTIS_RETURN_IF_ERROR(t->Commit());
  return v;
}

Result<EdgeId> Database::Connect(InstanceId a, const std::string& a_port,
                                 InstanceId b, const std::string& b_port) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_ASSIGN_OR_RETURN(EdgeId e, t->Connect(a, a_port, b, b_port));
  CACTIS_RETURN_IF_ERROR(t->Commit());
  return e;
}

Status Database::Disconnect(EdgeId edge) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  auto t = Begin();
  CACTIS_RETURN_IF_ERROR(t->Disconnect(edge));
  return t->Commit();
}

// --- Core mutators -----------------------------------------------------------

Result<InstanceId> Database::DoCreate(txn::TransactionDelta* log,
                                      const schema::ObjectClass& cls,
                                      InstanceId forced_id) {
  InstanceId id = forced_id;
  if (!id.valid()) {
    id = InstanceId(++next_instance_);
  } else if (id.value > next_instance_) {
    next_instance_ = id.value;
  }
  Instance inst = Instance::Create(id, cls);
  CACTIS_RETURN_IF_ERROR(cache_.Insert(std::move(inst)));
  instances_by_class_[cls.id()].insert(id);
  // Pre-create the CC marks entry: shared readers look marks up without
  // reshaping the map, so every reachable instance must already have one.
  if (options_.timestamp_cc) tsm_.Ensure(id);

  if (log != nullptr) {
    txn::DeltaRecord rec;
    rec.op = txn::DeltaOp::kCreate;
    rec.instance = id;
    rec.class_id = cls.id();
    log->records.push_back(std::move(rec));
  }
  return id;
}

Status Database::DoDelete(txn::TransactionDelta* log, Transaction* t,
                          InstanceId id) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));

  // Break every relationship first (each break is its own logged
  // primitive, so undo restores them).
  while (true) {
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
    EdgeId victim;
    for (const auto& port : inst->ports()) {
      if (!port.empty()) {
        victim = port.front().id;
        break;
      }
    }
    if (!victim.valid()) break;
    CACTIS_RETURN_IF_ERROR(DoDisconnect(log, victim));
  }

  // Snapshot intrinsic values for undo.
  txn::DeltaRecord rec;
  rec.op = txn::DeltaOp::kDelete;
  rec.instance = id;
  rec.class_id = cls->id();
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
  for (size_t i = 0; i < cls->attributes().size(); ++i) {
    if (!cls->attributes()[i].is_derived()) {
      rec.intrinsic_snapshot.emplace_back(i, inst->attrs()[i].value);
    }
    if (cls->attributes()[i].subtype.valid()) {
      UpdateSubtypeMembership(cls->attributes()[i].subtype, id, false);
    }
  }
  if (log != nullptr) log->records.push_back(std::move(rec));

  instances_by_class_[cls->id()].erase(id);
  access_counts_.erase(id);
  CACTIS_RETURN_IF_ERROR(cache_.Remove(id));
  (void)t;
  return Status::OK();
}

Status Database::DoSet(txn::TransactionDelta* log, Transaction* t,
                       InstanceId id, size_t attr_index, Value value) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  const schema::AttributeDef& def = cls->attributes()[attr_index];
  CACTIS_ASSIGN_OR_RETURN(Value coerced,
                          CoerceToType(std::move(value), def.type));

  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id));
  if (log != nullptr) {
    txn::DeltaRecord rec;
    rec.op = txn::DeltaOp::kSetAttr;
    rec.instance = id;
    rec.attr_index = attr_index;
    rec.old_value = inst->attrs()[attr_index].value;
    rec.new_value = coerced;
    log->records.push_back(std::move(rec));
  }
  inst->attrs()[attr_index].value = std::move(coerced);
  CACTIS_RETURN_IF_ERROR(WriteInstance(*inst));
  (void)t;
  if (change_listener_) {
    change_listener_(id, static_cast<uint32_t>(attr_index));
  }
  return engine_->MarkDependentsOf(
      AttrSite{id, static_cast<uint32_t>(attr_index)});
}

Result<EdgeId> Database::DoConnect(txn::TransactionDelta* log, InstanceId from,
                                   uint32_t from_port, InstanceId to,
                                   uint32_t to_port, EdgeId forced_id) {
  EdgeId edge = forced_id;
  if (!edge.valid()) {
    edge = EdgeId(++next_edge_);
  } else if (edge.value > next_edge_) {
    next_edge_ = edge.value;
  }

  {
    CACTIS_ASSIGN_OR_RETURN(Instance * a, FetchInstance(from));
    a->ports()[from_port].push_back(EdgeRecord{edge, to, to_port});
    CACTIS_RETURN_IF_ERROR(WriteInstance(*a));
  }
  {
    CACTIS_ASSIGN_OR_RETURN(Instance * b, FetchInstance(to));
    b->ports()[to_port].push_back(EdgeRecord{edge, from, from_port});
    CACTIS_RETURN_IF_ERROR(WriteInstance(*b));
  }
  edges_[edge] = EdgeInfo{from, from_port, to, to_port};

  if (log != nullptr) {
    txn::DeltaRecord rec;
    rec.op = txn::DeltaOp::kConnect;
    rec.edge = edge;
    rec.instance = from;
    rec.from = from;
    rec.from_port = from_port;
    rec.to = to;
    rec.to_port = to_port;
    log->records.push_back(std::move(rec));
  }

  CACTIS_RETURN_IF_ERROR(engine_->MarkPortChanged(from, from_port));
  CACTIS_RETURN_IF_ERROR(engine_->MarkPortChanged(to, to_port));
  return edge;
}

Status Database::DoDisconnect(txn::TransactionDelta* log, EdgeId edge) {
  auto it = edges_.find(edge);
  if (it == edges_.end()) {
    return Status::NotFound("unknown relationship edge " +
                            std::to_string(edge.value));
  }
  EdgeInfo info = it->second;

  auto remove_from = [this, edge](InstanceId id, uint32_t port) -> Status {
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id));
    auto& edges = inst->ports()[port];
    edges.erase(std::remove_if(
                    edges.begin(), edges.end(),
                    [edge](const EdgeRecord& e) { return e.id == edge; }),
                edges.end());
    return WriteInstance(*inst);
  };
  CACTIS_RETURN_IF_ERROR(remove_from(info.from, info.from_port));
  CACTIS_RETURN_IF_ERROR(remove_from(info.to, info.to_port));
  edges_.erase(edge);
  edge_stats_.erase(edge);

  if (log != nullptr) {
    txn::DeltaRecord rec;
    rec.op = txn::DeltaOp::kDisconnect;
    rec.edge = edge;
    rec.instance = info.from;
    rec.from = info.from;
    rec.from_port = info.from_port;
    rec.to = info.to;
    rec.to_port = info.to_port;
    log->records.push_back(std::move(rec));
  }

  CACTIS_RETURN_IF_ERROR(engine_->MarkPortChanged(info.from, info.from_port));
  return engine_->MarkPortChanged(info.to, info.to_port);
}

// --- Undo / redo / versions --------------------------------------------------

Status Database::ApplyUndo(const txn::TransactionDelta& delta) {
  engine_->set_replay_mode(true);
  Status status = Status::OK();
  for (auto it = delta.records.rbegin();
       it != delta.records.rend() && status.ok(); ++it) {
    const txn::DeltaRecord& rec = *it;
    switch (rec.op) {
      case txn::DeltaOp::kSetAttr: {
        auto inst = FetchInstance(rec.instance, false);
        if (!inst.ok()) {
          status = inst.status();
          break;
        }
        (*inst)->attrs()[rec.attr_index].value = rec.old_value;
        status = WriteInstance(**inst);
        if (status.ok()) {
          status = engine_->MarkDependentsOf(
              AttrSite{rec.instance, static_cast<uint32_t>(rec.attr_index)});
        }
        break;
      }
      case txn::DeltaOp::kConnect:
        status = DoDisconnect(nullptr, rec.edge);
        break;
      case txn::DeltaOp::kDisconnect:
        status = DoConnect(nullptr, rec.from,
                           static_cast<uint32_t>(rec.from_port), rec.to,
                           static_cast<uint32_t>(rec.to_port), rec.edge)
                     .status();
        break;
      case txn::DeltaOp::kCreate:
        status = DoDelete(nullptr, nullptr, rec.instance);
        break;
      case txn::DeltaOp::kDelete: {
        const schema::ObjectClass* cls = catalog_.GetClass(rec.class_id);
        if (cls == nullptr) {
          status = Status::Internal("undo of delete: unknown class");
          break;
        }
        auto created = DoCreate(nullptr, *cls, rec.instance);
        if (!created.ok()) {
          status = created.status();
          break;
        }
        auto inst = FetchInstance(rec.instance, false);
        if (!inst.ok()) {
          status = inst.status();
          break;
        }
        for (const auto& [idx, value] : rec.intrinsic_snapshot) {
          (*inst)->attrs()[idx].value = value;
        }
        status = WriteInstance(**inst);
        break;
      }
    }
  }
  if (status.ok()) {
    status = engine_->EvaluateImportant(nullptr);
  }
  engine_->set_replay_mode(false);
  return status;
}

Status Database::ApplyRedo(const txn::TransactionDelta& delta) {
  engine_->set_replay_mode(true);
  Status status = Status::OK();
  for (auto it = delta.records.begin();
       it != delta.records.end() && status.ok(); ++it) {
    const txn::DeltaRecord& rec = *it;
    switch (rec.op) {
      case txn::DeltaOp::kSetAttr: {
        auto inst = FetchInstance(rec.instance, false);
        if (!inst.ok()) {
          status = inst.status();
          break;
        }
        (*inst)->attrs()[rec.attr_index].value = rec.new_value;
        status = WriteInstance(**inst);
        if (status.ok()) {
          status = engine_->MarkDependentsOf(
              AttrSite{rec.instance, static_cast<uint32_t>(rec.attr_index)});
        }
        break;
      }
      case txn::DeltaOp::kConnect:
        status = DoConnect(nullptr, rec.from,
                           static_cast<uint32_t>(rec.from_port), rec.to,
                           static_cast<uint32_t>(rec.to_port), rec.edge)
                     .status();
        break;
      case txn::DeltaOp::kDisconnect:
        status = DoDisconnect(nullptr, rec.edge);
        break;
      case txn::DeltaOp::kCreate: {
        const schema::ObjectClass* cls = catalog_.GetClass(rec.class_id);
        if (cls == nullptr) {
          status = Status::Internal("redo of create: unknown class");
          break;
        }
        status = DoCreate(nullptr, *cls, rec.instance).status();
        break;
      }
      case txn::DeltaOp::kDelete:
        status = DoDelete(nullptr, nullptr, rec.instance);
        break;
    }
  }
  if (status.ok()) {
    status = engine_->EvaluateImportant(nullptr);
  }
  engine_->set_replay_mode(false);
  return status;
}

Status Database::JournalEvent(const txn::WalEvent& event) {
  if (!wal_) return Status::OK();
  return wal_->Append(event);
}

Status Database::UndoLastInternal() {
  CACTIS_ASSIGN_OR_RETURN(txn::TransactionDelta delta, versions_.PopLast());
  CACTIS_RETURN_IF_ERROR(ApplyUndo(delta));
  // The popped sequence number will be reissued by the next commit:
  // expire it from the snapshot index (epoch bump) before that happens.
  snapshots_.TruncateAfter(versions_.position());
  snapshots_.SetLatestPublished(versions_.position());
  return Status::OK();
}

Status Database::UndoLast() {
  CACTIS_SERIAL_GUARD(serial_guard_);
  // Version meta-actions read the committed history; publish every commit
  // whose WAL batch already flushed so "last" means what the user thinks.
  CACTIS_RETURN_IF_ERROR(DrainCommits());
  CACTIS_RETURN_IF_ERROR(UndoLastInternal());
  // Meta-actions are journaled after they succeed: a crash in between
  // loses at most the meta-action itself, never committed data.
  return JournalEvent(txn::WalEvent::Undo());
}

Result<VersionId> Database::CreateVersion(const std::string& name) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  CACTIS_RETURN_IF_ERROR(DrainCommits());
  CACTIS_ASSIGN_OR_RETURN(VersionId id, versions_.CreateVersion(name));
  CACTIS_RETURN_IF_ERROR(JournalEvent(txn::WalEvent::Version(name)));
  return id;
}

Status Database::CheckoutPosition(uint64_t target) {
  if (target < versions_.position()) {
    CACTIS_ASSIGN_OR_RETURN(std::vector<const txn::TransactionDelta*> deltas,
                            versions_.DeltasToUndo(target));
    for (const txn::TransactionDelta* d : deltas) {
      CACTIS_RETURN_IF_ERROR(ApplyUndo(*d));
    }
  } else if (target > versions_.position()) {
    CACTIS_ASSIGN_OR_RETURN(std::vector<const txn::TransactionDelta*> deltas,
                            versions_.DeltasToRedo(target));
    for (const txn::TransactionDelta* d : deltas) {
      CACTIS_RETURN_IF_ERROR(ApplyRedo(*d));
    }
  }
  versions_.SetPosition(target);
  // Snapshot readers follow the checkout: new snapshots pin the target.
  // Chain nodes above it stay (they are the redo tail, valid for a later
  // checkout-forward) — readers at the target simply skip them.
  snapshots_.SetLatestPublished(target);
  return Status::OK();
}

Status Database::CheckoutVersion(const std::string& name) {
  CACTIS_RETURN_IF_ERROR(DrainCommits());
  CACTIS_ASSIGN_OR_RETURN(uint64_t target, versions_.PositionOf(name));
  CACTIS_RETURN_IF_ERROR(CheckoutPosition(target));
  return JournalEvent(txn::WalEvent::Checkout(target));
}

// --- Checkpointing -----------------------------------------------------------

Status Database::Checkpoint() {
  CACTIS_SERIAL_GUARD(serial_guard_);
  if (!wal_ || !ckpt_) {
    return Status::InvalidArgument(
        "checkpointing requires the write-ahead log");
  }
  // Publish every durable commit first: the image must cover exactly the
  // acknowledged history, and the WAL must be idle so the resume point
  // (tail block + next seq) is stable.
  CACTIS_RETURN_IF_ERROR(DrainCommits());
  CACTIS_ASSIGN_OR_RETURN(txn::CheckpointImage image, BuildCheckpointImage());
  uint64_t resume_seq = wal_->next_seq();
  BlockId resume_block = wal_->tail_block();
  CACTIS_RETURN_IF_ERROR(ckpt_->WriteCheckpoint(
      txn::EncodeCheckpointImage(image), resume_seq, resume_block));
  // Only after the new checkpoint is fully committed may the journal
  // entries it covers be dropped.
  return wal_->TruncateBefore(resume_seq);
}

Result<txn::CheckpointImage> Database::BuildCheckpointImage() {
  txn::CheckpointImage image;
  image.next_instance = next_instance_;
  image.next_edge = next_edge_;
  image.next_txn = next_txn_;

  // Bootstrap delta: recreate every live instance (ascending id, so
  // forced-id creation is deterministic), restore its intrinsic
  // attributes, then every edge (ascending edge id). Derived attributes
  // are deliberately omitted — the load re-derives them, exactly as WAL
  // replay does.
  std::vector<std::pair<InstanceId, ClassId>> live;
  for (const auto& [cls_id, ids] : instances_by_class_) {
    for (InstanceId id : ids) live.emplace_back(id, cls_id);
  }
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    return a.first.value < b.first.value;
  });
  for (const auto& [id, cls_id] : live) {
    const schema::ObjectClass* cls = catalog_.GetClass(cls_id);
    if (cls == nullptr) {
      return Status::Internal("checkpoint: instance of unknown class");
    }
    txn::DeltaRecord create;
    create.op = txn::DeltaOp::kCreate;
    create.instance = id;
    create.class_id = cls_id;
    image.bootstrap.records.push_back(std::move(create));
    CACTIS_ASSIGN_OR_RETURN(Instance * inst,
                            FetchInstance(id, /*count_access=*/false));
    for (size_t i = 0; i < cls->attributes().size(); ++i) {
      if (cls->attributes()[i].is_derived()) continue;
      txn::DeltaRecord set;
      set.op = txn::DeltaOp::kSetAttr;
      set.instance = id;
      set.attr_index = i;
      set.new_value = inst->attrs()[i].value;
      image.bootstrap.records.push_back(std::move(set));
    }
  }
  std::vector<std::pair<EdgeId, EdgeInfo>> edge_list(edges_.begin(),
                                                     edges_.end());
  std::sort(edge_list.begin(), edge_list.end(),
            [](const auto& a, const auto& b) {
              return a.first.value < b.first.value;
            });
  for (const auto& [edge, info] : edge_list) {
    txn::DeltaRecord connect;
    connect.op = txn::DeltaOp::kConnect;
    connect.edge = edge;
    connect.instance = info.from;
    connect.from = info.from;
    connect.from_port = info.from_port;
    connect.to = info.to;
    connect.to_port = info.to_port;
    image.bootstrap.records.push_back(std::move(connect));
  }

  image.history = versions_.history();
  image.history_base = versions_.base();
  image.position = versions_.position();
  image.versions = versions_.versions();
  image.next_version = versions_.next_version();
  return image;
}

Status Database::LoadCheckpointImage(const txn::CheckpointImage& image) {
  CACTIS_RETURN_IF_ERROR(ApplyRedo(image.bootstrap));
  // Forced ids already bumped the counters; max() guards against an image
  // whose high-water marks outlive the objects (deleted instances).
  next_instance_ = std::max(next_instance_, image.next_instance);
  next_edge_ = std::max(next_edge_, image.next_edge);
  next_txn_ = std::max(next_txn_, image.next_txn);
  versions_.Restore(image.history, image.history_base, image.position,
                    image.versions, image.next_version);

  // Rebuild the snapshot index. Three layers, pushed in ascending
  // sequence order so chain walks stay newest-first:
  //   1. retained pre-position deltas — attribute chains only: class
  //      extents below the position are unknowable (pre-base creates and
  //      deletes were pruned), so membership is not tracked here and
  //      reads below the position miss into the locked paths;
  //   2. a full intrinsic base per live instance, plus the seeded class
  //      extents, all AT the position;
  //   3. the retained redo tail (> position), visible only after a
  //      checkout-forward republishes a higher sequence.
  snapshots_.Reset();
  snapshots_.SetCoverageFloor(image.position);
  for (const txn::TransactionDelta& d : versions_.history()) {
    if (d.commit_seq > image.position) break;
    IngestDeltaIntoSnapshots(d, d.commit_seq, /*track_membership=*/false);
  }
  std::unordered_map<InstanceId, std::vector<std::pair<size_t, Value>>>
      base_attrs;
  std::unordered_map<InstanceId, ClassId> base_class;
  std::map<ClassId, std::vector<InstanceId>> extents;
  for (const txn::DeltaRecord& r : image.bootstrap.records) {
    if (r.op == txn::DeltaOp::kCreate) {
      base_class[r.instance] = r.class_id;
      extents[r.class_id].push_back(r.instance);
    } else if (r.op == txn::DeltaOp::kSetAttr) {
      base_attrs[r.instance].emplace_back(r.attr_index, r.new_value);
    }
  }
  for (auto& [id, cls_id] : base_class) {
    snapshots_.RecordBase(id, image.position, cls_id,
                          std::move(base_attrs[id]));
  }
  for (auto& [cls_id, members] : extents) {
    std::sort(members.begin(), members.end());
    snapshots_.SeedMembership(cls_id, image.position, std::move(members));
  }
  // Classes with an empty extent at the position are provably empty from
  // here on (LoadSchema's chains were wiped by the Reset above).
  for (const schema::ObjectClass* cls : catalog_.AllClasses()) {
    snapshots_.EnsureMembership(cls->id());
  }
  for (const txn::TransactionDelta& d : versions_.history()) {
    if (d.commit_seq <= image.position) continue;
    IngestDeltaIntoSnapshots(d, d.commit_seq, /*track_membership=*/true);
  }
  snapshots_.SetLatestPublished(image.position);
  return Status::OK();
}

// --- Crash recovery ----------------------------------------------------------

Status Database::Recover(const storage::SimulatedDisk& platter) {
  if (store_.record_count() != 0 || versions_.end() != 0) {
    return Status::InvalidArgument(
        "Recover requires a fresh database: construct, LoadSchema with the "
        "same source, then recover");
  }
  // Checkpoint-aware: when the platter carries a valid checkpoint, load
  // its image and replay only the journal tail past its resume point.
  // Platters without one (fresh, or written before checkpointing existed)
  // take the legacy full-scan path.
  uint64_t start_seq = 1;
  BlockId start_block;
  bool from_checkpoint = false;
  Result<txn::CheckpointStore::Loaded> loaded =
      txn::CheckpointStore::LoadLatest(platter);
  if (loaded.ok()) {
    CACTIS_ASSIGN_OR_RETURN(txn::CheckpointImage image,
                            txn::DecodeCheckpointImage(loaded->image));
    CACTIS_RETURN_IF_ERROR(LoadCheckpointImage(image));
    start_seq = loaded->wal_resume_seq;
    start_block = loaded->wal_resume_block;
    from_checkpoint = true;
  } else {
    CACTIS_ASSIGN_OR_RETURN(start_block,
                            txn::WriteAheadLog::ReadFirstBlock(platter));
  }
  CACTIS_ASSIGN_OR_RETURN(
      txn::WalScanResult scan,
      txn::WriteAheadLog::ScanPlatterFrom(platter, start_block, start_seq));
  for (const txn::WalEvent& event : scan.events) {
    switch (event.kind) {
      case txn::WalEventKind::kCommit: {
        CACTIS_RETURN_IF_ERROR(ApplyRedo(event.delta));
        txn::TransactionDelta delta = event.delta;
        delta.commit_seq = 0;  // Append reassigns it
        AppendCommitted(std::move(delta));
        break;
      }
      case txn::WalEventKind::kUndo:
        CACTIS_RETURN_IF_ERROR(UndoLastInternal());
        break;
      case txn::WalEventKind::kCheckout:
        CACTIS_RETURN_IF_ERROR(CheckoutPosition(event.checkout_target));
        break;
      case txn::WalEventKind::kVersion:
        CACTIS_RETURN_IF_ERROR(
            versions_.CreateVersion(event.version_name).status());
        break;
      case txn::WalEventKind::kBatch:
        // Batches are containers; the scan flattens them into their
        // member events and never yields one.
        return Status::Corruption("batch container in decoded WAL stream");
    }
    // Re-journal into this database's own log so the recovered state can
    // itself be recovered (recovery is idempotent across platters).
    CACTIS_RETURN_IF_ERROR(JournalEvent(event));
  }
  if (wal_ != nullptr && scan.salvaged_tail_bytes != 0) {
    wal_->NoteSalvagedTailBytes(scan.salvaged_tail_bytes);
  }
  CACTIS_RETURN_IF_ERROR(Flush());
  if (from_checkpoint && wal_ && ckpt_) {
    // The checkpointed prefix was loaded from the image, not re-journaled:
    // this database's own WAL holds only the tail. Checkpoint immediately
    // so the recovered state is itself durable end to end.
    CACTIS_RETURN_IF_ERROR(Checkpoint());
  }
  return Status::OK();
}

// --- Queries -----------------------------------------------------------------

namespace {

// Sentinel distinguishing "the shared fast path cannot answer from cached
// state" from a real evaluation error. Rule evaluation never produces an
// Internal status with this exact message, so the match is unambiguous.
Status SharedMiss() { return Status::Internal("shared-read fast path miss"); }
bool IsSharedMiss(const Status& s) {
  return s.code() == StatusCode::kInternal &&
         s.message() == "shared-read fast path miss";
}

// EvalContext over cached state only: answers from cached, up-to-date
// values and reports SharedMiss() whenever answering would require
// faulting a block or evaluating a rule. Used by TrySelectWhereShared
// under the shared statement lock; the exclusive path re-runs a missed
// query with the full RuleContext.
class SharedReadContext : public lang::EvalContext {
 public:
  SharedReadContext(const schema::Catalog* catalog, ObjectCache* cache,
                    const Instance* self, const schema::ObjectClass* cls,
                    const lang::BuiltinRegistry* builtins)
      : catalog_(catalog),
        cache_(cache),
        self_(self),
        cls_(cls),
        builtins_(builtins) {}

  Result<Value> GetLocalAttr(const std::string& name) override {
    size_t idx = cls_->AttrIndexOf(name);
    if (idx == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no attribute '" + name + "'");
    }
    const AttrSlot& slot = self_->attrs()[idx];
    if (cls_->attributes()[idx].is_derived() && slot.out_of_date) {
      return SharedMiss();
    }
    return slot.value;
  }

  bool HasLocalAttr(const std::string& name) const override {
    return cls_->AttrIndexOf(name) != SIZE_MAX;
  }
  bool HasPort(const std::string& name) const override {
    return cls_->PortIndexOf(name) != SIZE_MAX;
  }

  Result<std::vector<Neighbor>> GetNeighbors(
      const std::string& port) override {
    size_t p = cls_->PortIndexOf(port);
    if (p == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no relationship '" + port + "'");
    }
    std::vector<Neighbor> out;
    out.reserve(self_->ports()[p].size());
    for (const EdgeRecord& e : self_->ports()[p]) {
      out.push_back(
          Neighbor{e.peer, static_cast<uint32_t>(p), e.peer_port, e.id});
    }
    return out;
  }

  Result<Value> GetRemoteValue(const Neighbor& neighbor,
                               const std::string& name) override {
    // NOTE: deliberately no RecordCrossing — the edge-usage statistics
    // are exclusive-only, so shared-path crossings go uncounted.
    const Instance* peer = cache_->PeekCached(neighbor.id);
    if (peer == nullptr) return SharedMiss();
    const schema::ObjectClass* peer_cls =
        catalog_->GetClass(peer->class_id());
    if (peer_cls == nullptr) {
      return Status::Internal("instance " +
                              std::to_string(neighbor.id.value) +
                              " references unknown class");
    }
    size_t idx = peer_cls->ResolveProvidedValue(neighbor.peer_port, name);
    if (idx == SIZE_MAX) {
      return Status::NotFound("class " + peer_cls->name() +
                              " provides no value '" + name +
                              "' across this relationship");
    }
    const AttrSlot& slot = peer->attrs()[idx];
    if (peer_cls->attributes()[idx].is_derived() && slot.out_of_date) {
      return SharedMiss();
    }
    cache_->NoteSharedTouch(neighbor.id);
    return slot.value;
  }

  Status SetLocalAttr(const std::string& name, Value /*value*/) override {
    return Status::InvalidArgument(
        "attribute evaluation rules may not assign attributes ('" + name +
        "'); only recovery actions may");
  }

  const lang::BuiltinRegistry& builtins() const override {
    return *builtins_;
  }

 private:
  const schema::Catalog* catalog_;
  ObjectCache* cache_;
  const Instance* self_;
  const schema::ObjectClass* cls_;
  const lang::BuiltinRegistry* builtins_;
};

}  // namespace

std::optional<Result<Value>> Database::TryGetShared(Transaction* t,
                                                    InstanceId id,
                                                    const std::string& attr,
                                                    bool subscribe) {
  CACTIS_SHARED_GUARD(serial_guard_);
  // A closed/aborted transaction needs the exclusive path's error.
  if (t != nullptr && !t->open()) return std::nullopt;
  const Instance* inst = cache_.PeekCached(id);
  if (inst == nullptr) return std::nullopt;
  const schema::ObjectClass* cls = catalog_.GetClass(inst->class_id());
  if (cls == nullptr) return std::nullopt;
  size_t idx = cls->AttrIndexOf(attr);
  if (idx == SIZE_MAX) {
    // Definitive answer; the exclusive path reports it before its CC
    // check too.
    return Result<Value>(Status::NotFound("class " + cls->name() +
                                          " has no attribute '" + attr +
                                          "'"));
  }
  const schema::AttributeDef& def = cls->attributes()[idx];
  const AttrSlot& slot = inst->attrs()[idx];
  if (def.is_derived()) {
    if (slot.out_of_date) return std::nullopt;
    // A Get of an unsubscribed derived attribute subscribes it — a
    // mutation, so it belongs to the exclusive path.
    if (subscribe && !slot.subscribed) return std::nullopt;
  }
  if (options_.timestamp_cc) {
    uint64_t ts = t != nullptr ? t->ts() : tsm_.IssueTimestamp();
    // CC check last: kOk guarantees an engaged return, so the conflict
    // statistics never double-count against the exclusive retry (which
    // recounts and aborts the transaction properly).
    if (tsm_.CheckReadShared(id, ts) != txn::SharedReadCheck::kOk) {
      return std::nullopt;
    }
  }
  cache_.NoteSharedTouch(id);
  return Result<Value>(slot.value);
}

Result<std::vector<InstanceId>> Database::InstancesOfShared(
    const std::string& class_name) {
  CACTIS_SHARED_GUARD(serial_guard_);
  CACTIS_ASSIGN_OR_RETURN(ClassId id, catalog_.ClassIdOf(class_name));
  // find, not operator[]: the index must not be reshaped under the shared
  // lock.
  auto it = instances_by_class_.find(id);
  if (it == instances_by_class_.end()) return std::vector<InstanceId>{};
  return std::vector<InstanceId>(it->second.begin(), it->second.end());
}

std::optional<Result<std::vector<InstanceId>>>
Database::TryMembersOfSubtypeShared(const std::string& name) {
  using R = Result<std::vector<InstanceId>>;
  CACTIS_SHARED_GUARD(serial_guard_);
  const schema::SubtypeDef* sub = catalog_.FindSubtype(name);
  if (sub == nullptr) {
    return R(Status::NotFound("unknown subtype '" + name + "'"));
  }
  // The membership sets are current only if every instance's predicate is
  // up to date; otherwise the exclusive path must re-evaluate them.
  auto ins = instances_by_class_.find(sub->class_id);
  if (ins != instances_by_class_.end()) {
    for (InstanceId id : ins->second) {
      const Instance* inst = cache_.PeekCached(id);
      if (inst == nullptr) return std::nullopt;
      if (inst->attrs()[sub->predicate_attr_index].out_of_date) {
        return std::nullopt;
      }
    }
  }
  auto mem = subtype_members_.find(sub->id);
  if (mem == subtype_members_.end()) return R(std::vector<InstanceId>{});
  return R(std::vector<InstanceId>(mem->second.begin(), mem->second.end()));
}

std::optional<Result<std::vector<InstanceId>>> Database::TrySelectWhereShared(
    const std::string& class_name, const std::string& predicate_source) {
  using R = Result<std::vector<InstanceId>>;
  CACTIS_SHARED_GUARD(serial_guard_);
  const schema::ObjectClass* cls = catalog_.FindClass(class_name);
  if (cls == nullptr) {
    return R(Status::NotFound("unknown object class '" + class_name + "'"));
  }
  Result<lang::RuleBody> body =
      lang::Parser::ParseRuleBody(predicate_source);
  if (!body.ok()) return R(body.status());
  // Same name validation the exclusive path performs.
  lang::ClassContext ctx;
  for (const schema::AttributeDef& a : cls->attributes()) {
    if (a.kind != schema::AttrKind::kExport) {
      ctx.attribute_names.insert(a.name);
    }
  }
  for (const schema::PortDef& port : cls->ports()) {
    ctx.port_names.insert(port.name);
  }
  Status analyzed = lang::AnalyzeDependencies(*body, ctx).status();
  if (!analyzed.ok()) return R(analyzed);

  std::vector<InstanceId> out;
  auto ins = instances_by_class_.find(cls->id());
  if (ins != instances_by_class_.end()) {
    for (InstanceId id : ins->second) {
      const Instance* inst = cache_.PeekCached(id);
      if (inst == nullptr) return std::nullopt;
      SharedReadContext rctx(&catalog_, &cache_, inst, cls, &builtins_);
      Result<Value> v = lang::Interpreter::EvalRule(*body, &rctx);
      if (!v.ok()) {
        if (IsSharedMiss(v.status())) return std::nullopt;
        // Everything the predicate read was cached and fresh, so the
        // exclusive path would fail identically: the error is definitive.
        return R(v.status());
      }
      Result<bool> keep = (*v).AsBool();
      if (!keep.ok()) return R(keep.status());
      if (*keep) out.push_back(id);
      cache_.NoteSharedTouch(id);
    }
  }
  return R(std::move(out));
}

// --- Snapshot (MVCC) read path ----------------------------------------------

namespace {

// EvalContext over a snapshot of the version chains only. Local intrinsic
// attributes resolve against the chain; anything else — derived
// attributes, relationship traversal, remote values — reports
// SharedMiss() so the caller falls back to a locked path. Connectivity is
// not chained (kConnect/kDisconnect are skipped at ingest), so ports can
// never be answered here.
class SnapshotReadContext : public lang::EvalContext {
 public:
  SnapshotReadContext(const txn::SnapshotIndex* index,
                      const txn::SnapshotIndex::Snapshot* snap, InstanceId id,
                      const schema::ObjectClass* cls,
                      const lang::BuiltinRegistry* builtins)
      : index_(index), snap_(snap), id_(id), cls_(cls), builtins_(builtins) {}

  Result<Value> GetLocalAttr(const std::string& name) override {
    size_t idx = cls_->AttrIndexOf(name);
    if (idx == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no attribute '" + name + "'");
    }
    if (cls_->attributes()[idx].is_derived()) return SharedMiss();
    Value v;
    if (index_->ReadAttr(*snap_, id_, idx, &v) !=
        txn::SnapshotIndex::Lookup::kHit) {
      return SharedMiss();
    }
    return v;
  }

  bool HasLocalAttr(const std::string& name) const override {
    return cls_->AttrIndexOf(name) != SIZE_MAX;
  }
  bool HasPort(const std::string& name) const override {
    return cls_->PortIndexOf(name) != SIZE_MAX;
  }

  Result<std::vector<Neighbor>> GetNeighbors(
      const std::string& port) override {
    size_t p = cls_->PortIndexOf(port);
    if (p == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no relationship '" + port + "'");
    }
    return SharedMiss();
  }

  Result<Value> GetRemoteValue(const Neighbor&, const std::string&) override {
    return SharedMiss();
  }

  Status SetLocalAttr(const std::string& name, Value /*value*/) override {
    return Status::InvalidArgument(
        "attribute evaluation rules may not assign attributes ('" + name +
        "'); only recovery actions may");
  }

  const lang::BuiltinRegistry& builtins() const override {
    return *builtins_;
  }

 private:
  const txn::SnapshotIndex* index_;
  const txn::SnapshotIndex::Snapshot* snap_;
  InstanceId id_;
  const schema::ObjectClass* cls_;
  const lang::BuiltinRegistry* builtins_;
};

}  // namespace

std::optional<Result<Value>> Database::TryGetSnapshot(
    const txn::SnapshotIndex::Snapshot& snap, InstanceId id,
    const std::string& attr) {
  // No statement lock, no CC marks: everything below reads immutable
  // chain nodes (plus the catalog, which the caller pins via the
  // executor's schema lock).
  if (!snap.valid()) return std::nullopt;
  ClassId cls_id;
  if (snapshots_.ClassAt(snap, id, &cls_id) !=
      txn::SnapshotIndex::Lookup::kHit) {
    return std::nullopt;
  }
  const schema::ObjectClass* cls = catalog_.GetClass(cls_id);
  if (cls == nullptr) return std::nullopt;
  size_t idx = cls->AttrIndexOf(attr);
  if (idx == SIZE_MAX) {
    // Same definitive answer every other path gives for an unknown name.
    return Result<Value>(Status::NotFound("class " + cls->name() +
                                          " has no attribute '" + attr +
                                          "'"));
  }
  if (cls->attributes()[idx].is_derived()) return std::nullopt;
  Value v;
  if (snapshots_.ReadAttr(snap, id, idx, &v) !=
      txn::SnapshotIndex::Lookup::kHit) {
    return std::nullopt;
  }
  cache_.NoteSharedTouch(id);
  return Result<Value>(std::move(v));
}

std::optional<Result<std::vector<InstanceId>>> Database::TryInstancesOfSnapshot(
    const txn::SnapshotIndex::Snapshot& snap, const std::string& class_name) {
  using R = Result<std::vector<InstanceId>>;
  if (!snap.valid()) return std::nullopt;
  const schema::ObjectClass* cls = catalog_.FindClass(class_name);
  if (cls == nullptr) {
    return R(Status::NotFound("unknown object class '" + class_name + "'"));
  }
  std::vector<InstanceId> out;
  if (snapshots_.MembersAt(snap, cls->id(), &out) !=
      txn::SnapshotIndex::Lookup::kHit) {
    return std::nullopt;
  }
  return R(std::move(out));
}

std::optional<Result<std::vector<InstanceId>>> Database::TrySelectWhereSnapshot(
    const txn::SnapshotIndex::Snapshot& snap, const std::string& class_name,
    const std::string& predicate_source) {
  using R = Result<std::vector<InstanceId>>;
  if (!snap.valid()) return std::nullopt;
  const schema::ObjectClass* cls = catalog_.FindClass(class_name);
  if (cls == nullptr) {
    return R(Status::NotFound("unknown object class '" + class_name + "'"));
  }
  Result<lang::RuleBody> body =
      lang::Parser::ParseRuleBody(predicate_source);
  if (!body.ok()) return R(body.status());
  lang::ClassContext ctx;
  for (const schema::AttributeDef& a : cls->attributes()) {
    if (a.kind != schema::AttrKind::kExport) {
      ctx.attribute_names.insert(a.name);
    }
  }
  for (const schema::PortDef& port : cls->ports()) {
    ctx.port_names.insert(port.name);
  }
  Status analyzed = lang::AnalyzeDependencies(*body, ctx).status();
  if (!analyzed.ok()) return R(analyzed);

  std::vector<InstanceId> members;
  if (snapshots_.MembersAt(snap, cls->id(), &members) !=
      txn::SnapshotIndex::Lookup::kHit) {
    return std::nullopt;
  }
  std::vector<InstanceId> out;
  for (InstanceId id : members) {
    SnapshotReadContext rctx(&snapshots_, &snap, id, cls, &builtins_);
    Result<Value> v = lang::Interpreter::EvalRule(*body, &rctx);
    // Unlike the shared path, no snapshot-state evaluation error is
    // provably identical to the live-state error, so every failure falls
    // back rather than being reported as definitive.
    if (!v.ok()) return std::nullopt;
    Result<bool> keep = (*v).AsBool();
    if (!keep.ok()) return std::nullopt;
    if (*keep) out.push_back(id);
    cache_.NoteSharedTouch(id);
  }
  return R(std::move(out));
}

Result<std::vector<InstanceId>> Database::InstancesOf(
    const std::string& class_name) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  CACTIS_ASSIGN_OR_RETURN(ClassId id, catalog_.ClassIdOf(class_name));
  const std::set<InstanceId>& set = instances_by_class_[id];
  return std::vector<InstanceId>(set.begin(), set.end());
}

Result<std::vector<InstanceId>> Database::MembersOfSubtype(
    const std::string& name) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  const schema::SubtypeDef* sub = catalog_.FindSubtype(name);
  if (sub == nullptr) {
    return Status::NotFound("unknown subtype '" + name + "'");
  }
  const schema::ObjectClass* cls = catalog_.GetClass(sub->class_id);
  // Bring every member's predicate up to date (dynamic membership).
  for (InstanceId id : instances_by_class_[sub->class_id]) {
    AttrSite site{id, static_cast<uint32_t>(sub->predicate_attr_index)};
    (void)cls;
    CACTIS_RETURN_IF_ERROR(
        engine_->DemandValue(site, nullptr, false).status());
  }
  const std::set<InstanceId>& members = subtype_members_[sub->id];
  return std::vector<InstanceId>(members.begin(), members.end());
}

Result<std::vector<InstanceId>> Database::SelectWhere(
    const std::string& class_name, const std::string& predicate_source) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  const schema::ObjectClass* cls = catalog_.FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("unknown object class '" + class_name + "'");
  }
  CACTIS_ASSIGN_OR_RETURN(lang::RuleBody body,
                          lang::Parser::ParseRuleBody(predicate_source));
  // Validate names against the class (same checks a rule would get).
  lang::ClassContext ctx;
  for (const schema::AttributeDef& a : cls->attributes()) {
    if (a.kind != schema::AttrKind::kExport) ctx.attribute_names.insert(a.name);
  }
  for (const schema::PortDef& port : cls->ports()) {
    ctx.port_names.insert(port.name);
  }
  CACTIS_RETURN_IF_ERROR(lang::AnalyzeDependencies(body, ctx).status());

  std::vector<InstanceId> out;
  for (InstanceId id : instances_by_class_[cls->id()]) {
    CACTIS_ASSIGN_OR_RETURN(Value v,
                            engine_->EvalAdHoc(id, cls, body, nullptr));
    CACTIS_ASSIGN_OR_RETURN(bool keep, v.AsBool());
    if (keep) out.push_back(id);
  }
  return out;
}

Result<ClassId> Database::ClassOf(InstanceId id) {
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
  return inst->class_id();
}

Result<std::vector<InstanceId>> Database::NeighborsOf(
    InstanceId id, const std::string& port) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  size_t p = cls->PortIndexOf(port);
  if (p == SIZE_MAX) {
    return Status::NotFound("class " + cls->name() +
                            " has no relationship '" + port + "'");
  }
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id));
  std::vector<InstanceId> out;
  out.reserve(inst->ports()[p].size());
  for (const EdgeRecord& e : inst->ports()[p]) out.push_back(e.peer);
  return out;
}

Result<std::vector<EdgeId>> Database::EdgesOf(InstanceId id,
                                              const std::string& port) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  size_t p = cls->PortIndexOf(port);
  if (p == SIZE_MAX) {
    return Status::NotFound("class " + cls->name() +
                            " has no relationship '" + port + "'");
  }
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id));
  std::vector<EdgeId> out;
  out.reserve(inst->ports()[p].size());
  for (const EdgeRecord& e : inst->ports()[p]) out.push_back(e.id);
  return out;
}

// --- Maintenance ---------------------------------------------------------------

void Database::FoldUsageStatistics() {
  CACTIS_SERIAL_GUARD(serial_guard_);
  // Fold the shared read path's deferred touches into the access counts
  // before closing the period over them.
  cache_.DrainTouches(&access_counts_);

  // Each fold closes one observation period: the decayed counters take
  // the period's raw delta as a new sample, so activity long past decays
  // away while lifetime counters keep accumulating.
  uint64_t raw_total = 0;
  double decayed_total = 0.0;
  std::vector<InstanceId> live = store_.AllInstances();
  {
    // Deleted instances must not pin decay state (or skew the totals).
    std::unordered_set<InstanceId> alive(live.begin(), live.end());
    std::erase_if(access_decay_,
                  [&](const auto& kv) { return !alive.contains(kv.first); });
  }
  for (InstanceId id : live) {
    auto it = access_decay_
                  .try_emplace(id, AccessDecayEntry(options_.cluster_decay_alpha))
                  .first;
    auto raw_it = access_counts_.find(id);
    const uint64_t raw = raw_it == access_counts_.end() ? 0 : raw_it->second;
    it->second.decay.Record(static_cast<double>(raw - it->second.at_last_fold));
    it->second.at_last_fold = raw;
    raw_total += raw;
    decayed_total += it->second.decay.value();
  }
  for (auto& [edge, stats] : edge_stats_) {
    stats.usage_decay.Record(
        static_cast<double>(stats.usage - stats.usage_at_last_fold));
    stats.usage_at_last_fold = stats.usage;
  }
  cluster_stats_.raw_access_total = raw_total;
  cluster_stats_.decayed_access_total = decayed_total;
  ++cluster_stats_.stat_folds;
}

Status Database::Reorganize() {
  CACTIS_SERIAL_GUARD(serial_guard_);
  FoldUsageStatistics();

  cluster::ClusterInput input;
  input.block_capacity = options_.block_size;
  input.access_counts = access_counts_;

  for (InstanceId id : store_.AllInstances()) {
    CACTIS_ASSIGN_OR_RETURN(std::string payload, store_.Get(id));
    input.record_sizes[id] = payload.size();
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
    input.class_of[id] = static_cast<uint32_t>(inst->class_id().value);
    auto decay_it = access_decay_.find(id);
    if (decay_it != access_decay_.end()) {
      input.decayed_access[id] = decay_it->second.decay.value();
    }
    std::vector<cluster::ClusterInput::Neighbor> adj;
    for (size_t p = 0; p < inst->ports().size(); ++p) {
      for (const EdgeRecord& e : inst->ports()[p]) {
        const EdgeStatEntry& es = EdgeStatsFor(e.id);
        adj.push_back({e.peer, es.usage, es.usage_decay.value(),
                       static_cast<uint32_t>(p)});
      }
    }
    input.adjacency[id] = std::move(adj);
  }

  std::unique_ptr<cluster::Policy> policy =
      cluster::MakePolicy(options_.cluster_policy);
  const auto t0 = std::chrono::steady_clock::now();
  cluster::Placement placement = policy->Place(input);
  cluster_stats_.placement_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());

  const uint64_t reads_before = disk_.stats().reads;
  const uint64_t writes_before = disk_.stats().writes;
  CACTIS_RETURN_IF_ERROR(store_.ApplyPlacement(placement));
  cluster_stats_.reorg_blocks_read = disk_.stats().reads - reads_before;
  cluster_stats_.reorg_blocks_written = disk_.stats().writes - writes_before;

  int max_cluster = -1;
  size_t payload_bytes = 0;
  for (const auto& [id, cluster_index] : placement) {
    max_cluster = std::max(max_cluster, cluster_index);
    payload_bytes +=
        input.record_sizes[id] + storage::kRecordOverheadBytes;
  }
  cluster_stats_.instances_placed = placement.size();
  cluster_stats_.clusters_produced = static_cast<uint64_t>(max_cluster + 1);
  const size_t blocks = store_.block_count();
  cluster_stats_.blocks_produced = blocks;
  const size_t usable = pool_.usable_block_bytes();
  cluster_stats_.fill_factor =
      blocks == 0 || usable == 0
          ? 0.0
          : static_cast<double>(payload_bytes +
                                blocks * storage::kBlockHeaderBytes) /
                static_cast<double>(blocks * usable);
  ++cluster_stats_.reorg_runs;
  // Epoch origin for drift detection: cumulative I/O and crossings as of
  // this placement (the rewrite's own reads are behind us, so windows
  // measured from here describe the workload, not the reorg).
  cluster_stats_.post_reorg_disk_reads = disk_.stats().reads;
  cluster_stats_.post_reorg_crossings = traversal_crossings_;

  return RecomputeWorstCaseStats();
}

void ClusterStats::ExportTo(obs::MetricsGroup* g) const {
  g->AddCounter("reorg_runs", reorg_runs);
  g->AddCounter("stat_folds", stat_folds);
  g->AddGauge("instances_placed", static_cast<double>(instances_placed));
  g->AddGauge("clusters_produced", static_cast<double>(clusters_produced));
  g->AddGauge("blocks_produced", static_cast<double>(blocks_produced));
  g->AddGauge("fill_factor", fill_factor);
  g->AddGauge("placement_us", static_cast<double>(placement_us));
  g->AddGauge("reorg_blocks_read", static_cast<double>(reorg_blocks_read));
  g->AddGauge("reorg_blocks_written",
              static_cast<double>(reorg_blocks_written));
  g->AddCounter("raw_access_total", raw_access_total);
  g->AddGauge("decayed_access_total", decayed_access_total);
  g->AddCounter("post_reorg_disk_reads", post_reorg_disk_reads);
  g->AddCounter("post_reorg_crossings", post_reorg_crossings);
}

Status Database::RecomputeWorstCaseStats() {
  // Two directional block-visit estimates per dependency-carrying edge,
  // gathered at cluster time (paper 2.3):
  //  * marking direction (provider -> consumers): the worst-case statistic
  //    used to prioritise mark-out-of-date chunks;
  //  * evaluation direction (consumer -> providers): the initial estimate
  //    seeding each relationship's decaying average of expected I/O.
  // Both are memoised upper-bound traversals; revisits count zero, so
  // shared substructure is not multiply counted along one path.

  // --- marking direction ---
  std::unordered_map<InstanceId, double> mark_memo;
  std::unordered_set<InstanceId> mark_in_progress;
  // mark_wc(I) = sum over edges I->J where J consumes across its port of
  //              [block(J) != block(I)] + mark_wc(J)
  std::function<Result<double>(InstanceId)> mark_wc =
      [&](InstanceId id) -> Result<double> {
    auto hit = mark_memo.find(id);
    if (hit != mark_memo.end()) return hit->second;
    if (mark_in_progress.contains(id)) return 0.0;  // cycle guard
    mark_in_progress.insert(id);

    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
    std::vector<EdgeRecord> edges;  // copy: recursion faults blocks
    for (const auto& port : inst->ports()) {
      edges.insert(edges.end(), port.begin(), port.end());
    }
    CACTIS_ASSIGN_OR_RETURN(BlockId my_block, store_.BlockOf(id));

    double total = 0;
    for (const EdgeRecord& e : edges) {
      CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* peer_cls,
                              ClassOfInstancePtr(e.peer));
      if (!peer_cls->ConsumesAcrossPort(e.peer_port)) continue;
      CACTIS_ASSIGN_OR_RETURN(BlockId peer_block, store_.BlockOf(e.peer));
      CACTIS_ASSIGN_OR_RETURN(double below, mark_wc(e.peer));
      double cost = (peer_block == my_block ? 0.0 : 1.0) + below;
      EdgeStatsFor(e.id).worst_case = cost;
      total += cost;
    }
    mark_in_progress.erase(id);
    mark_memo[id] = total;
    return total;
  };

  // --- evaluation direction ---
  std::unordered_map<InstanceId, double> eval_memo;
  std::unordered_set<InstanceId> eval_in_progress;
  // eval_wc(I) = sum over ports p that I consumes across, over edges
  //              I->K on p, of [block(K) != block(I)] + eval_wc(K)
  std::function<Result<double>(InstanceId)> eval_wc =
      [&](InstanceId id) -> Result<double> {
    auto hit = eval_memo.find(id);
    if (hit != eval_memo.end()) return hit->second;
    if (eval_in_progress.contains(id)) return 0.0;  // cycle guard
    eval_in_progress.insert(id);

    CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                            ClassOfInstancePtr(id));
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
    std::vector<EdgeRecord> edges;
    for (size_t p = 0; p < inst->ports().size(); ++p) {
      if (!cls->ConsumesAcrossPort(p)) continue;
      edges.insert(edges.end(), inst->ports()[p].begin(),
                   inst->ports()[p].end());
    }
    CACTIS_ASSIGN_OR_RETURN(BlockId my_block, store_.BlockOf(id));

    double total = 0;
    for (const EdgeRecord& e : edges) {
      CACTIS_ASSIGN_OR_RETURN(BlockId peer_block, store_.BlockOf(e.peer));
      CACTIS_ASSIGN_OR_RETURN(double below, eval_wc(e.peer));
      double cost = (peer_block == my_block ? 0.0 : 1.0) + below;
      EdgeStatsFor(e.id).decay.Seed(cost);
      total += cost;
    }
    eval_in_progress.erase(id);
    eval_memo[id] = total;
    return total;
  };

  for (InstanceId id : store_.AllInstances()) {
    CACTIS_RETURN_IF_ERROR(mark_wc(id).status());
    CACTIS_RETURN_IF_ERROR(eval_wc(id).status());
  }
  return Status::OK();
}

Status Database::Flush() { return pool_.FlushAll(); }

void Database::ResetStats() {
  disk_.ResetStats();
  pool_.ResetStats();
  engine_->ResetStats();
  scheduler_->ResetStats();
  tsm_.ResetStats();
}

Status Database::InvalidateAttribute(InstanceId id, const std::string& attr) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  size_t idx = cls->AttrIndexOf(attr);
  if (idx == SIZE_MAX) {
    return Status::NotFound("class " + cls->name() + " has no attribute '" +
                            attr + "'");
  }
  CACTIS_RETURN_IF_ERROR(
      engine_->MarkAttribute(AttrSite{id, static_cast<uint32_t>(idx)}));
  return engine_->EvaluateImportant(nullptr);
}

Result<Database::AttrExplainInfo> Database::ExplainAttr(
    InstanceId id, const std::string& attr) {
  CACTIS_SERIAL_GUARD(serial_guard_);
  if (!store_.Contains(id)) {
    return Status::NotFound("no instance " + std::to_string(id.value));
  }
  AttrExplainInfo info;
  // Capture residency *before* decoding: FetchInstance on a cold
  // instance faults the block in, and the point of the flags is what a
  // statement would have found.
  info.resident = store_.IsInstanceResident(id);
  info.cached = cache_.IsCached(id);
  auto block = store_.BlockOf(id);
  if (block.ok()) info.block = block->value;
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          ClassOfInstancePtr(id));
  const schema::AttributeDef* def = cls->FindAttr(attr);
  if (def == nullptr) {
    return Status::NotFound("class " + cls->name() + " has no attribute '" +
                            attr + "'");
  }
  info.class_name = cls->name();
  info.attr_kind = def->is_constraint            ? "constraint"
                   : def->kind == schema::AttrKind::kIntrinsic ? "intrinsic"
                   : def->kind == schema::AttrKind::kExport    ? "export"
                                                               : "derived";
  if (def->index < inst->attrs().size()) {
    const AttrSlot& slot = inst->attrs()[def->index];
    info.out_of_date = slot.out_of_date;
    info.subscribed = slot.subscribed;
  }
  for (const lang::Dependency& d : def->deps) {
    switch (d.kind) {
      case lang::Dependency::Kind::kLocal:
        info.depends_on.push_back(d.name);
        break;
      case lang::Dependency::Kind::kRemote:
        info.depends_on.push_back(d.port + "." + d.name);
        break;
      case lang::Dependency::Kind::kStructural:
        info.depends_on.push_back("structure(" + d.port + ")");
        break;
    }
  }
  for (size_t dep : cls->LocalDependents(def->index)) {
    info.dependents.push_back(cls->attributes()[dep].name);
  }
  return info;
}

// --- Shared helpers ------------------------------------------------------------

Result<Instance*> Database::FetchInstance(InstanceId id, bool count_access) {
  if (count_access) ++access_counts_[id];
  return cache_.Fetch(id);
}

Result<Instance*> Database::FetchInstancePublic(InstanceId id) {
  return FetchInstance(id, false);
}

Result<const schema::ObjectClass*> Database::ClassOfInstancePtr(
    InstanceId id) {
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, FetchInstance(id, false));
  const schema::ObjectClass* cls = catalog_.GetClass(inst->class_id());
  if (cls == nullptr) {
    return Status::Internal("instance " + std::to_string(id.value) +
                            " references unknown class");
  }
  return cls;
}

void Database::UpdateSubtypeMembership(SubtypeId subtype, InstanceId instance,
                                       bool member) {
  if (member) {
    subtype_members_[subtype].insert(instance);
  } else {
    subtype_members_[subtype].erase(instance);
  }
}

Status Database::CheckRead(Transaction* t, InstanceId id) {
  if (t == nullptr || !options_.timestamp_cc) return Status::OK();
  return tsm_.CheckRead(id, t->ts_);
}

Status Database::CheckWrite(Transaction* t, InstanceId id) {
  if (t == nullptr || !options_.timestamp_cc) return Status::OK();
  Status s = tsm_.CheckWrite(id, t->ts_, t->id_.value);
  if (s.ok()) t->cc_writes_.push_back(id);
  return s;
}

void Database::ReleaseCcWrites(Transaction* t) {
  for (InstanceId id : t->cc_writes_) {
    tsm_.ReleaseWrite(id, t->id_.value);
  }
  t->cc_writes_.clear();
}

Database::EdgeStatEntry& Database::EdgeStatsFor(EdgeId id) {
  auto it = edge_stats_.find(id);
  if (it == edge_stats_.end()) {
    it = edge_stats_
             .emplace(id, EdgeStatEntry(options_.decay_alpha,
                                        options_.cluster_decay_alpha))
             .first;
  }
  return it->second;
}

Result<Value> Database::CoerceToType(Value value, ValueType declared) {
  if (declared == ValueType::kNull || value.type() == declared) {
    return value;
  }
  switch (declared) {
    case ValueType::kReal:
      if (value.type() == ValueType::kInt) {
        return Value::Real(static_cast<double>(*value.AsInt()));
      }
      break;
    case ValueType::kInt:
      if (value.type() == ValueType::kBool) {
        return Value::Int(*value.AsBool() ? 1 : 0);
      }
      break;
    case ValueType::kTime:
      if (value.type() == ValueType::kInt) {
        return Value::Time(*value.AsInt());
      }
      break;
    default:
      break;
  }
  return Status::TypeMismatch(
      "value " + value.ToString() + " does not match declared type " +
      std::string(ValueTypeToString(declared)));
}

}  // namespace cactis::core
