// ObjectCache: decoded instances layered over the record store.
//
// The cache mirrors buffer-pool residency: an instance may be cached only
// while its block is resident; eviction of the block drops the decoded
// copy. Writes are write-through — every mutation serialises the instance
// back into the record store immediately — so a dropped copy is never
// newer than its record.
//
// POINTER DISCIPLINE: a Fetch()ed Instance* is valid only until the next
// operation that can fault a block in (another Fetch, a Write, any
// record-store access). Callers copy what they need and re-fetch.
//
// The discipline is enforced mechanically: every cache operation that can
// fault a block bumps `generation_`, each handed-out handle records the
// generation it was issued at, and IsFresh() tells whether a handle is
// still from the current generation. Debug builds assert freshness when a
// cached copy is written through; tests assert it directly.
//
// THREADING: mutating operations are exclusive — callers (Database, and
// through it the server executor) serialise them behind the exclusive
// statement lock, and a ThreadSharedGuard aborts loudly if two threads
// ever race into one. The read path is different: statements running
// under the *shared* statement lock may PeekCached() concurrently. A
// peek performs no LRU bookkeeping (it would race); instead readers
// record deferred touches into small sharded buffers (NoteSharedTouch)
// that the reorganizer drains into the access counts, so hot-set
// clustering still sees read traffic.

#ifndef CACTIS_CORE_OBJECT_CACHE_H_
#define CACTIS_CORE_OBJECT_CACHE_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_guard.h"
#include "core/instance.h"
#include "schema/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/record_store.h"

namespace cactis::core {

class ObjectCache : public storage::ResidencyListener {
 public:
  ObjectCache(const schema::Catalog* catalog, storage::RecordStore* store)
      : catalog_(catalog), store_(store) {}

  /// Returns the decoded instance, faulting its block in if needed.
  Result<Instance*> Fetch(InstanceId id);

  /// Serialises `inst` and writes it through to the record store (the
  /// record may move blocks if it grew). `inst` may be the cached copy.
  Status WriteThrough(const Instance& inst);

  /// Registers a brand-new instance: stores its record and caches it.
  Status Insert(Instance inst);

  /// Removes the instance from cache and store.
  Status Remove(InstanceId id);

  /// Shared read path: returns the decoded copy if (and only if) it is
  /// already cached; never faults, never bumps the generation, never
  /// touches LRU state. Safe from any number of threads holding the
  /// shared statement lock — the pointer stays valid while that lock is
  /// held, because every invalidating operation is exclusive.
  const Instance* PeekCached(InstanceId id) const;

  /// Records a read hit from the shared path for later LRU/clustering
  /// accounting. Lock-striped; drops the touch if its shard is full.
  void NoteSharedTouch(InstanceId id);

  /// Drains all deferred touches, adding one count per touch into
  /// `counts`. Exclusive-lock only (the reorganizer).
  void DrainTouches(std::unordered_map<InstanceId, uint64_t>* counts);

  bool IsCached(InstanceId id) const { return cache_.contains(id); }

  /// Current cache generation; bumped by every operation that can fault
  /// a block (Fetch, WriteThrough, Insert, Remove, block eviction).
  uint64_t generation() const { return generation_; }

  /// True while `inst` is a handle issued at the current generation —
  /// i.e. no block-faulting operation has happened since it was fetched,
  /// so the pointer is still safe to dereference.
  bool IsFresh(const Instance* inst) const {
    return inst != nullptr && inst->cache_epoch() == generation_;
  }

  // storage::ResidencyListener:
  void OnBlockLoaded(BlockId /*id*/) override {}
  void OnBlockEvicted(BlockId id) override;

 private:
  void IndexUnderBlock(InstanceId id);

  static constexpr size_t kTouchShards = 8;
  static constexpr size_t kTouchShardCapacity = 4096;

  struct TouchShard {
    std::mutex mu;
    std::vector<InstanceId> touches;
  };

  const schema::Catalog* catalog_;
  storage::RecordStore* store_;
  mutable ThreadSharedGuard serial_guard_;
  uint64_t generation_ = 0;
  std::unordered_map<InstanceId, std::unique_ptr<Instance>> cache_;
  std::unordered_map<BlockId, std::unordered_set<InstanceId>> by_block_;
  std::unordered_map<InstanceId, BlockId> block_of_;
  mutable TouchShard touch_shards_[kTouchShards];
};

}  // namespace cactis::core

#endif  // CACTIS_CORE_OBJECT_CACHE_H_
