// ObjectCache: decoded instances layered over the record store.
//
// The cache mirrors buffer-pool residency: an instance may be cached only
// while its block is resident; eviction of the block drops the decoded
// copy. Writes are write-through — every mutation serialises the instance
// back into the record store immediately — so a dropped copy is never
// newer than its record.
//
// POINTER DISCIPLINE: a Fetch()ed Instance* is valid only until the next
// operation that can fault a block in (another Fetch, a Write, any
// record-store access). Callers copy what they need and re-fetch.
//
// The discipline is enforced mechanically: every cache operation that can
// fault a block bumps `generation_`, each handed-out handle records the
// generation it was issued at, and IsFresh() tells whether a handle is
// still from the current generation. Debug builds assert freshness when a
// cached copy is written through; tests assert it directly.
//
// THREADING: like the rest of the storage stack, the cache is
// single-threaded — callers (Database, and through it the server
// executor) serialise all access. A ThreadSerialGuard aborts loudly if
// two threads ever race into a mutating operation.

#ifndef CACTIS_CORE_OBJECT_CACHE_H_
#define CACTIS_CORE_OBJECT_CACHE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_guard.h"
#include "core/instance.h"
#include "schema/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/record_store.h"

namespace cactis::core {

class ObjectCache : public storage::ResidencyListener {
 public:
  ObjectCache(const schema::Catalog* catalog, storage::RecordStore* store)
      : catalog_(catalog), store_(store) {}

  /// Returns the decoded instance, faulting its block in if needed.
  Result<Instance*> Fetch(InstanceId id);

  /// Serialises `inst` and writes it through to the record store (the
  /// record may move blocks if it grew). `inst` may be the cached copy.
  Status WriteThrough(const Instance& inst);

  /// Registers a brand-new instance: stores its record and caches it.
  Status Insert(Instance inst);

  /// Removes the instance from cache and store.
  Status Remove(InstanceId id);

  bool IsCached(InstanceId id) const { return cache_.contains(id); }

  /// Current cache generation; bumped by every operation that can fault
  /// a block (Fetch, WriteThrough, Insert, Remove, block eviction).
  uint64_t generation() const { return generation_; }

  /// True while `inst` is a handle issued at the current generation —
  /// i.e. no block-faulting operation has happened since it was fetched,
  /// so the pointer is still safe to dereference.
  bool IsFresh(const Instance* inst) const {
    return inst != nullptr && inst->cache_epoch() == generation_;
  }

  // storage::ResidencyListener:
  void OnBlockLoaded(BlockId /*id*/) override {}
  void OnBlockEvicted(BlockId id) override;

 private:
  void IndexUnderBlock(InstanceId id);

  const schema::Catalog* catalog_;
  storage::RecordStore* store_;
  mutable ThreadSerialGuard serial_guard_;
  uint64_t generation_ = 0;
  std::unordered_map<InstanceId, std::unique_ptr<Instance>> cache_;
  std::unordered_map<BlockId, std::unordered_set<InstanceId>> by_block_;
  std::unordered_map<InstanceId, BlockId> block_of_;
};

}  // namespace cactis::core

#endif  // CACTIS_CORE_OBJECT_CACHE_H_
