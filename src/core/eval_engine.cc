#include "core/eval_engine.h"

#include <algorithm>
#include <utility>

#include "core/database.h"
#include "obs/request_context.h"

#include <cstdio>
#include <cstdlib>

// Event tracing for engine debugging: set CACTIS_EVTRACE=1 to stream
// request/gather/notify/complete events to stderr.
namespace {
bool EvTraceEnabled() {
  static const bool enabled = std::getenv("CACTIS_EVTRACE") != nullptr;
  return enabled;
}
}  // namespace

#define CACTIS_EVTRACE(...) \
  do {                                          \
    if (EvTraceEnabled()) fprintf(stderr, __VA_ARGS__); \
  } while (0)


namespace cactis::core {

namespace {

std::string SiteName(Database* db, const AttrSite& site) {
  auto cls = db->ClassOf(site.instance);
  std::string out = "instance " + std::to_string(site.instance.value);
  if (cls.ok()) {
    const schema::ObjectClass* c = db->catalog()->GetClass(*cls);
    if (c != nullptr && site.attr < c->attributes().size()) {
      return c->name() + "#" + std::to_string(site.instance.value) + "." +
             c->attributes()[site.attr].name;
    }
  }
  return out + ".attr" + std::to_string(site.attr);
}

}  // namespace

// --- RuleContext -----------------------------------------------------------

/// The EvalContext a rule executes against: binds one instance, routes
/// attribute reads through the engine (with synchronous fallback
/// evaluation), counts relationship crossings, and enforces concurrency
/// control on every instance the rule touches.
class RuleContext : public lang::EvalContext {
 public:
  RuleContext(Database* db, EvalEngine* engine, InstanceId self,
              const schema::ObjectClass* cls, Transaction* txn,
              bool allow_assign)
      : db_(db),
        engine_(engine),
        self_(self),
        cls_(cls),
        txn_(txn),
        allow_assign_(allow_assign) {}

  Result<Value> GetLocalAttr(const std::string& name) override {
    size_t idx = cls_->AttrIndexOf(name);
    if (idx == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no attribute '" + name + "'");
    }
    return ReadAttr(AttrSite{self_, static_cast<uint32_t>(idx)}, *cls_);
  }

  bool HasLocalAttr(const std::string& name) const override {
    return cls_->AttrIndexOf(name) != SIZE_MAX;
  }

  bool HasPort(const std::string& name) const override {
    return cls_->PortIndexOf(name) != SIZE_MAX;
  }

  Result<std::vector<Neighbor>> GetNeighbors(
      const std::string& port) override {
    size_t p = cls_->PortIndexOf(port);
    if (p == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no relationship '" + port + "'");
    }
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(self_));
    std::vector<Neighbor> out;
    out.reserve(inst->ports()[p].size());
    for (const EdgeRecord& e : inst->ports()[p]) {
      Neighbor n;
      n.id = e.peer;
      n.my_port = static_cast<uint32_t>(p);
      n.peer_port = e.peer_port;
      n.edge = e.id;
      out.push_back(n);
    }
    return out;
  }

  Result<Value> GetRemoteValue(const Neighbor& neighbor,
                               const std::string& name) override {
    db_->RecordCrossing(neighbor.edge);
    CACTIS_RETURN_IF_ERROR(db_->CheckRead(txn_, neighbor.id));
    CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* peer_cls,
                            db_->ClassOfInstancePtr(neighbor.id));
    size_t idx = peer_cls->ResolveProvidedValue(neighbor.peer_port, name);
    if (idx == SIZE_MAX) {
      return Status::NotFound(
          "class " + peer_cls->name() + " provides no value '" + name +
          "' across relationship '" +
          (neighbor.peer_port < peer_cls->ports().size()
               ? peer_cls->ports()[neighbor.peer_port].name
               : "?") +
          "'");
    }
    return ReadAttr(AttrSite{neighbor.id, static_cast<uint32_t>(idx)},
                    *peer_cls);
  }

  Status SetLocalAttr(const std::string& name, Value value) override {
    if (!allow_assign_) {
      return Status::InvalidArgument(
          "attribute evaluation rules may not assign attributes ('" + name +
          "'); only recovery actions may");
    }
    size_t idx = cls_->AttrIndexOf(name);
    if (idx == SIZE_MAX) {
      return Status::NotFound("class " + cls_->name() +
                              " has no attribute '" + name + "'");
    }
    const schema::AttributeDef& def = cls_->attributes()[idx];
    if (def.is_derived()) {
      return Status::InvalidArgument(
          "recovery action assigns derived attribute '" + name +
          "'; only intrinsic attributes may be given new values");
    }
    txn::TransactionDelta* log =
        txn_ == nullptr ? nullptr : &txn_->delta_;
    return db_->DoSet(log, txn_, self_, idx, std::move(value));
  }

  const lang::BuiltinRegistry& builtins() const override {
    return db_->builtins_;
  }

 private:
  /// Reads an attribute slot; when it is a derived slot that is out of
  /// date, falls back to synchronous evaluation (in the chunked path the
  /// dependencies were pre-evaluated, so this is rare and counted).
  Result<Value> ReadAttr(const AttrSite& site,
                         const schema::ObjectClass& cls) {
    CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
    const schema::AttributeDef& def = cls.attributes()[site.attr];
    const AttrSlot& slot = inst->attrs()[site.attr];
    if (def.is_derived() && slot.out_of_date) {
      ++engine_->stats_.sync_fallbacks;
      return engine_->EvalSync(site, txn_);
    }
    return slot.value;
  }

  Database* db_;
  EvalEngine* engine_;
  InstanceId self_;
  const schema::ObjectClass* cls_;
  Transaction* txn_;
  bool allow_assign_;
};

// --- Marking (phase 1) -----------------------------------------------------

Status EvalEngine::MarkDependentsOf(const AttrSite& site) {
  return ForEachDependent(site, [this](const AttrSite& dep, EdgeId via) {
    ScheduleMark(dep, via);
    return Status::OK();
  });
}

Status EvalEngine::MarkPortChanged(InstanceId instance, size_t port_index) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(instance));
  std::set<size_t> targets;
  for (size_t idx : cls->StructuralDependents(port_index)) {
    targets.insert(idx);
  }
  for (const auto& [port, name] : cls->ConsumedRemoteValues()) {
    if (port != port_index) continue;
    for (size_t idx : cls->RemoteDependents(port, name)) targets.insert(idx);
  }
  for (size_t idx : targets) {
    ScheduleMark(AttrSite{instance, static_cast<uint32_t>(idx)}, EdgeId());
  }
  return Status::OK();
}

Status EvalEngine::MarkAttribute(const AttrSite& site) {
  ScheduleMark(site, EdgeId());
  return Status::OK();
}

void EvalEngine::ScheduleMark(const AttrSite& site, EdgeId via_edge) {
  sched::Chunk chunk;
  chunk.owner = site.instance;
  chunk.expected_io =
      via_edge.valid() ? db_->EdgeStatsFor(via_edge).worst_case : 0.0;
  chunk.run = [this, site] { return RunMarkChunk(site); };
  db_->scheduler_->Schedule(std::move(chunk));
}

Status EvalEngine::RunMarkChunk(const AttrSite& site) {
  ++stats_.mark_visits;
  db_->trace_.Record(obs::SpanKind::kMarkChunk, site.instance.value,
                     site.attr);
  // The instance may have been deleted after this chunk was scheduled
  // (delete-instance breaks all relationships first, and those markings
  // drain after the instance is gone).
  if (!db_->store_.Contains(site.instance)) return Status::OK();
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  if (site.attr >= cls->attributes().size()) {
    return Status::Internal("mark chunk for out-of-range attribute");
  }
  const schema::AttributeDef& def = cls->attributes()[site.attr];
  if (!def.is_derived()) return Status::OK();

  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  AttrSlot& slot = inst->attrs()[site.attr];
  if (slot.out_of_date) {
    // The paper's repeated-update cut-off: everything downstream is
    // already marked, so this branch terminates in O(1). An important
    // attribute lingering out of date (possible after a rollback or a
    // class extension) must still be re-established.
    ++stats_.mark_cutoffs;
    if (def.intrinsically_important() || slot.subscribed) {
      to_evaluate_.push_back(site);
    }
    return Status::OK();
  }
  slot.out_of_date = true;
  bool important = def.intrinsically_important() || slot.subscribed;
  CACTIS_RETURN_IF_ERROR(db_->WriteInstance(*inst));
  ++stats_.attrs_marked;
  if (important) to_evaluate_.push_back(site);
  if (db_->change_listener_) {
    db_->change_listener_(site.instance, site.attr);
  }
  return MarkDependentsOf(site);
}

Status EvalEngine::ForEachDependent(
    const AttrSite& site,
    const std::function<Status(const AttrSite&, EdgeId)>& fn) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  const schema::AttributeDef& def = cls->attributes()[site.attr];

  // Local dependents within the same instance.
  for (size_t idx : cls->LocalDependents(site.attr)) {
    CACTIS_RETURN_IF_ERROR(
        fn(AttrSite{site.instance, static_cast<uint32_t>(idx)}, EdgeId()));
  }

  // Remote dependents across relationships. Copy the edge lists first:
  // fetching peers can evict this instance's block.
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  std::vector<std::pair<size_t, std::vector<EdgeRecord>>> edges_by_port;
  if (def.kind == schema::AttrKind::kExport) {
    edges_by_port.emplace_back(def.export_port_index,
                               inst->ports()[def.export_port_index]);
  } else {
    for (size_t p = 0; p < inst->ports().size(); ++p) {
      if (cls->ResolveProvidedValue(p, def.name) != site.attr) continue;
      edges_by_port.emplace_back(p, inst->ports()[p]);
    }
  }
  const std::string& provided_name =
      def.kind == schema::AttrKind::kExport ? def.export_name : def.name;

  for (const auto& [port, edges] : edges_by_port) {
    (void)port;
    for (const EdgeRecord& e : edges) {
      db_->RecordCrossing(e.id);
      CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* peer_cls,
                              db_->ClassOfInstancePtr(e.peer));
      for (size_t idx :
           peer_cls->RemoteDependents(e.peer_port, provided_name)) {
        CACTIS_RETURN_IF_ERROR(
            fn(AttrSite{e.peer, static_cast<uint32_t>(idx)}, e.id));
      }
    }
  }
  return Status::OK();
}

// --- Evaluation (phase 2) --------------------------------------------------

Status EvalEngine::RequestEval(const AttrSite& site,
                               std::optional<AttrSite> waiter, EdgeId via_edge,
                               bool user_request) {
  ++stats_.eval_requests;
  CACTIS_EVTRACE("[req] %llu.%u waiter=%llu done=%d\n",
                 (unsigned long long)site.instance.value, site.attr,
                 waiter ? (unsigned long long)waiter->instance.value : 0,
                 (int)nodes_[site].done);
  EvalNode& node = nodes_[site];
  node.site = site;
  if (node.done) return Status::OK();
  if (waiter.has_value()) {
    node.waiters.push_back(*waiter);
    ++nodes_[*waiter].pending;  // may rehash; `node` not used below
  }
  EvalNode& fresh = nodes_[site];
  if (!fresh.requested) {
    fresh.requested = true;
    fresh.via_edge = via_edge;
    sched::Chunk chunk;
    chunk.owner = site.instance;
    chunk.user_request = user_request;
    chunk.expected_io =
        via_edge.valid() ? db_->EdgeStatsFor(via_edge).decay.value() : 0.0;
    chunk.run = [this, site] { return RunGatherChunk(site); };
    db_->scheduler_->Schedule(std::move(chunk));
  }
  return Status::OK();
}

Status EvalEngine::RunGatherChunk(const AttrSite& site) {
  db_->trace_.Record(obs::SpanKind::kGatherChunk, site.instance.value,
                     site.attr);
  EvalNode* node = &nodes_[site];
  node->site = site;
  if (node->gathered || node->done) return Status::OK();
  if (!db_->store_.Contains(site.instance)) {
    node->gathered = true;
    return CompleteNode(site);
  }

  uint64_t before = db_->disk_.stats().reads;
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  nodes_[site].io_cost += static_cast<double>(db_->disk_.stats().reads - before);
  node = &nodes_[site];

  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  const schema::AttributeDef& def = cls->attributes()[site.attr];
  CACTIS_ASSIGN_OR_RETURN(inst, db_->FetchInstance(site.instance));
  const AttrSlot& slot = inst->attrs()[site.attr];
  if (!def.is_derived() || !slot.out_of_date) {
    node->gathered = true;
    return CompleteNode(site);
  }

  // Request every value the rule depends on. Local dependencies are
  // resolved immediately; remote ones get a resolve chunk per edge (the
  // neighbour must be touched to know its class and freshness, and that
  // touch is itself schedulable work).
  std::vector<AttrSite> local_requests;
  std::vector<std::tuple<EdgeRecord, std::string>> remote_requests;
  for (const lang::Dependency& d : def.deps) {
    switch (d.kind) {
      case lang::Dependency::Kind::kLocal: {
        size_t idx = cls->AttrIndexOf(d.name);
        if (idx == SIZE_MAX) continue;  // validated at schema time
        const schema::AttributeDef& dep_def = cls->attributes()[idx];
        const AttrSlot& dep_slot = inst->attrs()[idx];
        if (dep_def.is_derived() && dep_slot.out_of_date) {
          local_requests.push_back(
              AttrSite{site.instance, static_cast<uint32_t>(idx)});
        }
        break;
      }
      case lang::Dependency::Kind::kRemote: {
        size_t p = cls->PortIndexOf(d.port);
        if (p == SIZE_MAX) continue;
        for (const EdgeRecord& e : inst->ports()[p]) {
          remote_requests.emplace_back(e, d.name);
        }
        break;
      }
      case lang::Dependency::Kind::kStructural:
        break;  // edge sets are read directly by the rule
    }
  }

  for (const AttrSite& dep : local_requests) {
    CACTIS_RETURN_IF_ERROR(RequestEval(dep, site, EdgeId(), false));
  }
  for (const auto& [edge, name] : remote_requests) {
    ++nodes_[site].pending;
    sched::Chunk chunk;
    chunk.owner = edge.peer;
    chunk.expected_io = db_->EdgeStatsFor(edge.id).decay.value();
    EdgeRecord e = edge;
    std::string value_name = name;
    chunk.run = [this, site, e, value_name] {
      return RunResolveChunk(site, e, value_name);
    };
    db_->scheduler_->Schedule(std::move(chunk));
  }

  EvalNode& after = nodes_[site];
  after.gathered = true;
  CACTIS_EVTRACE("[gathered] %llu.%u pending=%d\n",
                 (unsigned long long)site.instance.value, site.attr,
                 after.pending);
  if (after.pending == 0) ScheduleCompute(site);
  return Status::OK();
}

Status EvalEngine::RunResolveChunk(const AttrSite& parent,
                                   const EdgeRecord& edge,
                                   const std::string& name) {
  db_->trace_.Record(obs::SpanKind::kResolveChunk, edge.peer.value,
                     parent.attr);
  if (!db_->store_.Contains(edge.peer)) return NotifyDependencyDone(parent);
  uint64_t before = db_->disk_.stats().reads;
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* peer_cls,
                          db_->ClassOfInstancePtr(edge.peer));
  nodes_[parent].io_cost +=
      static_cast<double>(db_->disk_.stats().reads - before);

  db_->RecordCrossing(edge.id);
  size_t idx = peer_cls->ResolveProvidedValue(edge.peer_port, name);
  if (idx != SIZE_MAX) {
    const schema::AttributeDef& def = peer_cls->attributes()[idx];
    CACTIS_ASSIGN_OR_RETURN(Instance * peer, db_->FetchInstance(edge.peer));
    if (def.is_derived() && peer->attrs()[idx].out_of_date) {
      CACTIS_RETURN_IF_ERROR(
          RequestEval(AttrSite{edge.peer, static_cast<uint32_t>(idx)}, parent,
                      edge.id, false));
    }
  }
  // An unresolvable name is reported by the rule itself when it actually
  // reads the value; a resolve chunk stays silent (the rule may never
  // touch this neighbour dynamically).
  return NotifyDependencyDone(parent);
}

Status EvalEngine::NotifyDependencyDone(const AttrSite& site) {
  EvalNode& node = nodes_[site];
  CACTIS_EVTRACE("[notify] %llu.%u pending=%d gathered=%d\n",
                 (unsigned long long)site.instance.value, site.attr,
                 node.pending, (int)node.gathered);
  if (--node.pending == 0 && node.gathered && !node.done) {
    ScheduleCompute(site);
  }
  return Status::OK();
}

void EvalEngine::ScheduleCompute(const AttrSite& site) {
  sched::Chunk chunk;
  chunk.owner = site.instance;
  chunk.expected_io = 0.0;  // inputs gathered; only the owner block needed
  chunk.run = [this, site] { return RunComputeChunk(site); };
  db_->scheduler_->Schedule(std::move(chunk));
}

Status EvalEngine::RunComputeChunk(const AttrSite& site) {
  db_->trace_.Record(obs::SpanKind::kComputeChunk, site.instance.value,
                     site.attr);
  EvalNode* node = &nodes_[site];
  if (node->done) return Status::OK();
  if (!db_->store_.Contains(site.instance)) return CompleteNode(site);

  uint64_t before = db_->disk_.stats().reads;
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  nodes_[site].io_cost +=
      static_cast<double>(db_->disk_.stats().reads - before);

  // Re-check freshness: a synchronous fallback may have evaluated us while
  // we waited in a queue.
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  CACTIS_ASSIGN_OR_RETURN(inst, db_->FetchInstance(site.instance));
  if (!inst->attrs()[site.attr].out_of_date ||
      !cls->attributes()[site.attr].is_derived()) {
    return CompleteNode(site);
  }

  CACTIS_ASSIGN_OR_RETURN(Value value, ExecuteRule(site, current_txn_));
  CACTIS_RETURN_IF_ERROR(PublishValue(site, std::move(value)));
  return CompleteNode(site);
}

Status EvalEngine::CompleteNode(const AttrSite& site) {
  CACTIS_EVTRACE("[complete] %llu.%u\n",
                 (unsigned long long)site.instance.value, site.attr);
  // Move waiters out before mutating the map further.
  std::vector<AttrSite> waiters;
  double io_cost = 0;
  EdgeId via;
  {
    EvalNode& node = nodes_[site];
    if (node.done) return Status::OK();
    node.done = true;
    waiters = std::move(node.waiters);
    node.waiters.clear();
    io_cost = node.io_cost;
    via = node.via_edge;
  }

  if (via.valid() && db_->options_.adaptive_stats) {
    db_->EdgeStatsFor(via).decay.Record(io_cost);
  }

  bool charged = false;
  for (const AttrSite& w : waiters) {
    if (!charged) {
      nodes_[w].io_cost += io_cost;
      charged = true;
    }
    CACTIS_RETURN_IF_ERROR(NotifyDependencyDone(w));
  }
  return Status::OK();
}

Result<Value> EvalEngine::ExecuteRule(const AttrSite& site, Transaction* txn) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  const schema::AttributeDef& def = cls->attributes()[site.attr];
  if (def.rule == nullptr) {
    return Status::Internal("ExecuteRule on attribute without rule: " +
                            SiteName(db_, site));
  }
  ++stats_.rule_evaluations;
  if (auto* c = obs::RequestScope::CurrentCost()) ++c->attrs_reevaluated;
  // Mirror instances (distribution layer): the owning site supplies the
  // value instead of the local rule.
  auto mirror = db_->mirror_resolvers_.find(site.instance);
  if (mirror != db_->mirror_resolvers_.end()) {
    Result<Value> fetched = mirror->second(site.attr);
    if (!fetched.ok()) {
      return Status(fetched.status().code(),
                    "fetching mirrored " + SiteName(db_, site) + ": " +
                        fetched.status().message());
    }
    return Database::CoerceToType(std::move(fetched).value(), def.type);
  }
  RuleContext ctx(db_, this, site.instance, cls, txn,
                  /*allow_assign=*/false);
  Result<Value> raw = def.rule->is_native
                          ? def.rule->native.fn(&ctx)
                          : lang::Interpreter::EvalRule(def.rule->body, &ctx);
  if (!raw.ok()) {
    return Status(raw.status().code(), "evaluating " + SiteName(db_, site) +
                                           ": " + raw.status().message());
  }
  return Database::CoerceToType(std::move(raw).value(), def.type);
}

Status EvalEngine::PublishValue(const AttrSite& site, Value value) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  const schema::AttributeDef& def = cls->attributes()[site.attr];

  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  AttrSlot& slot = inst->attrs()[site.attr];
  slot.value = value;
  slot.out_of_date = false;
  CACTIS_RETURN_IF_ERROR(db_->WriteInstance(*inst));

  if (def.is_constraint) {
    ++stats_.constraint_checks;
    auto ok = value.AsBool();
    if (!ok.ok()) {
      return Status::TypeMismatch("constraint " + SiteName(db_, site) +
                                  " did not evaluate to a boolean");
    }
    if (!*ok && !replay_mode_) {
      ++stats_.constraint_violations;
      violations_.push_back(site);
    }
  }
  if (def.subtype.valid()) {
    auto member = value.AsBool();
    if (member.ok()) {
      db_->UpdateSubtypeMembership(def.subtype, site.instance, *member);
    }
  }
  return Status::OK();
}

Result<Value> EvalEngine::EvalAdHoc(InstanceId instance,
                                    const schema::ObjectClass* cls,
                                    const lang::RuleBody& body,
                                    Transaction* txn) {
  RuleContext ctx(db_, this, instance, cls, txn, /*allow_assign=*/false);
  return lang::Interpreter::EvalRule(body, &ctx);
}

Result<Value> EvalEngine::EvalSync(const AttrSite& site, Transaction* txn) {
  CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                          db_->ClassOfInstancePtr(site.instance));
  const schema::AttributeDef& def = cls->attributes()[site.attr];
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  if (!def.is_derived() || !inst->attrs()[site.attr].out_of_date) {
    return inst->attrs()[site.attr].value;
  }
  if (std::find(sync_stack_.begin(), sync_stack_.end(), site) !=
      sync_stack_.end()) {
    if (def.circular) {
      // Fixed-point mode: hand back the current iterate; the engine-level
      // iteration drives convergence.
      return inst->attrs()[site.attr].value;
    }
    return Status::CycleDetected(
        "attribute dependency cycle involving " + SiteName(db_, site) +
        " (Cactis does not support data cycles)");
  }
  sync_stack_.push_back(site);
  Result<Value> value = ExecuteRule(site, txn);
  sync_stack_.pop_back();
  CACTIS_RETURN_IF_ERROR(value.status());
  CACTIS_RETURN_IF_ERROR(PublishValue(site, value.value()));
  // Re-read: PublishValue coerced nothing further, value is canonical.
  CACTIS_ASSIGN_OR_RETURN(Instance * after, db_->FetchInstance(site.instance));
  return after->attrs()[site.attr].value;
}

// --- Driving ---------------------------------------------------------------

Status EvalEngine::DrainAndCheck() {
  for (int round = 0; ; ++round) {
    while (true) {
      CACTIS_RETURN_IF_ERROR(db_->scheduler_->RunUntilIdle());
      if (to_evaluate_.empty()) break;
      while (!to_evaluate_.empty()) {
        AttrSite site = to_evaluate_.front();
        to_evaluate_.pop_front();
        CACTIS_RETURN_IF_ERROR(
            RequestEval(site, std::nullopt, EdgeId(), false));
      }
    }

    // Collect stuck nodes (a dependency cycle and everything waiting on
    // it).
    std::vector<AttrSite> stuck;
    for (const auto& [site, node] : nodes_) {
      if (!node.done) stuck.push_back(site);
    }
    if (stuck.empty()) {
      nodes_.clear();
      return Status::OK();
    }
    std::sort(stuck.begin(), stuck.end());

    // The stuck set is the dependency cycle itself plus every attribute
    // transitively waiting on it. Only the `circular` attributes can form
    // a resolvable cycle: fix-point them; their completion unblocks the
    // (non-circular) waiters on the next drain.
    std::vector<AttrSite> circular_stuck;
    for (const AttrSite& site : stuck) {
      auto cls = db_->ClassOfInstancePtr(site.instance);
      bool circular = cls.ok() && site.attr < (*cls)->attributes().size() &&
                      (*cls)->attributes()[site.attr].circular;
      if (circular) circular_stuck.push_back(site);
      if (EvTraceEnabled()) {
        const EvalNode& n2 = nodes_[site];
        fprintf(stderr,
                "[stuck] %s circ=%d pending=%d gathered=%d waiters=%zu\n",
                SiteName(db_, site).c_str(), (int)circular, n2.pending,
                (int)n2.gathered, n2.waiters.size());
      }
    }
    if (circular_stuck.empty() || round > 8) {
      AttrSite culprit = stuck.front();
      bool had_circular = !circular_stuck.empty();
      nodes_.clear();
      return Status::CycleDetected(
          "attribute dependency cycle involving " + SiteName(db_, culprit) +
          (had_circular
               ? " (fixed-point evaluation did not settle the graph)"
               : " (Cactis does not support data cycles; declare the "
                 "attributes `circular` for fixed-point evaluation)"));
    }

    CACTIS_RETURN_IF_ERROR(FixpointEvaluate(circular_stuck));
    // Completing the fix-pointed nodes wakes their waiters; drain again.
    for (const AttrSite& site : circular_stuck) {
      CACTIS_RETURN_IF_ERROR(CompleteNode(site));
    }
  }
}

Status EvalEngine::FixpointEvaluate(std::vector<AttrSite> sites) {
  // Initialise every participating attribute to its declared default (the
  // lattice bottom) without triggering constraint/subtype machinery.
  for (const AttrSite& site : sites) {
    CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                            db_->ClassOfInstancePtr(site.instance));
    const Value& bottom = cls->attributes()[site.attr].default_value;
    CACTIS_ASSIGN_OR_RETURN(Instance * inst,
                            db_->FetchInstance(site.instance));
    inst->attrs()[site.attr].value = bottom;
    inst->attrs()[site.attr].out_of_date = false;
    CACTIS_RETURN_IF_ERROR(db_->WriteInstance(*inst));
  }

  int limit = db_->options_.max_fixpoint_iterations;
  for (int iter = 0; iter < limit; ++iter) {
    bool changed = false;
    for (const AttrSite& site : sites) {
      CACTIS_ASSIGN_OR_RETURN(Value value, ExecuteRule(site, current_txn_));
      CACTIS_ASSIGN_OR_RETURN(Instance * inst,
                              db_->FetchInstance(site.instance));
      if (!(inst->attrs()[site.attr].value == value)) {
        changed = true;
        CACTIS_RETURN_IF_ERROR(PublishValue(site, std::move(value)));
      }
    }
    if (!changed) return Status::OK();
  }
  return Status::CycleDetected(
      "circular attribute evaluation did not converge within " +
      std::to_string(limit) + " iterations (is the rule monotonic?)");
}

Status EvalEngine::EvaluateImportant(Transaction* txn) {
  Transaction* saved = current_txn_;
  current_txn_ = txn;
  Status status = EvaluateImportantImpl(txn);
  current_txn_ = saved;
  return status;
}

Status EvalEngine::EvaluateImportantImpl(Transaction* txn) {
  for (int round = 0; round <= db_->options_.max_recovery_rounds; ++round) {
    CACTIS_RETURN_IF_ERROR(DrainAndCheck());
    if (violations_.empty()) return Status::OK();

    std::vector<AttrSite> viols = std::exchange(violations_, {});
    for (const AttrSite& site : viols) {
      CACTIS_ASSIGN_OR_RETURN(const schema::ObjectClass* cls,
                              db_->ClassOfInstancePtr(site.instance));
      const schema::AttributeDef& def = cls->attributes()[site.attr];
      if (def.recovery == nullptr) {
        return Status::ConstraintViolation("constraint " +
                                           SiteName(db_, site) + " violated");
      }
      ++stats_.recoveries_run;
      RuleContext ctx(db_, this, site.instance, cls, txn,
                      /*allow_assign=*/true);
      CACTIS_RETURN_IF_ERROR(
          lang::Interpreter::ExecStmts(*def.recovery, &ctx));
    }
    // Let the recovery's effects propagate, then verify each predicate.
    CACTIS_RETURN_IF_ERROR(DrainAndCheck());
    for (const AttrSite& site : viols) {
      CACTIS_ASSIGN_OR_RETURN(Value v, EvalSync(site, txn));
      auto ok = v.AsBool();
      if (!ok.ok() || !*ok) {
        return Status::ConstraintViolation(
            "constraint " + SiteName(db_, site) +
            " still violated after its recovery action");
      }
    }
  }
  if (!violations_.empty()) {
    return Status::ConstraintViolation(
        "constraint recovery did not converge after " +
        std::to_string(db_->options_.max_recovery_rounds) + " rounds");
  }
  return Status::OK();
}

Result<Value> EvalEngine::DemandValue(const AttrSite& site, Transaction* txn,
                                      bool user_request) {
  CACTIS_RETURN_IF_ERROR(RequestEval(site, std::nullopt, EdgeId(),
                                     user_request));
  CACTIS_RETURN_IF_ERROR(EvaluateImportant(txn));
  CACTIS_ASSIGN_OR_RETURN(Instance * inst, db_->FetchInstance(site.instance));
  return inst->attrs()[site.attr].value;
}

}  // namespace cactis::core
