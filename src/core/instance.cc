#include "core/instance.h"

#include "common/serial.h"

namespace cactis::core {

Instance Instance::Create(InstanceId id, const schema::ObjectClass& cls) {
  Instance inst;
  inst.id_ = id;
  inst.class_id_ = cls.id();
  inst.attrs_.reserve(cls.attributes().size());
  for (const schema::AttributeDef& def : cls.attributes()) {
    AttrSlot slot;
    slot.value = def.default_value;
    slot.out_of_date = def.is_derived();
    inst.attrs_.push_back(std::move(slot));
  }
  inst.ports_.resize(cls.ports().size());
  return inst;
}

void Instance::MigrateTo(const schema::ObjectClass& cls) {
  for (size_t i = attrs_.size(); i < cls.attributes().size(); ++i) {
    const schema::AttributeDef& def = cls.attributes()[i];
    AttrSlot slot;
    slot.value = def.default_value;
    slot.out_of_date = def.is_derived();
    attrs_.push_back(std::move(slot));
  }
  if (ports_.size() < cls.ports().size()) {
    ports_.resize(cls.ports().size());
  }
}

std::string Instance::Serialize() const {
  BinaryWriter w;
  w.PutU64(id_.value);
  w.PutU64(class_id_.value);
  w.PutU32(static_cast<uint32_t>(attrs_.size()));
  for (const AttrSlot& slot : attrs_) {
    uint8_t flags = 0;
    if (slot.out_of_date) flags |= 1;
    if (slot.subscribed) flags |= 2;
    w.PutU8(flags);
    ValueCodec::Encode(slot.value, &w);
  }
  w.PutU32(static_cast<uint32_t>(ports_.size()));
  for (const std::vector<EdgeRecord>& edges : ports_) {
    w.PutU32(static_cast<uint32_t>(edges.size()));
    for (const EdgeRecord& e : edges) {
      w.PutU64(e.id.value);
      w.PutU64(e.peer.value);
      w.PutU32(e.peer_port);
    }
  }
  return w.Take();
}

Result<Instance> Instance::Deserialize(const std::string& payload,
                                       const schema::Catalog& catalog) {
  BinaryReader r(payload);
  Instance inst;
  CACTIS_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
  CACTIS_ASSIGN_OR_RETURN(uint64_t cls, r.GetU64());
  inst.id_ = InstanceId(id);
  inst.class_id_ = ClassId(cls);
  CACTIS_ASSIGN_OR_RETURN(uint32_t attr_count, r.GetU32());
  inst.attrs_.reserve(attr_count);
  for (uint32_t i = 0; i < attr_count; ++i) {
    CACTIS_ASSIGN_OR_RETURN(uint8_t flags, r.GetU8());
    CACTIS_ASSIGN_OR_RETURN(Value v, ValueCodec::Decode(&r));
    AttrSlot slot;
    slot.value = std::move(v);
    slot.out_of_date = (flags & 1) != 0;
    slot.subscribed = (flags & 2) != 0;
    inst.attrs_.push_back(std::move(slot));
  }
  CACTIS_ASSIGN_OR_RETURN(uint32_t port_count, r.GetU32());
  inst.ports_.resize(port_count);
  for (uint32_t p = 0; p < port_count; ++p) {
    CACTIS_ASSIGN_OR_RETURN(uint32_t edge_count, r.GetU32());
    inst.ports_[p].reserve(edge_count);
    for (uint32_t e = 0; e < edge_count; ++e) {
      EdgeRecord edge;
      CACTIS_ASSIGN_OR_RETURN(uint64_t eid, r.GetU64());
      CACTIS_ASSIGN_OR_RETURN(uint64_t peer, r.GetU64());
      CACTIS_ASSIGN_OR_RETURN(uint32_t peer_port, r.GetU32());
      edge.id = EdgeId(eid);
      edge.peer = InstanceId(peer);
      edge.peer_port = peer_port;
      inst.ports_[p].push_back(edge);
    }
  }

  const schema::ObjectClass* cls_def = catalog.GetClass(inst.class_id_);
  if (cls_def == nullptr) {
    return Status::Internal("stored instance references unknown class id " +
                            std::to_string(cls));
  }
  inst.MigrateTo(*cls_def);
  return inst;
}

}  // namespace cactis::core
