// DecayingAverage: the self-adaptive statistic of paper section 2.3.
//
// "We keep information about past behavior in the form of a decaying
// average which changes over time. This makes the database self-adaptive,
// allowing changes in the structure of the database to be reflected in
// changing averages and hence changing scheduling priorities." A
// worst-case statistic gathered at cluster time is used as the initial
// estimate.

#ifndef CACTIS_SCHED_DECAYING_AVERAGE_H_
#define CACTIS_SCHED_DECAYING_AVERAGE_H_

namespace cactis::sched {

class DecayingAverage {
 public:
  /// `alpha` is the weight of each new sample (0 < alpha <= 1).
  explicit DecayingAverage(double alpha = 0.25, double initial = 1.0)
      : alpha_(alpha), value_(initial) {}

  /// Records an observation: value <- alpha*sample + (1-alpha)*value. The
  /// first sample after a Seed() replaces the seed entirely.
  void Record(double sample) {
    if (seeded_only_) {
      value_ = sample;
      seeded_only_ = false;
    } else {
      value_ = alpha_ * sample + (1.0 - alpha_) * value_;
    }
  }

  /// Sets the initial (worst-case) estimate without counting it as an
  /// observation.
  void Seed(double estimate) {
    value_ = estimate;
    seeded_only_ = true;
  }

  double value() const { return value_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_;
  bool seeded_only_ = true;
};

}  // namespace cactis::sched

#endif  // CACTIS_SCHED_DECAYING_AVERAGE_H_
