#include "sched/scheduler.h"

#include "obs/request_context.h"

namespace cactis::sched {

std::string_view SchedulingPolicyToString(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kGreedyAdaptive:
      return "greedy-adaptive";
    case SchedulingPolicy::kGreedyStatic:
      return "greedy-static";
    case SchedulingPolicy::kDepthFirst:
      return "depth-first";
    case SchedulingPolicy::kBreadthFirst:
      return "breadth-first";
  }
  return "?";
}

ChunkScheduler::ChunkScheduler(storage::RecordStore* store,
                               SchedulingPolicy policy)
    : store_(store), policy_(policy) {}

void ChunkScheduler::Schedule(Chunk chunk) {
  if (auto* c = obs::RequestScope::CurrentCost()) ++c->chunks_scheduled;
  uint64_t seq = ++next_seq_;
  auto owned = std::make_unique<Chunk>(std::move(chunk));

  switch (policy_) {
    case SchedulingPolicy::kDepthFirst:
      dfs_stack_.push_back(seq);
      break;
    case SchedulingPolicy::kBreadthFirst:
      bfs_queue_.push_back(seq);
      break;
    case SchedulingPolicy::kGreedyAdaptive:
    case SchedulingPolicy::kGreedyStatic: {
      if (owned->user_request) {
        user_.push_back(seq);
      } else if (store_ != nullptr &&
                 store_->IsInstanceResident(owned->owner)) {
        high_.push_back(seq);
      } else {
        pending_.push({owned->expected_io, seq});
        IndexByBlock(seq, *owned);
      }
      break;
    }
  }
  arena_.emplace(seq, std::move(owned));
}

void ChunkScheduler::IndexByBlock(uint64_t seq, const Chunk& chunk) {
  if (store_ == nullptr) return;
  auto block = store_->BlockOf(chunk.owner);
  if (block.ok()) by_block_[*block].push_back(seq);
}

void ChunkScheduler::OnBlockLoaded(BlockId id) {
  auto it = by_block_.find(id);
  if (it == by_block_.end()) return;
  for (uint64_t seq : it->second) {
    if (arena_.contains(seq)) {
      high_.push_back(seq);
      ++stats_.promotions;
    }
  }
  by_block_.erase(it);
}

std::unique_ptr<Chunk> ChunkScheduler::PopNext() {
  auto take = [this](uint64_t seq) -> std::unique_ptr<Chunk> {
    auto it = arena_.find(seq);
    if (it == arena_.end()) return nullptr;  // ran already via promotion
    std::unique_ptr<Chunk> c = std::move(it->second);
    arena_.erase(it);
    return c;
  };

  switch (policy_) {
    case SchedulingPolicy::kDepthFirst:
      while (!dfs_stack_.empty()) {
        uint64_t seq = dfs_stack_.back();
        dfs_stack_.pop_back();
        if (auto c = take(seq)) return c;
      }
      return nullptr;
    case SchedulingPolicy::kBreadthFirst:
      while (!bfs_queue_.empty()) {
        uint64_t seq = bfs_queue_.front();
        bfs_queue_.pop_front();
        if (auto c = take(seq)) return c;
      }
      return nullptr;
    case SchedulingPolicy::kGreedyAdaptive:
    case SchedulingPolicy::kGreedyStatic: {
      while (!high_.empty()) {
        uint64_t seq = high_.front();
        high_.pop_front();
        if (auto c = take(seq)) {
          ++stats_.high_runs;
          return c;
        }
      }
      while (!user_.empty()) {
        uint64_t seq = user_.front();
        user_.pop_front();
        if (auto c = take(seq)) return c;
      }
      while (!pending_.empty()) {
        uint64_t seq = pending_.top().seq;
        pending_.pop();
        if (auto c = take(seq)) {
          ++stats_.pending_runs;
          return c;
        }
      }
      return nullptr;
    }
  }
  return nullptr;
}

bool ChunkScheduler::Idle() const { return arena_.empty(); }

Status ChunkScheduler::RunUntilIdle() {
  while (true) {
    std::unique_ptr<Chunk> chunk = PopNext();
    if (chunk == nullptr) break;
    // The chunk body faults its owner's block in itself (so the engine
    // can attribute the I/O to the right traversal); the resulting
    // OnBlockLoaded event promotes sibling chunks on the same block.
    ++stats_.chunks_run;
    CACTIS_RETURN_IF_ERROR(chunk->run());
  }
  return Status::OK();
}

}  // namespace cactis::sched
