// ChunkScheduler: the simulated-concurrency traversal engine of paper
// section 2.3.
//
// Cactis expresses the mark-out-of-date and attribute-evaluation
// traversals as *chunks* — small units of work, each associated with one
// instance — and turns the choice of traversal order into a scheduling
// decision:
//
//  * a hash index keeps pending chunks keyed by the disk block of their
//    instance; when the buffer pool reads a block, that block's chunks are
//    promoted to a very-high-priority queue ("processes which can be
//    executed without disk access always have priority");
//  * chunks whose instance is already resident are queued high directly;
//  * direct user requests get a special priority queue;
//  * everything else is ordered by expected disk I/O, lowest first, where
//    the estimate comes from per-relationship decaying averages (or
//    worst-case statistics for marking).
//
// Fixed-order baseline policies (depth-first / breadth-first) are provided
// for experiment E4, which reproduces the paper's claim that the greedy
// adaptive order reduces disk access.

#ifndef CACTIS_SCHED_SCHEDULER_H_
#define CACTIS_SCHED_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/record_store.h"

namespace cactis::sched {

enum class SchedulingPolicy {
  /// The paper's policy: in-memory first, then least expected I/O, with
  /// decaying-average adaptation.
  kGreedyAdaptive,
  /// Greedy with static (cluster-time) estimates only; the adaptation
  /// ablation of experiment E6.
  kGreedyStatic,
  /// Fixed depth-first order (a "naive trigger" style traversal).
  kDepthFirst,
  /// Fixed breadth-first / FIFO order.
  kBreadthFirst,
};

std::string_view SchedulingPolicyToString(SchedulingPolicy p);

/// A schedulable unit of work. `run` may schedule further chunks.
struct Chunk {
  InstanceId owner;          // instance whose block this chunk touches
  double expected_io = 1.0;  // priority key: expected block reads
  bool user_request = false; // "direct user requests" special priority
  std::function<Status()> run;
};

struct SchedulerStats {
  uint64_t chunks_run = 0;
  uint64_t promotions = 0;      // pending -> high on block load
  uint64_t high_runs = 0;       // chunks run from the in-memory queue
  uint64_t pending_runs = 0;    // chunks run from the expected-I/O queue

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("chunks_run", chunks_run);
    g->AddCounter("promotions", promotions);
    g->AddCounter("high_runs", high_runs);
    g->AddCounter("pending_runs", pending_runs);
  }
};

class ChunkScheduler : public storage::ResidencyListener {
 public:
  ChunkScheduler(storage::RecordStore* store, SchedulingPolicy policy);

  void set_policy(SchedulingPolicy policy) { policy_ = policy; }
  SchedulingPolicy policy() const { return policy_; }

  /// Enqueues a chunk. May be called while RunUntilIdle is draining (a
  /// running chunk scheduling its successors).
  void Schedule(Chunk chunk);

  /// Runs chunks until every queue is empty. Returns the first error.
  Status RunUntilIdle();

  bool Idle() const;

  // storage::ResidencyListener:
  void OnBlockLoaded(BlockId id) override;
  void OnBlockEvicted(BlockId /*id*/) override {}

  const SchedulerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = SchedulerStats{}; }

 private:
  struct Pending {
    uint64_t seq;
    std::unique_ptr<Chunk> chunk;
  };

  /// Pops the next chunk to run under the current policy, or nullptr.
  std::unique_ptr<Chunk> PopNext();
  void IndexByBlock(uint64_t seq, const Chunk& chunk);

  storage::RecordStore* store_;
  SchedulingPolicy policy_;

  uint64_t next_seq_ = 0;
  // All queues hold sequence numbers into `arena_`; a popped seq whose
  // arena entry is gone was already run from another queue.
  std::unordered_map<uint64_t, std::unique_ptr<Chunk>> arena_;
  std::deque<uint64_t> high_;  // in-memory / promoted
  std::deque<uint64_t> user_;  // direct user requests
  struct IoOrder {
    double expected_io;
    uint64_t seq;
    bool operator>(const IoOrder& o) const {
      if (expected_io != o.expected_io) return expected_io > o.expected_io;
      return seq > o.seq;
    }
  };
  std::priority_queue<IoOrder, std::vector<IoOrder>, std::greater<IoOrder>>
      pending_;
  std::vector<uint64_t> dfs_stack_;
  std::deque<uint64_t> bfs_queue_;
  std::unordered_map<BlockId, std::vector<uint64_t>> by_block_;

  SchedulerStats stats_;
};

}  // namespace cactis::sched

#endif  // CACTIS_SCHED_SCHEDULER_H_
