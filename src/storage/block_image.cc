#include "storage/block_image.h"

#include "common/serial.h"

namespace cactis::storage {

bool BlockImage::Fits(InstanceId id, size_t payload_size,
                      size_t capacity) const {
  size_t used = bytes_used_;
  auto it = records_.find(id);
  if (it != records_.end()) {
    used -= it->second.size() + kRecordOverheadBytes;
  }
  return kBlockHeaderBytes + used + payload_size + kRecordOverheadBytes <=
         capacity;
}

void BlockImage::Put(InstanceId id, std::string payload) {
  auto it = records_.find(id);
  if (it != records_.end()) {
    bytes_used_ -= it->second.size() + kRecordOverheadBytes;
    it->second = std::move(payload);
    bytes_used_ += it->second.size() + kRecordOverheadBytes;
    return;
  }
  bytes_used_ += payload.size() + kRecordOverheadBytes;
  records_.emplace(id, std::move(payload));
}

Result<std::string> BlockImage::Get(InstanceId id) const {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("no record for instance " +
                            std::to_string(id.value) + " in block");
  }
  return it->second;
}

Status BlockImage::Erase(InstanceId id) {
  auto it = records_.find(id);
  if (it == records_.end()) {
    return Status::NotFound("no record for instance " +
                            std::to_string(id.value) + " in block");
  }
  bytes_used_ -= it->second.size() + kRecordOverheadBytes;
  records_.erase(it);
  return Status::OK();
}

std::string BlockImage::Encode() const {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(records_.size()));
  for (const auto& [id, payload] : records_) {
    w.PutU64(id.value);
    w.PutString(payload);
  }
  return w.Take();
}

Result<BlockImage> BlockImage::Decode(const std::string& bytes) {
  BlockImage image;
  if (bytes.empty()) return image;  // freshly allocated block
  BinaryReader r(bytes);
  CACTIS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  for (uint32_t i = 0; i < n; ++i) {
    CACTIS_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
    CACTIS_ASSIGN_OR_RETURN(std::string payload, r.GetString());
    image.Put(InstanceId(id), std::move(payload));
  }
  return image;
}

}  // namespace cactis::storage
