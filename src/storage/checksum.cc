#include "storage/checksum.h"

#include <array>

namespace cactis::storage {

namespace {

// Table-driven CRC-32 (reflected 0xEDB88320), generated at static init.
std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const auto& table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string WrapWithChecksum(std::string_view payload) {
  uint32_t crc = Crc32(payload);
  std::string out;
  out.reserve(kChecksumFrameBytes + payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xFFu));
  }
  out.append(payload);
  return out;
}

Result<std::string> UnwrapChecksum(std::string_view framed) {
  if (framed.empty()) return std::string();  // never-written block
  if (framed.size() < kChecksumFrameBytes) {
    return Status::Corruption("block shorter than its checksum frame (" +
                              std::to_string(framed.size()) + " bytes)");
  }
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<uint32_t>(static_cast<unsigned char>(framed[i]))
              << (8 * i);
  }
  std::string_view payload = framed.substr(kChecksumFrameBytes);
  uint32_t actual = Crc32(payload);
  if (stored != actual) {
    return Status::Corruption("block checksum mismatch: stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(actual));
  }
  return std::string(payload);
}

}  // namespace cactis::storage
