// RecordStore: maps instances to disk blocks.
//
// The record store owns the placement directory (instance -> block), the
// first-fit placement of new records, growth-driven relocation, and the
// bulk relocation API used by the clustering reorganizer (paper 2.3).
// All data access goes through the buffer pool so I/O is counted.

#ifndef CACTIS_STORAGE_RECORD_STORE_H_
#define CACTIS_STORAGE_RECORD_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace cactis::storage {

class RecordStore {
 public:
  RecordStore(SimulatedDisk* disk, BufferPool* pool)
      : disk_(disk), pool_(pool) {}

  /// Inserts or updates the record for `id`. New records go to the current
  /// fill block (first fit); an update that no longer fits its block moves
  /// the record. Payloads larger than a block are rejected.
  Status Put(InstanceId id, std::string payload);

  /// Reads the record payload (faults the block in).
  Result<std::string> Get(InstanceId id);

  /// Ensures the block holding `id` is resident, counting I/O if it was
  /// not, without copying the payload out. This is the "instance touch"
  /// used by the evaluation engine for in-memory cache hits.
  Status Touch(InstanceId id);

  /// Removes the record; frees the block when it becomes empty.
  Status Delete(InstanceId id);

  bool Contains(InstanceId id) const { return directory_.contains(id); }

  /// Placement lookup without I/O.
  Result<BlockId> BlockOf(InstanceId id) const;

  /// Whether the block holding `id` is currently in the buffer pool.
  bool IsInstanceResident(InstanceId id) const;

  /// Bulk relocation: `placement` assigns every existing instance to a
  /// cluster index; instances sharing an index are packed into the same
  /// fresh chain of blocks (a new block is started when one fills). All
  /// previously used blocks are freed. Used by cluster::Reorganizer.
  Status ApplyPlacement(
      const std::vector<std::pair<InstanceId, int>>& placement);

  std::vector<InstanceId> AllInstances() const;
  size_t record_count() const { return directory_.size(); }
  /// Blocks currently holding at least one record (fill-factor metric).
  size_t block_count() const { return block_population_.size(); }

 private:
  /// Writes `payload` into `block` (must fit), updating the directory.
  Status PutIntoBlock(InstanceId id, std::string payload, BlockId block);

  SimulatedDisk* disk_;
  BufferPool* pool_;
  std::unordered_map<InstanceId, BlockId> directory_;
  std::unordered_map<BlockId, size_t> block_population_;
  BlockId fill_block_;  // invalid until first Put
};

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_RECORD_STORE_H_
