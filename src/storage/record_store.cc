#include "storage/record_store.h"

#include <algorithm>

namespace cactis::storage {

Status RecordStore::Put(InstanceId id, std::string payload) {
  if (!id.valid()) return Status::InvalidArgument("invalid instance id");
  // Surface invalid disk geometry as the pool's InvalidArgument rather
  // than a misleading "record larger than a disk block" for every record.
  CACTIS_RETURN_IF_ERROR(pool_->status());
  if (payload.size() + kRecordOverheadBytes + kBlockHeaderBytes >
      pool_->usable_block_bytes()) {
    return Status::OutOfRange("record larger than a disk block: " +
                              std::to_string(payload.size()) + " bytes");
  }

  auto dir = directory_.find(id);
  if (dir != directory_.end()) {
    // Update in place when it still fits, else move.
    BlockId block = dir->second;
    CACTIS_ASSIGN_OR_RETURN(BlockImage * image, pool_->Fetch(block));
    if (image->Fits(id, payload.size(), pool_->usable_block_bytes())) {
      image->Put(id, std::move(payload));
      return pool_->MarkDirty(block);
    }
    CACTIS_RETURN_IF_ERROR(Delete(id));
    return Put(id, std::move(payload));
  }

  // New record: try the fill block, else allocate a new one.
  if (fill_block_.valid()) {
    CACTIS_ASSIGN_OR_RETURN(BlockImage * image, pool_->Fetch(fill_block_));
    if (image->Fits(id, payload.size(), pool_->usable_block_bytes())) {
      return PutIntoBlock(id, std::move(payload), fill_block_);
    }
  }
  fill_block_ = disk_->Allocate();
  return PutIntoBlock(id, std::move(payload), fill_block_);
}

Status RecordStore::PutIntoBlock(InstanceId id, std::string payload,
                                 BlockId block) {
  CACTIS_ASSIGN_OR_RETURN(BlockImage * image, pool_->Fetch(block));
  if (!image->Fits(id, payload.size(), pool_->usable_block_bytes())) {
    return Status::Internal("PutIntoBlock target does not fit");
  }
  image->Put(id, std::move(payload));
  directory_[id] = block;
  ++block_population_[block];
  return pool_->MarkDirty(block);
}

Result<std::string> RecordStore::Get(InstanceId id) {
  auto dir = directory_.find(id);
  if (dir == directory_.end()) {
    return Status::NotFound("no record for instance " +
                            std::to_string(id.value));
  }
  CACTIS_ASSIGN_OR_RETURN(BlockImage * image, pool_->Fetch(dir->second));
  return image->Get(id);
}

Status RecordStore::Touch(InstanceId id) {
  auto dir = directory_.find(id);
  if (dir == directory_.end()) {
    return Status::NotFound("no record for instance " +
                            std::to_string(id.value));
  }
  return pool_->Fetch(dir->second).status();
}

Status RecordStore::Delete(InstanceId id) {
  auto dir = directory_.find(id);
  if (dir == directory_.end()) {
    return Status::NotFound("no record for instance " +
                            std::to_string(id.value));
  }
  BlockId block = dir->second;
  CACTIS_ASSIGN_OR_RETURN(BlockImage * image, pool_->Fetch(block));
  CACTIS_RETURN_IF_ERROR(image->Erase(id));
  CACTIS_RETURN_IF_ERROR(pool_->MarkDirty(block));
  directory_.erase(dir);
  auto pop = block_population_.find(block);
  if (pop != block_population_.end() && --pop->second == 0) {
    block_population_.erase(pop);
    pool_->Discard(block);
    CACTIS_RETURN_IF_ERROR(disk_->Free(block));
    if (fill_block_ == block) fill_block_ = BlockId();
  }
  return Status::OK();
}

Result<BlockId> RecordStore::BlockOf(InstanceId id) const {
  auto dir = directory_.find(id);
  if (dir == directory_.end()) {
    return Status::NotFound("no record for instance " +
                            std::to_string(id.value));
  }
  return dir->second;
}

bool RecordStore::IsInstanceResident(InstanceId id) const {
  auto dir = directory_.find(id);
  if (dir == directory_.end()) return false;
  return pool_->IsResident(dir->second);
}

Status RecordStore::ApplyPlacement(
    const std::vector<std::pair<InstanceId, int>>& placement) {
  // Pull every payload out first (this is a bulk maintenance operation;
  // the reorganizer runs it offline, so the I/O spike is expected).
  std::vector<std::pair<InstanceId, std::string>> payloads;
  payloads.reserve(placement.size());
  for (const auto& [id, cluster] : placement) {
    (void)cluster;
    CACTIS_ASSIGN_OR_RETURN(std::string payload, Get(id));
    payloads.emplace_back(id, std::move(payload));
  }
  if (payloads.size() != directory_.size()) {
    return Status::InvalidArgument(
        "placement must cover every stored instance exactly once");
  }

  // Free all current blocks.
  std::vector<BlockId> old_blocks;
  old_blocks.reserve(block_population_.size());
  for (const auto& [block, pop] : block_population_) {
    (void)pop;
    old_blocks.push_back(block);
  }
  directory_.clear();
  block_population_.clear();
  fill_block_ = BlockId();
  for (BlockId block : old_blocks) {
    pool_->Discard(block);
    CACTIS_RETURN_IF_ERROR(disk_->Free(block));
  }

  // Re-insert grouped by cluster index, packing each group contiguously.
  std::vector<std::pair<int, size_t>> order;  // (cluster, payload index)
  order.reserve(placement.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    order.emplace_back(placement[i].second, i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  int current_cluster = order.empty() ? 0 : order.front().first - 1;
  for (const auto& [cluster, idx] : order) {
    if (cluster != current_cluster) {
      // Force a fresh block at each cluster boundary so clusters do not
      // share blocks.
      fill_block_ = BlockId();
      current_cluster = cluster;
    }
    auto& [id, payload] = payloads[idx];
    CACTIS_RETURN_IF_ERROR(Put(id, std::move(payload)));
  }
  return pool_->FlushAll();
}

std::vector<InstanceId> RecordStore::AllInstances() const {
  std::vector<InstanceId> out;
  out.reserve(directory_.size());
  for (const auto& [id, block] : directory_) {
    (void)block;
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace cactis::storage
