// BlockImage: the decoded, in-memory form of one disk block.
//
// On disk a block is a flat byte string (see codec in block_image.cc); in
// the buffer pool it is a BlockImage: a small dictionary from instance id
// to that instance's serialized record. Space accounting uses the encoded
// size so a BlockImage never encodes to more than the disk block size.

#ifndef CACTIS_STORAGE_BLOCK_IMAGE_H_
#define CACTIS_STORAGE_BLOCK_IMAGE_H_

#include <map>
#include <string>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace cactis::storage {

/// Per-record space overhead in the encoded block: 8-byte instance id plus
/// a 4-byte length prefix.
inline constexpr size_t kRecordOverheadBytes = 12;
/// Per-block header: 4-byte record count.
inline constexpr size_t kBlockHeaderBytes = 4;

class BlockImage {
 public:
  /// Bytes the encoded form of this image occupies.
  size_t encoded_size() const { return kBlockHeaderBytes + bytes_used_; }

  /// Whether a payload of `payload_size` bytes (replacing any existing
  /// record for `id`) would fit within `capacity` bytes.
  bool Fits(InstanceId id, size_t payload_size, size_t capacity) const;

  /// Inserts or replaces the record for `id`.
  void Put(InstanceId id, std::string payload);

  /// Returns the record payload, or NotFound.
  Result<std::string> Get(InstanceId id) const;

  bool Contains(InstanceId id) const { return records_.contains(id); }

  /// Removes the record; NotFound if absent.
  Status Erase(InstanceId id);

  size_t record_count() const { return records_.size(); }
  const std::map<InstanceId, std::string>& records() const { return records_; }

  /// Flat byte encoding / decoding.
  std::string Encode() const;
  static Result<BlockImage> Decode(const std::string& bytes);

 private:
  std::map<InstanceId, std::string> records_;
  size_t bytes_used_ = 0;  // sum of payload sizes + per-record overhead
};

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_BLOCK_IMAGE_H_
