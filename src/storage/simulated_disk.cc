#include "storage/simulated_disk.h"

#include <chrono>
#include <thread>

#include "obs/request_context.h"

namespace cactis::storage {

namespace {

/// Deterministic single-bit corruption: flip the low bit of the middle
/// byte (content must be non-empty).
void FlipMiddleBit(std::string* content) {
  if (content->empty()) return;
  (*content)[content->size() / 2] ^= 1;
}

}  // namespace

BlockId SimulatedDisk::Allocate() {
  std::lock_guard<std::mutex> lk(mu_);
  // Allocation is directory bookkeeping, not data I/O; it cannot fault.
  // A crashed disk hands back the invalid id, which any subsequent access
  // turns into an IoError.
  if (crashed_) return BlockId();
  ++stats_.allocations;
  BlockId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = BlockId(++next_block_);
  }
  blocks_[id] = std::string();
  return id;
}

Status SimulatedDisk::Free(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return CrashedError();
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::IoError("freeing unallocated block " +
                           std::to_string(id.value));
  }
  blocks_.erase(it);
  free_list_.push_back(id);
  ++stats_.frees;
  return Status::OK();
}

Result<std::string> SimulatedDisk::Read(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return CrashedError();
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::IoError("reading unallocated block " +
                           std::to_string(id.value));
  }
  FaultKind fault = FaultKind::kNone;
  if (fault_policy_ != nullptr) {
    fault = fault_policy_->OnRead(id, read_attempts_);
  }
  ++read_attempts_;
  switch (fault) {
    case FaultKind::kCrash:
      crashed_ = true;
      ++stats_.crashes;
      return CrashedError();
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return Status::Unavailable("injected transient read error on block " +
                                 std::to_string(id.value));
    case FaultKind::kBitFlip: {
      // Corrupt the returned copy only: the platter is fine, the transfer
      // was not. Checksum verification upstream catches it.
      ++stats_.bit_flips;
      ++stats_.reads;
      if (auto* c = obs::RequestScope::CurrentCost()) ++c->blocks_read;
      std::string copy = it->second;
      FlipMiddleBit(&copy);
      return copy;
    }
    case FaultKind::kTornWrite:  // meaningless on reads
    case FaultKind::kNone:
      break;
  }
  ++stats_.reads;
  if (auto* c = obs::RequestScope::CurrentCost()) ++c->blocks_read;
  return it->second;
}

Status SimulatedDisk::Write(BlockId id, std::string content) {
  std::lock_guard<std::mutex> lk(mu_);
  if (crashed_) return CrashedError();
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::IoError("writing unallocated block " +
                           std::to_string(id.value));
  }
  if (content.size() > block_size_) {
    return Status::OutOfRange("block content exceeds block size: " +
                              std::to_string(content.size()) + " > " +
                              std::to_string(block_size_));
  }
  FaultKind fault = FaultKind::kNone;
  if (fault_policy_ != nullptr) {
    fault = fault_policy_->OnWrite(id, write_attempts_);
  }
  ++write_attempts_;
  switch (fault) {
    case FaultKind::kCrash:
      // Power loss before any byte reached the platter.
      crashed_ = true;
      ++stats_.crashes;
      return CrashedError();
    case FaultKind::kTornWrite:
      // Power loss mid-write: a prefix lands, then the disk dies. The
      // caller sees the same error as a clean crash; the difference is on
      // the platter, where the block now fails its checksum.
      it->second = content.substr(0, content.size() / 2);
      crashed_ = true;
      ++stats_.torn_writes;
      ++stats_.crashes;
      return CrashedError();
    case FaultKind::kTransient:
      ++stats_.transient_errors;
      return Status::Unavailable("injected transient write error on block " +
                                 std::to_string(id.value));
    case FaultKind::kBitFlip:
      FlipMiddleBit(&content);
      ++stats_.bit_flips;
      break;
    case FaultKind::kNone:
      break;
  }
  ++stats_.writes;
  if (auto* c = obs::RequestScope::CurrentCost()) ++c->blocks_written;
  it->second = std::move(content);
  uint64_t latency = write_latency_us_.load(std::memory_order_relaxed);
  if (latency != 0) {
    // One head: sleep under the device mutex, so concurrent callers queue
    // behind this write exactly as they would on real hardware.
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  return Status::OK();
}

Result<std::string> SimulatedDisk::PeekRaw(BlockId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("no such block on platter: " +
                            std::to_string(id.value));
  }
  return it->second;
}

Status SimulatedDisk::FlipBitForTesting(BlockId id, size_t bit_index) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::NotFound("no such block on platter: " +
                            std::to_string(id.value));
  }
  if (it->second.empty()) {
    return Status::InvalidArgument("cannot corrupt an empty block");
  }
  size_t bit = bit_index % (it->second.size() * 8);
  it->second[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  return Status::OK();
}

}  // namespace cactis::storage
