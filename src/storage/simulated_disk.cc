#include "storage/simulated_disk.h"

namespace cactis::storage {

BlockId SimulatedDisk::Allocate() {
  ++stats_.allocations;
  BlockId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = BlockId(++next_block_);
  }
  blocks_[id] = std::string();
  return id;
}

Status SimulatedDisk::Free(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::IoError("freeing unallocated block " +
                           std::to_string(id.value));
  }
  blocks_.erase(it);
  free_list_.push_back(id);
  ++stats_.frees;
  return Status::OK();
}

Result<std::string> SimulatedDisk::Read(BlockId id) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::IoError("reading unallocated block " +
                           std::to_string(id.value));
  }
  ++stats_.reads;
  return it->second;
}

Status SimulatedDisk::Write(BlockId id, std::string content) {
  auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    return Status::IoError("writing unallocated block " +
                           std::to_string(id.value));
  }
  if (content.size() > block_size_) {
    return Status::OutOfRange("block content exceeds block size: " +
                              std::to_string(content.size()) + " > " +
                              std::to_string(block_size_));
  }
  ++stats_.writes;
  it->second = std::move(content);
  return Status::OK();
}

}  // namespace cactis::storage
