// Fault injection for the simulated disk.
//
// A FaultPolicy is consulted on every block read and write attempt and
// decides whether the operation proceeds normally or suffers an injected
// fault. The disk owns the mechanics (what a torn write does to the
// platter); the policy owns the schedule (when faults happen). Policies
// are deterministic so every failing run is exactly reproducible — the
// crash-point test harness sweeps `ScriptedFaults::crash_after_writes`
// over every write index of a workload.

#ifndef CACTIS_STORAGE_FAULT_POLICY_H_
#define CACTIS_STORAGE_FAULT_POLICY_H_

#include <atomic>
#include <cstdint>

#include "common/ids.h"
#include "common/rng.h"

namespace cactis::storage {

/// What happens to one disk operation.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// The operation fails with kUnavailable but the disk stays usable and
  /// the platter is unchanged (a retriable bus hiccup). Layers retry
  /// these with bounded backoff (common/backoff.h).
  kTransient,
  /// Fail-stop: the operation fails, nothing is persisted, and every
  /// subsequent operation fails too (power loss). The platter keeps
  /// whatever was durable before the crash.
  kCrash,
  /// Writes only: a prefix of the content reaches the platter, then the
  /// disk crashes (power loss mid-write). The block now fails its
  /// checksum. Ignored on reads.
  kTornWrite,
  /// Silent corruption: the operation "succeeds" but one bit is flipped —
  /// on the platter for writes, in the returned copy for reads. Detected
  /// later by checksum verification.
  kBitFlip,
};

/// Decides the fate of each disk operation. `op_index` counts write
/// (resp. read) attempts since the disk was created, starting at 0, and
/// includes attempts that were themselves faulted.
class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;
  virtual FaultKind OnWrite(BlockId id, uint64_t op_index) = 0;
  virtual FaultKind OnRead(BlockId id, uint64_t op_index) = 0;
};

/// A deterministic scripted policy: each knob names the single operation
/// index (0-based) at which the fault fires; -1 disables it. Knobs
/// compose; when several match the same index the most severe wins
/// (crash > torn > transient > bit flip).
class ScriptedFaults : public FaultPolicy {
 public:
  int64_t crash_after_writes = -1;     ///< crash on the Nth write attempt
  int64_t torn_write_at = -1;          ///< tear the Nth write, then crash
  int64_t transient_write_error_at = -1;
  int64_t corrupt_write_at = -1;       ///< flip a bit in the Nth write
  int64_t crash_after_reads = -1;
  int64_t transient_read_error_at = -1;
  int64_t corrupt_read_at = -1;        ///< flip a bit in the Nth read

  FaultKind OnWrite(BlockId /*id*/, uint64_t op_index) override {
    int64_t i = static_cast<int64_t>(op_index);
    if (i == crash_after_writes) return FaultKind::kCrash;
    if (i == torn_write_at) return FaultKind::kTornWrite;
    if (i == transient_write_error_at) return FaultKind::kTransient;
    if (i == corrupt_write_at) return FaultKind::kBitFlip;
    return FaultKind::kNone;
  }

  FaultKind OnRead(BlockId /*id*/, uint64_t op_index) override {
    int64_t i = static_cast<int64_t>(op_index);
    if (i == crash_after_reads) return FaultKind::kCrash;
    if (i == transient_read_error_at) return FaultKind::kTransient;
    if (i == corrupt_read_at) return FaultKind::kBitFlip;
    return FaultKind::kNone;
  }
};

/// A switchable transient-error storm for the chaos harness: while
/// `storming` is set, every write (and, when `affect_reads` is set, every
/// read) suffers a transient fault. The knobs are atomics so a driver
/// thread can open and close the storm while worker threads hammer the
/// disk — the policy itself is consulted under the device mutex, but the
/// driver flips the switch from outside it.
class TransientStorm : public FaultPolicy {
 public:
  std::atomic<bool> storming{false};
  std::atomic<bool> affect_reads{false};

  FaultKind OnWrite(BlockId /*id*/, uint64_t /*op_index*/) override {
    return storming.load(std::memory_order_relaxed) ? FaultKind::kTransient
                                                    : FaultKind::kNone;
  }
  FaultKind OnRead(BlockId /*id*/, uint64_t /*op_index*/) override {
    return (storming.load(std::memory_order_relaxed) &&
            affect_reads.load(std::memory_order_relaxed))
               ? FaultKind::kTransient
               : FaultKind::kNone;
  }
};

/// Seeded random fault mix for chaos rounds: each write independently
/// suffers a transient hiccup with probability `p_transient`, and one
/// write chosen by the schedule ends the round with a crash or torn
/// write. The Rng is consulted only under the device mutex (the disk
/// serializes OnWrite calls), so no extra locking is needed; the
/// terminal fault index is fixed at construction so a given seed is
/// exactly reproducible.
class ChaosSchedule : public FaultPolicy {
 public:
  /// `terminal_at` = write attempt index of the round-ending fault
  /// (-1: the round ends without a crash); `terminal_torn` chooses a
  /// torn write over a clean crash.
  ChaosSchedule(uint64_t seed, double p_transient, int64_t terminal_at,
                bool terminal_torn)
      : rng_(seed),
        p_transient_(p_transient),
        terminal_at_(terminal_at),
        terminal_torn_(terminal_torn) {}

  FaultKind OnWrite(BlockId /*id*/, uint64_t op_index) override {
    if (static_cast<int64_t>(op_index) == terminal_at_) {
      return terminal_torn_ ? FaultKind::kTornWrite : FaultKind::kCrash;
    }
    if (p_transient_ > 0 && rng_.Bernoulli(p_transient_)) {
      return FaultKind::kTransient;
    }
    return FaultKind::kNone;
  }
  FaultKind OnRead(BlockId /*id*/, uint64_t /*op_index*/) override {
    return FaultKind::kNone;
  }

 private:
  Rng rng_;
  double p_transient_;
  int64_t terminal_at_;
  bool terminal_torn_;
};

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_FAULT_POLICY_H_
