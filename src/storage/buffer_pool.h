// BufferPool: fixed-capacity LRU cache of decoded blocks over the
// SimulatedDisk.
//
// Two hooks matter to the rest of the system (paper section 2.3):
//  * ResidencyListener.OnBlockLoaded — "Whenever a disk block is read into
//    memory, all processes which are associated with some instance stored
//    on that block are promoted to a special very high priority queue."
//    The chunk scheduler registers a listener to implement exactly that.
//  * pre-evict hook — lets the object cache in core serialize its dirty
//    in-memory instances back into the BlockImage before it is written out.

#ifndef CACTIS_STORAGE_BUFFER_POOL_H_
#define CACTIS_STORAGE_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/block_image.h"
#include "storage/checksum.h"
#include "storage/simulated_disk.h"

namespace cactis::storage {

/// Notification interface for block residency transitions.
class ResidencyListener {
 public:
  virtual ~ResidencyListener() = default;
  /// The block has just been read from disk into the pool.
  virtual void OnBlockLoaded(BlockId id) = 0;
  /// The block is about to leave the pool (already flushed if dirty).
  virtual void OnBlockEvicted(BlockId id) = 0;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t discards = 0;
  uint64_t retries = 0;     ///< transient disk faults retried
  uint64_t give_ups = 0;    ///< retry budgets exhausted
  uint64_t backoff_us = 0;  ///< total time slept in retry backoff

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("hits", hits);
    g->AddCounter("misses", misses);
    g->AddCounter("evictions", evictions);
    g->AddCounter("discards", discards);
    g->AddCounter("retries", retries);
    g->AddCounter("give_ups", give_ups);
    g->AddCounter("backoff_us", backoff_us);
  }
};

class BufferPool {
 public:
  /// The hook is called with the image of a dirty block immediately before
  /// it is encoded and written back, so owners of cached decoded state can
  /// fold their changes in.
  using PreEvictHook = std::function<void(BlockId, BlockImage*)>;

  /// `capacity` is the number of blocks held in memory; must be >= 1.
  /// Disk geometry is validated here: a block size that cannot hold the
  /// checksum frame plus at least one payload byte leaves the pool in a
  /// failed state (see status()) and every Fetch returns that error.
  BufferPool(SimulatedDisk* disk, size_t capacity);

  /// Construction-time validation result. Not OK when the disk's block
  /// size is <= kChecksumFrameBytes, in which case usable_block_bytes()
  /// would be 0 and capacity checks above the pool would divide by or
  /// compare against zero.
  const Status& status() const { return init_status_; }

  /// Returns the in-memory image of `id`, reading it from disk (and
  /// possibly evicting the LRU block) if needed. The pointer stays valid
  /// until the block is evicted. Every block read is checksum-verified;
  /// a torn or bit-rotted block surfaces as kCorruption instead of being
  /// decoded as garbage.
  Result<BlockImage*> Fetch(BlockId id);

  /// Bytes of a disk block available to an encoded BlockImage: the block
  /// size minus the checksum frame the pool adds on write-back. Capacity
  /// checks above the pool must use this, not the raw block size.
  size_t usable_block_bytes() const {
    return disk_->block_size() > kChecksumFrameBytes
               ? disk_->block_size() - kChecksumFrameBytes
               : 0;
  }

  /// Marks a resident block dirty; it will be written back on eviction or
  /// FlushAll. It is an error to mark a non-resident block.
  Status MarkDirty(BlockId id);

  /// True when the block is in memory (no I/O is triggered).
  bool IsResident(BlockId id) const { return frames_.contains(id); }

  /// Writes back every dirty block (blocks stay resident).
  Status FlushAll();

  /// Drops a block from the pool without writing it back; used when the
  /// record store frees or relocates the block. Listeners receive
  /// OnBlockEvicted so caches of decoded state (the object cache) drop
  /// entries for the vanished block instead of serving stale pointers.
  /// The pre-evict hook is NOT called: the block's contents are dead.
  void Discard(BlockId id);

  /// Registers an additional residency listener (the object cache and the
  /// chunk scheduler both observe block transitions).
  void AddListener(ResidencyListener* listener) {
    listeners_.push_back(listener);
  }
  void set_pre_evict_hook(PreEvictHook hook) {
    pre_evict_hook_ = std::move(hook);
  }

  /// Optional span tracer; records block fetch/evict/discard events.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Retry budget for transient disk faults (flaky reads/writes classified
  /// kTransient by the error taxonomy). Permanent and corruption faults
  /// are never retried.
  void set_retry_policy(BackoffPolicy policy) { retry_policy_ = policy; }

  size_t capacity() const { return capacity_; }
  size_t resident_blocks() const { return frames_.size(); }
  /// Ids of every resident block. Benchmarks use this (with FlushAll +
  /// Discard) to cold the pool so runs score from identical cache state.
  std::vector<BlockId> ResidentBlockIds() const {
    std::vector<BlockId> out;
    out.reserve(frames_.size());
    for (const auto& [id, frame] : frames_) out.push_back(id);
    return out;
  }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

 private:
  struct Frame {
    BlockImage image;
    bool dirty = false;
    std::list<BlockId>::iterator lru_pos;
  };

  Status EvictOne();
  Status WriteBack(BlockId id, Frame* frame);
  Result<std::string> ReadWithRetry(BlockId id);
  Status WriteWithRetry(BlockId id, const std::string& framed);

  SimulatedDisk* disk_;
  size_t capacity_;
  Status init_status_;
  BackoffPolicy retry_policy_;
  obs::TraceSink* trace_ = nullptr;
  std::unordered_map<BlockId, Frame> frames_;
  std::list<BlockId> lru_;  // front = most recently used
  std::vector<ResidencyListener*> listeners_;
  PreEvictHook pre_evict_hook_;
  BufferPoolStats stats_;
};

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_BUFFER_POOL_H_
