// Block checksums: every block image written through the buffer pool (and
// every WAL block) is framed with a CRC32 of its payload, so torn writes
// and bit rot are detected on read instead of being decoded as garbage.
//
// The frame is 4 bytes: the little-endian CRC32 of the payload, followed
// by the payload itself. An *empty* block (freshly allocated, never
// written) has no frame; readers treat empty content as an empty payload.

#ifndef CACTIS_STORAGE_CHECKSUM_H_
#define CACTIS_STORAGE_CHECKSUM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace cactis::storage {

/// Bytes of checksum framing prepended to each block payload. Capacity
/// checks against a block must reserve this much.
inline constexpr size_t kChecksumFrameBytes = 4;

/// CRC-32 (IEEE 802.3 polynomial, reflected), the classic zlib checksum.
uint32_t Crc32(std::string_view data);

/// Prepends the CRC32 frame to `payload`.
std::string WrapWithChecksum(std::string_view payload);

/// Verifies and strips the frame. Empty content decodes to an empty
/// payload (a never-written block). A frame whose checksum does not match
/// its payload yields kIoError ("checksum mismatch"), which callers
/// surface as data corruption.
Result<std::string> UnwrapChecksum(std::string_view framed);

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_CHECKSUM_H_
