// SimulatedDisk: the instrumented block device under Cactis.
//
// Paper substitution (see DESIGN.md): the original system ran on a physical
// Sun workstation disk; every technique in section 2.3 of the paper is
// about minimising the *number of block accesses*, so we reproduce the
// evaluation on a simulated block store that counts reads and writes.
// The counters are the measured quantity in experiments E4-E6.
//
// The disk can fail. An installed FaultPolicy may make any read or write
// suffer a transient error, a fail-stop crash, a torn (partial) write, or
// a silent bit flip (see fault_policy.h). After a crash every operation
// returns kIoError, but the platter — whatever was durably written before
// the crash — survives and can be inspected offline via PeekRaw(), which
// is how recovery reads the write-ahead log out of a crashed database.

#ifndef CACTIS_STORAGE_SIMULATED_DISK_H_
#define CACTIS_STORAGE_SIMULATED_DISK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/fault_policy.h"

namespace cactis::storage {

/// Cumulative I/O counters; snapshot and subtract to measure a workload.
/// The fault counters record *injected* events, not organic failures.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t transient_errors = 0;  ///< injected retriable I/O errors
  uint64_t torn_writes = 0;       ///< injected partial writes
  uint64_t bit_flips = 0;         ///< injected silent corruptions
  uint64_t crashes = 0;           ///< injected fail-stop crashes (0 or 1)

  /// Saturating subtraction: counters may have been reset between the two
  /// snapshots, so each field clamps at zero instead of wrapping.
  DiskStats operator-(const DiskStats& other) const {
    auto sat = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
    DiskStats d;
    d.reads = sat(reads, other.reads);
    d.writes = sat(writes, other.writes);
    d.allocations = sat(allocations, other.allocations);
    d.frees = sat(frees, other.frees);
    d.transient_errors = sat(transient_errors, other.transient_errors);
    d.torn_writes = sat(torn_writes, other.torn_writes);
    d.bit_flips = sat(bit_flips, other.bit_flips);
    d.crashes = sat(crashes, other.crashes);
    return d;
  }

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("reads", reads);
    g->AddCounter("writes", writes);
    g->AddCounter("allocations", allocations);
    g->AddCounter("frees", frees);
    g->AddCounter("transient_errors", transient_errors);
    g->AddCounter("torn_writes", torn_writes);
    g->AddCounter("bit_flips", bit_flips);
    g->AddCounter("crashes", crashes);
  }
};

/// A block-addressed in-memory store standing in for a disk. Blocks have a
/// fixed capacity in bytes; the record store enforces it. Reading or
/// writing a block bumps the corresponding counter.
///
/// Block operations are internally serialized by a mutex: a WAL group-
/// commit flush leader writes log blocks while an exclusive statement may
/// concurrently do buffer-pool I/O, and the two must not corrupt the
/// directory. stats()/write_attempts()/read_attempts() return unlocked
/// references and are only meaningful when the disk is quiescent (every
/// caller snapshots between statements, after draining pending commits).
class SimulatedDisk {
 public:
  /// `block_size` is the usable bytes per block.
  explicit SimulatedDisk(size_t block_size = 4096)
      : block_size_(block_size) {}

  size_t block_size() const { return block_size_; }

  /// Allocates a fresh (or recycled) block; its content starts empty.
  /// Returns the invalid id on a crashed disk.
  BlockId Allocate();

  /// Returns the block to the free list. Further access is an error until
  /// it is re-allocated.
  Status Free(BlockId id);

  /// Reads the raw content of a block (counted; subject to fault
  /// injection).
  Result<std::string> Read(BlockId id);

  /// Overwrites the content of a block (counted; subject to fault
  /// injection). Content must fit in block_size() bytes.
  Status Write(BlockId id, std::string content);

  bool IsAllocated(BlockId id) const {
    std::lock_guard<std::mutex> lk(mu_);
    return blocks_.contains(id);
  }
  /// Snapshot of every currently allocated block id (unordered). Offline
  /// salvage sweeps use this to look for orphaned WAL chunks past a
  /// damaged tail; it works on a crashed disk, like PeekRaw().
  std::vector<BlockId> AllocatedBlocks() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<BlockId> ids;
    ids.reserve(blocks_.size());
    for (const auto& [id, content] : blocks_) ids.push_back(id);
    return ids;
  }
  size_t num_allocated_blocks() const {
    std::lock_guard<std::mutex> lk(mu_);
    return blocks_.size();
  }

  // --- Fault injection ----------------------------------------------------

  /// Installs a fault schedule (nullptr removes it). Not owned; must
  /// outlive the disk or be removed first.
  void set_fault_policy(FaultPolicy* policy) { fault_policy_ = policy; }

  /// True after an injected fail-stop crash: every Allocate/Free/Read/
  /// Write now fails with kIoError.
  bool crashed() const { return crashed_; }

  /// Offline platter access for recovery: reads the durable content of a
  /// block, uncounted, bypassing fault injection and the crashed state —
  /// the platter survives a power loss even though the device is dead.
  /// NotFound for unallocated blocks.
  Result<std::string> PeekRaw(BlockId id) const;

  /// Test hook: flips one bit of the stored content in place (simulating
  /// at-rest bit rot), so checksum verification can be exercised against a
  /// specific block. `bit_index` is taken modulo the content size in bits.
  Status FlipBitForTesting(BlockId id, size_t bit_index);

  /// Write (resp. read) attempts so far — the op_index the FaultPolicy
  /// sees next. The crash-point harness sweeps over these.
  uint64_t write_attempts() const { return write_attempts_; }
  uint64_t read_attempts() const { return read_attempts_; }

  /// Models platter seek/transfer time: every successful Write sleeps
  /// this long while holding the device (one head — concurrent callers
  /// queue). 0 (the default) keeps the disk instantaneous. Benchmarks use
  /// this to create realistic commit pressure for WAL group commit.
  void set_write_latency_us(uint64_t us) {
    write_latency_us_.store(us, std::memory_order_relaxed);
  }

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

 private:
  Status CrashedError() const {
    return Status::IoError("simulated disk has crashed (fail-stop)");
  }

  mutable std::mutex mu_;
  size_t block_size_;
  uint64_t next_block_ = 0;
  std::unordered_map<BlockId, std::string> blocks_;
  std::vector<BlockId> free_list_;
  DiskStats stats_;

  FaultPolicy* fault_policy_ = nullptr;
  bool crashed_ = false;
  uint64_t write_attempts_ = 0;
  uint64_t read_attempts_ = 0;
  std::atomic<uint64_t> write_latency_us_{0};
};

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_SIMULATED_DISK_H_
