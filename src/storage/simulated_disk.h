// SimulatedDisk: the instrumented block device under Cactis.
//
// Paper substitution (see DESIGN.md): the original system ran on a physical
// Sun workstation disk; every technique in section 2.3 of the paper is
// about minimising the *number of block accesses*, so we reproduce the
// evaluation on a simulated block store that counts reads and writes.
// The counters are the measured quantity in experiments E4-E6.

#ifndef CACTIS_STORAGE_SIMULATED_DISK_H_
#define CACTIS_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"

namespace cactis::storage {

/// Cumulative I/O counters; snapshot and subtract to measure a workload.
struct DiskStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t frees = 0;

  DiskStats operator-(const DiskStats& other) const {
    return DiskStats{reads - other.reads, writes - other.writes,
                     allocations - other.allocations, frees - other.frees};
  }
};

/// A block-addressed in-memory store standing in for a disk. Blocks have a
/// fixed capacity in bytes; the record store enforces it. Reading or
/// writing a block bumps the corresponding counter.
class SimulatedDisk {
 public:
  /// `block_size` is the usable bytes per block.
  explicit SimulatedDisk(size_t block_size = 4096)
      : block_size_(block_size) {}

  size_t block_size() const { return block_size_; }

  /// Allocates a fresh (or recycled) block; its content starts empty.
  BlockId Allocate();

  /// Returns the block to the free list. Further access is an error until
  /// it is re-allocated.
  Status Free(BlockId id);

  /// Reads the raw content of a block (counted).
  Result<std::string> Read(BlockId id);

  /// Overwrites the content of a block (counted). Content must fit in
  /// block_size() bytes.
  Status Write(BlockId id, std::string content);

  bool IsAllocated(BlockId id) const { return blocks_.contains(id); }
  size_t num_allocated_blocks() const { return blocks_.size(); }

  const DiskStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DiskStats{}; }

 private:
  size_t block_size_;
  uint64_t next_block_ = 0;
  std::unordered_map<BlockId, std::string> blocks_;
  std::vector<BlockId> free_list_;
  DiskStats stats_;
};

}  // namespace cactis::storage

#endif  // CACTIS_STORAGE_SIMULATED_DISK_H_
