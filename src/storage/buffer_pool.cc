#include "storage/buffer_pool.h"

#include <cassert>

#include "common/error_taxonomy.h"
#include "obs/request_context.h"

namespace cactis::storage {

BufferPool::BufferPool(SimulatedDisk* disk, size_t capacity)
    : disk_(disk), capacity_(capacity == 0 ? 1 : capacity) {
  if (disk_->block_size() <= kChecksumFrameBytes) {
    init_status_ = Status::InvalidArgument(
        "block size " + std::to_string(disk_->block_size()) +
        " leaves no payload after the " +
        std::to_string(kChecksumFrameBytes) + "-byte checksum frame");
  }
}

Result<BlockImage*> BufferPool::Fetch(BlockId id) {
  CACTIS_RETURN_IF_ERROR(init_status_);
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    if (auto* c = obs::RequestScope::CurrentCost()) ++c->cache_hits;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return &it->second.image;
  }
  ++stats_.misses;
  if (auto* c = obs::RequestScope::CurrentCost()) ++c->cache_misses;
  while (frames_.size() >= capacity_) {
    CACTIS_RETURN_IF_ERROR(EvictOne());
  }
  CACTIS_ASSIGN_OR_RETURN(std::string framed, ReadWithRetry(id));
  Result<std::string> bytes = UnwrapChecksum(framed);
  if (!bytes.ok()) {
    return Status::Corruption("block " + std::to_string(id.value) + ": " +
                              bytes.status().message());
  }
  CACTIS_ASSIGN_OR_RETURN(BlockImage image, BlockImage::Decode(*bytes));
  lru_.push_front(id);
  Frame frame{std::move(image), /*dirty=*/false, lru_.begin()};
  auto [pos, inserted] = frames_.emplace(id, std::move(frame));
  assert(inserted);
  (void)inserted;
  if (trace_) trace_->Record(obs::SpanKind::kBlockFetch, id.value);
  for (ResidencyListener* l : listeners_) l->OnBlockLoaded(id);
  return &pos->second.image;
}

Status BufferPool::MarkDirty(BlockId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::Internal("MarkDirty on non-resident block " +
                            std::to_string(id.value));
  }
  it->second.dirty = true;
  return Status::OK();
}

Status BufferPool::EvictOne() {
  if (lru_.empty()) {
    return Status::Internal("buffer pool eviction with no frames");
  }
  BlockId victim = lru_.back();
  auto it = frames_.find(victim);
  assert(it != frames_.end());
  const bool was_dirty = it->second.dirty;
  CACTIS_RETURN_IF_ERROR(WriteBack(victim, &it->second));
  lru_.pop_back();
  frames_.erase(it);
  ++stats_.evictions;
  if (trace_) {
    trace_->Record(obs::SpanKind::kBlockEvict, victim.value,
                   was_dirty ? 1 : 0);
  }
  for (ResidencyListener* l : listeners_) l->OnBlockEvicted(victim);
  return Status::OK();
}

Status BufferPool::WriteBack(BlockId id, Frame* frame) {
  if (!frame->dirty) return Status::OK();
  if (pre_evict_hook_) pre_evict_hook_(id, &frame->image);
  CACTIS_RETURN_IF_ERROR(
      WriteWithRetry(id, WrapWithChecksum(frame->image.Encode())));
  frame->dirty = false;
  return Status::OK();
}

Result<std::string> BufferPool::ReadWithRetry(BlockId id) {
  Result<std::string> r = disk_->Read(id);
  if (r.ok() || !IsTransientFault(r.status())) return r;
  Backoff backoff(retry_policy_);
  while (backoff.ShouldRetry()) {
    ++stats_.retries;
    r = disk_->Read(id);
    if (r.ok() || !IsTransientFault(r.status())) break;
  }
  stats_.backoff_us += backoff.slept_us();
  if (!r.ok() && IsTransientFault(r.status())) ++stats_.give_ups;
  return r;
}

Status BufferPool::WriteWithRetry(BlockId id, const std::string& framed) {
  Status s = disk_->Write(id, framed);
  if (s.ok() || !IsTransientFault(s)) return s;
  Backoff backoff(retry_policy_);
  while (backoff.ShouldRetry()) {
    ++stats_.retries;
    s = disk_->Write(id, framed);
    if (s.ok() || !IsTransientFault(s)) break;
  }
  stats_.backoff_us += backoff.slept_us();
  if (!s.ok() && IsTransientFault(s)) ++stats_.give_ups;
  return s;
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    CACTIS_RETURN_IF_ERROR(WriteBack(id, &frame));
  }
  return Status::OK();
}

void BufferPool::Discard(BlockId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  lru_.erase(it->second.lru_pos);
  frames_.erase(it);
  ++stats_.discards;
  if (trace_) trace_->Record(obs::SpanKind::kBlockDiscard, id.value);
  // The block left memory; listeners must treat this exactly like an
  // eviction or they keep decoded state for records that no longer exist.
  for (ResidencyListener* l : listeners_) l->OnBlockEvicted(id);
}

}  // namespace cactis::storage
