// DistributedCactis: the section-5 prototype — several Cactis sites, each
// a full single-site database over its own simulated disk, sharing a
// schema and exchanging derived information through *mirror* instances.
//
// Model. Every instance has a home site. A cross-site relationship
// (consumer at site A depends on a provider owned by site B) is realised
// as a local relationship from the consumer to a *mirror* of the provider
// at site A:
//
//   * the mirror is an instance of the provider's own class, created
//     detached (no local constraint establishment) and registered with a
//     resolver that fetches derived values from the home site on demand
//     (pull; one fetch RPC per stale value actually needed);
//   * intrinsic attribute changes at the home site are pushed eagerly to
//     every mirror (they are small and directly assignable);
//   * derived attributes are invalidated lazily: when the home site marks
//     one out of date, an invalidation message marks the mirror's copy,
//     which propagates through the mirror site's own incremental engine
//     to local consumers. The value itself moves only when demanded.
//
// This is exactly the paper's incremental philosophy stretched across a
// network: small invalidations flow eagerly, values flow lazily, and each
// site's evaluation stays local. Messages are deferred until the
// originating operation finishes (Network::DeliverAll), so no site's
// engine is ever re-entered mid-operation.

#ifndef CACTIS_DIST_CLUSTER_H_
#define CACTIS_DIST_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "dist/network.h"

namespace cactis::dist {

/// A site-qualified instance reference.
struct GlobalRef {
  SiteId site = 0;
  InstanceId id;
  auto operator<=>(const GlobalRef&) const = default;
};

class DistributedCactis {
 public:
  /// Creates `num_sites` sites with identical options.
  explicit DistributedCactis(int num_sites,
                             core::DatabaseOptions options = {});

  /// Loads the same schema everywhere (catalogs must agree: attribute and
  /// port indexes are the cross-site wire format).
  Status LoadSchema(std::string_view source);

  int num_sites() const { return static_cast<int>(sites_.size()); }
  core::Database* site(SiteId s) { return &sites_[s]->db; }
  Network* network() { return &network_; }

  /// Creates an instance homed at `site`.
  Result<GlobalRef> Create(SiteId site, const std::string& class_name);

  /// Writes an intrinsic attribute at the instance's home site, then
  /// delivers the resulting cross-site traffic.
  Status Set(const GlobalRef& ref, const std::string& attr, Value value);

  /// Reads an attribute at the instance's home site (evaluating there).
  Result<Value> Get(const GlobalRef& ref, const std::string& attr);

  /// Non-subscribing read (see core::Database::Peek).
  Result<Value> Peek(const GlobalRef& ref, const std::string& attr);

  /// Establishes a dependency relationship. Same-site pairs connect
  /// directly; cross-site pairs connect the consumer to a (shared,
  /// per-site) mirror of the provider.
  Result<EdgeId> Connect(const GlobalRef& consumer,
                         const std::string& consumer_port,
                         const GlobalRef& provider,
                         const std::string& provider_port);

  /// The mirror of `provider` at `at_site`, if one exists.
  Result<InstanceId> MirrorOf(const GlobalRef& provider, SiteId at_site) const;

  size_t mirror_count() const { return mirrors_.size(); }

 private:
  struct Site {
    explicit Site(const core::DatabaseOptions& opts) : db(opts) {}
    core::Database db;
  };

  struct Watch {
    SiteId consumer_site;
    InstanceId mirror;
  };

  Status ValidateRef(const GlobalRef& ref) const;

  /// Creates (or reuses) the mirror of `provider` at `at_site`: detached
  /// instance of the same class, resolver registered, intrinsics synced,
  /// watch installed at the home site.
  Result<InstanceId> EnsureMirror(const GlobalRef& provider, SiteId at_site);

  /// The home site's change listener: ships pushes/invalidations for
  /// watched instances.
  void OnHomeChange(SiteId home, InstanceId instance, uint32_t attr_index);

  core::DatabaseOptions options_;
  std::vector<std::unique_ptr<Site>> sites_;
  Network network_;

  // (provider global, consumer site) -> mirror instance at that site.
  std::map<std::pair<GlobalRef, SiteId>, InstanceId> mirrors_;
  // provider global -> watches.
  std::map<GlobalRef, std::vector<Watch>> watches_;
};

}  // namespace cactis::dist

#endif  // CACTIS_DIST_CLUSTER_H_
