#include "dist/network.h"

namespace cactis::dist {

std::string_view MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPushIntrinsic:
      return "push-intrinsic";
    case MessageKind::kInvalidate:
      return "invalidate";
    case MessageKind::kFetchRequest:
      return "fetch-request";
    case MessageKind::kFetchReply:
      return "fetch-reply";
  }
  return "?";
}

void Network::Count(MessageKind kind, size_t bytes) {
  ++stats_.messages;
  stats_.bytes += bytes;
  switch (kind) {
    case MessageKind::kPushIntrinsic:
      ++stats_.push_intrinsic;
      break;
    case MessageKind::kInvalidate:
      ++stats_.invalidate;
      break;
    case MessageKind::kFetchRequest:
      ++stats_.fetch_request;
      break;
    case MessageKind::kFetchReply:
      ++stats_.fetch_reply;
      break;
  }
}

void Network::Send(SiteId from, SiteId to, MessageKind kind,
                   size_t approx_bytes, Handler deliver) {
  (void)from;
  (void)to;
  Count(kind, approx_bytes + 16);  // header estimate
  ++sends_;
  if (faults_.drop_every_nth_send != 0 &&
      sends_ % faults_.drop_every_nth_send == 0) {
    ++stats_.dropped;  // the bytes hit the wire; the handler never runs
    return;
  }
  if (faults_.duplicate_every_nth_send != 0 &&
      sends_ % faults_.duplicate_every_nth_send == 0) {
    ++stats_.duplicated;
    Count(kind, approx_bytes + 16);
    queue_.push_back(deliver);
  }
  queue_.push_back(std::move(deliver));
}

bool Network::RpcLost() {
  ++rpcs_;
  if (faults_.drop_every_nth_rpc != 0 &&
      rpcs_ % faults_.drop_every_nth_rpc == 0) {
    ++stats_.rpc_lost;
    // The request went out before it (or its reply) vanished.
    Count(MessageKind::kFetchRequest, 16);
    return true;
  }
  return false;
}

void Network::CountRpc(SiteId from, SiteId to, size_t request_bytes,
                       size_t reply_bytes) {
  (void)from;
  (void)to;
  Count(MessageKind::kFetchRequest, request_bytes + 16);
  Count(MessageKind::kFetchReply, reply_bytes + 16);
}

Status Network::DeliverAll() {
  // Handlers may trigger further sends; cap the cascade defensively.
  for (int guard = 0; guard < 1 << 20; ++guard) {
    if (queue_.empty()) return Status::OK();
    Handler h = std::move(queue_.front());
    queue_.pop_front();
    CACTIS_RETURN_IF_ERROR(h());
  }
  return Status::Internal("network delivery did not quiesce");
}

}  // namespace cactis::dist
