#include "dist/cluster.h"

#include "common/backoff.h"

namespace cactis::dist {
namespace {

/// One fetch exchange with bounded retransmission: the simulated network
/// may lose the request/reply pair (NetworkFaults::drop_every_nth_rpc);
/// the caller retransmits within the retry budget, then gives up with
/// IoError. Retransmissions are paced by the shared jittered-exponential
/// Backoff — with a recorder sleep, so the delay is charged to the
/// network's rpc_backoff_us counter instead of actually spent (the
/// network is simulated; wall-clock sleeps would only slow tests).
/// The home database read happens only for the exchange that completes.
Result<Value> RpcFetch(Network* net, core::Database* home_db, SiteId from_site,
                       SiteId home_site, InstanceId provider,
                       const std::string& attr) {
  BackoffPolicy policy;
  policy.max_attempts = net->faults().max_rpc_retries;
  Backoff backoff(policy, [net](uint64_t us) { net->NoteRpcBackoff(us); });
  for (int attempt = 0;; ++attempt) {
    net->NoteRpcAttempt();
    if (net->RpcLost()) {
      if (!backoff.ShouldRetry()) {
        return Status::IoError("fetch of '" + attr + "' from site " +
                               std::to_string(home_site) + " lost after " +
                               std::to_string(attempt + 1) + " attempts");
      }
      continue;
    }
    if (attempt > 0) net->NoteRpcRetry();
    CACTIS_ASSIGN_OR_RETURN(Value v, home_db->Peek(provider, attr));
    net->CountRpc(from_site, home_site, 16 + attr.size(), v.SerializedSize());
    return v;
  }
}

}  // namespace

DistributedCactis::DistributedCactis(int num_sites,
                                     core::DatabaseOptions options)
    : options_(options) {
  for (int s = 0; s < num_sites; ++s) {
    sites_.push_back(std::make_unique<Site>(options_));
    SiteId site = static_cast<SiteId>(s);
    sites_.back()->db.SetChangeListener(
        [this, site](InstanceId instance, uint32_t attr_index) {
          OnHomeChange(site, instance, attr_index);
        });
  }
}

Status DistributedCactis::LoadSchema(std::string_view source) {
  for (auto& site : sites_) {
    CACTIS_RETURN_IF_ERROR(site->db.LoadSchema(source));
  }
  return Status::OK();
}

Status DistributedCactis::ValidateRef(const GlobalRef& ref) const {
  if (ref.site >= sites_.size()) {
    return Status::InvalidArgument("unknown site " + std::to_string(ref.site));
  }
  return Status::OK();
}

Result<GlobalRef> DistributedCactis::Create(SiteId site,
                                            const std::string& class_name) {
  if (site >= sites_.size()) {
    return Status::InvalidArgument("unknown site " + std::to_string(site));
  }
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, sites_[site]->db.Create(class_name));
  return GlobalRef{site, id};
}

Status DistributedCactis::Set(const GlobalRef& ref, const std::string& attr,
                              Value value) {
  CACTIS_RETURN_IF_ERROR(ValidateRef(ref));
  CACTIS_RETURN_IF_ERROR(
      sites_[ref.site]->db.Set(ref.id, attr, std::move(value)));
  return network_.DeliverAll();
}

Result<Value> DistributedCactis::Get(const GlobalRef& ref,
                                     const std::string& attr) {
  CACTIS_RETURN_IF_ERROR(ValidateRef(ref));
  CACTIS_ASSIGN_OR_RETURN(Value v, sites_[ref.site]->db.Get(ref.id, attr));
  CACTIS_RETURN_IF_ERROR(network_.DeliverAll());
  return v;
}

Result<Value> DistributedCactis::Peek(const GlobalRef& ref,
                                      const std::string& attr) {
  CACTIS_RETURN_IF_ERROR(ValidateRef(ref));
  CACTIS_ASSIGN_OR_RETURN(Value v, sites_[ref.site]->db.Peek(ref.id, attr));
  CACTIS_RETURN_IF_ERROR(network_.DeliverAll());
  return v;
}

Result<EdgeId> DistributedCactis::Connect(const GlobalRef& consumer,
                                          const std::string& consumer_port,
                                          const GlobalRef& provider,
                                          const std::string& provider_port) {
  CACTIS_RETURN_IF_ERROR(ValidateRef(consumer));
  CACTIS_RETURN_IF_ERROR(ValidateRef(provider));

  InstanceId local_provider = provider.id;
  if (consumer.site != provider.site) {
    CACTIS_ASSIGN_OR_RETURN(local_provider,
                            EnsureMirror(provider, consumer.site));
  }
  CACTIS_ASSIGN_OR_RETURN(
      EdgeId edge,
      sites_[consumer.site]->db.Connect(consumer.id, consumer_port,
                                        local_provider, provider_port));
  CACTIS_RETURN_IF_ERROR(network_.DeliverAll());
  return edge;
}

Result<InstanceId> DistributedCactis::MirrorOf(const GlobalRef& provider,
                                               SiteId at_site) const {
  auto it = mirrors_.find({provider, at_site});
  if (it == mirrors_.end()) {
    return Status::NotFound("no mirror of instance " +
                            std::to_string(provider.id.value) + " at site " +
                            std::to_string(at_site));
  }
  return it->second;
}

Result<InstanceId> DistributedCactis::EnsureMirror(const GlobalRef& provider,
                                                   SiteId at_site) {
  auto existing = mirrors_.find({provider, at_site});
  if (existing != mirrors_.end()) return existing->second;

  core::Database& home = sites_[provider.site]->db;
  core::Database& local = sites_[at_site]->db;

  CACTIS_ASSIGN_OR_RETURN(ClassId class_id, home.ClassOf(provider.id));
  const schema::ObjectClass* cls = home.catalog()->GetClass(class_id);
  if (cls == nullptr) {
    return Status::Internal("provider class missing from catalog");
  }

  CACTIS_ASSIGN_OR_RETURN(InstanceId mirror,
                          local.CreateDetached(cls->name()));

  // Derived values are pulled from the home site on demand. The resolver
  // is a synchronous RPC: count a request/reply pair per fetch.
  core::Database* home_db = &home;
  Network* net = &network_;
  SiteId home_site = provider.site;
  InstanceId provider_id = provider.id;
  const schema::ObjectClass* cls_ptr = cls;
  SiteId local_site = at_site;
  local.RegisterMirror(
      mirror, [home_db, net, home_site, local_site, provider_id,
               cls_ptr](uint32_t attr_index) -> Result<Value> {
        if (attr_index >= cls_ptr->attributes().size()) {
          return Status::Internal("mirror fetch of unknown attribute");
        }
        const std::string& name = cls_ptr->attributes()[attr_index].name;
        return RpcFetch(net, home_db, local_site, home_site, provider_id,
                        name);
      });

  // Intrinsic values are pushed eagerly: sync them now...
  for (const schema::AttributeDef& def : cls->attributes()) {
    if (def.is_derived()) continue;
    CACTIS_ASSIGN_OR_RETURN(
        Value v, RpcFetch(&network_, &home, at_site, provider.site,
                          provider.id, def.name));
    CACTIS_RETURN_IF_ERROR(local.Set(mirror, def.name, std::move(v)));
  }
  // ...and watch the provider for future changes.
  mirrors_[{provider, at_site}] = mirror;
  watches_[provider].push_back(Watch{at_site, mirror});
  return mirror;
}

void DistributedCactis::OnHomeChange(SiteId home, InstanceId instance,
                                     uint32_t attr_index) {
  auto watch = watches_.find(GlobalRef{home, instance});
  if (watch == watches_.end()) return;

  core::Database& home_db = sites_[home]->db;
  auto class_id = home_db.ClassOf(instance);
  if (!class_id.ok()) return;
  const schema::ObjectClass* cls = home_db.catalog()->GetClass(*class_id);
  if (cls == nullptr || attr_index >= cls->attributes().size()) return;
  const schema::AttributeDef& def = cls->attributes()[attr_index];

  for (const Watch& w : watch->second) {
    core::Database* target = &sites_[w.consumer_site]->db;
    InstanceId mirror = w.mirror;
    std::string attr_name = def.name;
    if (def.is_derived()) {
      // Lazy: invalidate the mirrored copy; the value moves on demand.
      network_.Send(home, w.consumer_site, MessageKind::kInvalidate, 24,
                    [target, mirror, attr_name] {
                      return target->InvalidateAttribute(mirror, attr_name);
                    });
    } else {
      // Eager: push the new intrinsic value.
      core::Database* home_ptr = &home_db;
      InstanceId provider = instance;
      network_.Send(home, w.consumer_site, MessageKind::kPushIntrinsic, 32,
                    [target, mirror, attr_name, home_ptr, provider] {
                      CACTIS_ASSIGN_OR_RETURN(
                          Value v, home_ptr->Peek(provider, attr_name));
                      return target->Set(mirror, attr_name, std::move(v));
                    });
    }
  }
}

}  // namespace cactis::dist
