// Simulated network for the distributed Cactis prototype (paper section
// 5: "We are in the process of constructing a distributed version of
// Cactis ... It will be necessary to allow different users at different
// machines to configure their own environments privately and share
// information").
//
// Substitution note (DESIGN.md): there is no real network here; messages
// between sites are delivered in-process through a queue, and the
// experiment-relevant quantity — how many messages / bytes cross site
// boundaries for a given workload — is counted exactly.

#ifndef CACTIS_DIST_NETWORK_H_
#define CACTIS_DIST_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/status.h"

namespace cactis::dist {

using SiteId = uint32_t;

enum class MessageKind : uint8_t {
  kPushIntrinsic,  // owner -> mirror: new intrinsic value
  kInvalidate,     // owner -> mirror: derived attribute went stale
  kFetchRequest,   // mirror -> owner: demand a value
  kFetchReply,     // owner -> mirror: the value
};

std::string_view MessageKindToString(MessageKind kind);

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t push_intrinsic = 0;
  uint64_t invalidate = 0;
  uint64_t fetch_request = 0;
  uint64_t fetch_reply = 0;

  uint64_t CountOf(MessageKind kind) const {
    switch (kind) {
      case MessageKind::kPushIntrinsic:
        return push_intrinsic;
      case MessageKind::kInvalidate:
        return invalidate;
      case MessageKind::kFetchRequest:
        return fetch_request;
      case MessageKind::kFetchReply:
        return fetch_reply;
    }
    return 0;
  }
};

/// A deferred-delivery message bus. Senders enqueue closures tagged with
/// kind/size (counted immediately); DeliverAll() runs them after the
/// originating database operation has finished, so message handlers never
/// re-enter a mid-operation evaluation engine.
class Network {
 public:
  using Handler = std::function<Status()>;

  /// Counts and enqueues a message. `approx_bytes` is the payload
  /// estimate (ids + serialized values).
  void Send(SiteId from, SiteId to, MessageKind kind, size_t approx_bytes,
            Handler deliver);

  /// Counts a synchronous request/reply pair (fetches are RPC-shaped and
  /// happen while both sites are quiescent).
  void CountRpc(SiteId from, SiteId to, size_t request_bytes,
                size_t reply_bytes);

  /// Delivers every queued message (handlers may enqueue more; runs to
  /// quiescence, with a safety cap).
  Status DeliverAll();

  bool idle() const { return queue_.empty(); }
  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  void Count(MessageKind kind, size_t bytes);

  std::deque<Handler> queue_;
  NetworkStats stats_;
};

}  // namespace cactis::dist

#endif  // CACTIS_DIST_NETWORK_H_
