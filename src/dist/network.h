// Simulated network for the distributed Cactis prototype (paper section
// 5: "We are in the process of constructing a distributed version of
// Cactis ... It will be necessary to allow different users at different
// machines to configure their own environments privately and share
// information").
//
// Substitution note (DESIGN.md): there is no real network here; messages
// between sites are delivered in-process through a queue, and the
// experiment-relevant quantity — how many messages / bytes cross site
// boundaries for a given workload — is counted exactly.

#ifndef CACTIS_DIST_NETWORK_H_
#define CACTIS_DIST_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/status.h"

namespace cactis::dist {

using SiteId = uint32_t;

enum class MessageKind : uint8_t {
  kPushIntrinsic,  // owner -> mirror: new intrinsic value
  kInvalidate,     // owner -> mirror: derived attribute went stale
  kFetchRequest,   // mirror -> owner: demand a value
  kFetchReply,     // owner -> mirror: the value
};

std::string_view MessageKindToString(MessageKind kind);

/// Deterministic fault injection for the message bus. Counters are
/// 1-based: with drop_every_nth_send = 3, sends 3, 6, 9, ... are lost.
/// Zero disables a knob.
struct NetworkFaults {
  /// Silently discard every Nth queued message (push/invalidate traffic).
  uint64_t drop_every_nth_send = 0;
  /// Deliver every Nth queued message twice (handlers are idempotent, so
  /// duplicates must be harmless; the duplicate's bytes are counted).
  uint64_t duplicate_every_nth_send = 0;
  /// Lose every Nth RPC exchange (fetch request/reply pair). Callers
  /// retransmit up to max_rpc_retries times before giving up.
  uint64_t drop_every_nth_rpc = 0;
  /// Retransmission budget per RPC before the caller surfaces IoError.
  int max_rpc_retries = 3;
};

struct NetworkStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
  uint64_t push_intrinsic = 0;
  uint64_t invalidate = 0;
  uint64_t fetch_request = 0;
  uint64_t fetch_reply = 0;
  // Fault-injection outcomes.
  uint64_t dropped = 0;      ///< queued messages lost in transit
  uint64_t duplicated = 0;   ///< queued messages delivered twice
  uint64_t rpc_lost = 0;     ///< RPC exchanges that never completed
  uint64_t rpc_retries = 0;  ///< retransmissions that did complete
  uint64_t rpc_attempts = 0;   ///< every exchange tried, lost or not
  uint64_t rpc_backoff_us = 0; ///< simulated retransmission backoff time

  uint64_t CountOf(MessageKind kind) const {
    switch (kind) {
      case MessageKind::kPushIntrinsic:
        return push_intrinsic;
      case MessageKind::kInvalidate:
        return invalidate;
      case MessageKind::kFetchRequest:
        return fetch_request;
      case MessageKind::kFetchReply:
        return fetch_reply;
    }
    return 0;
  }
};

/// A deferred-delivery message bus. Senders enqueue closures tagged with
/// kind/size (counted immediately); DeliverAll() runs them after the
/// originating database operation has finished, so message handlers never
/// re-enter a mid-operation evaluation engine.
class Network {
 public:
  using Handler = std::function<Status()>;

  /// Counts and enqueues a message. `approx_bytes` is the payload
  /// estimate (ids + serialized values).
  void Send(SiteId from, SiteId to, MessageKind kind, size_t approx_bytes,
            Handler deliver);

  /// Counts a synchronous request/reply pair (fetches are RPC-shaped and
  /// happen while both sites are quiescent).
  void CountRpc(SiteId from, SiteId to, size_t request_bytes,
                size_t reply_bytes);

  /// Consults fault injection for the next RPC exchange. True means the
  /// request (or its reply) was lost: the caller must retransmit, up to
  /// faults().max_rpc_retries attempts, then surface IoError. A lost
  /// exchange still burned a request's bytes on the wire.
  bool RpcLost();

  /// Records that a retransmitted RPC finally completed (stats only).
  void NoteRpcRetry() { ++stats_.rpc_retries; }

  /// Records one RPC attempt (first try or retransmission).
  void NoteRpcAttempt() { ++stats_.rpc_attempts; }

  /// Accumulates retransmission backoff time. The network is simulated,
  /// so callers *count* the delay through a Backoff recorder instead of
  /// actually sleeping it.
  void NoteRpcBackoff(uint64_t us) { stats_.rpc_backoff_us += us; }

  /// Delivers every queued message (handlers may enqueue more; runs to
  /// quiescence, with a safety cap).
  Status DeliverAll();

  bool idle() const { return queue_.empty(); }
  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  void set_faults(NetworkFaults faults) { faults_ = faults; }
  const NetworkFaults& faults() const { return faults_; }

 private:
  void Count(MessageKind kind, size_t bytes);

  std::deque<Handler> queue_;
  NetworkStats stats_;
  NetworkFaults faults_;
  uint64_t sends_ = 0;  // 1-based fault-injection counters
  uint64_t rpcs_ = 0;
};

}  // namespace cactis::dist

#endif  // CACTIS_DIST_NETWORK_H_
