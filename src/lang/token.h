// Tokens of the Cactis data language.
//
// The language is the one used in the paper's Figures 1-4: class
// definitions with Relationships / Attributes / Rules sections, Begin/End
// blocks, `For Each x Related To port Do ... End`, and expression rules.
// Keywords are case-insensitive (the paper capitalises them).

#ifndef CACTIS_LANG_TOKEN_H_
#define CACTIS_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace cactis::lang {

enum class TokenType {
  kEnd,  // end of input
  kIdentifier,
  kIntLiteral,
  kRealLiteral,
  kStringLiteral,
  // Keywords.
  kKwObject,
  kKwClass,
  kKwIs,
  kKwEndKw,   // "end"
  kKwRelationships,
  kKwRelationship,
  kKwAttributes,
  kKwRules,
  kKwConstraints,
  kKwConstraint,
  kKwRecovery,
  kKwSubtype,
  kKwOf,
  kKwWhere,
  kKwMulti,
  kKwSingle,
  kKwPlug,
  kKwSocket,
  kKwBegin,
  kKwFor,
  kKwEach,
  kKwRelated,
  kKwTo,
  kKwDo,
  kKwIf,
  kKwThen,
  kKwElse,
  kKwReturn,
  kKwTrue,
  kKwFalse,
  kKwAnd,
  kKwOr,
  kKwNot,
  kKwNull,
  kKwCircular,
  // Punctuation / operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kAssign,      // =
  kEq,          // ==
  kNe,          // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier / literal spelling (lower-cased for ids)
  int64_t int_value = 0;
  double real_value = 0.0;
  int line = 0;
  int column = 0;
};

/// Debug name of a token type ("identifier", "';'", ...).
std::string TokenTypeToString(TokenType type);

}  // namespace cactis::lang

#endif  // CACTIS_LANG_TOKEN_H_
