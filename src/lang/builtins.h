// Builtin function registry for the data language.
//
// Pure builtins (later_of, count, string and set helpers, ...) are
// registered by default. The environment layer registers the impure ones
// the paper's Figures 3-4 use — `file_mod_time` and `system_command` —
// against its virtual file system and command runner.

#ifndef CACTIS_LANG_BUILTINS_H_
#define CACTIS_LANG_BUILTINS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace cactis::lang {

using BuiltinFn = std::function<Result<Value>(const std::vector<Value>&)>;

class BuiltinRegistry {
 public:
  /// Creates a registry pre-populated with the pure builtins:
  ///   time0()                - the distant past (paper's TIME0)
  ///   time_inf()             - the distant future
  ///   time(i)                - int ticks -> time
  ///   later_of(a, b, ...)    - max of times
  ///   earlier_of(a, b, ...)  - min of times
  ///   later_than(a, b)       - a > b
  ///   earlier_than(a, b)     - a < b
  ///   min/max/sum(...)       - over numbers, or one array argument
  ///   abs(x), len(s|a), concat(...), to_string(x), to_int(x), to_real(x)
  ///   select(c, a, b)        - c ? a : b (both sides evaluated)
  ///   array(...)             - array constructor ([..] literals lower to it)
  ///   append(a, x)           - array with x appended
  ///   at(a, i)               - array element
  ///   set_union(a, b), set_diff(a, b), set_insert(a, x),
  ///   set_member(a, x), set_size(a)
  ///   void(x)                - evaluate and discard (Figure 4's VOID)
  static BuiltinRegistry WithDefaults();

  /// Registers (or replaces) a builtin. Names are lower-case.
  void Register(std::string name, BuiltinFn fn);

  /// Returns nullptr when unknown.
  const BuiltinFn* Lookup(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return table_.contains(name);
  }

 private:
  std::unordered_map<std::string, BuiltinFn> table_;
};

}  // namespace cactis::lang

#endif  // CACTIS_LANG_BUILTINS_H_
