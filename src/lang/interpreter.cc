#include "lang/interpreter.h"

namespace cactis::lang {

namespace {

Value DefaultForType(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return Value::Bool(false);
    case ValueType::kInt:
      return Value::Int(0);
    case ValueType::kReal:
      return Value::Real(0.0);
    case ValueType::kString:
      return Value::String("");
    case ValueType::kTime:
      return Value::Time(kTimeZero);
    case ValueType::kArray:
      return Value::Array({});
    default:
      return Value::Null();
  }
}

bool IsNumericLike(const Value& v) {
  switch (v.type()) {
    case ValueType::kBool:
    case ValueType::kInt:
    case ValueType::kReal:
    case ValueType::kTime:
      return true;
    default:
      return false;
  }
}

}  // namespace

Result<Value> ApplyBinaryOp(BinOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BinOp::kAnd: {
      CACTIS_ASSIGN_OR_RETURN(bool a, lhs.AsBool());
      CACTIS_ASSIGN_OR_RETURN(bool b, rhs.AsBool());
      return Value::Bool(a && b);
    }
    case BinOp::kOr: {
      CACTIS_ASSIGN_OR_RETURN(bool a, lhs.AsBool());
      CACTIS_ASSIGN_OR_RETURN(bool b, rhs.AsBool());
      return Value::Bool(a || b);
    }
    case BinOp::kEq:
      if (IsNumericLike(lhs) && IsNumericLike(rhs) &&
          lhs.type() != rhs.type()) {
        return Value::Bool(*lhs.ToNumber() == *rhs.ToNumber());
      }
      return Value::Bool(lhs == rhs);
    case BinOp::kNe:
      if (IsNumericLike(lhs) && IsNumericLike(rhs) &&
          lhs.type() != rhs.type()) {
        return Value::Bool(*lhs.ToNumber() != *rhs.ToNumber());
      }
      return Value::Bool(!(lhs == rhs));
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      // Strings compare lexically; everything numeric-like via ToNumber.
      if (lhs.type() == ValueType::kString &&
          rhs.type() == ValueType::kString) {
        const std::string a = *lhs.AsString();
        const std::string b = *rhs.AsString();
        bool r = op == BinOp::kLt   ? a < b
                 : op == BinOp::kLe ? a <= b
                 : op == BinOp::kGt ? a > b
                                    : a >= b;
        return Value::Bool(r);
      }
      CACTIS_ASSIGN_OR_RETURN(double a, lhs.ToNumber());
      CACTIS_ASSIGN_OR_RETURN(double b, rhs.ToNumber());
      bool r = op == BinOp::kLt   ? a < b
               : op == BinOp::kLe ? a <= b
               : op == BinOp::kGt ? a > b
                                  : a >= b;
      return Value::Bool(r);
    }
    case BinOp::kAdd:
      if (lhs.type() == ValueType::kString ||
          rhs.type() == ValueType::kString) {
        auto str = [](const Value& v) {
          return v.type() == ValueType::kString ? *v.AsString() : v.ToString();
        };
        return Value::String(str(lhs) + str(rhs));
      }
      if (lhs.type() == ValueType::kArray &&
          rhs.type() == ValueType::kArray) {
        std::vector<Value> a = *lhs.AsArray();
        std::vector<Value> b = *rhs.AsArray();
        a.insert(a.end(), b.begin(), b.end());
        return Value::Array(std::move(a));
      }
      [[fallthrough]];
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv:
    case BinOp::kMod: {
      // Time arithmetic: time +/- numeric stays a time; time - time is a
      // time-valued duration (Figure 1 adds local work to a latest time).
      bool time_result = (op == BinOp::kAdd || op == BinOp::kSub) &&
                         (lhs.type() == ValueType::kTime ||
                          rhs.type() == ValueType::kTime);
      bool int_result = lhs.type() == ValueType::kInt &&
                        rhs.type() == ValueType::kInt;
      CACTIS_ASSIGN_OR_RETURN(double a, lhs.ToNumber());
      CACTIS_ASSIGN_OR_RETURN(double b, rhs.ToNumber());
      double r = 0;
      switch (op) {
        case BinOp::kAdd:
          r = a + b;
          break;
        case BinOp::kSub:
          r = a - b;
          break;
        case BinOp::kMul:
          r = a * b;
          break;
        case BinOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          if (int_result) {
            return Value::Int(*lhs.AsInt() / *rhs.AsInt());
          }
          r = a / b;
          break;
        case BinOp::kMod:
          if (!int_result) {
            return Status::TypeMismatch("'%' requires integer operands");
          }
          if (*rhs.AsInt() == 0) {
            return Status::InvalidArgument("modulo by zero");
          }
          return Value::Int(*lhs.AsInt() % *rhs.AsInt());
        default:
          break;
      }
      if (time_result) return Value::Time(static_cast<int64_t>(r));
      if (int_result) return Value::Int(static_cast<int64_t>(r));
      return Value::Real(r);
    }
  }
  return Status::Internal("unknown binary operator");
}

Result<Value> Interpreter::EvalRule(const RuleBody& body, EvalContext* ctx) {
  if (!body.is_block) {
    Scope scope;
    return Eval(*body.expr, &scope, ctx);
  }
  Scope scope;
  CACTIS_ASSIGN_OR_RETURN(Flow flow, RunStmts(body.block, &scope, ctx));
  if (!flow.returned) {
    return Status::InvalidArgument(
        "rule block finished without executing 'return'");
  }
  return flow.value;
}

Result<Value> Interpreter::EvalExpr(const Expr& expr, EvalContext* ctx) {
  Scope scope;
  return Eval(expr, &scope, ctx);
}

Status Interpreter::ExecStmts(const StmtList& stmts, EvalContext* ctx) {
  Scope scope;
  return RunStmts(stmts, &scope, ctx).status();
}

Result<Interpreter::Flow> Interpreter::RunStmts(const StmtList& stmts,
                                                Scope* scope,
                                                EvalContext* ctx) {
  for (const Stmt& stmt : stmts) {
    CACTIS_ASSIGN_OR_RETURN(Flow flow, RunStmt(stmt, scope, ctx));
    if (flow.returned) return flow;
  }
  return Flow{};
}

Result<Interpreter::Flow> Interpreter::RunStmt(const Stmt& stmt, Scope* scope,
                                               EvalContext* ctx) {
  switch (stmt.kind) {
    case StmtKind::kVarDecl: {
      Value init = DefaultForType(stmt.decl_type);
      if (stmt.expr) {
        CACTIS_ASSIGN_OR_RETURN(init, Eval(*stmt.expr, scope, ctx));
      }
      (*scope)[stmt.name] = Binding(std::move(init));
      return Flow{};
    }
    case StmtKind::kAssign: {
      CACTIS_ASSIGN_OR_RETURN(Value v, Eval(*stmt.expr, scope, ctx));
      auto it = scope->find(stmt.name);
      if (it != scope->end()) {
        it->second = Binding(std::move(v));
        return Flow{};
      }
      if (ctx->HasLocalAttr(stmt.name)) {
        CACTIS_RETURN_IF_ERROR(ctx->SetLocalAttr(stmt.name, std::move(v)));
        return Flow{};
      }
      return Status::InvalidArgument("assignment to undeclared name '" +
                                     stmt.name + "' at line " +
                                     std::to_string(stmt.line));
    }
    case StmtKind::kForEach: {
      CACTIS_ASSIGN_OR_RETURN(std::vector<EvalContext::Neighbor> neighbors,
                              ctx->GetNeighbors(stmt.port));
      for (const auto& n : neighbors) {
        auto saved = scope->find(stmt.var) != scope->end()
                         ? std::optional<Binding>((*scope)[stmt.var])
                         : std::nullopt;
        (*scope)[stmt.var] = Binding(n);
        auto flow_result = RunStmts(stmt.body, scope, ctx);
        if (saved.has_value()) {
          (*scope)[stmt.var] = *saved;
        } else {
          scope->erase(stmt.var);
        }
        CACTIS_ASSIGN_OR_RETURN(Flow flow, std::move(flow_result));
        if (flow.returned) return flow;
      }
      return Flow{};
    }
    case StmtKind::kIf: {
      CACTIS_ASSIGN_OR_RETURN(Value cond, Eval(*stmt.expr, scope, ctx));
      CACTIS_ASSIGN_OR_RETURN(bool c, cond.AsBool());
      return RunStmts(c ? stmt.body : stmt.else_body, scope, ctx);
    }
    case StmtKind::kReturn: {
      CACTIS_ASSIGN_OR_RETURN(Value v, Eval(*stmt.expr, scope, ctx));
      Flow flow;
      flow.returned = true;
      flow.value = std::move(v);
      return flow;
    }
    case StmtKind::kExpr: {
      CACTIS_RETURN_IF_ERROR(Eval(*stmt.expr, scope, ctx).status());
      return Flow{};
    }
  }
  return Status::Internal("unknown statement kind");
}

Result<Value> Interpreter::Eval(const Expr& expr, Scope* scope,
                                EvalContext* ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;

    case ExprKind::kName: {
      auto it = scope->find(expr.name);
      if (it != scope->end()) {
        if (const Value* v = std::get_if<Value>(&it->second)) return *v;
        return Status::TypeMismatch(
            "loop variable '" + expr.name +
            "' used as a value (access a field with '.') at line " +
            std::to_string(expr.line));
      }
      if (ctx->HasLocalAttr(expr.name)) return ctx->GetLocalAttr(expr.name);
      if (const BuiltinFn* fn = ctx->builtins().Lookup(expr.name)) {
        return (*fn)({});
      }
      return Status::NotFound("unknown name '" + expr.name + "' at line " +
                              std::to_string(expr.line));
    }

    case ExprKind::kDot: {
      auto it = scope->find(expr.name);
      if (it != scope->end()) {
        const auto* n = std::get_if<EvalContext::Neighbor>(&it->second);
        if (n == nullptr) {
          // Record field access on a plain variable.
          const Value* v = std::get_if<Value>(&it->second);
          return v->GetField(expr.field);
        }
        return ctx->GetRemoteValue(*n, expr.field);
      }
      if (ctx->HasPort(expr.name)) {
        CACTIS_ASSIGN_OR_RETURN(std::vector<EvalContext::Neighbor> neighbors,
                                ctx->GetNeighbors(expr.name));
        if (neighbors.empty()) return Value::Null();
        if (neighbors.size() > 1) {
          return Status::InvalidArgument(
              "relationship '" + expr.name +
              "' has several instances; use 'for each' (line " +
              std::to_string(expr.line) + ")");
        }
        return ctx->GetRemoteValue(neighbors[0], expr.field);
      }
      if (ctx->HasLocalAttr(expr.name)) {
        CACTIS_ASSIGN_OR_RETURN(Value v, ctx->GetLocalAttr(expr.name));
        return v.GetField(expr.field);
      }
      return Status::NotFound("unknown name '" + expr.name + "' at line " +
                              std::to_string(expr.line));
    }

    case ExprKind::kCall: {
      // count/exists take a port name, not a value.
      if ((expr.name == "count" || expr.name == "exists") &&
          expr.args.size() == 1 &&
          expr.args[0]->kind == ExprKind::kName &&
          ctx->HasPort(expr.args[0]->name)) {
        CACTIS_ASSIGN_OR_RETURN(std::vector<EvalContext::Neighbor> neighbors,
                                ctx->GetNeighbors(expr.args[0]->name));
        if (expr.name == "count") {
          return Value::Int(static_cast<int64_t>(neighbors.size()));
        }
        return Value::Bool(!neighbors.empty());
      }
      const BuiltinFn* fn = ctx->builtins().Lookup(expr.name);
      if (fn == nullptr) {
        return Status::NotFound("unknown function '" + expr.name +
                                "' at line " + std::to_string(expr.line));
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& a : expr.args) {
        CACTIS_ASSIGN_OR_RETURN(Value v, Eval(*a, scope, ctx));
        args.push_back(std::move(v));
      }
      return (*fn)(args);
    }

    case ExprKind::kBinary:
      return EvalBinary(expr, scope, ctx);

    case ExprKind::kUnary: {
      CACTIS_ASSIGN_OR_RETURN(Value v, Eval(*expr.lhs, scope, ctx));
      if (expr.un_op == UnOp::kNot) {
        CACTIS_ASSIGN_OR_RETURN(bool b, v.AsBool());
        return Value::Bool(!b);
      }
      if (v.type() == ValueType::kInt) return Value::Int(-*v.AsInt());
      CACTIS_ASSIGN_OR_RETURN(double d, v.ToNumber());
      return Value::Real(-d);
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> Interpreter::EvalBinary(const Expr& expr, Scope* scope,
                                      EvalContext* ctx) {
  // Short-circuit and/or.
  if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
    CACTIS_ASSIGN_OR_RETURN(Value l, Eval(*expr.lhs, scope, ctx));
    CACTIS_ASSIGN_OR_RETURN(bool lb, l.AsBool());
    if (expr.bin_op == BinOp::kAnd && !lb) return Value::Bool(false);
    if (expr.bin_op == BinOp::kOr && lb) return Value::Bool(true);
    CACTIS_ASSIGN_OR_RETURN(Value r, Eval(*expr.rhs, scope, ctx));
    CACTIS_ASSIGN_OR_RETURN(bool rb, r.AsBool());
    return Value::Bool(rb);
  }
  CACTIS_ASSIGN_OR_RETURN(Value l, Eval(*expr.lhs, scope, ctx));
  CACTIS_ASSIGN_OR_RETURN(Value r, Eval(*expr.rhs, scope, ctx));
  auto result = ApplyBinaryOp(expr.bin_op, l, r);
  if (!result.ok()) {
    return Status(result.status().code(),
                  result.status().message() + " (line " +
                      std::to_string(expr.line) + ")");
  }
  return result;
}

}  // namespace cactis::lang
