// AST of the Cactis data language: expressions, statements, rule bodies,
// and the schema-level declaration specs that the schema loader converts
// into catalog entries.
//
// Name resolution is dynamic (performed by the interpreter against an
// EvalContext) and mirrored statically by the dependency analyzer: a bare
// identifier resolves to, in order, a local variable, a local attribute, or
// a zero-argument builtin; `base.field` resolves `base` to a For-Each loop
// variable or to a relationship port.

#ifndef CACTIS_LANG_AST_H_
#define CACTIS_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"

namespace cactis::lang {

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

enum class UnOp { kNeg, kNot };

std::string_view BinOpToString(BinOp op);

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kLiteral,   // value
  kName,      // bare identifier: variable / local attribute / 0-arg builtin
  kDot,       // base.field: loop-variable or port remote access
  kCall,      // f(args); count/exists with a port-name argument are special
  kBinary,
  kUnary,
};

/// One expression node. A single flat struct (rather than a class
/// hierarchy) keeps the analyzer and interpreter to simple switches.
struct Expr {
  ExprKind kind;
  // kLiteral
  Value literal;
  // kName / kDot / kCall
  std::string name;   // identifier, dot base, or callee
  std::string field;  // kDot field
  // kCall
  std::vector<ExprPtr> args;
  // kBinary / kUnary
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ExprPtr lhs;
  ExprPtr rhs;
  int line = 0;

  static ExprPtr Literal(Value v, int line = 0) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v);
    e->line = line;
    return e;
  }
  static ExprPtr Name(std::string n, int line = 0) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kName;
    e->name = std::move(n);
    e->line = line;
    return e;
  }
  static ExprPtr Dot(std::string base, std::string field, int line = 0) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kDot;
    e->name = std::move(base);
    e->field = std::move(field);
    e->line = line;
    return e;
  }
  static ExprPtr Call(std::string callee, std::vector<ExprPtr> args,
                      int line = 0) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kCall;
    e->name = std::move(callee);
    e->args = std::move(args);
    e->line = line;
    return e;
  }
  static ExprPtr Binary(BinOp op, ExprPtr l, ExprPtr r, int line = 0) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kBinary;
    e->bin_op = op;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    e->line = line;
    return e;
  }
  static ExprPtr Unary(UnOp op, ExprPtr operand, int line = 0) {
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::kUnary;
    e->un_op = op;
    e->lhs = std::move(operand);
    e->line = line;
    return e;
  }
};

struct Stmt;
using StmtList = std::vector<Stmt>;

enum class StmtKind {
  kVarDecl,  // name : type [= expr];
  kAssign,   // name = expr;  (local variable, or intrinsic attribute inside
             //  recovery actions)
  kForEach,  // for each var related to port do ... end;
  kIf,       // if expr then ... [else ...] end;
  kReturn,   // return(expr);
  kExpr,     // expr;  (for side effects, e.g. void(dep.up_to_date))
};

struct Stmt {
  StmtKind kind;
  std::string name;                      // var decl / assign target
  ValueType decl_type = ValueType::kNull;  // var decl
  ExprPtr expr;                          // init / rhs / condition / return
  std::string var;                       // for-each loop variable
  std::string port;                      // for-each port
  StmtList body;
  StmtList else_body;
  int line = 0;
};

/// The body of an attribute-evaluation rule, constraint predicate, subtype
/// predicate, or recovery action: either a single expression or a
/// Begin...End block whose value is supplied by `return`.
struct RuleBody {
  bool is_block = false;
  ExprPtr expr;    // when !is_block
  StmtList block;  // when is_block

  static RuleBody FromExpr(ExprPtr e) {
    RuleBody b;
    b.is_block = false;
    b.expr = std::move(e);
    return b;
  }
  static RuleBody FromBlock(StmtList stmts) {
    RuleBody b;
    b.is_block = true;
    b.block = std::move(stmts);
    return b;
  }
};

// --- Schema-level declarations -------------------------------------------

/// `relationship name;` — declares a relationship type (an edge kind
/// connecting one class's plug port to another class's socket port).
struct RelTypeSpec {
  std::string name;
};

struct PortSpec {
  std::string name;
  std::string rel_type;
  bool is_plug = false;   // else socket
  bool is_multi = false;  // else single
};

struct AttrSpec {
  std::string name;
  ValueType type = ValueType::kNull;
  bool has_default = false;
  Value default_value;
};

/// A rule `target = body;` where target is `attr` (derived attribute) or
/// `port.value_name` (an export: the value this class transmits across the
/// named relationship port).
struct RuleSpec {
  std::string target;       // attribute name, or port name for exports
  std::string export_name;  // non-empty for `port.value` targets
  RuleBody body;
  /// Declared with the `circular` keyword: the attribute may participate
  /// in instance-level dependency cycles, resolved by fixed-point
  /// iteration from its default value ([Far86]-style circular-but-
  /// well-defined evaluation).
  bool circular = false;
};

/// `name : predicate [recovery begin ... end];`
struct ConstraintSpec {
  std::string name;
  RuleBody predicate;
  bool has_recovery = false;
  StmtList recovery;
};

struct ClassSpec {
  std::string name;
  std::vector<PortSpec> ports;
  std::vector<AttrSpec> attributes;
  std::vector<RuleSpec> rules;
  std::vector<ConstraintSpec> constraints;
};

/// `subtype name of class where predicate;`
struct SubtypeSpec {
  std::string name;
  std::string class_name;
  RuleBody predicate;
};

/// One top-level declaration of a schema source file.
struct Decl {
  enum class Kind { kRelType, kClass, kSubtype } kind;
  RelTypeSpec rel_type;
  ClassSpec class_spec;
  SubtypeSpec subtype;
};

}  // namespace cactis::lang

#endif  // CACTIS_LANG_AST_H_
