// Recursive-descent parser for the Cactis data language.
//
// Grammar (keywords case-insensitive; `--` and `/* */` comments):
//
//   schema       := { decl }
//   decl         := rel_type_decl | class_decl | subtype_decl
//   rel_type_decl:= "relationship" IDENT ";"
//   class_decl   := "object" "class" IDENT "is" sections "end" ["object"] ";"
//   sections     := ["relationships" {port_decl}]
//                   ["attributes" {attr_decl}]
//                   ["rules" {rule_decl}]
//                   ["constraints" {constraint_decl}]
//   port_decl    := IDENT ":" IDENT ("multi"|"single") ("plug"|"socket") ";"
//   attr_decl    := IDENT ":" type ["=" literal] ";"
//   rule_decl    := IDENT ["." IDENT] "=" rule_body ";"
//   constraint_decl := IDENT ":" rule_body ["recovery" block] ";"
//   subtype_decl := "subtype" IDENT "of" IDENT "where" rule_body ";"
//   rule_body    := block | expr
//   block        := "begin" {stmt} "end"
//   stmt         := var_decl | assign | foreach | if | return | expr ";"
//   var_decl     := IDENT ":" type ["=" expr] ";"
//   assign       := IDENT "=" expr ";"
//   foreach      := "for" "each" IDENT "related" "to" IDENT "do"
//                     {stmt} "end" ["for"] ";"
//   if           := "if" expr "then" {stmt} ["else" {stmt}] "end" ["if"] ";"
//   return       := "return" "(" expr ")" ";"  |  "return" expr ";"
//   expr         := or-expression with usual precedence; primary is
//                   literal, name, name "." field, call, "(" expr ")",
//                   "[" expr-list "]" (array literal)
//
// Equality accepts both `==` and a bare `=` inside expressions (the paper
// uses `=` for both definition and comparison; context disambiguates:
// statement-level `=` after a bare identifier is assignment).

#ifndef CACTIS_LANG_PARSER_H_
#define CACTIS_LANG_PARSER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"
#include "lang/token.h"

namespace cactis::lang {

class Parser {
 public:
  /// Parses a full schema source: a sequence of declarations.
  static Result<std::vector<Decl>> ParseSchema(std::string_view source);

  /// Parses a standalone rule body (used by the C++ ClassBuilder API, which
  /// accepts rule source strings).
  static Result<RuleBody> ParseRuleBody(std::string_view source);

  /// Parses a standalone expression.
  static Result<ExprPtr> ParseExpression(std::string_view source);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t);
  Result<Token> Expect(TokenType t, std::string_view what);
  Status ErrorHere(std::string_view message) const;

  Result<Decl> ParseDecl();
  Result<ClassSpec> ParseClass();
  Result<SubtypeSpec> ParseSubtype();
  Result<PortSpec> ParsePort();
  Result<AttrSpec> ParseAttr();
  Result<RuleSpec> ParseRule();
  Result<ConstraintSpec> ParseConstraint();
  Result<RuleBody> ParseRuleBodyInternal();
  Result<StmtList> ParseBlockUntil(std::initializer_list<TokenType> stops);
  Result<Stmt> ParseStmt();
  Result<ExprPtr> ParseExpr();
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace cactis::lang

#endif  // CACTIS_LANG_PARSER_H_
