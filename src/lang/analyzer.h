// Static dependency analysis of attribute-evaluation rules.
//
// Paper, section 2.2: "An attribute is dependent on another attribute if
// that attribute is mentioned in its attribute evaluation rule." The
// analyzer extracts exactly those mentions from a rule's AST:
//
//  * kLocal      — a mention of an attribute of the same instance;
//  * kRemote     — `v.name` inside `for each v related to port`, or
//                  `port.name` directly: the value `name` received across
//                  `port`;
//  * kStructural — the rule's result depends on the *set of edges* of a
//                  port (for-each iteration, count/exists), so connecting
//                  or disconnecting the port invalidates it.
//
// The schema layer uses the dependency list to wire the attribute
// dependency graph; the mark-out-of-date phase traverses its reverse.

#ifndef CACTIS_LANG_ANALYZER_H_
#define CACTIS_LANG_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "lang/ast.h"

namespace cactis::lang {

struct Dependency {
  enum class Kind { kLocal, kRemote, kStructural };
  Kind kind;
  std::string name;  // attribute / received-value name (empty: structural)
  std::string port;  // for kRemote and kStructural

  auto operator<=>(const Dependency&) const = default;
};

/// The class context the analyzer resolves names against.
struct ClassContext {
  std::set<std::string> attribute_names;
  std::set<std::string> port_names;
};

/// Extracts the deduplicated dependency list of `body`.
///
/// `allow_attr_assign` permits assignment statements that target an
/// attribute name (legal only in constraint recovery actions). An
/// assignment to a name that is neither a declared local variable nor
/// (when allowed) an attribute is an error; likewise a for-each over an
/// unknown port.
Result<std::vector<Dependency>> AnalyzeDependencies(
    const RuleBody& body, const ClassContext& ctx,
    bool allow_attr_assign = false);

/// Convenience overload for bare statement lists (recovery actions).
Result<std::vector<Dependency>> AnalyzeDependencies(
    const StmtList& stmts, const ClassContext& ctx, bool allow_attr_assign);

}  // namespace cactis::lang

#endif  // CACTIS_LANG_ANALYZER_H_
