#include "lang/lexer.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <unordered_map>

namespace cactis::lang {

namespace {

const std::unordered_map<std::string, TokenType>& KeywordTable() {
  static const auto* table = new std::unordered_map<std::string, TokenType>{
      {"object", TokenType::kKwObject},
      {"class", TokenType::kKwClass},
      {"is", TokenType::kKwIs},
      {"end", TokenType::kKwEndKw},
      {"relationships", TokenType::kKwRelationships},
      {"relationship", TokenType::kKwRelationship},
      {"attributes", TokenType::kKwAttributes},
      {"rules", TokenType::kKwRules},
      {"constraints", TokenType::kKwConstraints},
      {"constraint", TokenType::kKwConstraint},
      {"recovery", TokenType::kKwRecovery},
      {"subtype", TokenType::kKwSubtype},
      {"of", TokenType::kKwOf},
      {"where", TokenType::kKwWhere},
      {"multi", TokenType::kKwMulti},
      {"single", TokenType::kKwSingle},
      {"plug", TokenType::kKwPlug},
      {"socket", TokenType::kKwSocket},
      {"begin", TokenType::kKwBegin},
      {"for", TokenType::kKwFor},
      {"each", TokenType::kKwEach},
      {"related", TokenType::kKwRelated},
      {"to", TokenType::kKwTo},
      {"do", TokenType::kKwDo},
      {"if", TokenType::kKwIf},
      {"then", TokenType::kKwThen},
      {"else", TokenType::kKwElse},
      {"return", TokenType::kKwReturn},
      {"true", TokenType::kKwTrue},
      {"false", TokenType::kKwFalse},
      {"and", TokenType::kKwAnd},
      {"or", TokenType::kKwOr},
      {"not", TokenType::kKwNot},
      {"null", TokenType::kKwNull},
      {"circular", TokenType::kKwCircular},
  };
  return *table;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(c)));
  return out;
}

}  // namespace

std::string TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "end of input";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kIntLiteral:
      return "integer literal";
    case TokenType::kRealLiteral:
      return "real literal";
    case TokenType::kStringLiteral:
      return "string literal";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBracket:
      return "'['";
    case TokenType::kRBracket:
      return "']'";
    case TokenType::kComma:
      return "','";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kColon:
      return "':'";
    case TokenType::kDot:
      return "'.'";
    case TokenType::kAssign:
      return "'='";
    case TokenType::kEq:
      return "'=='";
    case TokenType::kNe:
      return "'!='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kSlash:
      return "'/'";
    case TokenType::kPercent:
      return "'%'";
    default:
      return "keyword";
  }
}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Status Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else if (c == '/' && Peek(1) == '*') {
      int start_line = line_;
      Advance();
      Advance();
      while (!(Peek() == '*' && Peek(1) == '/')) {
        if (AtEnd()) {
          return Status::ParseError("unterminated comment starting at line " +
                                    std::to_string(start_line));
        }
        Advance();
      }
      Advance();
      Advance();
    } else {
      break;
    }
  }
  return Status::OK();
}

Result<Token> Lexer::Next() {
  CACTIS_RETURN_IF_ERROR(SkipWhitespaceAndComments());
  Token tok;
  tok.line = line_;
  tok.column = column_;
  if (AtEnd()) {
    tok.type = TokenType::kEnd;
    return tok;
  }

  char c = Peek();

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      word.push_back(Advance());
    }
    word = ToLower(word);
    auto kw = KeywordTable().find(word);
    if (kw != KeywordTable().end()) {
      tok.type = kw->second;
      tok.text = word;
    } else {
      tok.type = TokenType::kIdentifier;
      tok.text = std::move(word);
    }
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    std::string number;
    bool is_real = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      number.push_back(Advance());
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_real = true;
      number.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        number.push_back(Advance());
      }
    }
    tok.text = number;
    if (is_real) {
      tok.type = TokenType::kRealLiteral;
      errno = 0;
      tok.real_value = std::strtod(number.c_str(), nullptr);
      if (errno == ERANGE) {
        return Status::ParseError("real literal out of range at line " +
                                  std::to_string(tok.line) + ": " + number);
      }
    } else {
      tok.type = TokenType::kIntLiteral;
      auto [ptr, ec] = std::from_chars(
          number.data(), number.data() + number.size(), tok.int_value);
      if (ec != std::errc() || ptr != number.data() + number.size()) {
        return Status::ParseError("integer literal out of range at line " +
                                  std::to_string(tok.line) + ": " + number);
      }
    }
    return tok;
  }

  if (c == '"' || c == '\'') {
    char quote = Advance();
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(tok.line));
      }
      char ch = Advance();
      if (ch == quote) break;
      if (ch == '\\' && !AtEnd()) {
        char esc = Advance();
        switch (esc) {
          case 'n':
            text.push_back('\n');
            break;
          case 't':
            text.push_back('\t');
            break;
          default:
            text.push_back(esc);
        }
      } else {
        text.push_back(ch);
      }
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(text);
    return tok;
  }

  Advance();
  switch (c) {
    case '(':
      tok.type = TokenType::kLParen;
      return tok;
    case ')':
      tok.type = TokenType::kRParen;
      return tok;
    case '[':
      tok.type = TokenType::kLBracket;
      return tok;
    case ']':
      tok.type = TokenType::kRBracket;
      return tok;
    case ',':
      tok.type = TokenType::kComma;
      return tok;
    case ';':
      tok.type = TokenType::kSemicolon;
      return tok;
    case ':':
      tok.type = TokenType::kColon;
      return tok;
    case '.':
      tok.type = TokenType::kDot;
      return tok;
    case '+':
      tok.type = TokenType::kPlus;
      return tok;
    case '-':
      tok.type = TokenType::kMinus;
      return tok;
    case '*':
      tok.type = TokenType::kStar;
      return tok;
    case '/':
      tok.type = TokenType::kSlash;
      return tok;
    case '%':
      tok.type = TokenType::kPercent;
      return tok;
    case '=':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kEq;
      } else {
        tok.type = TokenType::kAssign;
      }
      return tok;
    case '!':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kNe;
        return tok;
      }
      return Status::ParseError("unexpected '!' at line " +
                                std::to_string(tok.line));
    case '<':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kLe;
      } else if (Peek() == '>') {
        Advance();
        tok.type = TokenType::kNe;
      } else {
        tok.type = TokenType::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        Advance();
        tok.type = TokenType::kGe;
      } else {
        tok.type = TokenType::kGt;
      }
      return tok;
    default:
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at line " + std::to_string(tok.line));
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    CACTIS_ASSIGN_OR_RETURN(Token tok, Next());
    bool at_end = tok.type == TokenType::kEnd;
    tokens.push_back(std::move(tok));
    if (at_end) break;
  }
  return tokens;
}

}  // namespace cactis::lang
