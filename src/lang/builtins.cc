#include "lang/builtins.h"

#include <algorithm>
#include <cstdlib>

namespace cactis::lang {

namespace {

Status Arity(const std::vector<Value>& args, size_t n,
             std::string_view name) {
  if (args.size() != n) {
    return Status::InvalidArgument(std::string(name) + "() expects " +
                                   std::to_string(n) + " argument(s), got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

Result<TimePoint> AsTimeLoose(const Value& v) {
  if (v.type() == ValueType::kTime) return *v.AsTime();
  if (v.type() == ValueType::kInt) return TimePoint{*v.AsInt()};
  return Status::TypeMismatch("expected a time value, got " + v.ToString());
}

Result<Value> LaterOf(const std::vector<Value>& args) {
  if (args.empty()) return Value::Time(kTimeZero);
  CACTIS_ASSIGN_OR_RETURN(TimePoint best, AsTimeLoose(args[0]));
  for (size_t i = 1; i < args.size(); ++i) {
    CACTIS_ASSIGN_OR_RETURN(TimePoint t, AsTimeLoose(args[i]));
    best = std::max(best, t);
  }
  return Value::Time(best);
}

Result<Value> EarlierOf(const std::vector<Value>& args) {
  if (args.empty()) return Value::Time(kTimeInfinity);
  CACTIS_ASSIGN_OR_RETURN(TimePoint best, AsTimeLoose(args[0]));
  for (size_t i = 1; i < args.size(); ++i) {
    CACTIS_ASSIGN_OR_RETURN(TimePoint t, AsTimeLoose(args[i]));
    best = std::min(best, t);
  }
  return Value::Time(best);
}

/// Collects numeric aggregation inputs: either one array argument or N
/// scalar arguments.
Result<std::vector<double>> GatherNumbers(const std::vector<Value>& args) {
  std::vector<double> nums;
  if (args.size() == 1 && args[0].type() == ValueType::kArray) {
    CACTIS_ASSIGN_OR_RETURN(std::vector<Value> elems, args[0].AsArray());
    for (const Value& v : elems) {
      CACTIS_ASSIGN_OR_RETURN(double d, v.ToNumber());
      nums.push_back(d);
    }
    return nums;
  }
  for (const Value& v : args) {
    CACTIS_ASSIGN_OR_RETURN(double d, v.ToNumber());
    nums.push_back(d);
  }
  return nums;
}

bool AllInts(const std::vector<Value>& args) {
  if (args.size() == 1 && args[0].type() == ValueType::kArray) {
    const std::vector<Value> elems = *args[0].AsArray();
    return std::all_of(elems.begin(), elems.end(), [](const Value& v) {
      return v.type() == ValueType::kInt;
    });
  }
  return std::all_of(args.begin(), args.end(), [](const Value& v) {
    return v.type() == ValueType::kInt;
  });
}

Value NumberValue(double d, bool as_int) {
  return as_int ? Value::Int(static_cast<int64_t>(d)) : Value::Real(d);
}

}  // namespace

void BuiltinRegistry::Register(std::string name, BuiltinFn fn) {
  table_[std::move(name)] = std::move(fn);
}

const BuiltinFn* BuiltinRegistry::Lookup(const std::string& name) const {
  auto it = table_.find(name);
  return it == table_.end() ? nullptr : &it->second;
}

BuiltinRegistry BuiltinRegistry::WithDefaults() {
  BuiltinRegistry reg;

  reg.Register("time0", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_RETURN_IF_ERROR(Arity(args, 0, "time0"));
    return Value::Time(kTimeZero);
  });
  reg.Register("time_inf",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 0, "time_inf"));
                 return Value::Time(kTimeInfinity);
               });
  reg.Register("time", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_RETURN_IF_ERROR(Arity(args, 1, "time"));
    CACTIS_ASSIGN_OR_RETURN(TimePoint t, AsTimeLoose(args[0]));
    return Value::Time(t);
  });
  reg.Register("later_of", LaterOf);
  reg.Register("earlier_of", EarlierOf);
  reg.Register("later_than",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "later_than"));
                 CACTIS_ASSIGN_OR_RETURN(TimePoint a, AsTimeLoose(args[0]));
                 CACTIS_ASSIGN_OR_RETURN(TimePoint b, AsTimeLoose(args[1]));
                 return Value::Bool(a > b);
               });
  reg.Register("earlier_than",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "earlier_than"));
                 CACTIS_ASSIGN_OR_RETURN(TimePoint a, AsTimeLoose(args[0]));
                 CACTIS_ASSIGN_OR_RETURN(TimePoint b, AsTimeLoose(args[1]));
                 return Value::Bool(a < b);
               });

  reg.Register("min", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_ASSIGN_OR_RETURN(std::vector<double> nums, GatherNumbers(args));
    if (nums.empty()) return Status::InvalidArgument("min() of nothing");
    return NumberValue(*std::min_element(nums.begin(), nums.end()),
                       AllInts(args));
  });
  reg.Register("max", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_ASSIGN_OR_RETURN(std::vector<double> nums, GatherNumbers(args));
    if (nums.empty()) return Status::InvalidArgument("max() of nothing");
    return NumberValue(*std::max_element(nums.begin(), nums.end()),
                       AllInts(args));
  });
  reg.Register("sum", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_ASSIGN_OR_RETURN(std::vector<double> nums, GatherNumbers(args));
    double total = 0;
    for (double d : nums) total += d;
    return NumberValue(total, AllInts(args));
  });
  reg.Register("abs", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_RETURN_IF_ERROR(Arity(args, 1, "abs"));
    if (args[0].type() == ValueType::kInt) {
      return Value::Int(std::llabs(*args[0].AsInt()));
    }
    CACTIS_ASSIGN_OR_RETURN(double d, args[0].ToNumber());
    return Value::Real(d < 0 ? -d : d);
  });

  reg.Register("len", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_RETURN_IF_ERROR(Arity(args, 1, "len"));
    if (args[0].type() == ValueType::kString) {
      return Value::Int(static_cast<int64_t>(args[0].AsString()->size()));
    }
    if (args[0].type() == ValueType::kArray) {
      return Value::Int(static_cast<int64_t>(args[0].AsArray()->size()));
    }
    return Status::TypeMismatch("len() expects a string or array");
  });
  reg.Register("concat",
               [](const std::vector<Value>& args) -> Result<Value> {
                 std::string out;
                 for (const Value& v : args) {
                   if (v.type() == ValueType::kString) {
                     out += *v.AsString();
                   } else {
                     out += v.ToString();
                   }
                 }
                 return Value::String(std::move(out));
               });
  reg.Register("repeat",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "repeat"));
                 CACTIS_ASSIGN_OR_RETURN(std::string s, args[0].AsString());
                 CACTIS_ASSIGN_OR_RETURN(int64_t n, args[1].AsInt());
                 if (n < 0 || n > 1 << 20) {
                   return Status::OutOfRange("repeat() count out of range");
                 }
                 std::string out;
                 out.reserve(s.size() * static_cast<size_t>(n));
                 for (int64_t i = 0; i < n; ++i) out += s;
                 return Value::String(std::move(out));
               });
  reg.Register("indent",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "indent"));
                 CACTIS_ASSIGN_OR_RETURN(std::string s, args[0].AsString());
                 CACTIS_ASSIGN_OR_RETURN(int64_t n, args[1].AsInt());
                 if (n < 0 || n > 1024) {
                   return Status::OutOfRange("indent() width out of range");
                 }
                 std::string pad(static_cast<size_t>(n), ' ');
                 std::string out = pad;
                 for (char c : s) {
                   out.push_back(c);
                   if (c == '\n') out += pad;
                 }
                 return Value::String(std::move(out));
               });
  reg.Register("to_string",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 1, "to_string"));
                 if (args[0].type() == ValueType::kString) return args[0];
                 return Value::String(args[0].ToString());
               });
  reg.Register("to_int", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_RETURN_IF_ERROR(Arity(args, 1, "to_int"));
    CACTIS_ASSIGN_OR_RETURN(double d, args[0].ToNumber());
    return Value::Int(static_cast<int64_t>(d));
  });
  reg.Register("to_real",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 1, "to_real"));
                 CACTIS_ASSIGN_OR_RETURN(double d, args[0].ToNumber());
                 return Value::Real(d);
               });

  reg.Register("select",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 3, "select"));
                 CACTIS_ASSIGN_OR_RETURN(bool c, args[0].AsBool());
                 return c ? args[1] : args[2];
               });

  reg.Register("array", [](const std::vector<Value>& args) -> Result<Value> {
    return Value::Array(args);
  });
  reg.Register("append",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "append"));
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a,
                                         args[0].AsArray());
                 a.push_back(args[1]);
                 return Value::Array(std::move(a));
               });
  reg.Register("at", [](const std::vector<Value>& args) -> Result<Value> {
    CACTIS_RETURN_IF_ERROR(Arity(args, 2, "at"));
    CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a, args[0].AsArray());
    CACTIS_ASSIGN_OR_RETURN(int64_t i, args[1].AsInt());
    if (i < 0 || static_cast<size_t>(i) >= a.size()) {
      return Status::OutOfRange("array index " + std::to_string(i) +
                                " out of bounds (size " +
                                std::to_string(a.size()) + ")");
    }
    return a[static_cast<size_t>(i)];
  });

  // Arrays-as-ordered-sets: elements kept sorted and unique, so set values
  // compare equal independent of insertion order (used by flow analysis).
  reg.Register("set_insert",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "set_insert"));
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a,
                                         args[0].AsArray());
                 auto pos = std::lower_bound(a.begin(), a.end(), args[1]);
                 if (pos == a.end() || !(*pos == args[1])) {
                   a.insert(pos, args[1]);
                 }
                 return Value::Array(std::move(a));
               });
  reg.Register("set_union",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "set_union"));
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a,
                                         args[0].AsArray());
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> b,
                                         args[1].AsArray());
                 std::vector<Value> merged;
                 std::sort(a.begin(), a.end());
                 std::sort(b.begin(), b.end());
                 std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(merged));
                 merged.erase(std::unique(merged.begin(), merged.end()),
                              merged.end());
                 return Value::Array(std::move(merged));
               });
  reg.Register("set_diff",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "set_diff"));
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a,
                                         args[0].AsArray());
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> b,
                                         args[1].AsArray());
                 std::sort(a.begin(), a.end());
                 std::sort(b.begin(), b.end());
                 std::vector<Value> out;
                 std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                                     std::back_inserter(out));
                 out.erase(std::unique(out.begin(), out.end()), out.end());
                 return Value::Array(std::move(out));
               });
  reg.Register("set_member",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 2, "set_member"));
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a,
                                         args[0].AsArray());
                 return Value::Bool(std::find(a.begin(), a.end(), args[1]) !=
                                    a.end());
               });
  reg.Register("set_size",
               [](const std::vector<Value>& args) -> Result<Value> {
                 CACTIS_RETURN_IF_ERROR(Arity(args, 1, "set_size"));
                 CACTIS_ASSIGN_OR_RETURN(std::vector<Value> a,
                                         args[0].AsArray());
                 return Value::Int(static_cast<int64_t>(a.size()));
               });

  reg.Register("void", [](const std::vector<Value>& args) -> Result<Value> {
    (void)args;  // arguments were evaluated (and their effects happened)
    return Value::Null();
  });

  return reg;
}

}  // namespace cactis::lang
