#include "lang/analyzer.h"

#include <map>

namespace cactis::lang {

namespace {

/// Builtins whose first argument is a port name rather than a value.
bool IsPortBuiltin(std::string_view callee) {
  return callee == "count" || callee == "exists";
}

class Analysis {
 public:
  Analysis(const ClassContext& ctx, bool allow_attr_assign)
      : ctx_(ctx), allow_attr_assign_(allow_attr_assign) {}

  Status WalkBody(const RuleBody& body) {
    if (body.is_block) return WalkStmts(body.block);
    return WalkExpr(*body.expr);
  }

  Status WalkStmts(const StmtList& stmts) {
    for (const Stmt& s : stmts) CACTIS_RETURN_IF_ERROR(WalkStmt(s));
    return Status::OK();
  }

  std::vector<Dependency> TakeDeps() {
    return std::vector<Dependency>(deps_.begin(), deps_.end());
  }

 private:
  Status WalkStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kVarDecl:
        if (stmt.expr) CACTIS_RETURN_IF_ERROR(WalkExpr(*stmt.expr));
        vars_[stmt.name] = "";  // plain variable, not a loop binding
        return Status::OK();
      case StmtKind::kAssign: {
        CACTIS_RETURN_IF_ERROR(WalkExpr(*stmt.expr));
        if (vars_.contains(stmt.name)) return Status::OK();
        if (ctx_.attribute_names.contains(stmt.name)) {
          if (!allow_attr_assign_) {
            return Status::ParseError(
                "rule assigns attribute '" + stmt.name +
                "' (only recovery actions may assign attributes), line " +
                std::to_string(stmt.line));
          }
          return Status::OK();
        }
        return Status::ParseError("assignment to undeclared name '" +
                                  stmt.name + "' at line " +
                                  std::to_string(stmt.line));
      }
      case StmtKind::kForEach: {
        if (!ctx_.port_names.contains(stmt.port)) {
          return Status::ParseError("for-each over unknown relationship '" +
                                    stmt.port + "' at line " +
                                    std::to_string(stmt.line));
        }
        deps_.insert({Dependency::Kind::kStructural, "", stmt.port});
        auto saved = vars_;
        vars_[stmt.var] = stmt.port;  // loop binding
        CACTIS_RETURN_IF_ERROR(WalkStmts(stmt.body));
        vars_ = std::move(saved);
        return Status::OK();
      }
      case StmtKind::kIf:
        CACTIS_RETURN_IF_ERROR(WalkExpr(*stmt.expr));
        CACTIS_RETURN_IF_ERROR(WalkStmts(stmt.body));
        return WalkStmts(stmt.else_body);
      case StmtKind::kReturn:
      case StmtKind::kExpr:
        return WalkExpr(*stmt.expr);
    }
    return Status::Internal("unknown statement kind");
  }

  Status WalkExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return Status::OK();
      case ExprKind::kName:
        // Variable shadows attribute; unknown names may be zero-argument
        // builtins (e.g. time0), resolved at run time.
        if (!vars_.contains(e.name) && ctx_.attribute_names.contains(e.name)) {
          deps_.insert({Dependency::Kind::kLocal, e.name, ""});
        }
        return Status::OK();
      case ExprKind::kDot: {
        auto var = vars_.find(e.name);
        if (var != vars_.end()) {
          if (var->second.empty()) {
            return Status::ParseError(
                "'" + e.name + "' is a plain variable, not a loop variable; "
                "cannot access '." + e.field + "' at line " +
                std::to_string(e.line));
          }
          deps_.insert({Dependency::Kind::kRemote, e.field, var->second});
          return Status::OK();
        }
        if (ctx_.port_names.contains(e.name)) {
          // Direct single-port access; also structural (which neighbour?).
          deps_.insert({Dependency::Kind::kRemote, e.field, e.name});
          deps_.insert({Dependency::Kind::kStructural, "", e.name});
          return Status::OK();
        }
        if (ctx_.attribute_names.contains(e.name)) {
          // Record field access on a local attribute.
          deps_.insert({Dependency::Kind::kLocal, e.name, ""});
          return Status::OK();
        }
        return Status::ParseError("'" + e.name +
                                  "' is neither a loop variable, a "
                                  "relationship, nor an attribute at line " +
                                  std::to_string(e.line));
      }
      case ExprKind::kCall: {
        if (IsPortBuiltin(e.name)) {
          if (e.args.size() != 1 || e.args[0]->kind != ExprKind::kName ||
              !ctx_.port_names.contains(e.args[0]->name)) {
            return Status::ParseError(
                e.name + "() expects a single relationship name, line " +
                std::to_string(e.line));
          }
          deps_.insert({Dependency::Kind::kStructural, "", e.args[0]->name});
          return Status::OK();
        }
        for (const ExprPtr& a : e.args) CACTIS_RETURN_IF_ERROR(WalkExpr(*a));
        return Status::OK();
      }
      case ExprKind::kBinary:
        CACTIS_RETURN_IF_ERROR(WalkExpr(*e.lhs));
        return WalkExpr(*e.rhs);
      case ExprKind::kUnary:
        return WalkExpr(*e.lhs);
    }
    return Status::Internal("unknown expression kind");
  }

  const ClassContext& ctx_;
  bool allow_attr_assign_;
  std::map<std::string, std::string> vars_;  // name -> port ("" if plain)
  std::set<Dependency> deps_;
};

}  // namespace

Result<std::vector<Dependency>> AnalyzeDependencies(const RuleBody& body,
                                                    const ClassContext& ctx,
                                                    bool allow_attr_assign) {
  Analysis a(ctx, allow_attr_assign);
  CACTIS_RETURN_IF_ERROR(a.WalkBody(body));
  return a.TakeDeps();
}

Result<std::vector<Dependency>> AnalyzeDependencies(const StmtList& stmts,
                                                    const ClassContext& ctx,
                                                    bool allow_attr_assign) {
  Analysis a(ctx, allow_attr_assign);
  CACTIS_RETURN_IF_ERROR(a.WalkStmts(stmts));
  return a.TakeDeps();
}

}  // namespace cactis::lang
