// Interpreter for attribute-evaluation rules.
//
// The interpreter is context-driven: every access to the database (local
// attribute reads, neighbour enumeration, remote value reads, attribute
// writes from recovery actions) goes through the EvalContext interface, so
// the core evaluation engine fully controls demand-driven evaluation,
// dependency tracking, I/O accounting and side-effect ordering. The
// interpreter itself is pure control flow plus builtins.

#ifndef CACTIS_LANG_INTERPRETER_H_
#define CACTIS_LANG_INTERPRETER_H_

#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/ids_reltype.h"
#include "common/result.h"
#include "common/value.h"
#include "lang/ast.h"
#include "lang/builtins.h"

namespace cactis::lang {

/// The database-facing interface a rule executes against. Implemented by
/// the core evaluation engine (and by lightweight fakes in tests).
class EvalContext {
 public:
  /// One instance related to the current one across a port. Port fields
  /// are class-local port indexes (opaque to the interpreter).
  struct Neighbor {
    InstanceId id;
    uint32_t my_port = 0;    // port index on the evaluating instance
    uint32_t peer_port = 0;  // port index on the neighbour's side
    EdgeId edge;
  };

  virtual ~EvalContext() = default;

  /// Reads an attribute of the instance being evaluated (triggering its
  /// evaluation first when it is a derived attribute that is out of date).
  virtual Result<Value> GetLocalAttr(const std::string& name) = 0;

  /// True when `name` names an attribute of the current instance's class.
  virtual bool HasLocalAttr(const std::string& name) const = 0;

  /// True when `name` names a relationship port of the current class.
  virtual bool HasPort(const std::string& name) const = 0;

  /// Enumerates the instances related via `port` (deterministic order).
  virtual Result<std::vector<Neighbor>> GetNeighbors(
      const std::string& port) = 0;

  /// Reads the value `name` received from `neighbor` across the
  /// relationship: the neighbour's export under that name on its side of
  /// the edge, or its plain attribute of that name.
  virtual Result<Value> GetRemoteValue(const Neighbor& neighbor,
                                       const std::string& name) = 0;

  /// Writes an intrinsic attribute; legal only for recovery actions (the
  /// core rejects it elsewhere).
  virtual Status SetLocalAttr(const std::string& name, Value value) = 0;

  /// The builtin registry in effect (per-database, so the environment
  /// layer can register file_mod_time / system_command).
  virtual const BuiltinRegistry& builtins() const = 0;
};

class Interpreter {
 public:
  /// Evaluates a rule body to its value. Expression bodies produce the
  /// expression's value; block bodies produce the value of the executed
  /// `return` (reaching the end of a block without `return` is an error).
  static Result<Value> EvalRule(const RuleBody& body, EvalContext* ctx);

  /// Evaluates a standalone expression with no local variables in scope.
  static Result<Value> EvalExpr(const Expr& expr, EvalContext* ctx);

  /// Executes a statement list for its side effects (recovery actions);
  /// `return` is permitted and simply stops execution.
  static Status ExecStmts(const StmtList& stmts, EvalContext* ctx);

 private:
  // A scope binding is either a plain value or a loop-variable neighbour.
  using Binding = std::variant<Value, EvalContext::Neighbor>;
  using Scope = std::map<std::string, Binding>;

  struct Flow {
    bool returned = false;
    Value value;
  };

  static Result<Flow> RunStmts(const StmtList& stmts, Scope* scope,
                               EvalContext* ctx);
  static Result<Flow> RunStmt(const Stmt& stmt, Scope* scope,
                              EvalContext* ctx);
  static Result<Value> Eval(const Expr& expr, Scope* scope, EvalContext* ctx);
  static Result<Value> EvalBinary(const Expr& expr, Scope* scope,
                                  EvalContext* ctx);
};

/// Applies a binary operator to two values with Cactis coercion rules
/// (int/real promotion, time arithmetic, string concatenation with `+`).
/// Exposed for unit tests.
Result<Value> ApplyBinaryOp(BinOp op, const Value& lhs, const Value& rhs);

}  // namespace cactis::lang

#endif  // CACTIS_LANG_INTERPRETER_H_
