// Lexer for the Cactis data language.

#ifndef CACTIS_LANG_LEXER_H_
#define CACTIS_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "lang/token.h"

namespace cactis::lang {

/// Tokenises an entire source buffer. Identifiers and keywords are
/// case-insensitive; identifiers are canonicalised to lower case (so
/// `TIME0`, `Time0` and `time0` are the same name). Comments are
/// `/* ... */` and `-- ...` to end of line.
class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  /// Produces the full token stream, terminated by a kEnd token.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= src_.size(); }
  Status SkipWhitespaceAndComments();

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace cactis::lang

#endif  // CACTIS_LANG_LEXER_H_
