#include "lang/parser.h"

#include "lang/lexer.h"

namespace cactis::lang {

std::string_view BinOpToString(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kMod:
      return "%";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kEq:
      return "==";
    case BinOp::kNe:
      return "!=";
    case BinOp::kAnd:
      return "and";
    case BinOp::kOr:
      return "or";
  }
  return "?";
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // the kEnd sentinel
  return tokens_[i];
}

const Token& Parser::Advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::Match(TokenType t) {
  if (!Check(t)) return false;
  Advance();
  return true;
}

Result<Token> Parser::Expect(TokenType t, std::string_view what) {
  if (!Check(t)) {
    return Status::ParseError("expected " + std::string(what) + " but found " +
                              TokenTypeToString(Peek().type) + " at line " +
                              std::to_string(Peek().line));
  }
  return Advance();
}

Status Parser::ErrorHere(std::string_view message) const {
  return Status::ParseError(std::string(message) + " at line " +
                            std::to_string(Peek().line));
}

Result<std::vector<Decl>> Parser::ParseSchema(std::string_view source) {
  Lexer lexer(source);
  CACTIS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser p(std::move(tokens));
  std::vector<Decl> decls;
  while (!p.Check(TokenType::kEnd)) {
    CACTIS_ASSIGN_OR_RETURN(Decl d, p.ParseDecl());
    decls.push_back(std::move(d));
  }
  return decls;
}

Result<RuleBody> Parser::ParseRuleBody(std::string_view source) {
  Lexer lexer(source);
  CACTIS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser p(std::move(tokens));
  CACTIS_ASSIGN_OR_RETURN(RuleBody body, p.ParseRuleBodyInternal());
  p.Match(TokenType::kSemicolon);
  if (!p.Check(TokenType::kEnd)) {
    return p.ErrorHere("trailing input after rule body");
  }
  return body;
}

Result<ExprPtr> Parser::ParseExpression(std::string_view source) {
  Lexer lexer(source);
  CACTIS_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser p(std::move(tokens));
  CACTIS_ASSIGN_OR_RETURN(ExprPtr e, p.ParseExpr());
  if (!p.Check(TokenType::kEnd)) {
    return p.ErrorHere("trailing input after expression");
  }
  return e;
}

Result<Decl> Parser::ParseDecl() {
  Decl decl;
  if (Match(TokenType::kKwRelationship)) {
    CACTIS_ASSIGN_OR_RETURN(Token name,
                            Expect(TokenType::kIdentifier, "relationship name"));
    CACTIS_RETURN_IF_ERROR(
        Expect(TokenType::kSemicolon, "';'").status());
    decl.kind = Decl::Kind::kRelType;
    decl.rel_type.name = name.text;
    return decl;
  }
  if (Check(TokenType::kKwObject)) {
    CACTIS_ASSIGN_OR_RETURN(ClassSpec cls, ParseClass());
    decl.kind = Decl::Kind::kClass;
    decl.class_spec = std::move(cls);
    return decl;
  }
  if (Check(TokenType::kKwSubtype)) {
    CACTIS_ASSIGN_OR_RETURN(SubtypeSpec sub, ParseSubtype());
    decl.kind = Decl::Kind::kSubtype;
    decl.subtype = std::move(sub);
    return decl;
  }
  return ErrorHere("expected 'object class', 'relationship' or 'subtype'");
}

Result<ClassSpec> Parser::ParseClass() {
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwObject, "'object'").status());
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwClass, "'class'").status());
  CACTIS_ASSIGN_OR_RETURN(Token name,
                          Expect(TokenType::kIdentifier, "class name"));
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwIs, "'is'").status());

  ClassSpec cls;
  cls.name = name.text;

  if (Match(TokenType::kKwRelationships)) {
    while (Check(TokenType::kIdentifier)) {
      CACTIS_ASSIGN_OR_RETURN(PortSpec port, ParsePort());
      cls.ports.push_back(std::move(port));
    }
  }
  if (Match(TokenType::kKwAttributes)) {
    while (Check(TokenType::kIdentifier)) {
      CACTIS_ASSIGN_OR_RETURN(AttrSpec attr, ParseAttr());
      cls.attributes.push_back(std::move(attr));
    }
  }
  if (Match(TokenType::kKwRules)) {
    while (Check(TokenType::kIdentifier) || Check(TokenType::kKwCircular)) {
      CACTIS_ASSIGN_OR_RETURN(RuleSpec rule, ParseRule());
      cls.rules.push_back(std::move(rule));
    }
  }
  if (Match(TokenType::kKwConstraints)) {
    while (Check(TokenType::kIdentifier)) {
      CACTIS_ASSIGN_OR_RETURN(ConstraintSpec c, ParseConstraint());
      cls.constraints.push_back(std::move(c));
    }
  }
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwEndKw, "'end'").status());
  Match(TokenType::kKwObject);
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  return cls;
}

Result<SubtypeSpec> Parser::ParseSubtype() {
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwSubtype, "'subtype'").status());
  CACTIS_ASSIGN_OR_RETURN(Token name,
                          Expect(TokenType::kIdentifier, "subtype name"));
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwOf, "'of'").status());
  CACTIS_ASSIGN_OR_RETURN(Token cls,
                          Expect(TokenType::kIdentifier, "class name"));
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwWhere, "'where'").status());
  SubtypeSpec sub;
  sub.name = name.text;
  sub.class_name = cls.text;
  CACTIS_ASSIGN_OR_RETURN(sub.predicate, ParseRuleBodyInternal());
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  return sub;
}

Result<PortSpec> Parser::ParsePort() {
  PortSpec port;
  CACTIS_ASSIGN_OR_RETURN(Token name,
                          Expect(TokenType::kIdentifier, "relationship name"));
  port.name = name.text;
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kColon, "':'").status());
  CACTIS_ASSIGN_OR_RETURN(
      Token rel, Expect(TokenType::kIdentifier, "relationship type name"));
  port.rel_type = rel.text;
  if (Match(TokenType::kKwMulti)) {
    port.is_multi = true;
  } else if (Match(TokenType::kKwSingle)) {
    port.is_multi = false;
  } else {
    return ErrorHere("expected 'multi' or 'single'");
  }
  if (Match(TokenType::kKwPlug)) {
    port.is_plug = true;
  } else if (Match(TokenType::kKwSocket)) {
    port.is_plug = false;
  } else {
    return ErrorHere("expected 'plug' or 'socket'");
  }
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  return port;
}

Result<AttrSpec> Parser::ParseAttr() {
  AttrSpec attr;
  CACTIS_ASSIGN_OR_RETURN(Token name,
                          Expect(TokenType::kIdentifier, "attribute name"));
  attr.name = name.text;
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kColon, "':'").status());
  CACTIS_ASSIGN_OR_RETURN(Token type,
                          Expect(TokenType::kIdentifier, "type name"));
  CACTIS_ASSIGN_OR_RETURN(attr.type, ValueTypeFromString(type.text));
  if (Match(TokenType::kAssign)) {
    // Default values are literal expressions evaluated without context.
    CACTIS_ASSIGN_OR_RETURN(ExprPtr lit, ParseUnary());
    if (lit->kind == ExprKind::kLiteral) {
      attr.has_default = true;
      attr.default_value = lit->literal;
    } else if (lit->kind == ExprKind::kUnary && lit->un_op == UnOp::kNeg &&
               lit->lhs->kind == ExprKind::kLiteral) {
      attr.has_default = true;
      auto num = lit->lhs->literal.AsInt();
      if (num.ok()) {
        attr.default_value = Value::Int(-*num);
      } else {
        CACTIS_ASSIGN_OR_RETURN(double d, lit->lhs->literal.AsReal());
        attr.default_value = Value::Real(-d);
      }
    } else {
      return ErrorHere("attribute default must be a literal");
    }
  }
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  return attr;
}

Result<RuleSpec> Parser::ParseRule() {
  RuleSpec rule;
  if (Match(TokenType::kKwCircular)) rule.circular = true;
  CACTIS_ASSIGN_OR_RETURN(Token target,
                          Expect(TokenType::kIdentifier, "rule target"));
  rule.target = target.text;
  if (Match(TokenType::kDot)) {
    CACTIS_ASSIGN_OR_RETURN(Token exported,
                            Expect(TokenType::kIdentifier, "export name"));
    rule.export_name = exported.text;
  }
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kAssign, "'='").status());
  CACTIS_ASSIGN_OR_RETURN(rule.body, ParseRuleBodyInternal());
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  return rule;
}

Result<ConstraintSpec> Parser::ParseConstraint() {
  ConstraintSpec c;
  CACTIS_ASSIGN_OR_RETURN(Token name,
                          Expect(TokenType::kIdentifier, "constraint name"));
  c.name = name.text;
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kColon, "':'").status());
  CACTIS_ASSIGN_OR_RETURN(c.predicate, ParseRuleBodyInternal());
  if (Match(TokenType::kKwRecovery)) {
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwBegin, "'begin'").status());
    CACTIS_ASSIGN_OR_RETURN(c.recovery,
                            ParseBlockUntil({TokenType::kKwEndKw}));
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwEndKw, "'end'").status());
    c.has_recovery = true;
  }
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  return c;
}

Result<RuleBody> Parser::ParseRuleBodyInternal() {
  if (Match(TokenType::kKwBegin)) {
    CACTIS_ASSIGN_OR_RETURN(StmtList stmts,
                            ParseBlockUntil({TokenType::kKwEndKw}));
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwEndKw, "'end'").status());
    return RuleBody::FromBlock(std::move(stmts));
  }
  CACTIS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  return RuleBody::FromExpr(std::move(e));
}

Result<StmtList> Parser::ParseBlockUntil(
    std::initializer_list<TokenType> stops) {
  StmtList stmts;
  while (true) {
    if (Check(TokenType::kEnd)) {
      return ErrorHere("unterminated block");
    }
    bool at_stop = false;
    for (TokenType t : stops) {
      if (Check(t)) at_stop = true;
    }
    if (at_stop) break;
    CACTIS_ASSIGN_OR_RETURN(Stmt s, ParseStmt());
    stmts.push_back(std::move(s));
  }
  return stmts;
}

Result<Stmt> Parser::ParseStmt() {
  Stmt stmt;
  stmt.line = Peek().line;

  if (Match(TokenType::kKwFor)) {
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwEach, "'each'").status());
    CACTIS_ASSIGN_OR_RETURN(Token var,
                            Expect(TokenType::kIdentifier, "loop variable"));
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwRelated, "'related'").status());
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwTo, "'to'").status());
    CACTIS_ASSIGN_OR_RETURN(Token port,
                            Expect(TokenType::kIdentifier, "port name"));
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwDo, "'do'").status());
    CACTIS_ASSIGN_OR_RETURN(stmt.body, ParseBlockUntil({TokenType::kKwEndKw}));
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwEndKw, "'end'").status());
    Match(TokenType::kKwFor);
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
    stmt.kind = StmtKind::kForEach;
    stmt.var = var.text;
    stmt.port = port.text;
    return stmt;
  }

  if (Match(TokenType::kKwIf)) {
    CACTIS_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwThen, "'then'").status());
    CACTIS_ASSIGN_OR_RETURN(
        stmt.body, ParseBlockUntil({TokenType::kKwEndKw, TokenType::kKwElse}));
    if (Match(TokenType::kKwElse)) {
      CACTIS_ASSIGN_OR_RETURN(stmt.else_body,
                              ParseBlockUntil({TokenType::kKwEndKw}));
    }
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kKwEndKw, "'end'").status());
    Match(TokenType::kKwIf);
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
    stmt.kind = StmtKind::kIf;
    return stmt;
  }

  if (Match(TokenType::kKwReturn)) {
    CACTIS_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
    CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
    stmt.kind = StmtKind::kReturn;
    return stmt;
  }

  // Lookahead to distinguish `name : type ...;`, `name = expr;` and a bare
  // expression statement.
  if (Check(TokenType::kIdentifier)) {
    if (Peek(1).type == TokenType::kColon) {
      CACTIS_ASSIGN_OR_RETURN(Token name,
                              Expect(TokenType::kIdentifier, "variable name"));
      Advance();  // ':'
      CACTIS_ASSIGN_OR_RETURN(Token type,
                              Expect(TokenType::kIdentifier, "type name"));
      CACTIS_ASSIGN_OR_RETURN(ValueType vt, ValueTypeFromString(type.text));
      stmt.kind = StmtKind::kVarDecl;
      stmt.name = name.text;
      stmt.decl_type = vt;
      if (Match(TokenType::kAssign)) {
        CACTIS_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      }
      CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
      return stmt;
    }
    if (Peek(1).type == TokenType::kAssign) {
      CACTIS_ASSIGN_OR_RETURN(Token name,
                              Expect(TokenType::kIdentifier, "target name"));
      Advance();  // '='
      CACTIS_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
      stmt.kind = StmtKind::kAssign;
      stmt.name = name.text;
      return stmt;
    }
  }

  CACTIS_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
  CACTIS_RETURN_IF_ERROR(Expect(TokenType::kSemicolon, "';'").status());
  stmt.kind = StmtKind::kExpr;
  return stmt;
}

Result<ExprPtr> Parser::ParseExpr() { return ParseOr(); }

Result<ExprPtr> Parser::ParseOr() {
  CACTIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (Check(TokenType::kKwOr)) {
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  CACTIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
  while (Check(TokenType::kKwAnd)) {
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
    lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseComparison() {
  CACTIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  while (true) {
    BinOp op;
    switch (Peek().type) {
      case TokenType::kLt:
        op = BinOp::kLt;
        break;
      case TokenType::kLe:
        op = BinOp::kLe;
        break;
      case TokenType::kGt:
        op = BinOp::kGt;
        break;
      case TokenType::kGe:
        op = BinOp::kGe;
        break;
      case TokenType::kEq:
      case TokenType::kAssign:  // the paper writes `=` for comparison too
        op = BinOp::kEq;
        break;
      case TokenType::kNe:
        op = BinOp::kNe;
        break;
      default:
        return lhs;
    }
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs), line);
  }
}

Result<ExprPtr> Parser::ParseAdditive() {
  CACTIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinOp op = Check(TokenType::kPlus) ? BinOp::kAdd : BinOp::kSub;
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  CACTIS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
         Check(TokenType::kPercent)) {
    BinOp op = Check(TokenType::kStar)    ? BinOp::kMul
               : Check(TokenType::kSlash) ? BinOp::kDiv
                                          : BinOp::kMod;
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = Expr::Binary(op, std::move(lhs), std::move(rhs), line);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (Check(TokenType::kMinus)) {
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Expr::Unary(UnOp::kNeg, std::move(operand), line);
  }
  if (Check(TokenType::kKwNot)) {
    int line = Advance().line;
    CACTIS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    return Expr::Unary(UnOp::kNot, std::move(operand), line);
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kIntLiteral: {
      int64_t v = Advance().int_value;
      return Expr::Literal(Value::Int(v), tok.line);
    }
    case TokenType::kRealLiteral: {
      double v = Advance().real_value;
      return Expr::Literal(Value::Real(v), tok.line);
    }
    case TokenType::kStringLiteral: {
      std::string v = Advance().text;
      return Expr::Literal(Value::String(std::move(v)), tok.line);
    }
    case TokenType::kKwTrue:
      Advance();
      return Expr::Literal(Value::Bool(true), tok.line);
    case TokenType::kKwFalse:
      Advance();
      return Expr::Literal(Value::Bool(false), tok.line);
    case TokenType::kKwNull:
      Advance();
      return Expr::Literal(Value::Null(), tok.line);
    case TokenType::kLParen: {
      Advance();
      CACTIS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      CACTIS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
      return inner;
    }
    case TokenType::kLBracket: {
      int line = Advance().line;
      std::vector<ExprPtr> elems;
      if (!Check(TokenType::kRBracket)) {
        do {
          CACTIS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          elems.push_back(std::move(e));
        } while (Match(TokenType::kComma));
      }
      CACTIS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'").status());
      // Array literals are a call to the pure builtin `array`.
      return Expr::Call("array", std::move(elems), line);
    }
    case TokenType::kIdentifier: {
      Token name = Advance();
      if (Match(TokenType::kLParen)) {
        std::vector<ExprPtr> args;
        if (!Check(TokenType::kRParen)) {
          do {
            CACTIS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            args.push_back(std::move(e));
          } while (Match(TokenType::kComma));
        }
        CACTIS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'").status());
        return Expr::Call(name.text, std::move(args), name.line);
      }
      if (Match(TokenType::kDot)) {
        CACTIS_ASSIGN_OR_RETURN(Token field,
                                Expect(TokenType::kIdentifier, "field name"));
        return Expr::Dot(name.text, field.text, name.line);
      }
      return Expr::Name(name.text, name.line);
    }
    default:
      return ErrorHere("expected an expression");
  }
}

}  // namespace cactis::lang
