#include "schema/schema_loader.h"

#include "lang/parser.h"

namespace cactis::schema {

namespace {

Status DefineClass(Catalog* catalog, const lang::ClassSpec& spec) {
  ClassBuilder builder(catalog, spec.name);

  for (const lang::PortSpec& port : spec.ports) {
    builder.Port(port.name, port.rel_type,
                 port.is_plug ? Side::kPlug : Side::kSocket,
                 port.is_multi ? Cardinality::kMulti : Cardinality::kSingle);
  }

  // Attributes with a rule in the Rules section are derived; the others
  // are intrinsic (that is how the paper's figures distinguish them).
  std::set<std::string> ruled;
  for (const lang::RuleSpec& rule : spec.rules) {
    if (rule.export_name.empty()) ruled.insert(rule.target);
  }

  for (const lang::AttrSpec& attr : spec.attributes) {
    if (ruled.contains(attr.name)) continue;  // declared via its rule below
    if (attr.has_default) {
      builder.Intrinsic(attr.name, attr.type, attr.default_value);
    } else {
      builder.Intrinsic(attr.name, attr.type);
    }
  }

  for (const lang::RuleSpec& rule : spec.rules) {
    if (!rule.export_name.empty()) {
      // `port.value = body;` — an export. Exports declare their own value
      // type as the static type of the body; we register them as kTime /
      // etc. only when the declared attribute exists; otherwise kNull
      // (dynamically typed), which the evaluation engine accepts.
      builder.Export(rule.target, rule.export_name, ValueType::kNull,
                     rule.body);
      continue;
    }
    ValueType type = ValueType::kNull;
    for (const lang::AttrSpec& attr : spec.attributes) {
      if (attr.name == rule.target) {
        type = attr.type;
        break;
      }
    }
    builder.Derived(rule.target, type, rule.body);
    if (rule.circular) builder.MarkLastRuleCircular();
  }

  for (const lang::ConstraintSpec& c : spec.constraints) {
    std::shared_ptr<const lang::StmtList> recovery;
    if (c.has_recovery) {
      recovery = std::make_shared<lang::StmtList>(c.recovery);
    }
    builder.Constraint(c.name, c.predicate, std::move(recovery));
  }

  return builder.Build().status();
}

}  // namespace

Result<std::vector<ClassId>> LoadSchema(Catalog* catalog,
                                        std::string_view source) {
  CACTIS_ASSIGN_OR_RETURN(std::vector<lang::Decl> decls,
                          lang::Parser::ParseSchema(source));
  std::vector<ClassId> classes;
  for (const lang::Decl& decl : decls) {
    switch (decl.kind) {
      case lang::Decl::Kind::kRelType:
        catalog->InternRelType(decl.rel_type.name);
        break;
      case lang::Decl::Kind::kClass: {
        CACTIS_RETURN_IF_ERROR(DefineClass(catalog, decl.class_spec));
        CACTIS_ASSIGN_OR_RETURN(ClassId id,
                                catalog->ClassIdOf(decl.class_spec.name));
        classes.push_back(id);
        break;
      }
      case lang::Decl::Kind::kSubtype: {
        const lang::SubtypeSpec& sub = decl.subtype;
        CACTIS_RETURN_IF_ERROR(
            catalog->DefineSubtype(sub.name, sub.class_name, sub.predicate)
                .status());
        break;
      }
    }
  }
  return classes;
}

}  // namespace cactis::schema
