// The Cactis catalog: object classes, relationship types, attributes,
// rules, constraints and predicate-defined subtypes (paper section 2.1).
//
// A class declares relationship *ports* (named, typed, plug/socket,
// single/multi) and attributes. Intrinsic attributes are directly
// assignable; derived attributes carry an evaluation rule. A rule of the
// form `port.value = ...` defines an *export*: the value this class
// transmits across that relationship, which is how "values flow across
// relationships in order to communicate information from one instance to
// another". Constraints and subtype predicates are boolean derived
// attributes with extra flags.
//
// The catalog is extensible at run time — classes and subtypes can be
// added while a database is live (requirement 3 of section 1.1) — but an
// ObjectClass is immutable once built, so the evaluation engine can cache
// its dependency tables freely.

#ifndef CACTIS_SCHEMA_CATALOG_H_
#define CACTIS_SCHEMA_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/ids_reltype.h"
#include "common/result.h"
#include "common/status.h"
#include "common/value.h"
#include "lang/analyzer.h"
#include "lang/ast.h"
#include "lang/interpreter.h"

namespace cactis::schema {

enum class Side { kPlug, kSocket };
enum class Cardinality { kSingle, kMulti };

inline Side Opposite(Side s) {
  return s == Side::kPlug ? Side::kSocket : Side::kPlug;
}

/// A relationship port declared by a class.
struct PortDef {
  RelationshipId id;  // catalog-global
  std::string name;
  RelTypeId rel_type;
  Side side = Side::kPlug;
  Cardinality cardinality = Cardinality::kMulti;
  size_t index = 0;  // dense position within the class
};

enum class AttrKind {
  kIntrinsic,  // directly assignable, no rule
  kDerived,    // has an evaluation rule
  kExport,     // derived value transmitted across a relationship port
};

/// A rule implementation: a data-language body, or a native C++ function
/// with manually declared dependencies (used by benchmarks to factor out
/// interpreter overhead, and available to library users).
struct NativeRule {
  std::function<Result<Value>(lang::EvalContext*)> fn;
  std::vector<lang::Dependency> deps;
};

struct Rule {
  bool is_native = false;
  lang::RuleBody body;  // when !is_native
  NativeRule native;    // when is_native
};

struct AttributeDef {
  AttributeId id;  // catalog-global
  std::string name;
  ValueType type = ValueType::kNull;
  AttrKind kind = AttrKind::kIntrinsic;
  Value default_value;
  std::shared_ptr<const Rule> rule;  // null for intrinsic
  std::vector<lang::Dependency> deps;
  size_t index = 0;  // dense position within the class

  // Constraint flags (paper 2.1: a constraint is a derived boolean
  // attribute; false aborts the transaction unless recovery repairs it).
  bool is_constraint = false;
  std::shared_ptr<const lang::StmtList> recovery;

  // Subtype-predicate flag: this attribute maintains membership of a
  // predicate-defined subtype.
  SubtypeId subtype;

  /// Circular-but-well-defined attribute ([Far86], paper section 4): the
  /// attribute may take part in instance-level dependency cycles, which
  /// the engine resolves by fixed-point iteration from `default_value`.
  bool circular = false;

  // Export bookkeeping (kind == kExport): the port it is transmitted
  // across and the public name consumers use.
  size_t export_port_index = SIZE_MAX;
  std::string export_name;

  bool is_derived() const { return kind != AttrKind::kIntrinsic; }
  /// Constraints and subtype predicates are born "important" (paper 2.2).
  bool intrinsically_important() const {
    return is_constraint || subtype.valid();
  }
};

/// An immutable object class with precomputed dependency tables.
class ObjectClass {
 public:
  ClassId id() const { return id_; }
  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  const std::vector<PortDef>& ports() const { return ports_; }

  /// Index lookup by name; SIZE_MAX when absent.
  size_t AttrIndexOf(const std::string& name) const;
  size_t PortIndexOf(const std::string& name) const;
  const AttributeDef* FindAttr(const std::string& name) const;
  const PortDef* FindPort(const std::string& name) const;

  /// Attributes of this class whose rules mention the local attribute at
  /// `attr_index` (forward marking, local step).
  const std::vector<size_t>& LocalDependents(size_t attr_index) const;

  /// Attributes of this class whose rules read value `name` across the
  /// port at `port_index` (forward marking, remote step: the *consumer*
  /// side table).
  const std::vector<size_t>& RemoteDependents(size_t port_index,
                                              const std::string& name) const;

  /// Attributes whose rules depend on the edge-set of the port (for-each,
  /// count/exists, direct port access).
  const std::vector<size_t>& StructuralDependents(size_t port_index) const;

  /// Every (port_index, value_name) this class consumes across each port;
  /// used when a relationship is established to mark consumers.
  const std::vector<std::pair<size_t, std::string>>& ConsumedRemoteValues()
      const {
    return consumed_remote_;
  }

  /// Whether any attribute of this class reads values across the port at
  /// `port_index` (i.e. edges into that port carry dependencies).
  bool ConsumesAcrossPort(size_t port_index) const {
    return port_index < consumes_across_port_.size() &&
           consumes_across_port_[port_index];
  }

  /// Provider-side visibility: the names under which the attribute at
  /// `attr_index` can be read from across a relationship. An export is
  /// visible only on its own port under its export name; a plain attribute
  /// is visible under its own name on every port (`port_index` SIZE_MAX
  /// means "any port").
  struct VisibleName {
    size_t port_index;  // SIZE_MAX = any port
    std::string name;
  };
  const std::vector<VisibleName>& VisibleNames(size_t attr_index) const;

  /// Provider-side resolution: the attribute a consumer reads when it asks
  /// this class for value `name` across an edge attached to the port at
  /// `port_index`. Export match first, then plain attribute. SIZE_MAX when
  /// unresolvable.
  size_t ResolveProvidedValue(size_t port_index, const std::string& name)
      const;

  /// Indexes of attributes that are constraints / subtype predicates.
  const std::vector<size_t>& constraint_attrs() const {
    return constraint_attrs_;
  }

 private:
  friend class ClassBuilder;
  friend class Catalog;
  ObjectClass() = default;

  /// Computes all dependency tables; called once by ClassBuilder.
  Status Finalize();

  ClassId id_;
  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::vector<PortDef> ports_;

  std::unordered_map<std::string, size_t> attr_by_name_;
  std::unordered_map<std::string, size_t> port_by_name_;

  std::vector<std::vector<size_t>> local_dependents_;
  std::map<std::pair<size_t, std::string>, std::vector<size_t>>
      remote_dependents_;
  std::vector<std::vector<size_t>> structural_dependents_;
  std::vector<std::pair<size_t, std::string>> consumed_remote_;
  std::vector<bool> consumes_across_port_;
  std::vector<std::vector<VisibleName>> visible_names_;
  std::map<std::pair<size_t, std::string>, size_t> provided_values_;
  std::vector<size_t> constraint_attrs_;
};

/// A predicate-defined subtype (paper 2.1: "a Car Buff might be defined as
/// the subtype defined by the predicate which calculates all Persons who
/// own more than three cars"). Membership is maintained by a boolean
/// derived attribute on the class.
struct SubtypeDef {
  SubtypeId id;
  std::string name;
  ClassId class_id;
  size_t predicate_attr_index = 0;
};

class ClassBuilder;

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Declares (or returns the existing) relationship type.
  RelTypeId InternRelType(const std::string& name);
  Result<RelTypeId> FindRelType(const std::string& name) const;
  const std::string& RelTypeName(RelTypeId id) const;

  const ObjectClass* GetClass(ClassId id) const;
  const ObjectClass* FindClass(const std::string& name) const;
  Result<ClassId> ClassIdOf(const std::string& name) const;

  /// Defines a predicate subtype over an *existing* class. The class is
  /// replaced (same ClassId, attribute indices stable) with one extra
  /// boolean predicate attribute appended; the database layer migrates
  /// live instances lazily. This is the paper's dynamic type extension.
  /// `predicate_source` is a data-language expression.
  Result<SubtypeId> DefineSubtype(const std::string& name,
                                  const std::string& class_name,
                                  const std::string& predicate_source);
  Result<SubtypeId> DefineSubtype(const std::string& name,
                                  const std::string& class_name,
                                  lang::RuleBody predicate);

  /// Extends an existing class in place (same ClassId): appends the given
  /// derived attribute. Existing attribute and port indices are unchanged.
  /// Returns the new attribute's index. This implements the paper's
  /// section-4 scenario of adding `very_late` to milestones without
  /// disturbing existing tools.
  Result<size_t> ExtendClassWithDerived(const std::string& class_name,
                                        const std::string& attr_name,
                                        ValueType type,
                                        const std::string& rule_source);

  /// As above but appends a constraint attribute.
  Result<size_t> ExtendClassWithConstraint(
      const std::string& class_name, const std::string& constraint_name,
      const std::string& predicate_source,
      const std::string& recovery_source = "");

  const SubtypeDef* FindSubtype(const std::string& name) const;
  const SubtypeDef* GetSubtype(SubtypeId id) const;

  /// Looks up an attribute definition by catalog-global AttributeId.
  /// Returns (class, attr index) or NotFound.
  struct AttrLocation {
    ClassId class_id;
    size_t attr_index;
  };
  Result<AttrLocation> LocateAttribute(AttributeId id) const;

  std::vector<const ObjectClass*> AllClasses() const;

 private:
  friend class ClassBuilder;

  AttributeId NextAttrId() { return AttributeId(++next_attr_); }
  RelationshipId NextPortId() { return RelationshipId(++next_port_); }

  Status Register(std::unique_ptr<ObjectClass> cls);

  /// Shared implementation of the class-extension entry points: clones the
  /// class, appends `def` (parsing `rule_source` / `recovery_source`),
  /// re-finalises and replaces it. Returns the new attribute index.
  Result<size_t> AppendAttribute(const std::string& class_name,
                                 AttributeDef def,
                                 const std::string& rule_source,
                                 const std::string& recovery_source);

  uint64_t next_class_ = 0;
  uint64_t next_attr_ = 0;
  uint64_t next_port_ = 0;
  uint64_t next_rel_type_ = 0;
  uint64_t next_subtype_ = 0;

  std::map<ClassId, std::unique_ptr<ObjectClass>> classes_;
  std::unordered_map<std::string, ClassId> class_by_name_;
  std::unordered_map<std::string, RelTypeId> rel_types_;
  std::map<RelTypeId, std::string> rel_type_names_;
  std::map<SubtypeId, SubtypeDef> subtypes_;
  std::unordered_map<std::string, SubtypeId> subtype_by_name_;
  std::unordered_map<AttributeId, AttrLocation> attr_locations_;
};

/// Fluent builder for object classes. All methods record specs; Build()
/// parses rule sources, runs dependency analysis, computes the dependency
/// tables and registers the class with the catalog.
class ClassBuilder {
 public:
  ClassBuilder(Catalog* catalog, std::string class_name);

  /// Declares a relationship port.
  ClassBuilder& Port(const std::string& name, const std::string& rel_type,
                     Side side, Cardinality cardinality = Cardinality::kMulti);

  /// Declares an intrinsic attribute (optionally with a default value).
  ClassBuilder& Intrinsic(const std::string& name, ValueType type);
  ClassBuilder& Intrinsic(const std::string& name, ValueType type,
                          Value default_value);

  /// Declares a derived attribute with a data-language rule body.
  ClassBuilder& Derived(const std::string& name, ValueType type,
                        const std::string& rule_source);
  ClassBuilder& Derived(const std::string& name, ValueType type,
                        lang::RuleBody body);

  /// Declares a circular derived attribute (fixed-point evaluated from
  /// its default value when it participates in a dependency cycle).
  ClassBuilder& DerivedCircular(const std::string& name, ValueType type,
                                const std::string& rule_source);

  /// Flags the most recently declared attribute as circular (used by the
  /// schema loader for `circular x = ...;` rules).
  ClassBuilder& MarkLastRuleCircular();

  /// Declares a derived attribute with a native rule (dependencies must be
  /// declared explicitly and completely).
  ClassBuilder& DerivedNative(const std::string& name, ValueType type,
                              NativeRule rule);

  /// Declares an export: value `value_name` transmitted across `port`.
  ClassBuilder& Export(const std::string& port, const std::string& value_name,
                       ValueType type, const std::string& rule_source);
  ClassBuilder& Export(const std::string& port, const std::string& value_name,
                       ValueType type, lang::RuleBody body);
  ClassBuilder& ExportNative(const std::string& port,
                             const std::string& value_name, ValueType type,
                             NativeRule rule);

  /// Declares a constraint with an optional recovery action (data-language
  /// statement block source).
  ClassBuilder& Constraint(const std::string& name,
                           const std::string& predicate_source,
                           const std::string& recovery_source = "");
  ClassBuilder& Constraint(const std::string& name, lang::RuleBody predicate,
                           std::shared_ptr<const lang::StmtList> recovery);

  /// Finalises and registers the class.
  Result<ClassId> Build();

 private:
  friend class Catalog;

  struct PortSpecInternal {
    std::string name;
    std::string rel_type;
    Side side = Side::kPlug;
    Cardinality cardinality = Cardinality::kMulti;
  };

  struct PendingAttr {
    AttributeDef def;
    std::string rule_source;  // parsed at Build() when non-empty
    std::string recovery_source;
    bool has_body = false;            // def.rule already holds a parsed body
  };

  /// Shared implementation of Build() and Catalog's class-extension path:
  /// parses pending rule sources, analyses dependencies, finalises the
  /// class and registers it (replacing an existing class when `existing`).
  Result<ClassId> BuildInternal(const ObjectClass* existing);

  Catalog* catalog_;
  std::string name_;
  std::vector<PortSpecInternal> ports_;
  std::vector<PendingAttr> attrs_;
  Status deferred_error_;
};

}  // namespace cactis::schema

#endif  // CACTIS_SCHEMA_CATALOG_H_
