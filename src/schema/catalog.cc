#include "schema/catalog.h"

#include <algorithm>

#include "lang/parser.h"

namespace cactis::schema {

namespace {

const std::vector<size_t>& EmptyIndexList() {
  static const std::vector<size_t>* empty = new std::vector<size_t>();
  return *empty;
}

Value DefaultValueForType(ValueType t) {
  switch (t) {
    case ValueType::kBool:
      return Value::Bool(false);
    case ValueType::kInt:
      return Value::Int(0);
    case ValueType::kReal:
      return Value::Real(0.0);
    case ValueType::kString:
      return Value::String("");
    case ValueType::kTime:
      return Value::Time(kTimeZero);
    case ValueType::kArray:
      return Value::Array({});
    default:
      return Value::Null();
  }
}

/// Builds the analyzer's view of a class under construction.
lang::ClassContext MakeClassContext(const std::vector<AttributeDef>& attrs,
                                    const std::vector<PortDef>& ports) {
  lang::ClassContext ctx;
  for (const AttributeDef& a : attrs) {
    if (a.kind != AttrKind::kExport) ctx.attribute_names.insert(a.name);
  }
  for (const PortDef& p : ports) ctx.port_names.insert(p.name);
  return ctx;
}

}  // namespace

// --- ObjectClass -----------------------------------------------------------

size_t ObjectClass::AttrIndexOf(const std::string& name) const {
  auto it = attr_by_name_.find(name);
  return it == attr_by_name_.end() ? SIZE_MAX : it->second;
}

size_t ObjectClass::PortIndexOf(const std::string& name) const {
  auto it = port_by_name_.find(name);
  return it == port_by_name_.end() ? SIZE_MAX : it->second;
}

const AttributeDef* ObjectClass::FindAttr(const std::string& name) const {
  size_t i = AttrIndexOf(name);
  return i == SIZE_MAX ? nullptr : &attributes_[i];
}

const PortDef* ObjectClass::FindPort(const std::string& name) const {
  size_t i = PortIndexOf(name);
  return i == SIZE_MAX ? nullptr : &ports_[i];
}

const std::vector<size_t>& ObjectClass::LocalDependents(
    size_t attr_index) const {
  if (attr_index >= local_dependents_.size()) return EmptyIndexList();
  return local_dependents_[attr_index];
}

const std::vector<size_t>& ObjectClass::RemoteDependents(
    size_t port_index, const std::string& name) const {
  auto it = remote_dependents_.find({port_index, name});
  return it == remote_dependents_.end() ? EmptyIndexList() : it->second;
}

const std::vector<size_t>& ObjectClass::StructuralDependents(
    size_t port_index) const {
  if (port_index >= structural_dependents_.size()) return EmptyIndexList();
  return structural_dependents_[port_index];
}

const std::vector<ObjectClass::VisibleName>& ObjectClass::VisibleNames(
    size_t attr_index) const {
  static const std::vector<VisibleName>* empty =
      new std::vector<VisibleName>();
  if (attr_index >= visible_names_.size()) return *empty;
  return visible_names_[attr_index];
}

size_t ObjectClass::ResolveProvidedValue(size_t port_index,
                                         const std::string& name) const {
  auto it = provided_values_.find({port_index, name});
  if (it != provided_values_.end()) return it->second;
  size_t idx = AttrIndexOf(name);
  if (idx != SIZE_MAX && attributes_[idx].kind != AttrKind::kExport) {
    return idx;
  }
  return SIZE_MAX;
}

Status ObjectClass::Finalize() {
  attr_by_name_.clear();
  port_by_name_.clear();
  local_dependents_.assign(attributes_.size(), {});
  remote_dependents_.clear();
  structural_dependents_.assign(ports_.size(), {});
  consumed_remote_.clear();
  visible_names_.assign(attributes_.size(), {});
  provided_values_.clear();
  constraint_attrs_.clear();

  for (size_t i = 0; i < ports_.size(); ++i) {
    ports_[i].index = i;
    if (!port_by_name_.emplace(ports_[i].name, i).second) {
      return Status::AlreadyExists("class " + name_ +
                                   " declares relationship '" +
                                   ports_[i].name + "' twice");
    }
  }
  for (size_t i = 0; i < attributes_.size(); ++i) {
    attributes_[i].index = i;
    if (!attr_by_name_.emplace(attributes_[i].name, i).second) {
      return Status::AlreadyExists("class " + name_ +
                                   " declares attribute '" +
                                   attributes_[i].name + "' twice");
    }
  }

  std::set<std::pair<size_t, std::string>> consumed;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const AttributeDef& a = attributes_[i];

    if (a.intrinsically_important()) constraint_attrs_.push_back(i);

    // Provider-side visibility.
    if (a.kind == AttrKind::kExport) {
      if (a.export_port_index >= ports_.size()) {
        return Status::Internal("export '" + a.name +
                                "' references a bad port index");
      }
      visible_names_[i].push_back({a.export_port_index, a.export_name});
      auto [it, inserted] = provided_values_.emplace(
          std::make_pair(a.export_port_index, a.export_name), i);
      if (!inserted) {
        return Status::AlreadyExists(
            "class " + name_ + " exports '" + a.export_name +
            "' twice across relationship '" +
            ports_[a.export_port_index].name + "'");
      }
    } else {
      visible_names_[i].push_back({SIZE_MAX, a.name});
    }

    // Consumer-side dependency tables.
    for (const lang::Dependency& d : a.deps) {
      switch (d.kind) {
        case lang::Dependency::Kind::kLocal: {
          size_t target = AttrIndexOf(d.name);
          if (target == SIZE_MAX) {
            return Status::NotFound("rule for '" + a.name +
                                    "' mentions unknown attribute '" +
                                    d.name + "' in class " + name_);
          }
          local_dependents_[target].push_back(i);
          break;
        }
        case lang::Dependency::Kind::kRemote: {
          size_t port = PortIndexOf(d.port);
          if (port == SIZE_MAX) {
            return Status::NotFound("rule for '" + a.name +
                                    "' mentions unknown relationship '" +
                                    d.port + "' in class " + name_);
          }
          remote_dependents_[{port, d.name}].push_back(i);
          consumed.insert({port, d.name});
          break;
        }
        case lang::Dependency::Kind::kStructural: {
          size_t port = PortIndexOf(d.port);
          if (port == SIZE_MAX) {
            return Status::NotFound("rule for '" + a.name +
                                    "' iterates unknown relationship '" +
                                    d.port + "' in class " + name_);
          }
          structural_dependents_[port].push_back(i);
          break;
        }
      }
    }
  }
  consumed_remote_.assign(consumed.begin(), consumed.end());
  consumes_across_port_.assign(ports_.size(), false);
  for (const auto& [port, name] : consumed_remote_) {
    (void)name;
    consumes_across_port_[port] = true;
  }
  // Structural dependencies also make edges into the port significant for
  // marking when relationships change, but only value flow matters for
  // the worst-case marking estimate, so kRemote alone feeds this table.

  // Local static cycle check: a dependency cycle confined to one instance
  // can never evaluate, so reject it at schema time — unless every
  // attribute on the cycle is declared `circular`, in which case the
  // engine resolves it by fixed-point iteration ([Far86]). We check the
  // subgraph with circular attributes removed. (Cross-instance cycles
  // depend on the instance graph and are handled at run time.)
  enum class Mark : uint8_t { kWhite, kGray, kBlack };
  std::vector<Mark> marks(attributes_.size(), Mark::kWhite);
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].circular) marks[i] = Mark::kBlack;  // excluded
  }
  // Iterative DFS over "dependent" edges.
  std::vector<std::pair<size_t, size_t>> stack;  // (node, next child pos)
  for (size_t root = 0; root < attributes_.size(); ++root) {
    if (marks[root] != Mark::kWhite) continue;
    stack.push_back({root, 0});
    marks[root] = Mark::kGray;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      const std::vector<size_t>& out = local_dependents_[node];
      if (child < out.size()) {
        size_t next = out[child++];
        if (marks[next] == Mark::kGray) {
          return Status::CycleDetected(
              "class " + name_ + " has a local attribute dependency cycle "
              "involving '" + attributes_[next].name + "'");
        }
        if (marks[next] == Mark::kWhite) {
          marks[next] = Mark::kGray;
          stack.push_back({next, 0});
        }
      } else {
        marks[node] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

// --- Catalog ---------------------------------------------------------------

RelTypeId Catalog::InternRelType(const std::string& name) {
  auto it = rel_types_.find(name);
  if (it != rel_types_.end()) return it->second;
  RelTypeId id(++next_rel_type_);
  rel_types_.emplace(name, id);
  rel_type_names_.emplace(id, name);
  return id;
}

Result<RelTypeId> Catalog::FindRelType(const std::string& name) const {
  auto it = rel_types_.find(name);
  if (it == rel_types_.end()) {
    return Status::NotFound("unknown relationship type '" + name + "'");
  }
  return it->second;
}

const std::string& Catalog::RelTypeName(RelTypeId id) const {
  static const std::string* unknown = new std::string("<unknown>");
  auto it = rel_type_names_.find(id);
  return it == rel_type_names_.end() ? *unknown : it->second;
}

const ObjectClass* Catalog::GetClass(ClassId id) const {
  auto it = classes_.find(id);
  return it == classes_.end() ? nullptr : it->second.get();
}

const ObjectClass* Catalog::FindClass(const std::string& name) const {
  auto it = class_by_name_.find(name);
  return it == class_by_name_.end() ? nullptr : GetClass(it->second);
}

Result<ClassId> Catalog::ClassIdOf(const std::string& name) const {
  auto it = class_by_name_.find(name);
  if (it == class_by_name_.end()) {
    return Status::NotFound("unknown object class '" + name + "'");
  }
  return it->second;
}

Status Catalog::Register(std::unique_ptr<ObjectClass> cls) {
  auto by_name = class_by_name_.find(cls->name());
  if (by_name != class_by_name_.end() && by_name->second != cls->id()) {
    return Status::AlreadyExists("object class '" + cls->name() +
                                 "' already exists");
  }
  for (const AttributeDef& a : cls->attributes()) {
    attr_locations_[a.id] = AttrLocation{cls->id(), a.index};
  }
  class_by_name_[cls->name()] = cls->id();
  classes_[cls->id()] = std::move(cls);
  return Status::OK();
}

Result<Catalog::AttrLocation> Catalog::LocateAttribute(AttributeId id) const {
  auto it = attr_locations_.find(id);
  if (it == attr_locations_.end()) {
    return Status::NotFound("unknown attribute id " + std::to_string(id.value));
  }
  return it->second;
}

std::vector<const ObjectClass*> Catalog::AllClasses() const {
  std::vector<const ObjectClass*> out;
  out.reserve(classes_.size());
  for (const auto& [id, cls] : classes_) {
    (void)id;
    out.push_back(cls.get());
  }
  return out;
}

Result<size_t> Catalog::AppendAttribute(const std::string& class_name,
                                        AttributeDef def,
                                        const std::string& rule_source,
                                        const std::string& recovery_source) {
  const ObjectClass* existing = FindClass(class_name);
  if (existing == nullptr) {
    return Status::NotFound("unknown object class '" + class_name + "'");
  }

  auto cls = std::unique_ptr<ObjectClass>(new ObjectClass());
  cls->id_ = existing->id();
  cls->name_ = existing->name();
  cls->attributes_ = existing->attributes();
  cls->ports_ = existing->ports();

  if (!rule_source.empty()) {
    CACTIS_ASSIGN_OR_RETURN(lang::RuleBody body,
                            lang::Parser::ParseRuleBody(rule_source));
    auto rule = std::make_shared<Rule>();
    rule->is_native = false;
    rule->body = std::move(body);
    def.rule = std::move(rule);
  }
  if (def.rule == nullptr) {
    return Status::InvalidArgument(
        "class extension attributes must be derived (have a rule)");
  }

  lang::ClassContext ctx = MakeClassContext(cls->attributes_, cls->ports_);
  ctx.attribute_names.insert(def.name);

  if (!def.rule->is_native) {
    CACTIS_ASSIGN_OR_RETURN(def.deps,
                            lang::AnalyzeDependencies(def.rule->body, ctx));
  } else {
    def.deps = def.rule->native.deps;
  }

  if (!recovery_source.empty()) {
    CACTIS_ASSIGN_OR_RETURN(lang::RuleBody rec,
                            lang::Parser::ParseRuleBody(recovery_source));
    if (!rec.is_block) {
      return Status::InvalidArgument(
          "recovery action must be a begin...end block");
    }
    CACTIS_RETURN_IF_ERROR(
        lang::AnalyzeDependencies(rec.block, ctx, /*allow_attr_assign=*/true)
            .status());
    def.recovery = std::make_shared<lang::StmtList>(std::move(rec.block));
  }

  def.id = NextAttrId();
  if (def.default_value.is_null()) {
    def.default_value = DefaultValueForType(def.type);
  }
  def.index = cls->attributes_.size();
  size_t new_index = def.index;
  cls->attributes_.push_back(std::move(def));

  CACTIS_RETURN_IF_ERROR(cls->Finalize());
  CACTIS_RETURN_IF_ERROR(Register(std::move(cls)));
  return new_index;
}

Result<SubtypeId> Catalog::DefineSubtype(const std::string& name,
                                         const std::string& class_name,
                                         const std::string& predicate_source) {
  CACTIS_ASSIGN_OR_RETURN(lang::RuleBody body,
                          lang::Parser::ParseRuleBody(predicate_source));
  return DefineSubtype(name, class_name, std::move(body));
}

Result<SubtypeId> Catalog::DefineSubtype(const std::string& name,
                                         const std::string& class_name,
                                         lang::RuleBody predicate) {
  if (subtype_by_name_.contains(name)) {
    return Status::AlreadyExists("subtype '" + name + "' already exists");
  }
  SubtypeId id(next_subtype_ + 1);

  AttributeDef def;
  def.name = name;  // membership readable as a boolean attribute
  def.type = ValueType::kBool;
  def.kind = AttrKind::kDerived;
  def.subtype = id;
  auto rule = std::make_shared<Rule>();
  rule->body = std::move(predicate);
  def.rule = std::move(rule);
  CACTIS_ASSIGN_OR_RETURN(size_t index,
                          AppendAttribute(class_name, std::move(def), "", ""));

  ++next_subtype_;
  SubtypeDef sub;
  sub.id = id;
  sub.name = name;
  sub.class_id = *ClassIdOf(class_name);
  sub.predicate_attr_index = index;
  subtypes_.emplace(id, sub);
  subtype_by_name_.emplace(name, id);
  return id;
}

Result<size_t> Catalog::ExtendClassWithDerived(const std::string& class_name,
                                               const std::string& attr_name,
                                               ValueType type,
                                               const std::string& rule_source) {
  AttributeDef def;
  def.name = attr_name;
  def.type = type;
  def.kind = AttrKind::kDerived;
  return AppendAttribute(class_name, std::move(def), rule_source, "");
}

Result<size_t> Catalog::ExtendClassWithConstraint(
    const std::string& class_name, const std::string& constraint_name,
    const std::string& predicate_source, const std::string& recovery_source) {
  AttributeDef def;
  def.name = constraint_name;
  def.type = ValueType::kBool;
  def.kind = AttrKind::kDerived;
  def.is_constraint = true;
  return AppendAttribute(class_name, std::move(def), predicate_source,
                         recovery_source);
}

const SubtypeDef* Catalog::FindSubtype(const std::string& name) const {
  auto it = subtype_by_name_.find(name);
  return it == subtype_by_name_.end() ? nullptr : GetSubtype(it->second);
}

const SubtypeDef* Catalog::GetSubtype(SubtypeId id) const {
  auto it = subtypes_.find(id);
  return it == subtypes_.end() ? nullptr : &it->second;
}

// --- ClassBuilder ----------------------------------------------------------

ClassBuilder::ClassBuilder(Catalog* catalog, std::string class_name)
    : catalog_(catalog), name_(std::move(class_name)) {}

ClassBuilder& ClassBuilder::Port(const std::string& name,
                                 const std::string& rel_type, Side side,
                                 Cardinality cardinality) {
  ports_.push_back(PortSpecInternal{name, rel_type, side, cardinality});
  return *this;
}

ClassBuilder& ClassBuilder::Intrinsic(const std::string& name,
                                      ValueType type) {
  return Intrinsic(name, type, DefaultValueForType(type));
}

ClassBuilder& ClassBuilder::Intrinsic(const std::string& name, ValueType type,
                                      Value default_value) {
  PendingAttr p;
  p.def.name = name;
  p.def.type = type;
  p.def.kind = AttrKind::kIntrinsic;
  p.def.default_value = std::move(default_value);
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::Derived(const std::string& name, ValueType type,
                                    const std::string& rule_source) {
  PendingAttr p;
  p.def.name = name;
  p.def.type = type;
  p.def.kind = AttrKind::kDerived;
  p.rule_source = rule_source;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::DerivedCircular(const std::string& name,
                                            ValueType type,
                                            const std::string& rule_source) {
  Derived(name, type, rule_source);
  attrs_.back().def.circular = true;
  return *this;
}

ClassBuilder& ClassBuilder::MarkLastRuleCircular() {
  if (attrs_.empty()) {
    deferred_error_ =
        Status::InvalidArgument("MarkLastRuleCircular with no attributes");
    return *this;
  }
  attrs_.back().def.circular = true;
  return *this;
}

ClassBuilder& ClassBuilder::Derived(const std::string& name, ValueType type,
                                    lang::RuleBody body) {
  PendingAttr p;
  p.def.name = name;
  p.def.type = type;
  p.def.kind = AttrKind::kDerived;
  auto rule = std::make_shared<Rule>();
  rule->body = std::move(body);
  p.def.rule = std::move(rule);
  p.has_body = true;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::DerivedNative(const std::string& name,
                                          ValueType type, NativeRule rule) {
  PendingAttr p;
  p.def.name = name;
  p.def.type = type;
  p.def.kind = AttrKind::kDerived;
  auto r = std::make_shared<Rule>();
  r->is_native = true;
  r->native = std::move(rule);
  p.def.rule = std::move(r);
  p.has_body = true;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::Export(const std::string& port,
                                   const std::string& value_name,
                                   ValueType type,
                                   const std::string& rule_source) {
  PendingAttr p;
  p.def.name = port + "." + value_name;
  p.def.type = type;
  p.def.kind = AttrKind::kExport;
  p.def.export_name = value_name;
  p.rule_source = rule_source;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::Export(const std::string& port,
                                   const std::string& value_name,
                                   ValueType type, lang::RuleBody body) {
  PendingAttr p;
  p.def.name = port + "." + value_name;
  p.def.type = type;
  p.def.kind = AttrKind::kExport;
  p.def.export_name = value_name;
  auto rule = std::make_shared<Rule>();
  rule->body = std::move(body);
  p.def.rule = std::move(rule);
  p.has_body = true;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::ExportNative(const std::string& port,
                                         const std::string& value_name,
                                         ValueType type, NativeRule rule) {
  PendingAttr p;
  p.def.name = port + "." + value_name;
  p.def.type = type;
  p.def.kind = AttrKind::kExport;
  p.def.export_name = value_name;
  auto r = std::make_shared<Rule>();
  r->is_native = true;
  r->native = std::move(rule);
  p.def.rule = std::move(r);
  p.has_body = true;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::Constraint(const std::string& name,
                                       const std::string& predicate_source,
                                       const std::string& recovery_source) {
  PendingAttr p;
  p.def.name = name;
  p.def.type = ValueType::kBool;
  p.def.kind = AttrKind::kDerived;
  p.def.is_constraint = true;
  p.rule_source = predicate_source;
  p.recovery_source = recovery_source;
  attrs_.push_back(std::move(p));
  return *this;
}

ClassBuilder& ClassBuilder::Constraint(
    const std::string& name, lang::RuleBody predicate,
    std::shared_ptr<const lang::StmtList> recovery) {
  PendingAttr p;
  p.def.name = name;
  p.def.type = ValueType::kBool;
  p.def.kind = AttrKind::kDerived;
  p.def.is_constraint = true;
  auto rule = std::make_shared<Rule>();
  rule->body = std::move(predicate);
  p.def.rule = std::move(rule);
  p.def.recovery = std::move(recovery);
  p.has_body = true;
  attrs_.push_back(std::move(p));
  return *this;
}

Result<ClassId> ClassBuilder::Build() { return BuildInternal(nullptr); }

Result<ClassId> ClassBuilder::BuildInternal(const ObjectClass* existing) {
  if (!deferred_error_.ok()) return deferred_error_;

  auto cls = std::unique_ptr<ObjectClass>(new ObjectClass());
  cls->name_ = name_;
  if (existing != nullptr) {
    cls->id_ = existing->id();
    cls->attributes_ = existing->attributes();
    cls->ports_ = existing->ports();
  } else {
    cls->id_ = ClassId(++catalog_->next_class_);
  }

  for (const PortSpecInternal& spec : ports_) {
    PortDef port;
    port.id = catalog_->NextPortId();
    port.name = spec.name;
    port.rel_type = catalog_->InternRelType(spec.rel_type);
    port.side = spec.side;
    port.cardinality = spec.cardinality;
    cls->ports_.push_back(std::move(port));
  }

  lang::ClassContext ctx = MakeClassContext({}, cls->ports_);
  for (const AttributeDef& a : cls->attributes_) {
    if (a.kind != AttrKind::kExport) ctx.attribute_names.insert(a.name);
  }
  for (const PendingAttr& p : attrs_) {
    if (p.def.kind != AttrKind::kExport) {
      ctx.attribute_names.insert(p.def.name);
    }
  }

  for (PendingAttr& pending : attrs_) {
    AttributeDef def = std::move(pending.def);

    if (!pending.rule_source.empty()) {
      CACTIS_ASSIGN_OR_RETURN(lang::RuleBody body,
                              lang::Parser::ParseRuleBody(pending.rule_source));
      auto rule = std::make_shared<Rule>();
      rule->body = std::move(body);
      def.rule = std::move(rule);
    }

    if (def.kind == AttrKind::kExport) {
      // Resolve the port the export is attached to from the name prefix.
      std::string port_name = def.name.substr(0, def.name.find('.'));
      bool found = false;
      for (size_t i = 0; i < cls->ports_.size(); ++i) {
        if (cls->ports_[i].name == port_name) {
          def.export_port_index = i;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::NotFound("export '" + def.name +
                                "' names unknown relationship '" + port_name +
                                "' in class " + name_);
      }
    }

    if (def.is_derived()) {
      if (def.rule == nullptr) {
        return Status::InvalidArgument("derived attribute '" + def.name +
                                       "' has no rule in class " + name_);
      }
      if (def.rule->is_native) {
        def.deps = def.rule->native.deps;
      } else {
        CACTIS_ASSIGN_OR_RETURN(def.deps,
                                lang::AnalyzeDependencies(def.rule->body, ctx));
      }
    }

    if (!pending.recovery_source.empty()) {
      CACTIS_ASSIGN_OR_RETURN(
          lang::RuleBody rec,
          lang::Parser::ParseRuleBody(pending.recovery_source));
      if (!rec.is_block) {
        return Status::InvalidArgument(
            "recovery action for '" + def.name +
            "' must be a begin...end block in class " + name_);
      }
      CACTIS_RETURN_IF_ERROR(lang::AnalyzeDependencies(
                                 rec.block, ctx, /*allow_attr_assign=*/true)
                                 .status());
      def.recovery = std::make_shared<lang::StmtList>(std::move(rec.block));
    }

    if (def.default_value.is_null() && def.type != ValueType::kNull) {
      def.default_value = DefaultValueForType(def.type);
    }
    def.id = catalog_->NextAttrId();
    cls->attributes_.push_back(std::move(def));
  }

  CACTIS_RETURN_IF_ERROR(cls->Finalize());
  ClassId id = cls->id_;
  CACTIS_RETURN_IF_ERROR(catalog_->Register(std::move(cls)));
  return id;
}

}  // namespace cactis::schema
