// SchemaLoader: loads data-language schema source (class, relationship and
// subtype declarations — the form used in the paper's Figures 1-4) into a
// Catalog.

#ifndef CACTIS_SCHEMA_SCHEMA_LOADER_H_
#define CACTIS_SCHEMA_SCHEMA_LOADER_H_

#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "schema/catalog.h"

namespace cactis::schema {

/// Parses `source` and defines every declaration in order. Relationship
/// types are interned on first use, so a standalone `relationship x;`
/// declaration is optional. Returns the ids of the classes defined.
Result<std::vector<ClassId>> LoadSchema(Catalog* catalog,
                                        std::string_view source);

}  // namespace cactis::schema

#endif  // CACTIS_SCHEMA_SCHEMA_LOADER_H_
