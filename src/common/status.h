// Status: the error model used throughout the Cactis library.
//
// Cactis follows the Status/Result idiom common to storage engines: no
// exceptions cross a public API boundary. Every fallible operation returns
// either a Status or a Result<T> (see result.h). Statuses are cheap to copy
// in the OK case (no allocation) and carry a code plus a human-readable
// message otherwise.

#ifndef CACTIS_COMMON_STATUS_H_
#define CACTIS_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cactis {

/// Error categories surfaced by the Cactis public API.
enum class StatusCode : int {
  kOk = 0,
  /// A caller supplied an argument that violates the API contract.
  kInvalidArgument,
  /// A named entity (class, attribute, relationship, instance, version,
  /// file, ...) does not exist.
  kNotFound,
  /// An entity with the given name/id already exists.
  kAlreadyExists,
  /// A value had the wrong runtime type for the requested operation.
  kTypeMismatch,
  /// A constraint predicate evaluated to false and could not be recovered;
  /// the enclosing transaction must roll back (paper section 2.1).
  kConstraintViolation,
  /// The instance-level attribute dependency graph contains a cycle; the
  /// paper: "Cactis does not support data cycles".
  kCycleDetected,
  /// The transaction was aborted (explicit Undo, constraint violation, or
  /// timestamp-ordering conflict) and has been rolled back.
  kTransactionAborted,
  /// Timestamp-ordering conflict: the operation arrived too late.
  kConflict,
  /// The simulated disk / record store failed (out of space, bad block id,
  /// simulated crash). A permanent fault: retrying does not help.
  kIoError,
  /// A transient storage/network fault: the operation may well succeed if
  /// simply retried (injected transient disk error, momentary overload,
  /// or a service in degraded read-only mode refusing mutations).
  /// Layers retry these with bounded backoff (common/backoff.h).
  kUnavailable,
  /// Stored bytes fail their checksum: a torn write or bit rot was
  /// detected. Unlike kIoError, retrying cannot help; the block must be
  /// recovered from the write-ahead log.
  kCorruption,
  /// The data-language processor rejected its input.
  kParseError,
  /// A limit (block size, value size, queue capacity) was exceeded.
  kOutOfRange,
  /// Invariant failure inside the library; always a bug.
  kInternal,
};

/// Returns the canonical spelling of a StatusCode, e.g. "ConstraintViolation".
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic status object. The OK status is represented by a null
/// internal pointer, so returning Status::OK() never allocates.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status CycleDetected(std::string msg) {
    return Status(StatusCode::kCycleDetected, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsConstraintViolation() const {
    return code() == StatusCode::kConstraintViolation;
  }
  bool IsCycleDetected() const { return code() == StatusCode::kCycleDetected; }
  bool IsTransactionAborted() const {
    return code() == StatusCode::kTransactionAborted;
  }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace cactis

/// Propagates a non-OK Status out of the enclosing function.
#define CACTIS_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::cactis::Status _cactis_status = (expr);         \
    if (!_cactis_status.ok()) return _cactis_status;  \
  } while (false)

#endif  // CACTIS_COMMON_STATUS_H_
