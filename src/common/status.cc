#include "common/status.h"

namespace cactis {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kCycleDetected:
      return "CycleDetected";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace cactis
