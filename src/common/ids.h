// Strongly-typed identifiers used across the Cactis subsystems.
//
// Each id is a thin wrapper over an integer so the compiler rejects mixing
// e.g. a ClassId where an InstanceId is expected. Invalid ids are value 0;
// id 0 is never allocated.

#ifndef CACTIS_COMMON_IDS_H_
#define CACTIS_COMMON_IDS_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace cactis {

namespace internal {

/// CRTP-free tagged id. Tag is a distinct empty struct per id kind.
template <typename Tag>
struct TaggedId {
  uint64_t value = 0;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(uint64_t v) : value(v) {}

  constexpr bool valid() const { return value != 0; }
  auto operator<=>(const TaggedId&) const = default;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, TaggedId<Tag> id) {
  return os << id.value;
}

}  // namespace internal

/// An abstract-object instance (a node of the attributed graph).
using InstanceId = internal::TaggedId<struct InstanceIdTag>;
/// An object class in the catalog.
using ClassId = internal::TaggedId<struct ClassIdTag>;
/// An attribute definition within a class (dense per-class index is
/// separate; this id is catalog-global).
using AttributeId = internal::TaggedId<struct AttributeIdTag>;
/// A relationship-port definition within a class.
using RelationshipId = internal::TaggedId<struct RelationshipIdTag>;
/// A relationship edge between two instance ports.
using EdgeId = internal::TaggedId<struct EdgeIdTag>;
/// A disk block.
using BlockId = internal::TaggedId<struct BlockIdTag>;
/// A transaction.
using TxnId = internal::TaggedId<struct TxnIdTag>;
/// A saved database version.
using VersionId = internal::TaggedId<struct VersionIdTag>;
/// A predicate-defined subtype.
using SubtypeId = internal::TaggedId<struct SubtypeIdTag>;
/// A client session of the service layer (src/server).
using SessionId = internal::TaggedId<struct SessionIdTag>;

/// A (instance, attribute) pair: one attribute *instance*, i.e. one node of
/// the runtime attribute dependency graph.
struct AttrRef {
  InstanceId instance;
  AttributeId attribute;
  auto operator<=>(const AttrRef&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, const AttrRef& r) {
  return os << r.instance.value << "." << r.attribute.value;
}

}  // namespace cactis

namespace std {

template <typename Tag>
struct hash<cactis::internal::TaggedId<Tag>> {
  size_t operator()(cactis::internal::TaggedId<Tag> id) const {
    return std::hash<uint64_t>()(id.value);
  }
};

template <>
struct hash<cactis::AttrRef> {
  size_t operator()(const cactis::AttrRef& r) const {
    uint64_t h = r.instance.value * 1099511628211ull;
    h ^= r.attribute.value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace std

#endif  // CACTIS_COMMON_IDS_H_
