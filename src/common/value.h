// Value: the atomic-object type of the Cactis data model.
//
// Paper, section 2.1: "atomic objects (such as strings, reals, integers,
// booleans, arrays, and records)" and "attributes ... may be of any C data
// type, except pointer". We model that as a tagged union over:
//
//   Null, Bool, Int (64-bit), Real (double), String, Time (a distinct
//   64-bit instant, the `time`/`time_val` type of Figures 1-4), Array
//   (heterogeneous vector of Values) and Record (ordered field list).
//
// Values are deep-copied, order-comparable within a type, hashable, and
// binary-serialisable (see serial.h).

#ifndef CACTIS_COMMON_VALUE_H_
#define CACTIS_COMMON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace cactis {

/// Runtime type tag of a Value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kReal,
  kString,
  kTime,
  kArray,
  kRecord,
};

/// Canonical name of a value type ("int", "time", ...). These are the
/// spellings accepted by the data language.
std::string_view ValueTypeToString(ValueType type);

/// Parses a type name from the data language ("boolean", "time_val" and
/// "timef" are accepted aliases, matching the paper's figures).
Result<ValueType> ValueTypeFromString(std::string_view name);

class Value;

/// One named field of a record value.
struct Field {
  std::string name;
  // Defined out-of-line because Value is incomplete here.
  std::shared_ptr<Value> value;

  bool operator==(const Field& other) const;
};

/// A point on the project time line. Cactis models times as opaque 64-bit
/// instants; `kTimeZero` is the distant past (the paper's TIME0) and
/// `kTimeInfinity` the distant future (used by file_mod_time for missing
/// files).
struct TimePoint {
  int64_t ticks = 0;
  auto operator<=>(const TimePoint&) const = default;
};

inline constexpr TimePoint kTimeZero{0};
inline constexpr TimePoint kTimeInfinity{INT64_MAX};

/// The atomic-object value class. Immutable in spirit: mutation happens by
/// assigning a whole new Value.
class Value {
 public:
  /// Null value.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Rep(b)); }
  static Value Int(int64_t i) { return Value(Rep(i)); }
  static Value Real(double d) { return Value(Rep(d)); }
  static Value String(std::string s) { return Value(Rep(std::move(s))); }
  static Value Time(TimePoint t) { return Value(Rep(t)); }
  static Value Time(int64_t ticks) { return Value(Rep(TimePoint{ticks})); }
  static Value Array(std::vector<Value> elems) {
    return Value(Rep(std::move(elems)));
  }
  static Value Record(std::vector<std::pair<std::string, Value>> fields);

  ValueType type() const { return static_cast<ValueType>(rep_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; return TypeMismatch when the tag differs.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt() const;
  Result<double> AsReal() const;
  Result<std::string> AsString() const;
  Result<TimePoint> AsTime() const;
  Result<std::vector<Value>> AsArray() const;
  /// Record field lookup by name.
  Result<Value> GetField(std::string_view name) const;
  /// All record fields in declaration order.
  Result<std::vector<std::pair<std::string, Value>>> Fields() const;

  /// Numeric coercion: Int and Real (and Bool as 0/1) convert to double.
  Result<double> ToNumber() const;

  /// Structural equality (same type and same contents).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order within a type (Null < everything of other types is defined
  /// by type tag first, then contents); used for min/max builtins and
  /// deterministic sorting.
  bool operator<(const Value& other) const;

  /// Stable 64-bit hash of type and contents.
  uint64_t Hash() const;

  /// Human-readable rendering, e.g. `"abc"`, `true`, `time(42)`,
  /// `[1, 2.5]`, `{x: 1}`.
  std::string ToString() const;

  /// Number of bytes this value occupies when serialised; used by the
  /// record store to account block space.
  size_t SerializedSize() const;

 private:
  using ArrayRep = std::vector<Value>;
  using RecordRep = std::vector<Field>;
  using Rep = std::variant<std::monostate, bool, int64_t, double, std::string,
                           TimePoint, ArrayRep, RecordRep>;

  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;

  friend class ValueCodec;
};

inline std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace cactis

#endif  // CACTIS_COMMON_VALUE_H_
