// ThreadSerialGuard / ThreadSharedGuard: mechanical enforcement of the
// core's locking discipline.
//
// The Cactis core (Database, ObjectCache and everything below them) was
// originally single-threaded: the paper's multi-user concurrency is
// timestamp-ordering over *interleaved* operations, not parallel ones.
// The service layer (src/server) multiplexes many sessions onto the core
// by serializing statements behind one mutex — now a reader/writer lock,
// so read-only statements may enter concurrently while mutating
// statements remain exclusive.
//
// That discipline is easy to state and easy to break silently, so the
// core's entry points carry guards that detect a violating thread
// entering and abort with a diagnostic instead of corrupting state:
//
//  * ThreadSerialGuard — single caller at a time. Re-entry by the owning
//    thread is permitted (public operations nest: an auto-commit Set
//    runs Begin/Commit internally).
//  * ThreadSharedGuard — many shared entrants OR one exclusive owner.
//    Exclusive entry aborts if any shared scope is live; shared entry
//    aborts if a different thread holds the guard exclusively. The
//    exclusive owner may open shared scopes (an exclusive statement
//    calling a read helper), and re-enter exclusively, without deadlock.
//
// Cost when the discipline holds: one or two relaxed atomic ops per
// outermost entry — noise next to the microseconds a database operation
// costs. The guards are active in all build types; a data race that only
// debug builds would catch is still a data race.

#ifndef CACTIS_COMMON_THREAD_GUARD_H_
#define CACTIS_COMMON_THREAD_GUARD_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <type_traits>

namespace cactis {

namespace internal {

[[noreturn]] inline void GuardViolation(const char* site, const char* what) {
  std::fprintf(stderr,
               "cactis: concurrent unsynchronized access detected in "
               "%s()\n  %s; callers must respect the statement lock "
               "discipline (see server::Executor's statement mutex)\n",
               site, what);
  std::abort();
}

}  // namespace internal

class ThreadSerialGuard {
 public:
  ThreadSerialGuard() = default;
  ThreadSerialGuard(const ThreadSerialGuard&) = delete;
  ThreadSerialGuard& operator=(const ThreadSerialGuard&) = delete;

  /// RAII entry token. Construct at the top of every guarded entry point.
  class Scope {
   public:
    Scope(ThreadSerialGuard& guard, const char* site) : guard_(guard) {
      guard_.Enter(site);
    }
    ~Scope() { guard_.Exit(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ThreadSerialGuard& guard_;
  };

 private:
  void Enter(const char* site) {
    const std::thread::id me = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;  // same-thread re-entry (nested public operation)
      return;
    }
    std::thread::id expected{};  // "no owner"
    if (!owner_.compare_exchange_strong(expected, me,
                                        std::memory_order_acquire)) {
      internal::GuardViolation(
          site, "two threads entered a single-threaded component at once");
    }
    depth_ = 1;
  }

  void Exit() {
    if (--depth_ == 0) {
      owner_.store(std::thread::id{}, std::memory_order_release);
    }
  }

  std::atomic<std::thread::id> owner_{};
  int depth_ = 0;  // touched only by the owning thread
};

/// Reader/writer variant: any number of shared entrants, or one exclusive
/// owner (who may nest both exclusive and shared scopes). The guard does
/// not block — it only detects violations of an externally-enforced
/// discipline (the executor's std::shared_mutex) and aborts loudly.
class ThreadSharedGuard {
 public:
  ThreadSharedGuard() = default;
  ThreadSharedGuard(const ThreadSharedGuard&) = delete;
  ThreadSharedGuard& operator=(const ThreadSharedGuard&) = delete;

  /// Exclusive RAII entry token; same semantics as ThreadSerialGuard::Scope.
  class Scope {
   public:
    Scope(ThreadSharedGuard& guard, const char* site) : guard_(guard) {
      guard_.EnterExclusive(site);
    }
    ~Scope() { guard_.ExitExclusive(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ThreadSharedGuard& guard_;
  };

  /// Shared RAII entry token for concurrent read paths.
  class SharedScope {
   public:
    SharedScope(ThreadSharedGuard& guard, const char* site) : guard_(guard) {
      nested_ = guard_.EnterShared(site);
    }
    ~SharedScope() { guard_.ExitShared(nested_); }
    SharedScope(const SharedScope&) = delete;
    SharedScope& operator=(const SharedScope&) = delete;

   private:
    ThreadSharedGuard& guard_;
    bool nested_;  // opened by the exclusive owner: no shared count held
  };

 private:
  void EnterExclusive(const char* site) {
    const std::thread::id me = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;  // same-thread re-entry (nested public operation)
      return;
    }
    std::thread::id expected{};  // "no owner"
    if (!owner_.compare_exchange_strong(expected, me,
                                        std::memory_order_acquire)) {
      internal::GuardViolation(
          site, "two threads entered an exclusive component at once");
    }
    if (shared_.load(std::memory_order_acquire) != 0) {
      internal::GuardViolation(
          site, "a thread entered exclusively while shared scopes were live");
    }
    depth_ = 1;
  }

  void ExitExclusive() {
    if (--depth_ == 0) {
      owner_.store(std::thread::id{}, std::memory_order_release);
    }
  }

  // Returns true when this is a nested shared scope opened by the
  // exclusive owner (no shared count taken).
  bool EnterShared(const char* site) {
    const std::thread::id me = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == me) {
      return true;  // exclusive owner reading through its own lock
    }
    shared_.fetch_add(1, std::memory_order_acquire);
    if (owner_.load(std::memory_order_acquire) != std::thread::id{}) {
      internal::GuardViolation(
          site, "a thread entered shared while another held it exclusively");
    }
    return false;
  }

  void ExitShared(bool nested) {
    if (!nested) {
      shared_.fetch_sub(1, std::memory_order_release);
    }
  }

  std::atomic<std::thread::id> owner_{};
  std::atomic<int> shared_{0};
  int depth_ = 0;  // touched only by the owning thread
};

/// Guards the enclosing scope against concurrent entry through `guard`.
/// Works for both guard kinds: exclusive entry on a ThreadSharedGuard,
/// plain entry on a ThreadSerialGuard.
#define CACTIS_SERIAL_GUARD(guard)                                   \
  typename ::std::remove_reference_t<decltype(guard)>::Scope         \
      _cactis_serial_scope_((guard), __func__)

/// Declares a shared (read-side) entry through a ThreadSharedGuard.
#define CACTIS_SHARED_GUARD(guard) \
  ::cactis::ThreadSharedGuard::SharedScope _cactis_shared_scope_((guard), \
                                                                 __func__)

}  // namespace cactis

#endif  // CACTIS_COMMON_THREAD_GUARD_H_
