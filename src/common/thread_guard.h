// ThreadSerialGuard: mechanical enforcement of a single-caller discipline.
//
// The Cactis core (Database, ObjectCache and everything below them) is
// deliberately single-threaded: the paper's multi-user concurrency is
// timestamp-ordering over *interleaved* operations, not parallel ones.
// The service layer (src/server) multiplexes many sessions onto the core
// by serializing statements behind one mutex.
//
// That discipline is easy to state and easy to break silently, so the
// core's entry points carry a guard that detects a second thread entering
// while another is inside and aborts with a diagnostic instead of
// corrupting state. Re-entry by the owning thread is permitted (public
// operations nest: an auto-commit Set runs Begin/Commit internally).
//
// Cost when the discipline holds: one relaxed load plus one CAS per
// outermost entry — noise next to the microseconds a database operation
// costs. The guard is active in all build types; a data race that only
// debug builds would catch is still a data race.

#ifndef CACTIS_COMMON_THREAD_GUARD_H_
#define CACTIS_COMMON_THREAD_GUARD_H_

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace cactis {

class ThreadSerialGuard {
 public:
  ThreadSerialGuard() = default;
  ThreadSerialGuard(const ThreadSerialGuard&) = delete;
  ThreadSerialGuard& operator=(const ThreadSerialGuard&) = delete;

  /// RAII entry token. Construct at the top of every guarded entry point.
  class Scope {
   public:
    Scope(ThreadSerialGuard& guard, const char* site) : guard_(guard) {
      guard_.Enter(site);
    }
    ~Scope() { guard_.Exit(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ThreadSerialGuard& guard_;
  };

 private:
  void Enter(const char* site) {
    const std::thread::id me = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;  // same-thread re-entry (nested public operation)
      return;
    }
    std::thread::id expected{};  // "no owner"
    if (!owner_.compare_exchange_strong(expected, me,
                                        std::memory_order_acquire)) {
      std::fprintf(stderr,
                   "cactis: concurrent unsynchronized access detected in "
                   "%s()\n  two threads entered a single-threaded component "
                   "at once; callers must serialize (see "
                   "server::Executor's statement mutex)\n",
                   site);
      std::abort();
    }
    depth_ = 1;
  }

  void Exit() {
    if (--depth_ == 0) {
      owner_.store(std::thread::id{}, std::memory_order_release);
    }
  }

  std::atomic<std::thread::id> owner_{};
  int depth_ = 0;  // touched only by the owning thread
};

/// Guards the enclosing scope against concurrent entry through `guard`.
#define CACTIS_SERIAL_GUARD(guard) \
  ::cactis::ThreadSerialGuard::Scope _cactis_serial_scope_((guard), __func__)

}  // namespace cactis

#endif  // CACTIS_COMMON_THREAD_GUARD_H_
