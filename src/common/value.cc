#include "common/value.h"

#include <algorithm>
#include <sstream>

namespace cactis {

namespace {

// FNV-1a, used for Value::Hash.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashU64(uint64_t x, uint64_t seed) {
  return HashBytes(&x, sizeof(x), seed);
}

}  // namespace

std::string_view ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "boolean";
    case ValueType::kInt:
      return "int";
    case ValueType::kReal:
      return "real";
    case ValueType::kString:
      return "string";
    case ValueType::kTime:
      return "time";
    case ValueType::kArray:
      return "array";
    case ValueType::kRecord:
      return "record";
  }
  return "unknown";
}

Result<ValueType> ValueTypeFromString(std::string_view name) {
  if (name == "null") return ValueType::kNull;
  if (name == "boolean" || name == "bool") return ValueType::kBool;
  if (name == "int" || name == "integer") return ValueType::kInt;
  if (name == "real" || name == "float" || name == "double") {
    return ValueType::kReal;
  }
  if (name == "string") return ValueType::kString;
  // "timef" and "time_val" appear in the paper's figures.
  if (name == "time" || name == "time_val" || name == "timef") {
    return ValueType::kTime;
  }
  if (name == "array") return ValueType::kArray;
  if (name == "record") return ValueType::kRecord;
  return Status::ParseError("unknown value type name: " + std::string(name));
}

bool Field::operator==(const Field& other) const {
  return name == other.name && *value == *other.value;
}

Value Value::Record(std::vector<std::pair<std::string, Value>> fields) {
  RecordRep rep;
  rep.reserve(fields.size());
  for (auto& [name, value] : fields) {
    rep.push_back(Field{std::move(name),
                        std::make_shared<Value>(std::move(value))});
  }
  return Value(Rep(std::move(rep)));
}

Result<bool> Value::AsBool() const {
  if (const bool* b = std::get_if<bool>(&rep_)) return *b;
  return Status::TypeMismatch("expected boolean, got " +
                              std::string(ValueTypeToString(type())));
}

Result<int64_t> Value::AsInt() const {
  if (const int64_t* i = std::get_if<int64_t>(&rep_)) return *i;
  return Status::TypeMismatch("expected int, got " +
                              std::string(ValueTypeToString(type())));
}

Result<double> Value::AsReal() const {
  if (const double* d = std::get_if<double>(&rep_)) return *d;
  if (const int64_t* i = std::get_if<int64_t>(&rep_)) {
    return static_cast<double>(*i);
  }
  return Status::TypeMismatch("expected real, got " +
                              std::string(ValueTypeToString(type())));
}

Result<std::string> Value::AsString() const {
  if (const std::string* s = std::get_if<std::string>(&rep_)) return *s;
  return Status::TypeMismatch("expected string, got " +
                              std::string(ValueTypeToString(type())));
}

Result<TimePoint> Value::AsTime() const {
  if (const TimePoint* t = std::get_if<TimePoint>(&rep_)) return *t;
  return Status::TypeMismatch("expected time, got " +
                              std::string(ValueTypeToString(type())));
}

Result<std::vector<Value>> Value::AsArray() const {
  if (const ArrayRep* a = std::get_if<ArrayRep>(&rep_)) return *a;
  return Status::TypeMismatch("expected array, got " +
                              std::string(ValueTypeToString(type())));
}

Result<Value> Value::GetField(std::string_view name) const {
  const RecordRep* r = std::get_if<RecordRep>(&rep_);
  if (r == nullptr) {
    return Status::TypeMismatch("expected record, got " +
                                std::string(ValueTypeToString(type())));
  }
  for (const Field& f : *r) {
    if (f.name == name) return *f.value;
  }
  return Status::NotFound("record has no field named " + std::string(name));
}

Result<std::vector<std::pair<std::string, Value>>> Value::Fields() const {
  const RecordRep* r = std::get_if<RecordRep>(&rep_);
  if (r == nullptr) {
    return Status::TypeMismatch("expected record, got " +
                                std::string(ValueTypeToString(type())));
  }
  std::vector<std::pair<std::string, Value>> out;
  out.reserve(r->size());
  for (const Field& f : *r) out.emplace_back(f.name, *f.value);
  return out;
}

Result<double> Value::ToNumber() const {
  switch (type()) {
    case ValueType::kBool:
      return std::get<bool>(rep_) ? 1.0 : 0.0;
    case ValueType::kInt:
      return static_cast<double>(std::get<int64_t>(rep_));
    case ValueType::kReal:
      return std::get<double>(rep_);
    case ValueType::kTime:
      return static_cast<double>(std::get<TimePoint>(rep_).ticks);
    default:
      return Status::TypeMismatch("value is not numeric: " + ToString());
  }
}

bool Value::operator==(const Value& other) const { return rep_ == other.rep_; }

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) return type() < other.type();
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return std::get<bool>(rep_) < std::get<bool>(other.rep_);
    case ValueType::kInt:
      return std::get<int64_t>(rep_) < std::get<int64_t>(other.rep_);
    case ValueType::kReal:
      return std::get<double>(rep_) < std::get<double>(other.rep_);
    case ValueType::kString:
      return std::get<std::string>(rep_) < std::get<std::string>(other.rep_);
    case ValueType::kTime:
      return std::get<TimePoint>(rep_) < std::get<TimePoint>(other.rep_);
    case ValueType::kArray: {
      const auto& a = std::get<ArrayRep>(rep_);
      const auto& b = std::get<ArrayRep>(other.rep_);
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    }
    case ValueType::kRecord: {
      const auto& a = std::get<RecordRep>(rep_);
      const auto& b = std::get<RecordRep>(other.rep_);
      return std::lexicographical_compare(
          a.begin(), a.end(), b.begin(), b.end(),
          [](const Field& x, const Field& y) {
            if (x.name != y.name) return x.name < y.name;
            return *x.value < *y.value;
          });
    }
  }
  return false;
}

uint64_t Value::Hash() const {
  uint64_t h = HashU64(static_cast<uint64_t>(type()), 0);
  switch (type()) {
    case ValueType::kNull:
      return h;
    case ValueType::kBool:
      return HashU64(std::get<bool>(rep_) ? 1 : 0, h);
    case ValueType::kInt:
      return HashU64(static_cast<uint64_t>(std::get<int64_t>(rep_)), h);
    case ValueType::kReal: {
      double d = std::get<double>(rep_);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashU64(bits, h);
    }
    case ValueType::kString: {
      const std::string& s = std::get<std::string>(rep_);
      return HashBytes(s.data(), s.size(), h);
    }
    case ValueType::kTime:
      return HashU64(static_cast<uint64_t>(std::get<TimePoint>(rep_).ticks),
                     h);
    case ValueType::kArray: {
      for (const Value& v : std::get<ArrayRep>(rep_)) h = HashU64(v.Hash(), h);
      return h;
    }
    case ValueType::kRecord: {
      for (const Field& f : std::get<RecordRep>(rep_)) {
        h = HashBytes(f.name.data(), f.name.size(), h);
        h = HashU64(f.value->Hash(), h);
      }
      return h;
    }
  }
  return h;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "null";
      break;
    case ValueType::kBool:
      os << (std::get<bool>(rep_) ? "true" : "false");
      break;
    case ValueType::kInt:
      os << std::get<int64_t>(rep_);
      break;
    case ValueType::kReal:
      os << std::get<double>(rep_);
      break;
    case ValueType::kString:
      os << '"' << std::get<std::string>(rep_) << '"';
      break;
    case ValueType::kTime: {
      TimePoint t = std::get<TimePoint>(rep_);
      if (t == kTimeInfinity) {
        os << "time(inf)";
      } else {
        os << "time(" << t.ticks << ")";
      }
      break;
    }
    case ValueType::kArray: {
      os << '[';
      bool first = true;
      for (const Value& v : std::get<ArrayRep>(rep_)) {
        if (!first) os << ", ";
        first = false;
        os << v.ToString();
      }
      os << ']';
      break;
    }
    case ValueType::kRecord: {
      os << '{';
      bool first = true;
      for (const Field& f : std::get<RecordRep>(rep_)) {
        if (!first) os << ", ";
        first = false;
        os << f.name << ": " << f.value->ToString();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

size_t Value::SerializedSize() const {
  size_t n = 1;  // type tag
  switch (type()) {
    case ValueType::kNull:
      return n;
    case ValueType::kBool:
      return n + 1;
    case ValueType::kInt:
    case ValueType::kReal:
    case ValueType::kTime:
      return n + 8;
    case ValueType::kString:
      return n + 4 + std::get<std::string>(rep_).size();
    case ValueType::kArray: {
      n += 4;
      for (const Value& v : std::get<ArrayRep>(rep_)) n += v.SerializedSize();
      return n;
    }
    case ValueType::kRecord: {
      n += 4;
      for (const Field& f : std::get<RecordRep>(rep_)) {
        n += 4 + f.name.size() + f.value->SerializedSize();
      }
      return n;
    }
  }
  return n;
}

}  // namespace cactis
