// Clocks.
//
// Cactis uses two notions of time:
//  * LogicalClock — monotone counter used for transaction timestamps
//    (timestamp-ordering concurrency control) and version stamps.
//  * SimClock — the simulated wall clock of the software environment (file
//    modification times, milestone dates). Deterministic: it only advances
//    when told to, which keeps tests and benchmarks reproducible.

#ifndef CACTIS_COMMON_CLOCK_H_
#define CACTIS_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "common/value.h"

namespace cactis {

/// Monotone logical clock; Tick() is strictly increasing from 1.
/// Atomic so concurrent read-only statements can stamp auto-commit
/// reads without holding the exclusive statement lock.
class LogicalClock {
 public:
  uint64_t Tick() { return now_.fetch_add(1, std::memory_order_relaxed) + 1; }
  uint64_t now() const { return now_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> now_{0};
};

/// Deterministic simulated wall clock for the environment layer.
class SimClock {
 public:
  explicit SimClock(int64_t start = 1) : now_{start} {}

  TimePoint now() const { return now_; }

  /// Advances time by `delta` ticks and returns the new now.
  TimePoint Advance(int64_t delta = 1) {
    now_.ticks += delta;
    return now_;
  }

 private:
  TimePoint now_;
};

}  // namespace cactis

#endif  // CACTIS_COMMON_CLOCK_H_
