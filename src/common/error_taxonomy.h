// Shared fault taxonomy: every storage-facing layer (buffer pool, WAL,
// executor) classifies a failed Status the same way, so retry and
// degradation decisions are consistent across the stack.
//
//   transient  — the operation may succeed if simply retried
//                (kUnavailable: injected transient disk error, busy).
//   permanent  — the device has fail-stopped or the operation can never
//                succeed (kIoError: crashed disk, lost RPC budget).
//   corruption — the data at rest is wrong (kCorruption: checksum
//                mismatch, torn frame). Retrying re-reads the same bad
//                bytes; the only honest responses are salvage or refusal.
//
// Layers retry transient faults with common/backoff.h, surface permanent
// faults upward (the executor degrades to read-only), and never retry
// corruption.

#ifndef CACTIS_COMMON_ERROR_TAXONOMY_H_
#define CACTIS_COMMON_ERROR_TAXONOMY_H_

#include "common/status.h"

namespace cactis {

enum class FaultClass {
  kNone,        ///< not a fault (OK, or a logical error like NotFound)
  kTransient,   ///< retriable: back off and try again
  kPermanent,   ///< fail-stop: stop trying, degrade or surface
  kCorruption,  ///< bad bytes at rest: salvage or refuse, never retry
};

inline FaultClass ClassifyFault(const Status& s) {
  switch (s.code()) {
    case StatusCode::kUnavailable:
      return FaultClass::kTransient;
    case StatusCode::kCorruption:
      return FaultClass::kCorruption;
    case StatusCode::kIoError:
      return FaultClass::kPermanent;
    default:
      return FaultClass::kNone;
  }
}

inline bool IsTransientFault(const Status& s) {
  return ClassifyFault(s) == FaultClass::kTransient;
}

/// True for fault classes that mean the storage stack cannot currently
/// accept mutations (the executor's degrade trigger): a permanent
/// device failure, or a transient fault that survived its retry budget.
inline bool IsStorageFault(const Status& s) {
  FaultClass c = ClassifyFault(s);
  return c == FaultClass::kTransient || c == FaultClass::kPermanent;
}

}  // namespace cactis

#endif  // CACTIS_COMMON_ERROR_TAXONOMY_H_
