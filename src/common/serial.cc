#include "common/serial.h"

namespace cactis {

void ValueCodec::Encode(const Value& v, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(*v.AsBool());
      break;
    case ValueType::kInt:
      w->PutI64(*v.AsInt());
      break;
    case ValueType::kReal:
      w->PutDouble(*v.AsReal());
      break;
    case ValueType::kString:
      w->PutString(*v.AsString());
      break;
    case ValueType::kTime:
      w->PutI64(v.AsTime()->ticks);
      break;
    case ValueType::kArray: {
      auto elems = *v.AsArray();
      w->PutU32(static_cast<uint32_t>(elems.size()));
      for (const Value& e : elems) Encode(e, w);
      break;
    }
    case ValueType::kRecord: {
      auto fields = *v.Fields();
      w->PutU32(static_cast<uint32_t>(fields.size()));
      for (const auto& [name, value] : fields) {
        w->PutString(name);
        Encode(value, w);
      }
      break;
    }
  }
}

Result<Value> ValueCodec::Decode(BinaryReader* r) {
  CACTIS_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  if (tag > static_cast<uint8_t>(ValueType::kRecord)) {
    return Status::IoError("bad value type tag in serialized data");
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      CACTIS_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case ValueType::kInt: {
      CACTIS_ASSIGN_OR_RETURN(int64_t i, r->GetI64());
      return Value::Int(i);
    }
    case ValueType::kReal: {
      CACTIS_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Real(d);
    }
    case ValueType::kString: {
      CACTIS_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
    case ValueType::kTime: {
      CACTIS_ASSIGN_OR_RETURN(int64_t t, r->GetI64());
      return Value::Time(t);
    }
    case ValueType::kArray: {
      CACTIS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      std::vector<Value> elems;
      elems.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        CACTIS_ASSIGN_OR_RETURN(Value e, Decode(r));
        elems.push_back(std::move(e));
      }
      return Value::Array(std::move(elems));
    }
    case ValueType::kRecord: {
      CACTIS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      std::vector<std::pair<std::string, Value>> fields;
      fields.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        CACTIS_ASSIGN_OR_RETURN(std::string name, r->GetString());
        CACTIS_ASSIGN_OR_RETURN(Value v, Decode(r));
        fields.emplace_back(std::move(name), std::move(v));
      }
      return Value::Record(std::move(fields));
    }
  }
  return Status::IoError("unreachable value tag");
}

}  // namespace cactis
