// Result<T>: a value-or-Status holder, the return type of every fallible
// Cactis operation that produces a value.

#ifndef CACTIS_COMMON_RESULT_H_
#define CACTIS_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace cactis {

/// Holds either a T or a non-OK Status. Construction from a T yields an OK
/// result; construction from a Status requires a non-OK status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) status_ = Status::Internal("OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not OK.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace cactis

/// Evaluates `rexpr` (a Result<T>), propagating a non-OK status; otherwise
/// binds the contained value to `lhs`.
#define CACTIS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  CACTIS_ASSIGN_OR_RETURN_IMPL_(                                 \
      CACTIS_CONCAT_(_cactis_result, __LINE__), lhs, rexpr)

#define CACTIS_CONCAT_INNER_(a, b) a##b
#define CACTIS_CONCAT_(a, b) CACTIS_CONCAT_INNER_(a, b)

#define CACTIS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#endif  // CACTIS_COMMON_RESULT_H_
