// Bounded exponential backoff with deterministic jitter, shared by every
// layer that retries transient faults (buffer pool reads/writes, WAL
// flushes, distributed fetch RPCs).
//
// The policy is a plain value so call sites can embed per-layer defaults
// and tests can shrink the budget to microseconds. Jitter uses the
// repo's deterministic Rng (seeded per Backoff instance), so a given
// seed produces the same delay sequence on every platform — retry tests
// stay exactly reproducible.
//
// Sleeping is injectable: real call sites pass nothing and get
// std::this_thread::sleep_for; simulated layers (the in-process network)
// pass a recorder so backoff time is *counted* without being *spent*.

#ifndef CACTIS_COMMON_BACKOFF_H_
#define CACTIS_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>

#include "common/rng.h"

namespace cactis {

/// Retry budget and delay shape for one class of transient fault.
/// Delay before retry k (1-based) is
///   min(max_us, base_us * multiplier^(k-1)) * U[0.5, 1.0)
/// — "decorrelated-ish" jitter: storms of independent retriers spread
/// out instead of thundering in lockstep.
struct BackoffPolicy {
  /// Total attempts allowed (first try + retries). 1 disables retry.
  int max_attempts = 4;
  /// Delay before the first retry, microseconds.
  uint64_t base_us = 50;
  /// Ceiling on any single delay, microseconds.
  uint64_t max_us = 2000;
  /// Exponential growth factor between consecutive retries.
  double multiplier = 2.0;
  /// Seed for the jitter stream (deterministic per instance).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// One retry loop's state. Usage:
///
///   Backoff backoff(policy);
///   for (;;) {
///     Status s = TryTheThing();
///     if (!IsTransientFault(s) || !backoff.ShouldRetry()) return s;
///   }
///
/// ShouldRetry() returns false once the attempt budget is spent;
/// otherwise it sleeps the next jittered delay and returns true.
class Backoff {
 public:
  using SleepFn = std::function<void(uint64_t micros)>;

  explicit Backoff(const BackoffPolicy& policy, SleepFn sleep = nullptr)
      : policy_(policy), rng_(policy.jitter_seed), sleep_(std::move(sleep)) {}

  /// Consumes one retry from the budget. False means give up (the
  /// budget is exhausted); true means the delay has been slept and the
  /// caller should try again.
  bool ShouldRetry() {
    if (retries_ + 1 >= policy_.max_attempts) return false;
    uint64_t delay = NextDelayUs();
    slept_us_ += delay;
    if (delay > 0) {
      if (sleep_) {
        sleep_(delay);
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(delay));
      }
    }
    ++retries_;
    return true;
  }

  /// Retries consumed so far.
  int retries() const { return retries_; }

  /// Total backoff delay accumulated (whether really slept or only
  /// counted by an injected recorder), microseconds.
  uint64_t slept_us() const { return slept_us_; }

 private:
  uint64_t NextDelayUs() {
    double raw = static_cast<double>(policy_.base_us);
    for (int i = 0; i < retries_; ++i) raw *= policy_.multiplier;
    raw = std::min(raw, static_cast<double>(policy_.max_us));
    // Jitter into [0.5, 1.0) of the exponential target.
    double jittered = raw * (0.5 + 0.5 * rng_.UniformReal());
    return static_cast<uint64_t>(jittered);
  }

  BackoffPolicy policy_;
  Rng rng_;
  SleepFn sleep_;
  int retries_ = 0;
  uint64_t slept_us_ = 0;
};

}  // namespace cactis

#endif  // CACTIS_COMMON_BACKOFF_H_
