// Supplemental id kind (kept separate to avoid churning ids.h users):
// relationship *types* connect a plug port to a socket port; ports reference
// their relationship type by RelTypeId.

#ifndef CACTIS_COMMON_IDS_RELTYPE_H_
#define CACTIS_COMMON_IDS_RELTYPE_H_

#include "common/ids.h"

namespace cactis {

using RelTypeId = internal::TaggedId<struct RelTypeIdTag>;

}  // namespace cactis

#endif  // CACTIS_COMMON_IDS_RELTYPE_H_
