// Binary serialisation primitives used by the record store, the delta log,
// and the version store. Little-endian, length-prefixed, no alignment
// requirements.

#ifndef CACTIS_COMMON_SERIAL_H_
#define CACTIS_COMMON_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace cactis {

/// Appends fixed-width and length-prefixed fields to a byte buffer.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }

  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }

  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }

  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// 32-bit length prefix followed by the bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutRaw(s.data(), s.size());
  }

  const std::string& data() const { return buf_; }
  std::string Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.append(c, n);
  }

  std::string buf_;
};

/// Reads fields written by BinaryWriter; every getter checks bounds and
/// returns IoError on truncation, so corrupt blocks fail loudly.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    uint8_t v;
    CACTIS_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint32_t> GetU32() {
    uint32_t v;
    CACTIS_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<uint64_t> GetU64() {
    uint64_t v;
    CACTIS_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<int64_t> GetI64() {
    int64_t v;
    CACTIS_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<double> GetDouble() {
    double v;
    CACTIS_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v;
  }
  Result<bool> GetBool() {
    uint8_t v;
    CACTIS_RETURN_IF_ERROR(GetRaw(&v, sizeof(v)));
    return v != 0;
  }
  Result<std::string> GetString() {
    CACTIS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (pos_ + len > data_.size()) {
      return Status::IoError("truncated string in serialized data");
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }

 private:
  Status GetRaw(void* p, size_t n) {
    if (pos_ + n > data_.size()) {
      return Status::IoError("truncated field in serialized data");
    }
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// Serialises Values (all eight runtime types, recursively).
class ValueCodec {
 public:
  static void Encode(const Value& v, BinaryWriter* w);
  static Result<Value> Decode(BinaryReader* r);
};

}  // namespace cactis

#endif  // CACTIS_COMMON_SERIAL_H_
