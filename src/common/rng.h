// Deterministic pseudo-random number generation for workload generators and
// property tests. All benchmarks and tests seed explicitly so results are
// reproducible run to run.

#ifndef CACTIS_COMMON_RNG_H_
#define CACTIS_COMMON_RNG_H_

#include <cstdint>

namespace cactis {

/// xorshift128+ generator; small, fast, deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, so nearby seeds give unrelated streams.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Zipfian-ish skewed pick in [0, n): rank r chosen with probability
  /// proportional to 1/(r+1)^theta. Approximate (rejection-free) but
  /// adequate for locality experiments.
  uint64_t Skewed(uint64_t n, double theta = 0.99) {
    // Inverse-CDF approximation for the Zipf distribution.
    double u = UniformReal();
    double z = 1.0 - theta;
    double x = (z == 0.0) ? u : (1.0 - u);
    // Map u through a power law; clamp to the valid range.
    double r = static_cast<double>(n) * (1.0 - FastPow(x, 1.0 / (theta + 1.0)));
    auto idx = static_cast<uint64_t>(r);
    return idx >= n ? n - 1 : idx;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static double FastPow(double base, double exp) {
    // Good enough for skew generation; avoids <cmath> in a hot header.
    if (base <= 0.0) return 0.0;
    return __builtin_pow(base, exp);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace cactis

#endif  // CACTIS_COMMON_RNG_H_
