#include "env/milestone.h"

namespace cactis::env {

const char* MilestoneManager::SchemaSource() {
  // Figure 1 of the paper. A milestone transmits its expected completion
  // time to the things that consist of it (i.e. depend on it) as
  // `exp_time`.
  return R"(
relationship milestone_dep;

object class milestone is
  relationships
    depends_on  : milestone_dep multi socket;
    consists_of : milestone_dep multi plug;
  attributes
    sched_compl : time;   -- originally scheduled completion time
    local_work  : time;   -- time to complete milestone alone
    exp_compl   : time;   -- expected completion time
    late        : boolean; -- is this milestone expected late
  rules
    exp_compl =
      begin
        latest : time;
        -- sum local work and latest of things depended on
        latest = time0;
        for each dep related to depends_on do
          latest = later_of(latest, dep.exp_time);
        end;
        return latest + local_work;
      end;
    late = later_than(exp_compl, sched_compl);
    consists_of.exp_time = exp_compl;
end object;
)";
}

Result<std::unique_ptr<MilestoneManager>> MilestoneManager::Attach(
    core::Database* db) {
  if (db->catalog()->FindClass("milestone") == nullptr) {
    CACTIS_RETURN_IF_ERROR(db->LoadSchema(SchemaSource()));
  }
  return std::unique_ptr<MilestoneManager>(new MilestoneManager(db));
}

Result<InstanceId> MilestoneManager::AddMilestone(const std::string& name,
                                                  TimePoint sched_compl,
                                                  int64_t local_work) {
  if (milestones_.contains(name)) {
    return Status::AlreadyExists("milestone '" + name + "' already exists");
  }
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, db_->Create("milestone"));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "sched_compl", Value::Time(sched_compl)));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "local_work", Value::Time(local_work)));
  milestones_[name] = id;
  return id;
}

Status MilestoneManager::AddDependency(const std::string& name,
                                       const std::string& prereq) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId a, IdOf(name));
  CACTIS_ASSIGN_OR_RETURN(InstanceId b, IdOf(prereq));
  return db_->Connect(a, "depends_on", b, "consists_of").status();
}

Result<TimePoint> MilestoneManager::ExpectedCompletion(
    const std::string& name) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  CACTIS_ASSIGN_OR_RETURN(Value v, db_->Get(id, "exp_compl"));
  return v.AsTime();
}

Result<bool> MilestoneManager::IsLate(const std::string& name) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  CACTIS_ASSIGN_OR_RETURN(Value v, db_->Get(id, "late"));
  return v.AsBool();
}

Status MilestoneManager::SetLocalWork(const std::string& name,
                                      int64_t local_work) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  return db_->Set(id, "local_work", Value::Time(local_work));
}

Status MilestoneManager::SetScheduledCompletion(const std::string& name,
                                                TimePoint t) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  return db_->Set(id, "sched_compl", Value::Time(t));
}

Result<InstanceId> MilestoneManager::IdOf(const std::string& name) const {
  auto it = milestones_.find(name);
  if (it == milestones_.end()) {
    return Status::NotFound("unknown milestone '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> MilestoneManager::Names() const {
  std::vector<std::string> out;
  out.reserve(milestones_.size());
  for (const auto& [name, id] : milestones_) {
    (void)id;
    out.push_back(name);
  }
  return out;
}

}  // namespace cactis::env
