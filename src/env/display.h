// Display attributes: the user-interface example closing paper section 4.
//
// "Cactis attributed graphs can be used to manage the user interface ...
// constructing and composing special program fragments that, when
// combined, are able to redraw a graphical display screen. Attribute
// evaluation rules are used to create, combine and control these program
// fragments ... This allows the user interface to automatically reflect
// the state of the underlying data regardless of how it is modified."
// (The authors' Higgens UIMS.)
//
// Here the "program fragments" are rendered text blocks: every widget
// derives its own `render` string and exports it to its parent as
// `fragment`; a container composes its children's fragments. Changing any
// widget's data re-renders exactly the path from that widget to the root
// — the same incremental machinery as everything else.

#ifndef CACTIS_ENV_DISPLAY_H_
#define CACTIS_ENV_DISPLAY_H_

#include <map>
#include <string>
#include <vector>

#include "core/database.h"

namespace cactis::env {

class DisplayManager {
 public:
  static Result<std::unique_ptr<DisplayManager>> Attach(core::Database* db);

  /// Creates a widget. Kinds: "label" (shows text), "meter" (text plus a
  /// bar of `level` ticks), "box" (titled container composing children).
  Result<InstanceId> AddWidget(const std::string& name,
                               const std::string& kind,
                               const std::string& text,
                               const std::string& parent = "");

  Status SetText(const std::string& name, const std::string& text);
  Status SetLevel(const std::string& name, int64_t level);

  /// The rendered screen for the widget subtree rooted at `name`.
  Result<std::string> Render(const std::string& name);

  Result<InstanceId> IdOf(const std::string& name) const;

  static const char* SchemaSource();

 private:
  explicit DisplayManager(core::Database* db) : db_(db) {}

  core::Database* db_;
  std::map<std::string, InstanceId> widgets_;
};

}  // namespace cactis::env

#endif  // CACTIS_ENV_DISPLAY_H_
