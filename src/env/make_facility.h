// MakeFacility: the make capability of paper section 4 (Figures 2-4),
// "which has been completed".
//
// Every file that participates in a build is represented by a `make_rule`
// object whose `output` relationship feeds the things that depend on it
// and whose `depends_on` relationship names the things it depends on. Two
// values are transmitted across `output`:
//
//   mod_time   (Figure 3) — the youngest modification time among this
//              object's file and everything it depends on;
//   up_to_date (Figure 4) — demanding it recursively brings all
//              dependencies up to date (executing `system_command`s in
//              dependency order) and then this object itself.
//
// Model note: the paper's Cactis needed an auxiliary connector class for
// the many-to-many output/depends_on shape; this library's relationship
// types connect multi-plugs to multi-sockets directly, so `make_result`
// edges simply join `output` ports to `depends_on` ports.
//
// External invalidation: file modification times live outside the
// database, so each make_rule carries an intrinsic `file_stamp` mirror of
// its file's mtime. SyncStamps() folds VFS changes into the database
// (changed stamps mark the derived make values out of date); the rules
// reference `file_stamp` (via `void(file_stamp)`) exactly so that this
// dependency exists, while reading true times through `file_mod_time`.

#ifndef CACTIS_ENV_MAKE_FACILITY_H_
#define CACTIS_ENV_MAKE_FACILITY_H_

#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "env/command_runner.h"
#include "env/vfs.h"

namespace cactis::env {

class MakeFacility {
 public:
  /// Loads the make_rule schema into `db` and registers the
  /// `file_mod_time` / `system_command` builtins against `vfs`/`runner`.
  /// All three must outlive the facility.
  static Result<std::unique_ptr<MakeFacility>> Attach(core::Database* db,
                                                      VirtualFileSystem* vfs,
                                                      CommandRunner* runner);

  /// Defines a build rule: `file` is produced by `command` from `inputs`
  /// (each input must already have a rule; source files use AddSource).
  /// Registers a command effect that writes `file` into the VFS.
  Result<InstanceId> AddRule(const std::string& file,
                             const std::string& command,
                             const std::vector<std::string>& inputs);

  /// Declares a source file (no command; must exist in the VFS or be
  /// written later).
  Result<InstanceId> AddSource(const std::string& file);

  /// Folds external file changes into the database: for every rule whose
  /// file's VFS mtime differs from its stored `file_stamp`, updates the
  /// stamp (marking dependents out of date).
  Status SyncStamps();

  /// Brings `file` (and transitively everything it depends on) up to
  /// date, executing the necessary commands in dependency order. Returns
  /// the number of commands executed.
  Result<size_t> Build(const std::string& file);

  /// The youngest modification time among `file` and its dependencies.
  Result<TimePoint> ModTime(const std::string& file);

  Result<InstanceId> RuleFor(const std::string& file) const;

  core::Database* db() { return db_; }
  VirtualFileSystem* vfs() { return vfs_; }
  CommandRunner* runner() { return runner_; }

  /// The data-language source of the make_rule class (Figures 2-4).
  static const char* SchemaSource();

 private:
  MakeFacility(core::Database* db, VirtualFileSystem* vfs,
               CommandRunner* runner)
      : db_(db), vfs_(vfs), runner_(runner) {}

  core::Database* db_;
  VirtualFileSystem* vfs_;
  CommandRunner* runner_;
  std::map<std::string, InstanceId> rules_;
};

}  // namespace cactis::env

#endif  // CACTIS_ENV_MAKE_FACILITY_H_
