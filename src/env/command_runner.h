// CommandRunner: the `system_command` substrate of Figure 4.
//
// Commands are strings (like shell lines). Running one appends it to the
// execution log (tests assert on order and count) and invokes any
// registered effect — the make facility registers effects that write the
// command's output file into the virtual file system, which is what the
// real `cc -o target deps...` would have done.

#ifndef CACTIS_ENV_COMMAND_RUNNER_H_
#define CACTIS_ENV_COMMAND_RUNNER_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cactis::env {

class CommandRunner {
 public:
  using Effect = std::function<Status(const std::string& command)>;

  /// Registers the effect invoked when exactly `command` runs.
  void RegisterEffect(const std::string& command, Effect effect) {
    effects_[command] = std::move(effect);
  }

  /// Sets a fallback effect for commands without a specific registration.
  void SetDefaultEffect(Effect effect) { default_effect_ = std::move(effect); }

  /// Executes a command: logs it and runs its effect.
  Status Run(const std::string& command);

  const std::vector<std::string>& executions() const { return executions_; }
  size_t execution_count() const { return executions_.size(); }
  void ClearLog() { executions_.clear(); }

 private:
  std::map<std::string, Effect> effects_;
  Effect default_effect_;
  std::vector<std::string> executions_;
};

}  // namespace cactis::env

#endif  // CACTIS_ENV_COMMAND_RUNNER_H_
