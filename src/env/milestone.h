// MilestoneManager: the milestone manager of paper section 4 (Figure 1).
//
// A milestone has an originally scheduled completion time, the local work
// remaining once its prerequisites finish, a derived expected completion
// time (the latest expected time among everything it depends on plus the
// local work), and a derived `late` flag. Changing one milestone's
// schedule "may have effects that ripple throughout the expected
// completion dates for other milestones in the system" — and Cactis keeps
// all of it consistent incrementally.

#ifndef CACTIS_ENV_MILESTONE_H_
#define CACTIS_ENV_MILESTONE_H_

#include <map>
#include <string>
#include <vector>

#include "core/database.h"

namespace cactis::env {

class MilestoneManager {
 public:
  /// Loads the milestone schema (Figure 1) into `db`.
  static Result<std::unique_ptr<MilestoneManager>> Attach(core::Database* db);

  /// Creates a milestone. `sched_compl` is the originally scheduled
  /// completion time, `local_work` the time to complete it alone.
  Result<InstanceId> AddMilestone(const std::string& name,
                                  TimePoint sched_compl, int64_t local_work);

  /// Declares that `name` depends on (cannot finish before) `prereq`.
  Status AddDependency(const std::string& name, const std::string& prereq);

  /// Derived queries.
  Result<TimePoint> ExpectedCompletion(const std::string& name);
  Result<bool> IsLate(const std::string& name);

  /// Updates.
  Status SetLocalWork(const std::string& name, int64_t local_work);
  Status SetScheduledCompletion(const std::string& name, TimePoint t);

  Result<InstanceId> IdOf(const std::string& name) const;
  std::vector<std::string> Names() const;

  core::Database* db() { return db_; }

  /// The data-language source of the milestone class (Figure 1).
  static const char* SchemaSource();

 private:
  explicit MilestoneManager(core::Database* db) : db_(db) {}

  core::Database* db_;
  std::map<std::string, InstanceId> milestones_;
};

}  // namespace cactis::env

#endif  // CACTIS_ENV_MILESTONE_H_
