#include "env/command_runner.h"

namespace cactis::env {

Status CommandRunner::Run(const std::string& command) {
  executions_.push_back(command);
  auto it = effects_.find(command);
  if (it != effects_.end()) return it->second(command);
  if (default_effect_) return default_effect_(command);
  return Status::OK();
}

}  // namespace cactis::env
