#include "env/make_facility.h"

namespace cactis::env {

const char* MakeFacility::SchemaSource() {
  // Figures 2, 3 and 4 of the paper, in the data language. `void(...)`
  // is the paper's VOID; `void(file_stamp)` additionally ties the rules to
  // the intrinsic mtime mirror so external file changes (folded in by
  // SyncStamps) invalidate them.
  return R"(
relationship make_result;

object class make_rule is
  relationships
    output     : make_result multi plug;
    depends_on : make_result multi socket;
  attributes
    file_name    : string;   -- path name of file to create
    make_command : string;   -- text of command to create the file
    file_stamp   : time;     -- mirror of the file's mtime (invalidation)
  rules
    -- Figure 3: the youngest of this file and the things it depends on.
    output.mod_time =
      begin
        youngest : time;
        void(file_stamp);
        youngest = file_mod_time(file_name);
        for each dep related to depends_on do
          youngest = later_of(youngest, dep.mod_time);
        end;
        return youngest;
      end;
    -- Figure 4: make sure everything depended on is up to date, then
    -- recreate this object if necessary. (One refinement over the figure:
    -- a target that does not exist yet must be recreated — the paper's
    -- "distant future" convention for missing files covers dependencies,
    -- not the target itself.)
    output.up_to_date =
      begin
        need_recreate : boolean;
        this_time : time;
        void(file_stamp);
        need_recreate = false;
        if file_exists(file_name) then
          this_time = file_mod_time(file_name);
        else
          need_recreate = true;
          this_time = time0;
        end;
        for each dep related to depends_on do
          void(dep.up_to_date);
          if later_than(dep.mod_time, this_time) then
            need_recreate = true;
          end;
        end;
        if need_recreate and len(make_command) > 0 then
          system_command(make_command);
        end;
        return 1;
      end;
end object;
)";
}

Result<std::unique_ptr<MakeFacility>> MakeFacility::Attach(
    core::Database* db, VirtualFileSystem* vfs, CommandRunner* runner) {
  if (db->catalog()->FindClass("make_rule") == nullptr) {
    CACTIS_RETURN_IF_ERROR(db->LoadSchema(SchemaSource()));
  }
  db->builtins()->Register(
      "file_mod_time", [vfs](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("file_mod_time() expects a path");
        }
        CACTIS_ASSIGN_OR_RETURN(std::string path, args[0].AsString());
        return Value::Time(vfs->MTime(path));
      });
  db->builtins()->Register(
      "file_exists", [vfs](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("file_exists() expects a path");
        }
        CACTIS_ASSIGN_OR_RETURN(std::string path, args[0].AsString());
        return Value::Bool(vfs->Exists(path));
      });
  db->builtins()->Register(
      "system_command",
      [runner](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() != 1) {
          return Status::InvalidArgument("system_command() expects a string");
        }
        CACTIS_ASSIGN_OR_RETURN(std::string cmd, args[0].AsString());
        CACTIS_RETURN_IF_ERROR(runner->Run(cmd));
        return Value::Int(0);
      });
  return std::unique_ptr<MakeFacility>(new MakeFacility(db, vfs, runner));
}

Result<InstanceId> MakeFacility::AddSource(const std::string& file) {
  if (rules_.contains(file)) {
    return Status::AlreadyExists("a rule for '" + file + "' already exists");
  }
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, db_->Create("make_rule"));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "file_name", Value::String(file)));
  CACTIS_RETURN_IF_ERROR(
      db_->Set(id, "file_stamp", Value::Time(vfs_->MTime(file))));
  rules_[file] = id;
  return id;
}

Result<InstanceId> MakeFacility::AddRule(
    const std::string& file, const std::string& command,
    const std::vector<std::string>& inputs) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, AddSource(file));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "make_command", Value::String(command)));
  for (const std::string& input : inputs) {
    auto in = rules_.find(input);
    if (in == rules_.end()) {
      return Status::NotFound("no rule for input '" + input +
                              "'; add sources before rules that use them");
    }
    CACTIS_RETURN_IF_ERROR(
        db_->Connect(id, "depends_on", in->second, "output").status());
  }
  // Building this rule writes its output file.
  VirtualFileSystem* vfs = vfs_;
  std::string out_file = file;
  runner_->RegisterEffect(command, [vfs, out_file](const std::string&) {
    vfs->Write(out_file, "built: " + out_file);
    return Status::OK();
  });
  return id;
}

Status MakeFacility::SyncStamps() {
  for (const auto& [file, id] : rules_) {
    TimePoint real = vfs_->MTime(file);
    CACTIS_ASSIGN_OR_RETURN(Value stored, db_->Peek(id, "file_stamp"));
    CACTIS_ASSIGN_OR_RETURN(TimePoint stamp, stored.AsTime());
    if (stamp != real) {
      CACTIS_RETURN_IF_ERROR(db_->Set(id, "file_stamp", Value::Time(real)));
    }
  }
  return Status::OK();
}

Result<size_t> MakeFacility::Build(const std::string& file) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, RuleFor(file));
  size_t total = 0;
  // Commands run during a pass change file times behind the cached
  // attribute values; iterate to the (quickly reached) fixpoint. Each
  // out-of-date module's command runs exactly once overall.
  for (int iter = 0; iter < 64; ++iter) {
    CACTIS_RETURN_IF_ERROR(SyncStamps());
    size_t before = runner_->execution_count();
    CACTIS_RETURN_IF_ERROR(db_->Peek(id, "output.up_to_date").status());
    size_t executed = runner_->execution_count() - before;
    total += executed;
    if (executed == 0) break;
  }
  CACTIS_RETURN_IF_ERROR(SyncStamps());
  return total;
}

Result<TimePoint> MakeFacility::ModTime(const std::string& file) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, RuleFor(file));
  CACTIS_RETURN_IF_ERROR(SyncStamps());
  CACTIS_ASSIGN_OR_RETURN(Value v, db_->Peek(id, "output.mod_time"));
  return v.AsTime();
}

Result<InstanceId> MakeFacility::RuleFor(const std::string& file) const {
  auto it = rules_.find(file);
  if (it == rules_.end()) {
    return Status::NotFound("no make rule for '" + file + "'");
  }
  return it->second;
}

}  // namespace cactis::env
