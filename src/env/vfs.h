// VirtualFileSystem: the deterministic stand-in for the Unix file system
// under the make facility (paper section 4, Figures 2-4).
//
// Substitution note (DESIGN.md): the paper's `file_mod_time` consulted
// real files and `system_command` shelled out. We reproduce both against
// an in-process file store driven by a SimClock, which keeps the
// experiments deterministic and assertable while exercising the same rule
// logic. Per the paper, the modification time of a missing file is "a
// time in the distant future".

#ifndef CACTIS_ENV_VFS_H_
#define CACTIS_ENV_VFS_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/value.h"

namespace cactis::env {

class VirtualFileSystem {
 public:
  explicit VirtualFileSystem(SimClock* clock) : clock_(clock) {}

  /// Creates or overwrites a file; its mtime becomes "now" (the clock is
  /// advanced first so every write has a distinct time).
  void Write(const std::string& path, std::string content);

  /// Updates only the mtime (like touch(1)).
  void Touch(const std::string& path);

  bool Exists(const std::string& path) const {
    return files_.contains(path);
  }

  /// Modification time; kTimeInfinity when the file does not exist.
  TimePoint MTime(const std::string& path) const;

  Result<std::string> ReadFile(const std::string& path) const;

  Status Remove(const std::string& path);

  std::vector<std::string> List() const;
  SimClock* clock() { return clock_; }

 private:
  struct FileEntry {
    TimePoint mtime;
    std::string content;
  };

  SimClock* clock_;
  std::map<std::string, FileEntry> files_;
};

}  // namespace cactis::env

#endif  // CACTIS_ENV_VFS_H_
