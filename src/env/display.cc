#include "env/display.h"

namespace cactis::env {

const char* DisplayManager::SchemaSource() {
  return R"(
relationship contains_widget;

object class widget is
  relationships
    parent   : contains_widget multi plug;
    children : contains_widget multi socket;
  attributes
    kind  : string;   -- "label" | "meter" | "box"
    text  : string;
    level : int;      -- meter fill
    render : string;  -- this widget's redraw fragment
  rules
    render =
      begin
        acc : string;
        acc = text;
        if kind = "meter" then
          acc = text + " [" + repeat("#", level) + repeat(".", 10 - level)
                + "]";
        end;
        if kind = "box" then
          acc = "== " + text + " ==";
        end;
        for each c related to children do
          acc = acc + "\n" + indent(c.fragment, 2);
        end;
        return acc;
      end;
    parent.fragment = render;
end object;
)";
}

Result<std::unique_ptr<DisplayManager>> DisplayManager::Attach(
    core::Database* db) {
  if (db->catalog()->FindClass("widget") == nullptr) {
    CACTIS_RETURN_IF_ERROR(db->LoadSchema(SchemaSource()));
  }
  return std::unique_ptr<DisplayManager>(new DisplayManager(db));
}

Result<InstanceId> DisplayManager::AddWidget(const std::string& name,
                                             const std::string& kind,
                                             const std::string& text,
                                             const std::string& parent) {
  if (widgets_.contains(name)) {
    return Status::AlreadyExists("widget '" + name + "' already exists");
  }
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, db_->Create("widget"));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "kind", Value::String(kind)));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "text", Value::String(text)));
  if (!parent.empty()) {
    CACTIS_ASSIGN_OR_RETURN(InstanceId p, IdOf(parent));
    CACTIS_RETURN_IF_ERROR(
        db_->Connect(p, "children", id, "parent").status());
  }
  widgets_[name] = id;
  return id;
}

Status DisplayManager::SetText(const std::string& name,
                               const std::string& text) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  return db_->Set(id, "text", Value::String(text));
}

Status DisplayManager::SetLevel(const std::string& name, int64_t level) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  return db_->Set(id, "level", Value::Int(level));
}

Result<std::string> DisplayManager::Render(const std::string& name) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(name));
  CACTIS_ASSIGN_OR_RETURN(Value v, db_->Peek(id, "render"));
  return v.AsString();
}

Result<InstanceId> DisplayManager::IdOf(const std::string& name) const {
  auto it = widgets_.find(name);
  if (it == widgets_.end()) {
    return Status::NotFound("unknown widget '" + name + "'");
  }
  return it->second;
}

}  // namespace cactis::env
