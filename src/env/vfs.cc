#include "env/vfs.h"

namespace cactis::env {

void VirtualFileSystem::Write(const std::string& path, std::string content) {
  TimePoint now = clock_->Advance();
  files_[path] = FileEntry{now, std::move(content)};
}

void VirtualFileSystem::Touch(const std::string& path) {
  TimePoint now = clock_->Advance();
  files_[path].mtime = now;
}

TimePoint VirtualFileSystem::MTime(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? kTimeInfinity : it->second.mtime;
}

Result<std::string> VirtualFileSystem::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second.content;
}

Status VirtualFileSystem::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::OK();
}

std::vector<std::string> VirtualFileSystem::List() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, entry] : files_) {
    (void)entry;
    out.push_back(path);
  }
  return out;
}

}  // namespace cactis::env
