#include "env/flow_analysis.h"

namespace cactis::env {

const char* FlowAnalysis::SchemaSource() {
  return R"(
relationship flow;

object class stmt_node is
  relationships
    preds : flow multi socket;
    succs : flow multi plug;
  attributes
    defs : array;   -- variables this statement defines
    uses : array;   -- variables this statement reads
    defined_in : array;
    defined_out : array;
    undefined_uses : array;
  rules
    -- `circular`: these attributes may sit on control-flow cycles
    -- (loops); the engine resolves them by fixed-point iteration from
    -- the empty set, per [Far86] ("circular but well-defined").
    circular defined_in =
      begin
        acc : array;
        acc = [];
        for each p related to preds do
          acc = set_union(acc, p.defined_out);
        end;
        return acc;
      end;
    circular defined_out = set_union(defined_in, defs);
    undefined_uses = set_diff(uses, defined_in);
end object;
)";
}

Result<std::unique_ptr<FlowAnalysis>> FlowAnalysis::Attach(
    core::Database* db) {
  if (db->catalog()->FindClass("stmt_node") == nullptr) {
    CACTIS_RETURN_IF_ERROR(db->LoadSchema(SchemaSource()));
  }
  return std::unique_ptr<FlowAnalysis>(new FlowAnalysis(db));
}

Value FlowAnalysis::StringSet(const std::vector<std::string>& names) {
  std::vector<Value> values;
  values.reserve(names.size());
  for (const std::string& n : names) values.push_back(Value::String(n));
  return Value::Array(std::move(values));
}

Result<std::vector<std::string>> FlowAnalysis::ToStrings(const Value& v) {
  CACTIS_ASSIGN_OR_RETURN(std::vector<Value> elems, v.AsArray());
  std::vector<std::string> out;
  out.reserve(elems.size());
  for (const Value& e : elems) {
    CACTIS_ASSIGN_OR_RETURN(std::string s, e.AsString());
    out.push_back(std::move(s));
  }
  return out;
}

Result<InstanceId> FlowAnalysis::AddStatement(
    const std::string& label, const std::vector<std::string>& defs,
    const std::vector<std::string>& uses) {
  if (stmts_.contains(label)) {
    return Status::AlreadyExists("statement '" + label + "' already exists");
  }
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, db_->Create("stmt_node"));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "defs", StringSet(defs)));
  CACTIS_RETURN_IF_ERROR(db_->Set(id, "uses", StringSet(uses)));
  stmts_[label] = id;
  return id;
}

Status FlowAnalysis::AddFlow(const std::string& from, const std::string& to) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId f, IdOf(from));
  CACTIS_ASSIGN_OR_RETURN(InstanceId t, IdOf(to));
  return db_->Connect(t, "preds", f, "succs").status();
}

Result<std::vector<std::string>> FlowAnalysis::UndefinedUses(
    const std::string& label) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(label));
  CACTIS_ASSIGN_OR_RETURN(Value v, db_->Get(id, "undefined_uses"));
  return ToStrings(v);
}

Result<std::vector<std::string>> FlowAnalysis::DefinedOnEntry(
    const std::string& label) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(label));
  CACTIS_ASSIGN_OR_RETURN(Value v, db_->Get(id, "defined_in"));
  return ToStrings(v);
}

Status FlowAnalysis::SetDefs(const std::string& label,
                             const std::vector<std::string>& defs) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(label));
  return db_->Set(id, "defs", StringSet(defs));
}

Status FlowAnalysis::SetUses(const std::string& label,
                             const std::vector<std::string>& uses) {
  CACTIS_ASSIGN_OR_RETURN(InstanceId id, IdOf(label));
  return db_->Set(id, "uses", StringSet(uses));
}

Result<InstanceId> FlowAnalysis::IdOf(const std::string& label) const {
  auto it = stmts_.find(label);
  if (it == stmts_.end()) {
    return Status::NotFound("unknown statement '" + label + "'");
  }
  return it->second;
}

}  // namespace cactis::env
