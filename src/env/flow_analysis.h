// FlowAnalysis: program flow analysis as attribute evaluation (paper
// section 4).
//
// "Since Cactis does not support data cycles, it can only handle flow
// analysis for simple languages such as a goto-less Pascal; however, the
// techniques described in [Far86] are being incorporated into Cactis so
// that it may support more general forms of flow analysis." This library
// implements that extension: the propagation attributes are declared
// `circular`, so loops in the control-flow graph are resolved by
// fixed-point iteration from the empty set. Each statement node declares
// the variables it defines and uses, and derived attributes propagate the
// defined set forward:
//
//   defined_in  = union over predecessors of their defined_out
//   defined_out = defined_in U defs
//   undefined_uses = uses \ defined_in   (possible use-before-definition)
//
// Editing one statement re-propagates incrementally through exactly the
// affected region — the same machinery the milestone manager uses.

#ifndef CACTIS_ENV_FLOW_ANALYSIS_H_
#define CACTIS_ENV_FLOW_ANALYSIS_H_

#include <map>
#include <string>
#include <vector>

#include "core/database.h"

namespace cactis::env {

class FlowAnalysis {
 public:
  static Result<std::unique_ptr<FlowAnalysis>> Attach(core::Database* db);

  /// Adds a statement node with the variables it defines and uses.
  Result<InstanceId> AddStatement(const std::string& label,
                                  const std::vector<std::string>& defs,
                                  const std::vector<std::string>& uses);

  /// Adds a control-flow edge `from` -> `to`.
  Status AddFlow(const std::string& from, const std::string& to);

  /// Variables possibly used before definition at the labelled statement.
  Result<std::vector<std::string>> UndefinedUses(const std::string& label);

  /// Variables definitely defined on entry to the statement.
  Result<std::vector<std::string>> DefinedOnEntry(const std::string& label);

  /// Changes a statement's defined / used variable sets (an edit).
  Status SetDefs(const std::string& label,
                 const std::vector<std::string>& defs);
  Status SetUses(const std::string& label,
                 const std::vector<std::string>& uses);

  Result<InstanceId> IdOf(const std::string& label) const;

  static const char* SchemaSource();

 private:
  explicit FlowAnalysis(core::Database* db) : db_(db) {}

  static Value StringSet(const std::vector<std::string>& names);
  static Result<std::vector<std::string>> ToStrings(const Value& v);

  core::Database* db_;
  std::map<std::string, InstanceId> stmts_;
};

}  // namespace cactis::env

#endif  // CACTIS_ENV_FLOW_ANALYSIS_H_
