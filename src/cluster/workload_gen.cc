#include "cluster/workload_gen.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace cactis::cluster {
namespace {

void Shuffle(std::vector<int>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng->Uniform(i)]);
  }
}

}  // namespace

WorkloadSpec GenerateWorkload(const WorkloadOptions& options) {
  WorkloadSpec spec;
  const int n = std::max(1, options.objects);
  spec.objects = n;
  Rng rng(options.seed);

  spec.create_order.resize(n);
  std::iota(spec.create_order.begin(), spec.create_order.end(), 0);
  Shuffle(&spec.create_order, &rng);

  // Rel 0: a fan_out-ary tree in object order. Object 0 is the global
  // root; hot sets are index slices, so hot roots own whole subtrees.
  const int fan_out = std::max(1, options.fan_out);
  for (int i = 1; i < n; ++i) {
    spec.edges.push_back({(i - 1) / fan_out, i, 0});
  }

  // Rel 1: one long random permutation cycle — structurally uncorrelated
  // with the tree, so a placement good for one is poor for the other.
  if (n > 1) {
    std::vector<int> cycle(n);
    std::iota(cycle.begin(), cycle.end(), 0);
    Shuffle(&cycle, &rng);
    for (int k = 0; k < n; ++k) {
      spec.edges.push_back({cycle[k], cycle[(k + 1) % n], 1});
    }
  }

  const int hot = std::max(1, static_cast<int>(options.hot_fraction * n));
  const int phases = std::max(1, options.phases);
  auto pick_root = [&](int phase) -> int {
    if (rng.Bernoulli(options.hot_skew)) {
      // Disjoint hot slices per phase (wrapping): the hot set *moves*.
      const int start = (phase * hot) % n;
      return (start + static_cast<int>(rng.Uniform(hot))) % n;
    }
    return static_cast<int>(rng.Uniform(n));
  };
  auto make_op = [&](int phase) {
    WorkloadOp op;
    op.root = pick_root(phase);
    op.depth = std::max(1, options.depth);
    op.rel = options.rotate_rel ? static_cast<uint32_t>(phase % 2) : 0u;
    op.kind = options.kind;
    op.write = rng.Bernoulli(options.write_fraction);
    return op;
  };

  // Warm ops: phase 0 takes first_phase_fraction of the budget (so raw
  // lifetime counters stay dominated by the oldest pattern); later
  // phases split the rest evenly.
  std::vector<int> per_phase(phases, 0);
  if (phases == 1) {
    per_phase[0] = options.warm_ops;
  } else if (options.warm_ops > 0) {
    per_phase[0] = static_cast<int>(options.warm_ops *
                                    options.first_phase_fraction);
    const int rest = options.warm_ops - per_phase[0];
    for (int p = 1; p < phases; ++p) {
      per_phase[p] = rest / (phases - 1);
    }
  }
  for (int p = 0; p < phases; ++p) {
    for (int k = 0; k < per_phase[p]; ++k) {
      spec.warm_ops.push_back(make_op(p));
    }
    if (p + 1 < phases) spec.phase_breaks.push_back(spec.warm_ops.size());
  }

  for (int k = 0; k < options.score_ops; ++k) {
    spec.score_ops.push_back(make_op(phases - 1));
  }
  return spec;
}

}  // namespace cactis::cluster
