#include "cluster/reorganizer.h"

#include "cluster/policy.h"

namespace cactis::cluster {

std::vector<std::pair<InstanceId, int>> GreedyPack(const ClusterInput& input) {
  return GreedyUsagePolicy().Place(input);
}

}  // namespace cactis::cluster
