#include "cluster/reorganizer.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace cactis::cluster {

std::vector<std::pair<InstanceId, int>> GreedyPack(const ClusterInput& input) {
  std::vector<std::pair<InstanceId, int>> placement;
  placement.reserve(input.record_sizes.size());

  // Unassigned instances ordered by (access count desc, id asc) for the
  // outer "most referenced" choice.
  std::vector<InstanceId> by_refs;
  by_refs.reserve(input.record_sizes.size());
  for (const auto& [id, size] : input.record_sizes) {
    (void)size;
    by_refs.push_back(id);
  }
  auto refs_of = [&](InstanceId id) -> uint64_t {
    auto it = input.access_counts.find(id);
    return it == input.access_counts.end() ? 0 : it->second;
  };
  std::sort(by_refs.begin(), by_refs.end(),
            [&](InstanceId a, InstanceId b) {
              uint64_t ra = refs_of(a), rb = refs_of(b);
              if (ra != rb) return ra > rb;
              return a < b;
            });

  std::set<InstanceId> unassigned(by_refs.begin(), by_refs.end());
  size_t seed_cursor = 0;
  int cluster = 0;

  auto size_of = [&](InstanceId id) -> size_t {
    auto it = input.record_sizes.find(id);
    size_t payload = it == input.record_sizes.end() ? 0 : it->second;
    return payload + input.per_record_overhead;
  };

  while (!unassigned.empty()) {
    // Outer choice: most referenced unassigned instance.
    while (seed_cursor < by_refs.size() &&
           !unassigned.contains(by_refs[seed_cursor])) {
      ++seed_cursor;
    }
    if (seed_cursor >= by_refs.size()) break;  // defensive; cannot happen
    InstanceId seed = by_refs[seed_cursor];

    size_t used = input.block_header + size_of(seed);
    unassigned.erase(seed);
    placement.emplace_back(seed, cluster);

    // Candidate frontier: (usage desc, peer id asc). Lazily validated.
    struct Cand {
      uint64_t usage;
      InstanceId peer;
      bool operator<(const Cand& o) const {
        if (usage != o.usage) return usage < o.usage;  // max-heap by usage
        return peer > o.peer;
      }
    };
    std::priority_queue<Cand> frontier;
    auto push_neighbors = [&](InstanceId from) {
      auto adj = input.adjacency.find(from);
      if (adj == input.adjacency.end()) return;
      for (const ClusterInput::Neighbor& n : adj->second) {
        if (unassigned.contains(n.peer)) frontier.push({n.usage, n.peer});
      }
    };
    push_neighbors(seed);

    // Inner loop: pull the highest-usage relationship's instance into the
    // block until nothing more fits.
    while (!frontier.empty()) {
      Cand c = frontier.top();
      frontier.pop();
      if (!unassigned.contains(c.peer)) continue;  // stale entry
      if (used + size_of(c.peer) > input.block_capacity) {
        // The paper stops when "the block is full"; we skip candidates
        // that no longer fit and keep trying smaller ones.
        continue;
      }
      used += size_of(c.peer);
      unassigned.erase(c.peer);
      placement.emplace_back(c.peer, cluster);
      push_neighbors(c.peer);
    }
    ++cluster;
  }

  return placement;
}

}  // namespace cactis::cluster
