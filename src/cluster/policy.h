// Clustering policies: competing answers to "which instances share a
// block?".
//
// The paper (section 2.3) prescribes one scheme — greedy packing by raw
// lifetime usage counters. Darmont et al.'s OCB work (arXiv:1611.09177,
// arXiv:0705.0454) shows that clustering policies rank very differently
// across workload shapes, so the packer is factored behind this
// interface and scored per workload by bench_clustering (E16):
//
//  * GreedyUsagePolicy — the paper's scheme verbatim: seed blocks with
//    the most-referenced unassigned instance, pull neighbours across the
//    highest-raw-usage relationships. Best when the access pattern is
//    stable for the database's whole life.
//  * DstcPolicy — the same greedy skeleton driven by *decayed* counters
//    (sched::DecayingAverage folded once per observation period), in the
//    spirit of DSTC dynamic clustering: cold history stops dictating
//    placement, so a workload whose hot set or traversal direction
//    shifts re-clusters toward the recent pattern.
//  * TypeGraphPolicy — ignores runtime statistics entirely and places by
//    schema relationship structure (group by class, walk low-index
//    relationships first). The cold-start answer: sensible placement
//    before a single traversal has been observed.
//
// All three share one packing skeleton and the same determinism
// guarantee: ties break on lower instance id, so a placement is a pure
// function of its ClusterInput.

#ifndef CACTIS_CLUSTER_POLICY_H_
#define CACTIS_CLUSTER_POLICY_H_

#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "cluster/reorganizer.h"

namespace cactis::cluster {

enum class PolicyKind {
  kGreedyUsage,  // paper 2.3: raw lifetime counters
  kDstc,         // decayed counters (DSTC-style dynamic clustering)
  kTypeGraph,    // schema structure only (cold start)
};

/// The policy Database::Reorganize() uses unless configured otherwise
/// (DatabaseOptions::cluster_policy). DSTC won the E16 matrix: it matches
/// greedy on stable workloads (one observation period of decayed counts
/// orders like raw counts) and strictly beats it when the traversal
/// pattern shifts between reorganisations.
inline constexpr PolicyKind kDefaultPolicy = PolicyKind::kDstc;

/// Stable lowercase name ("greedy_usage" | "dstc" | "typegraph") used by
/// the `reorganize <policy>` statement, metrics and bench output.
const char* PolicyKindName(PolicyKind kind);
std::optional<PolicyKind> PolicyKindFromName(std::string_view name);
/// Every kind, in declaration order (bench matrix iteration).
const std::vector<PolicyKind>& AllPolicyKinds();

using Placement = std::vector<std::pair<InstanceId, int>>;

class Policy {
 public:
  virtual ~Policy() = default;
  virtual PolicyKind kind() const = 0;
  const char* name() const { return PolicyKindName(kind()); }
  /// Assigns every instance in `input.record_sizes` a cluster index.
  /// Pure and deterministic; an instance whose record alone exceeds the
  /// usable capacity gets a cluster of its own (the record store rejects
  /// such records upstream, but the packer must not wedge on them).
  virtual Placement Place(const ClusterInput& input) const = 0;
};

class GreedyUsagePolicy : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kGreedyUsage; }
  Placement Place(const ClusterInput& input) const override;
};

class DstcPolicy : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kDstc; }
  Placement Place(const ClusterInput& input) const override;
};

class TypeGraphPolicy : public Policy {
 public:
  PolicyKind kind() const override { return PolicyKind::kTypeGraph; }
  Placement Place(const ClusterInput& input) const override;
};

std::unique_ptr<Policy> MakePolicy(PolicyKind kind);

}  // namespace cactis::cluster

#endif  // CACTIS_CLUSTER_POLICY_H_
