// Usage-based clustering (paper section 2.3).
//
// "We keep a count of the total number of times each instance in the
// database is accessed, as well as the number of times we cross a
// relationship between instances ... We will then periodically reorganize
// the database on the basis of this information."
//
// GreedyPack implements the paper's packing loop verbatim:
//
//   Repeat
//     Choose the most referenced instance ... not yet assigned a block;
//     Place this instance in a new block;
//     Repeat
//       Choose the relationship belonging to some instance assigned to the
//       block such that (1) it connects to an unassigned instance outside
//       the block and (2) its total usage count is the highest;
//       Assign the instance attached to this relationship to the block;
//     Until the block is full;
//   Until all instances are assigned blocks.
//
// The result is a cluster index per instance; storage::RecordStore
// ApplyPlacement packs same-cluster instances into the same block chain.

#ifndef CACTIS_CLUSTER_REORGANIZER_H_
#define CACTIS_CLUSTER_REORGANIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace cactis::cluster {

/// The graph view the packer works over. `record_sizes` are encoded record
/// sizes; `block_capacity` is the usable bytes per block (the packer
/// accounts the same per-record overhead the record store does).
struct ClusterInput {
  struct Neighbor {
    InstanceId peer;
    uint64_t usage = 0;  // relationship crossing count (both directions)
  };

  std::unordered_map<InstanceId, uint64_t> access_counts;
  std::unordered_map<InstanceId, std::vector<Neighbor>> adjacency;
  std::unordered_map<InstanceId, size_t> record_sizes;
  size_t block_capacity = 4096;
  size_t per_record_overhead = 12;
  size_t block_header = 4;
};

/// Runs the greedy packing; returns (instance, cluster index) for every
/// instance in `input.record_sizes`. Deterministic: ties break on lower
/// instance id.
std::vector<std::pair<InstanceId, int>> GreedyPack(const ClusterInput& input);

}  // namespace cactis::cluster

#endif  // CACTIS_CLUSTER_REORGANIZER_H_
