// Usage-based clustering (paper section 2.3).
//
// "We keep a count of the total number of times each instance in the
// database is accessed, as well as the number of times we cross a
// relationship between instances ... We will then periodically reorganize
// the database on the basis of this information."
//
// The packing loop itself lives behind the cluster::Policy interface
// (cluster/policy.h); this header defines the graph view every policy
// works over, plus the legacy GreedyPack entry point (the paper's greedy
// usage-count scheme, now GreedyUsagePolicy).
//
// The result is a cluster index per instance; storage::RecordStore
// ApplyPlacement packs same-cluster instances into the same block chain.

#ifndef CACTIS_CLUSTER_REORGANIZER_H_
#define CACTIS_CLUSTER_REORGANIZER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace cactis::cluster {

/// The graph view the packers work over. `record_sizes` are encoded
/// record sizes; `block_capacity` is the usable bytes per block (the
/// packer accounts the same per-record overhead the record store does).
///
/// The statistic fields feed different policies:
///  * `access_counts` / `Neighbor::usage` — raw lifetime counters (the
///    paper's scheme, GreedyUsagePolicy);
///  * `decayed_access` / `Neighbor::decayed_usage` — per-observation-
///    period decayed counters (DstcPolicy); absent entries read as 0;
///  * `class_of` / `Neighbor::rel` — schema structure (TypeGraphPolicy;
///    `rel` is the port index the edge leaves through).
struct ClusterInput {
  struct Neighbor {
    InstanceId peer;
    uint64_t usage = 0;        // relationship crossing count (both directions)
    double decayed_usage = 0;  // decayed crossing count (DSTC statistic)
    uint32_t rel = 0;          // port index on this side (schema structure)
  };

  std::unordered_map<InstanceId, uint64_t> access_counts;
  std::unordered_map<InstanceId, double> decayed_access;
  std::unordered_map<InstanceId, uint32_t> class_of;
  std::unordered_map<InstanceId, std::vector<Neighbor>> adjacency;
  std::unordered_map<InstanceId, size_t> record_sizes;
  size_t block_capacity = 4096;
  size_t per_record_overhead = 12;
  size_t block_header = 4;
};

/// Runs the paper's greedy usage-count packing; returns (instance,
/// cluster index) for every instance in `input.record_sizes`.
/// Deterministic: ties break on lower instance id. Equivalent to
/// GreedyUsagePolicy().Place(input); kept as the historical entry point.
std::vector<std::pair<InstanceId, int>> GreedyPack(const ClusterInput& input);

}  // namespace cactis::cluster

#endif  // CACTIS_CLUSTER_REORGANIZER_H_
