// OCB-inspired synthetic workload generator (Darmont et al.).
//
// Clustering policies can only be ranked against workloads, and one
// synthetic chain walk (the old E5) is not a workload space. In the
// spirit of the OCB benchmark this generator emits *descriptions* of
// object graphs and traversal streams with tunable:
//
//  * fan-out            — children per internal node of the structural tree;
//  * hot-set skew       — fraction of roots that are hot, and the
//                         probability a traversal starts in the hot set;
//  * traversal depth    — how deep a depth-first closure walks;
//  * traversal kind     — depth-first closure vs. attribute-pull (wide,
//                         shallow reads of every neighbour's attributes);
//  * read/write mix     — fraction of traversals that rewrite their root;
//  * phases             — the hot set and the traversed relationship
//                         rotate per phase, modelling workloads whose
//                         access pattern shifts over the database's life
//                         (where decayed statistics beat raw counters).
//
// A spec is pure data — object indices, edges, op streams — so the
// generator depends on nothing above the common layer and is unit-
// testable without a database. The bench harness (bench_clustering, E16)
// materialises a spec against a core::Database and scores policies on
// blocks read per traversal.
//
// Objects carry two relationship structures over the same instances:
// rel 0 ("tree") is a fan_out-ary tree in object order, rel 1 ("jump")
// is a random permutation cycle. Single-phase workloads traverse the
// tree; with `rotate_rel`, phase p traverses rel p % 2, so raw lifetime
// counters keep favouring the old structure while decayed counters
// follow the shift.
//
// Everything is deterministic in `seed`.

#ifndef CACTIS_CLUSTER_WORKLOAD_GEN_H_
#define CACTIS_CLUSTER_WORKLOAD_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cactis::cluster {

enum class TraversalKind {
  kDepthFirst,  // closure: follow the relationship to `depth` levels
  kAttrPull,    // wide read: root plus every direct neighbour's attributes
};

struct WorkloadOptions {
  uint64_t seed = 1;
  int objects = 360;
  int fan_out = 3;           // tree arity (rel 0)
  double hot_fraction = 0.1; // fraction of objects forming each phase's hot set
  double hot_skew = 0.9;     // P(traversal roots in the phase's hot set)
  int depth = 4;             // depth-first closure depth
  TraversalKind kind = TraversalKind::kDepthFirst;
  double write_fraction = 0.0;  // P(op rewrites its root after the walk)
  int phases = 1;
  bool rotate_rel = false;   // phase p traverses rel p % 2 (else always rel 0)
  int warm_ops = 400;        // stats-gathering traversals, split over phases
  double first_phase_fraction = 0.7;  // 2-phase workloads: share of warm ops
                                      // in phase 0 (raw counters stay biased
                                      // toward the old pattern)
  int score_ops = 150;       // measured traversals (final-phase distribution)
};

struct WorkloadEdge {
  int from = 0;
  int to = 0;
  uint32_t rel = 0;  // 0 = tree, 1 = jump
};

struct WorkloadOp {
  int root = 0;
  int depth = 1;
  uint32_t rel = 0;
  TraversalKind kind = TraversalKind::kDepthFirst;
  bool write = false;
};

struct WorkloadSpec {
  int objects = 0;
  /// Object indices in creation order, shuffled so natural (insertion-
  /// order) placement interleaves structurally unrelated instances.
  std::vector<int> create_order;
  std::vector<WorkloadEdge> edges;
  /// Statistics-gathering traversals, executed before reorganisation.
  std::vector<WorkloadOp> warm_ops;
  /// Indices into warm_ops where an observation period ends (phase
  /// boundaries): the harness folds decayed statistics there
  /// (Database::FoldUsageStatistics). Excludes the end of the final
  /// phase, which Reorganize() folds itself.
  std::vector<size_t> phase_breaks;
  /// Measured traversals, drawn from the final phase's distribution.
  std::vector<WorkloadOp> score_ops;
};

WorkloadSpec GenerateWorkload(const WorkloadOptions& options);

}  // namespace cactis::cluster

#endif  // CACTIS_CLUSTER_WORKLOAD_GEN_H_
