#include "cluster/policy.h"

#include <algorithm>
#include <queue>
#include <set>

namespace cactis::cluster {
namespace {

/// The paper's greedy packing skeleton, shared by every policy:
///
///   Repeat
///     Choose the unassigned instance with the highest seed key;
///     Place this instance in a new block;
///     Repeat
///       Choose the relationship belonging to some instance assigned to
///       the block such that (1) it connects to an unassigned instance
///       outside the block and (2) its pull key is the highest;
///       Assign the instance attached to this relationship to the block;
///     Until the block is full;
///   Until all instances are assigned blocks.
///
/// Policies differ only in the two keys. Both orderings break ties on
/// lower instance id, so the placement is deterministic. Candidates that
/// no longer fit are skipped (the packer keeps trying smaller ones); an
/// instance larger than the capacity by itself still seeds its own
/// cluster, so oversized records degrade to one-record blocks instead of
/// wedging the loop.
template <typename SeedKey, typename PullKey>
Placement PackWith(const ClusterInput& input, SeedKey seed_key,
                   PullKey pull_key) {
  Placement placement;
  placement.reserve(input.record_sizes.size());

  std::vector<InstanceId> seeds;
  seeds.reserve(input.record_sizes.size());
  for (const auto& [id, size] : input.record_sizes) {
    (void)size;
    seeds.push_back(id);
  }
  std::sort(seeds.begin(), seeds.end(), [&](InstanceId a, InstanceId b) {
    double ka = seed_key(a), kb = seed_key(b);
    if (ka != kb) return ka > kb;
    return a < b;
  });

  std::set<InstanceId> unassigned(seeds.begin(), seeds.end());
  size_t seed_cursor = 0;
  int cluster = 0;

  auto size_of = [&](InstanceId id) -> size_t {
    auto it = input.record_sizes.find(id);
    size_t payload = it == input.record_sizes.end() ? 0 : it->second;
    return payload + input.per_record_overhead;
  };

  while (!unassigned.empty()) {
    while (seed_cursor < seeds.size() &&
           !unassigned.contains(seeds[seed_cursor])) {
      ++seed_cursor;
    }
    if (seed_cursor >= seeds.size()) break;  // defensive; cannot happen
    InstanceId seed = seeds[seed_cursor];

    size_t used = input.block_header + size_of(seed);
    unassigned.erase(seed);
    placement.emplace_back(seed, cluster);

    // Candidate frontier: (pull key desc, peer id asc). Lazily validated.
    struct Cand {
      double key;
      InstanceId peer;
      bool operator<(const Cand& o) const {
        if (key != o.key) return key < o.key;  // max-heap by key
        return peer > o.peer;
      }
    };
    std::priority_queue<Cand> frontier;
    auto push_neighbors = [&](InstanceId from) {
      auto adj = input.adjacency.find(from);
      if (adj == input.adjacency.end()) return;
      for (const ClusterInput::Neighbor& n : adj->second) {
        if (unassigned.contains(n.peer)) frontier.push({pull_key(n), n.peer});
      }
    };
    push_neighbors(seed);

    while (!frontier.empty()) {
      Cand c = frontier.top();
      frontier.pop();
      if (!unassigned.contains(c.peer)) continue;  // stale entry
      if (used + size_of(c.peer) > input.block_capacity) {
        // The paper stops when "the block is full"; we skip candidates
        // that no longer fit and keep trying smaller ones.
        continue;
      }
      used += size_of(c.peer);
      unassigned.erase(c.peer);
      placement.emplace_back(c.peer, cluster);
      push_neighbors(c.peer);
    }
    ++cluster;
  }

  return placement;
}

}  // namespace

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGreedyUsage:
      return "greedy_usage";
    case PolicyKind::kDstc:
      return "dstc";
    case PolicyKind::kTypeGraph:
      return "typegraph";
  }
  return "unknown";
}

std::optional<PolicyKind> PolicyKindFromName(std::string_view name) {
  for (PolicyKind kind : AllPolicyKinds()) {
    if (name == PolicyKindName(kind)) return kind;
  }
  // Convenience alias: the paper's scheme is usually just called greedy.
  if (name == "greedy") return PolicyKind::kGreedyUsage;
  return std::nullopt;
}

const std::vector<PolicyKind>& AllPolicyKinds() {
  static const std::vector<PolicyKind> kAll = {
      PolicyKind::kGreedyUsage, PolicyKind::kDstc, PolicyKind::kTypeGraph};
  return kAll;
}

Placement GreedyUsagePolicy::Place(const ClusterInput& input) const {
  auto seed_key = [&](InstanceId id) -> double {
    auto it = input.access_counts.find(id);
    return it == input.access_counts.end()
               ? 0.0
               : static_cast<double>(it->second);
  };
  auto pull_key = [](const ClusterInput::Neighbor& n) -> double {
    return static_cast<double>(n.usage);
  };
  return PackWith(input, seed_key, pull_key);
}

Placement DstcPolicy::Place(const ClusterInput& input) const {
  auto seed_key = [&](InstanceId id) -> double {
    auto it = input.decayed_access.find(id);
    return it == input.decayed_access.end() ? 0.0 : it->second;
  };
  auto pull_key = [](const ClusterInput::Neighbor& n) -> double {
    return n.decayed_usage;
  };
  return PackWith(input, seed_key, pull_key);
}

Placement TypeGraphPolicy::Place(const ClusterInput& input) const {
  // No runtime statistics: group instances of the same class (seed order
  // walks class extents lowest class id first) and pull neighbours across
  // the lowest-index relationship port first, so placement follows the
  // schema's declaration structure.
  auto seed_key = [&](InstanceId id) -> double {
    auto it = input.class_of.find(id);
    return it == input.class_of.end() ? 0.0
                                      : -static_cast<double>(it->second);
  };
  auto pull_key = [](const ClusterInput::Neighbor& n) -> double {
    return -static_cast<double>(n.rel);
  };
  return PackWith(input, seed_key, pull_key);
}

std::unique_ptr<Policy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kGreedyUsage:
      return std::make_unique<GreedyUsagePolicy>();
    case PolicyKind::kDstc:
      return std::make_unique<DstcPolicy>();
    case PolicyKind::kTypeGraph:
      return std::make_unique<TypeGraphPolicy>();
  }
  return std::make_unique<GreedyUsagePolicy>();
}

}  // namespace cactis::cluster
