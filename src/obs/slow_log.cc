#include "obs/slow_log.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace cactis::obs {

void SlowStatementLog::MaybeRecord(const RequestContext& ctx,
                                   std::string_view text, uint64_t latency_us,
                                   const StatementCost& cost) {
  if (capacity_ == 0 || latency_us < threshold_us_) return;
  std::lock_guard<std::mutex> lk(mu_);
  ++total_logged_;
  if (entries_.size() >= capacity_) {
    // Displace the fastest retained entry, if this one beats it. The log
    // is small (tens of entries), so a linear min scan beats heap
    // bookkeeping.
    auto fastest = std::min_element(
        entries_.begin(), entries_.end(),
        [](const SlowStatementEntry& a, const SlowStatementEntry& b) {
          return a.latency_us < b.latency_us;
        });
    if (latency_us <= fastest->latency_us) return;
    entries_.erase(fastest);
  }
  SlowStatementEntry e;
  e.trace_id = ctx.trace_id;
  e.session_id = ctx.session_id;
  e.statement_seq = ctx.statement_seq;
  e.text = std::string(text);
  e.latency_us = latency_us;
  e.cost = cost;
  entries_.push_back(std::move(e));
}

std::vector<SlowStatementEntry> SlowStatementLog::Snapshot() const {
  std::vector<SlowStatementEntry> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowStatementEntry& a, const SlowStatementEntry& b) {
              return a.latency_us > b.latency_us;
            });
  return out;
}

std::vector<SlowStatementEntry> SlowStatementLog::Drain() {
  std::vector<SlowStatementEntry> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.swap(entries_);
  }
  std::sort(out.begin(), out.end(),
            [](const SlowStatementEntry& a, const SlowStatementEntry& b) {
              return a.latency_us > b.latency_us;
            });
  return out;
}

uint64_t SlowStatementLog::total_logged() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_logged_;
}

size_t SlowStatementLog::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::string SlowStatementLog::ToJson(
    const std::vector<SlowStatementEntry>& entries) {
  JsonWriter w;
  w.BeginArray();
  for (const SlowStatementEntry& e : entries) {
    w.BeginObject();
    w.Key("trace_id").Uint(e.trace_id);
    w.Key("session").Uint(e.session_id);
    w.Key("seq").Uint(e.statement_seq);
    w.Key("stmt").String(e.text);
    w.Key("latency_us").Uint(e.latency_us);
    w.Key("cost").BeginObject();
    e.cost.WriteFields(&w);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  return w.str();
}

}  // namespace cactis::obs
