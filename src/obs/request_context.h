#ifndef CACTIS_OBS_REQUEST_CONTEXT_H_
#define CACTIS_OBS_REQUEST_CONTEXT_H_

// Request-scoped observability context.
//
// The service layer executes each statement start-to-finish on one
// thread (a worker, or the caller in num_workers == 0 mode), so request
// identity propagates the way tracing systems usually do it: a
// thread-local context installed for the duration of the statement.
// The executor mints a RequestContext per statement and installs it with
// a RequestScope; every instrumented site below — the simulated disk,
// the buffer pool, the eval engine, the chunk scheduler, the WAL — asks
// RequestScope for the current context instead of having it plumbed
// through a dozen call signatures.
//
// Two things ride on the context:
//
//  * TraceSink events stamp RequestScope::CurrentTraceId() into their
//    `trace` field, so a drained trace ring can be sliced per statement.
//  * A StatementCost accumulator collects the statement's resource
//    breakdown (blocks read/written, cache hits/misses, attributes
//    re-evaluated, chunks scheduled, WAL bytes, lock/queue/exec time).
//    Sites bump it through CurrentCost(), which is null — one
//    thread-local load and one branch — when no statement is in flight.
//
// Attribution has the same scope as the statement lock: work a
// statement performs on behalf of others (e.g. the WAL flush leader
// writing a whole group-commit batch) is charged to the statement that
// happened to do it. That is the honest answer for "who waited on this
// disk?" and it keeps the mechanism lock-free.

#include <cstdint>
#include <string>

namespace cactis::obs {

class JsonWriter;

/// Identity of one in-flight statement. trace_id is globally unique per
/// executor and never zero for a real statement (zero means "no
/// context", e.g. background session reaping).
struct RequestContext {
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  uint64_t statement_seq = 0;  // per-session statement ordinal
};

/// Resource breakdown of one statement. Field glossary in DESIGN.md
/// ("Observability" > "Cost breakdown glossary") — keep the two in sync.
struct StatementCost {
  uint64_t blocks_read = 0;        // SimulatedDisk reads
  uint64_t blocks_written = 0;     // SimulatedDisk writes (WAL included)
  uint64_t cache_hits = 0;         // BufferPool frame hits
  uint64_t cache_misses = 0;       // BufferPool faults (each costs a read)
  uint64_t attrs_reevaluated = 0;  // derived-attribute rule executions
  uint64_t chunks_scheduled = 0;   // traversal chunks enqueued
  uint64_t wal_bytes = 0;          // WAL payload bytes staged
  uint64_t queue_wait_us = 0;      // submit -> worker pickup (per request,
                                   // charged to its first statement)
  uint64_t lock_wait_shared_us = 0;  // waiting for the shared lock side
  uint64_t lock_wait_excl_us = 0;    // waiting for the exclusive side
  uint64_t exec_us = 0;              // lock wait + database time
  bool shared_path = false;          // answered on the concurrent read path
  bool snapshot_path = false;        // answered from an MVCC snapshot,
                                     // no lock taken at all

  void Add(const StatementCost& o) {
    blocks_read += o.blocks_read;
    blocks_written += o.blocks_written;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    attrs_reevaluated += o.attrs_reevaluated;
    chunks_scheduled += o.chunks_scheduled;
    wal_bytes += o.wal_bytes;
    queue_wait_us += o.queue_wait_us;
    lock_wait_shared_us += o.lock_wait_shared_us;
    lock_wait_excl_us += o.lock_wait_excl_us;
    exec_us += o.exec_us;
    shared_path = shared_path || o.shared_path;
    snapshot_path = snapshot_path || o.snapshot_path;
  }

  /// Writes the cost fields as members of the writer's current object.
  void WriteFields(JsonWriter* w) const;
  /// The cost as one standalone JSON object.
  std::string ToJson() const;
};

/// RAII installer of the thread's current request. Non-reentrant by
/// design: one statement per thread at a time (the previous context is
/// saved and restored anyway, so nesting is merely unattributed, not
/// unsafe).
class RequestScope {
 public:
  RequestScope(const RequestContext& ctx, StatementCost* cost)
      : saved_ctx_(current_ctx_), saved_cost_(current_cost_) {
    current_ctx_ = ctx;
    current_cost_ = cost;
  }
  ~RequestScope() {
    current_ctx_ = saved_ctx_;
    current_cost_ = saved_cost_;
  }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// Trace id of the statement running on this thread, or 0.
  static uint64_t CurrentTraceId() { return current_ctx_.trace_id; }
  static const RequestContext& Current() { return current_ctx_; }

  /// Cost accumulator of the statement running on this thread, or null.
  /// Instrumented sites use the idiom
  ///   if (auto* c = RequestScope::CurrentCost()) ++c->blocks_read;
  /// which costs one thread-local load + one branch when idle — the same
  /// discipline as the trace sink's disabled check.
  static StatementCost* CurrentCost() { return current_cost_; }

 private:
  static thread_local RequestContext current_ctx_;
  static thread_local StatementCost* current_cost_;

  RequestContext saved_ctx_;
  StatementCost* saved_cost_;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_REQUEST_CONTEXT_H_
