#ifndef CACTIS_OBS_SAMPLER_H_
#define CACTIS_OBS_SAMPLER_H_

// Time-series telemetry: a background thread that periodically snapshots
// a MetricsRegistry into a bounded in-memory ring of *typed deltas*.
//
// A raw metrics snapshot answers "how many blocks have ever been read";
// an operator (or the drift watchdog) needs "how many blocks per second
// are being read *right now*". Each sampling tick therefore converts the
// cumulative snapshot into per-interval figures:
//
//   * counters    -> interval delta + rate/s (reset-tolerant: a counter
//                    that goes backwards restarts its delta from the new
//                    raw value),
//   * gauges      -> the level at sample time (windowed min/max/last are
//                    computed over the queried window),
//   * histograms  -> interval p50/p99 derived from *bucket deltas*, so
//                    the quantiles describe the last interval, not the
//                    process lifetime.
//
// Series are named "<group>.<name>" for snapshot sources and verbatim
// for registry-owned instruments (their names are already dotted).
//
// The sampler owns no locks of its consumers: the snapshot callback is
// supplied by the embedder (the Executor's callback takes its statement
// lock so the export sees a quiescent database), and ring/prev state is
// guarded by one internal mutex. SampleOnce() is public so tests and
// benches can drive the pipeline with a fake clock, deterministic tick
// by tick — the same pattern as the Executor's degraded-probe thread.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace cactis::obs {

/// One series' value inside one sample.
struct SeriesPoint {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  uint64_t raw = 0;        ///< counter: cumulative value at sample time
  uint64_t delta = 0;      ///< counter: interval delta; histogram: count delta
  double rate_per_s = 0;   ///< counter/histogram: delta over the interval
  double value = 0;        ///< gauge: level at sample time
  double p50 = 0;          ///< histogram: interval median (bucket upper bound)
  double p99 = 0;          ///< histogram: interval p99
};

/// One sampling tick: every series observed at one instant.
struct Sample {
  uint64_t t_ms = 0;
  uint64_t interval_ms = 0;  ///< elapsed since the previous tick (0 = first)
  std::vector<std::pair<std::string, SeriesPoint>> series;

  const SeriesPoint* Find(std::string_view name) const {
    for (const auto& [n, p] : series) {
      if (n == name) return &p;
    }
    return nullptr;
  }
};

struct SamplerOptions {
  /// Thread tick period. 0 disables the background thread entirely
  /// (SampleOnce() still works, so embedders can sample manually).
  uint64_t interval_ms = 1000;
  /// Samples retained; older ticks fall off the ring.
  size_t ring_capacity = 120;
  /// Injectable clock for deterministic tests. Defaults to a
  /// steady-clock millisecond counter.
  std::function<uint64_t()> now_ms;
};

class Sampler {
 public:
  using SnapshotFn = std::function<MetricsSnapshot()>;
  /// Invoked after every tick with the freshly built sample (the
  /// Watchdog's hook). Runs on the sampling thread, outside the
  /// sampler's mutex. Set before Start().
  using ObserverFn = std::function<void(const Sample&)>;

  explicit Sampler(SnapshotFn snapshot, SamplerOptions options = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void SetObserver(ObserverFn fn) { observer_ = std::move(fn); }

  void Start();
  void Stop();

  /// Takes one sample synchronously: snapshot, delta conversion, ring
  /// append, observer callback. The background thread calls exactly
  /// this; tests call it with a fake clock.
  void SampleOnce();

  /// The last up-to-`n` samples, oldest first (n == 0: whole ring).
  std::vector<Sample> Window(size_t n = 0) const;

  /// JSON view of the last `n` samples (n == 0: whole ring), series
  /// filtered to `group` when non-empty (exact group match, i.e. the
  /// series-name prefix before the first dot). Schema:
  ///   {"interval_ms":N,"samples_taken":N,"count":N,
  ///    "samples":[{"t_ms":..,"interval_ms":..,"series":{
  ///       "disk.reads":{"kind":"counter","raw":..,"delta":..,
  ///                     "rate_per_s":..},
  ///       "server.queue_depth":{"kind":"gauge","value":..},
  ///       "server.statement_latency_us":{"kind":"histogram",
  ///                     "delta":..,"p50":..,"p99":..}}},...],
  ///    "summary":{"server.queue_depth":{"kind":"gauge","last":..,
  ///                     "min":..,"max":..},
  ///               "disk.reads":{"kind":"counter","delta":..,
  ///                     "rate_per_s":..}, ...}}
  /// The summary aggregates the returned window: gauges report windowed
  /// min/max/last, counters total delta plus mean rate, histograms the
  /// latest interval's p50/p99.
  std::string HistoryJson(const std::string& group, size_t n = 0) const;

  uint64_t samples_taken() const;
  uint64_t interval_ms() const { return options_.interval_ms; }

 private:
  struct PrevHistogram {
    uint64_t count = 0;
    std::array<uint64_t, Histogram::kBuckets> buckets{};
  };

  void Loop();
  uint64_t Now() const;

  SnapshotFn snapshot_;
  SamplerOptions options_;
  ObserverFn observer_;

  mutable std::mutex mu_;
  std::vector<Sample> ring_;  // ring_[ (first_ + i) % capacity ]
  size_t first_ = 0;
  size_t size_ = 0;
  uint64_t samples_taken_ = 0;
  uint64_t last_t_ms_ = 0;
  bool has_prev_ = false;
  std::unordered_map<std::string, uint64_t> prev_counters_;
  std::unordered_map<std::string, PrevHistogram> prev_histograms_;

  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  std::thread thread_;
  bool stop_ = false;
  bool started_ = false;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_SAMPLER_H_
