#include "obs/sampler.h"

#include <algorithm>
#include <chrono>

#include "obs/json_writer.h"

namespace cactis::obs {

namespace {

/// Quantile of an interval bucket-delta distribution, same value
/// convention as ServerStats::LatencyQuantileUs: bucket 0 reports 0,
/// bucket i reports 2^i (the bucket's upper bound).
double BucketQuantile(const std::array<uint64_t, Histogram::kBuckets>& deltas,
                      uint64_t total, double q) {
  if (total == 0) return 0.0;
  const uint64_t want =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * total + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    seen += deltas[i];
    if (seen >= want) {
      return i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << i);
    }
  }
  return static_cast<double>(uint64_t{1} << (Histogram::kBuckets - 1));
}

bool InGroup(std::string_view series, const std::string& group) {
  if (group.empty()) return true;
  return series.size() > group.size() + 1 &&
         series.compare(0, group.size(), group) == 0 &&
         series[group.size()] == '.';
}

}  // namespace

Sampler::Sampler(SnapshotFn snapshot, SamplerOptions options)
    : snapshot_(std::move(snapshot)), options_(std::move(options)) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  ring_.resize(options_.ring_capacity);
}

Sampler::~Sampler() { Stop(); }

uint64_t Sampler::Now() const {
  if (options_.now_ms) return options_.now_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Sampler::Start() {
  std::lock_guard<std::mutex> lk(thread_mu_);
  if (started_ || stop_ || options_.interval_ms == 0) return;
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::Stop() {
  {
    std::lock_guard<std::mutex> lk(thread_mu_);
    stop_ = true;
  }
  thread_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Sampler::Loop() {
  std::unique_lock<std::mutex> lk(thread_mu_);
  while (!stop_) {
    if (thread_cv_.wait_for(lk,
                            std::chrono::milliseconds(options_.interval_ms),
                            [this] { return stop_; })) {
      return;
    }
    lk.unlock();
    SampleOnce();
    lk.lock();
  }
}

void Sampler::SampleOnce() {
  const uint64_t t = Now();
  // The embedder's snapshot callback may take its own locks (the
  // Executor grabs the statement mutex); keep it outside ours.
  MetricsSnapshot snap = snapshot_ ? snapshot_() : MetricsSnapshot{};

  Sample sample;
  sample.t_ms = t;

  std::lock_guard<std::mutex> lk(mu_);
  sample.interval_ms = has_prev_ && t > last_t_ms_ ? t - last_t_ms_ : 0;
  const double secs = sample.interval_ms / 1000.0;

  auto add_counter = [&](const std::string& name, uint64_t raw) {
    SeriesPoint p;
    p.kind = SeriesPoint::Kind::kCounter;
    p.raw = raw;
    auto it = prev_counters_.find(name);
    // Reset tolerance: a counter that went backwards restarts its
    // delta from the new raw value rather than reporting a huge one.
    p.delta = it == prev_counters_.end() || it->second > raw
                  ? (has_prev_ ? raw : 0)
                  : raw - it->second;
    p.rate_per_s = secs > 0 ? p.delta / secs : 0.0;
    prev_counters_[name] = raw;
    sample.series.emplace_back(name, p);
  };
  auto add_gauge = [&](const std::string& name, double v) {
    SeriesPoint p;
    p.kind = SeriesPoint::Kind::kGauge;
    p.value = v;
    sample.series.emplace_back(name, p);
  };
  auto add_histogram = [&](const std::string& name, const HistogramData& d) {
    SeriesPoint p;
    p.kind = SeriesPoint::Kind::kHistogram;
    p.raw = d.count;
    PrevHistogram& prev = prev_histograms_[name];
    std::array<uint64_t, Histogram::kBuckets> deltas{};
    if (prev.count <= d.count) {
      for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        deltas[i] =
            d.buckets[i] >= prev.buckets[i] ? d.buckets[i] - prev.buckets[i]
                                            : d.buckets[i];
      }
      p.delta = d.count - prev.count;
    } else {
      deltas = d.buckets;  // histogram reset; restart from raw
      p.delta = d.count;
    }
    if (!has_prev_) p.delta = 0;
    p.rate_per_s = secs > 0 ? p.delta / secs : 0.0;
    p.p50 = BucketQuantile(deltas, p.delta, 0.5);
    p.p99 = BucketQuantile(deltas, p.delta, 0.99);
    prev.count = d.count;
    prev.buckets = d.buckets;
    sample.series.emplace_back(name, p);
  };

  for (const auto& [group, g] : snap.groups) {
    for (const auto& [name, v] : g.counters()) add_counter(group + "." + name, v);
    for (const auto& [name, v] : g.gauges()) add_gauge(group + "." + name, v);
    for (const auto& [name, v] : g.histograms()) {
      add_histogram(group + "." + name, v);
    }
  }
  for (const auto& [name, v] : snap.instruments.counters()) add_counter(name, v);
  for (const auto& [name, v] : snap.instruments.gauges()) add_gauge(name, v);
  for (const auto& [name, v] : snap.instruments.histograms()) {
    add_histogram(name, v);
  }

  has_prev_ = true;
  last_t_ms_ = t;
  ++samples_taken_;

  const size_t cap = ring_.size();
  if (size_ < cap) {
    ring_[(first_ + size_) % cap] = sample;
    ++size_;
  } else {
    ring_[first_] = sample;
    first_ = (first_ + 1) % cap;
  }

  if (observer_) {
    // Outside mu_ would be nicer, but the observer only reads the local
    // copy; holding mu_ here keeps Window()/HistoryJson() callers from
    // seeing a ring the watchdog has not digested yet. The watchdog
    // never calls back into the sampler.
    observer_(sample);
  }
}

std::vector<Sample> Sampler::Window(size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  const size_t take = n == 0 ? size_ : std::min(n, size_);
  std::vector<Sample> out;
  out.reserve(take);
  for (size_t i = size_ - take; i < size_; ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t Sampler::samples_taken() const {
  std::lock_guard<std::mutex> lk(mu_);
  return samples_taken_;
}

std::string Sampler::HistoryJson(const std::string& group, size_t n) const {
  std::vector<Sample> window = Window(n);
  uint64_t taken;
  {
    std::lock_guard<std::mutex> lk(mu_);
    taken = samples_taken_;
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("interval_ms").Uint(options_.interval_ms);
  w.Key("samples_taken").Uint(taken);
  w.Key("count").Uint(window.size());

  w.Key("samples").BeginArray();
  for (const Sample& s : window) {
    w.BeginObject();
    w.Key("t_ms").Uint(s.t_ms);
    w.Key("interval_ms").Uint(s.interval_ms);
    w.Key("series").BeginObject();
    for (const auto& [name, p] : s.series) {
      if (!InGroup(name, group)) continue;
      w.Key(name).BeginObject();
      switch (p.kind) {
        case SeriesPoint::Kind::kCounter:
          w.Key("kind").String("counter");
          w.Key("raw").Uint(p.raw);
          w.Key("delta").Uint(p.delta);
          w.Key("rate_per_s").Double(p.rate_per_s);
          break;
        case SeriesPoint::Kind::kGauge:
          w.Key("kind").String("gauge");
          w.Key("value").Double(p.value);
          break;
        case SeriesPoint::Kind::kHistogram:
          w.Key("kind").String("histogram");
          w.Key("delta").Uint(p.delta);
          w.Key("p50").Double(p.p50);
          w.Key("p99").Double(p.p99);
          break;
      }
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();

  // Windowed aggregates, computed over exactly the samples returned
  // above. Series order follows the latest sample.
  w.Key("summary").BeginObject();
  if (!window.empty()) {
    const Sample& latest = window.back();
    double window_secs = 0;
    for (const Sample& s : window) window_secs += s.interval_ms / 1000.0;
    for (const auto& [name, p] : latest.series) {
      if (!InGroup(name, group)) continue;
      w.Key(name).BeginObject();
      switch (p.kind) {
        case SeriesPoint::Kind::kCounter: {
          uint64_t total_delta = 0;
          for (const Sample& s : window) {
            if (const SeriesPoint* q = s.Find(name)) total_delta += q->delta;
          }
          w.Key("kind").String("counter");
          w.Key("delta").Uint(total_delta);
          w.Key("rate_per_s")
              .Double(window_secs > 0 ? total_delta / window_secs : 0.0);
          break;
        }
        case SeriesPoint::Kind::kGauge: {
          double mn = p.value, mx = p.value;
          for (const Sample& s : window) {
            if (const SeriesPoint* q = s.Find(name)) {
              mn = std::min(mn, q->value);
              mx = std::max(mx, q->value);
            }
          }
          w.Key("kind").String("gauge");
          w.Key("last").Double(p.value);
          w.Key("min").Double(mn);
          w.Key("max").Double(mx);
          break;
        }
        case SeriesPoint::Kind::kHistogram:
          w.Key("kind").String("histogram");
          w.Key("p50").Double(p.p50);
          w.Key("p99").Double(p.p99);
          break;
      }
      w.EndObject();
    }
  }
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace cactis::obs
