#include "obs/metrics.h"

#include "obs/json_writer.h"

namespace cactis::obs {

void MetricsRegistry::RegisterSource(const std::string& group, SourceFn fn) {
  for (auto& [name, source] : sources_) {
    if (name == group) {
      source = std::move(fn);
      return;
    }
  }
  sources_.emplace_back(group, std::move(fn));
}

void MetricsRegistry::UnregisterSource(const std::string& group) {
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->first == group) {
      sources_.erase(it);
      return;
    }
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name,
                         std::unique_ptr<Counter>(new Counter(&enabled_)));
  return counters_.back().second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  for (auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)));
  return gauges_.back().second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  for (auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(name,
                           std::unique_ptr<Histogram>(new Histogram(&enabled_)));
  return histograms_.back().second.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(enabled_);

  w.Key("sources").BeginObject();
  for (const auto& [group, fn] : sources_) {
    MetricsGroup g;
    if (fn) fn(&g);
    w.Key(group).BeginObject();
    for (const auto& [name, value] : g.counters()) w.Key(name).Uint(value);
    for (const auto& [name, value] : g.gauges()) w.Key(name).Double(value);
    for (const auto& [name, value] : g.json_values()) w.Key(name).Raw(value);
    w.EndObject();
  }
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Key(name).Uint(c->value());
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Key(name).Double(g->value());
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").Uint(h->count());
    w.Key("sum").Uint(h->sum());
    // Trailing all-zero buckets are trimmed; bucket i covers
    // [2^(i-1), 2^i) with bucket 0 reserved for zero samples.
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->buckets()[i] != 0) last = i + 1;
    }
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < last; ++i) w.Uint(h->buckets()[i]);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace cactis::obs
