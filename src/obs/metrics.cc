#include "obs/metrics.h"

#include "obs/json_writer.h"

namespace cactis::obs {

void MetricsRegistry::RegisterSource(const std::string& group, SourceFn fn) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, source] : sources_) {
    if (name == group) {
      source = std::move(fn);
      return;
    }
  }
  sources_.emplace_back(group, std::move(fn));
}

void MetricsRegistry::UnregisterSource(const std::string& group) {
  // Taking mu_ here is what gives callers the "never runs again"
  // guarantee: snapshots invoke callbacks under the same mutex.
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->first == group) {
      sources_.erase(it);
      return;
    }
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name,
                         std::unique_ptr<Counter>(new Counter(&enabled_)));
  return counters_.back().second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)));
  return gauges_.back().second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(name,
                           std::unique_ptr<Histogram>(new Histogram(&enabled_)));
  return histograms_.back().second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  snap.groups.reserve(sources_.size());
  for (const auto& [group, fn] : sources_) {
    MetricsGroup g;
    if (fn) fn(&g);
    snap.groups.emplace_back(group, std::move(g));
  }
  for (const auto& [name, c] : counters_) {
    snap.instruments.AddCounter(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.instruments.AddGauge(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    HistogramData d;
    d.count = h->count();
    d.sum = h->sum();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) d.buckets[i] = h->bucket(i);
    snap.instruments.AddHistogram(name, std::move(d));
  }
  return snap;
}

namespace {

void WriteHistogramData(JsonWriter* w, const HistogramData& d) {
  w->BeginObject();
  w->Key("count").Uint(d.count);
  w->Key("sum").Uint(d.sum);
  // Trailing all-zero buckets are trimmed; bucket i covers
  // [2^(i-1), 2^i) with bucket 0 reserved for zero samples.
  size_t last = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (d.buckets[i] != 0) last = i + 1;
  }
  w->Key("buckets").BeginArray();
  for (size_t i = 0; i < last; ++i) w->Uint(d.buckets[i]);
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  MetricsSnapshot snap = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("enabled").Bool(enabled());

  w.Key("sources").BeginObject();
  for (const auto& [group, g] : snap.groups) {
    w.Key(group).BeginObject();
    for (const auto& [name, value] : g.counters()) w.Key(name).Uint(value);
    for (const auto& [name, value] : g.gauges()) w.Key(name).Double(value);
    for (const auto& [name, value] : g.histograms()) {
      w.Key(name);
      WriteHistogramData(&w, value);
    }
    for (const auto& [name, value] : g.json_values()) w.Key(name).Raw(value);
    w.EndObject();
  }
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.instruments.counters()) {
    w.Key(name).Uint(value);
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.instruments.gauges()) {
    w.Key(name).Double(value);
  }
  w.EndObject();

  w.Key("histograms").BeginObject();
  for (const auto& [name, value] : snap.instruments.histograms()) {
    w.Key(name);
    WriteHistogramData(&w, value);
  }
  w.EndObject();

  w.EndObject();
  return w.str();
}

}  // namespace cactis::obs
