#ifndef CACTIS_OBS_SLOW_LOG_H_
#define CACTIS_OBS_SLOW_LOG_H_

// Bounded in-memory slow-statement log.
//
// Keeps the N worst statements by latency among those at or above a
// threshold, each with its full StatementCost breakdown. Worker threads
// record concurrently (one mutex acquisition per *slow* statement — the
// common fast statement pays a single uncontended atomic threshold load
// and no lock), and the log drains through Database::SnapshotMetrics()
// (the executor splices it into the "server" group) or the shell's
// `\slow` command.
//
// Semantics:
//  * threshold_us — statements faster than this are never logged.
//    0 logs everything (useful in tests and when hunting tail latency).
//  * capacity — at most this many entries are retained; once full, a new
//    entry must beat the current fastest retained entry to displace it.
//    0 disables the log entirely.
//  * Drain() empties the log and returns the entries worst-first;
//    total_logged() keeps counting across drains.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/request_context.h"

namespace cactis::obs {

struct SlowStatementEntry {
  uint64_t trace_id = 0;
  uint64_t session_id = 0;
  uint64_t statement_seq = 0;
  std::string text;        // statement source, as submitted
  uint64_t latency_us = 0; // lock wait + execution
  StatementCost cost;
};

class SlowStatementLog {
 public:
  SlowStatementLog(size_t capacity, uint64_t threshold_us)
      : capacity_(capacity), threshold_us_(threshold_us) {}

  SlowStatementLog(const SlowStatementLog&) = delete;
  SlowStatementLog& operator=(const SlowStatementLog&) = delete;

  size_t capacity() const { return capacity_; }
  uint64_t threshold_us() const { return threshold_us_; }

  /// Records the statement if it qualifies. Thread-safe.
  void MaybeRecord(const RequestContext& ctx, std::string_view text,
                   uint64_t latency_us, const StatementCost& cost);

  /// Entries worst-first, without clearing. Thread-safe.
  std::vector<SlowStatementEntry> Snapshot() const;

  /// Entries worst-first, clearing the log. total_logged() is unchanged.
  std::vector<SlowStatementEntry> Drain();

  /// Statements ever logged (admitted past the threshold), including
  /// entries since displaced or drained.
  uint64_t total_logged() const;

  size_t size() const;

  /// JSON array of entries, worst-first:
  ///   [{"trace_id":n,"session":n,"seq":n,"stmt":"...","latency_us":n,
  ///     "cost":{...}},...]
  static std::string ToJson(const std::vector<SlowStatementEntry>& entries);
  std::string SnapshotJson() const { return ToJson(Snapshot()); }
  std::string DrainJson() { return ToJson(Drain()); }

 private:
  const size_t capacity_;
  const uint64_t threshold_us_;

  mutable std::mutex mu_;
  std::vector<SlowStatementEntry> entries_;  // unordered; sorted on read
  uint64_t total_logged_ = 0;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_SLOW_LOG_H_
