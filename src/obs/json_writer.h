#ifndef CACTIS_OBS_JSON_WRITER_H_
#define CACTIS_OBS_JSON_WRITER_H_

// Minimal streaming JSON serialiser for the observability layer.
//
// The writer emits tokens in document order and handles the structural
// bookkeeping (commas, key/value separators, string escaping). It does
// not validate shape beyond what falls out naturally — callers are
// expected to produce well-formed documents, and the unit tests parse
// the output back to keep that promise honest.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cactis::obs {

// Escapes `s` for inclusion inside a JSON string literal (quotes not
// included). Control characters become \u00XX sequences.
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits the key of the next member; must be followed by a value or a
  // Begin*() call.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view v);
  JsonWriter& Uint(uint64_t v);
  JsonWriter& Int(int64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  // Splices a pre-serialised JSON value verbatim (e.g. embedding one
  // snapshot document inside another). The caller vouches for validity.
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  // Emits the pending comma for the current container, if any.
  void Sep();

  std::string out_;
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_JSON_WRITER_H_
