#include "obs/trace.h"

#include "obs/json_writer.h"

namespace cactis::obs {

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kMarkChunk:
      return "mark_chunk";
    case SpanKind::kGatherChunk:
      return "gather_chunk";
    case SpanKind::kResolveChunk:
      return "resolve_chunk";
    case SpanKind::kComputeChunk:
      return "compute_chunk";
    case SpanKind::kBlockFetch:
      return "block_fetch";
    case SpanKind::kBlockEvict:
      return "block_evict";
    case SpanKind::kBlockDiscard:
      return "block_discard";
    case SpanKind::kWalAppend:
      return "wal_append";
    case SpanKind::kTxnBegin:
      return "txn_begin";
    case SpanKind::kTxnCommit:
      return "txn_commit";
    case SpanKind::kTxnAbort:
      return "txn_abort";
  }
  return "unknown";
}

std::string TraceSink::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("capacity").Uint(capacity_);
  w.Key("total").Uint(next_seq_);
  w.Key("dropped").Uint(dropped_);
  w.Key("events").BeginArray();
  for (const TraceEvent& e : events_) {
    w.BeginObject();
    w.Key("seq").Uint(e.seq);
    w.Key("kind").String(SpanKindName(e.kind));
    w.Key("subject").Uint(e.subject);
    w.Key("detail").Uint(e.detail);
    w.Key("trace").Uint(e.trace_id);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace cactis::obs
