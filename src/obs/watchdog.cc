#include "obs/watchdog.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace cactis::obs {

Watchdog::Watchdog(WatchdogOptions options) : options_(std::move(options)) {
  if (options_.alert_capacity == 0) options_.alert_capacity = 1;
  if (options_.fire_after == 0) options_.fire_after = 1;
  if (options_.clear_after == 0) options_.clear_after = 1;
}

void Watchdog::Emit(const std::string& rule, const char* state, double value,
                    double threshold, const std::string& detail,
                    uint64_t t_ms) {
  Alert a;
  a.seq = next_seq_++;
  a.t_ms = t_ms;
  a.rule = rule;
  a.state = state;
  a.value = value;
  a.threshold = threshold;
  a.detail = detail;
  log_.push_back(std::move(a));
  while (log_.size() > options_.alert_capacity) {
    log_.pop_front();
    ++dropped_;
  }
}

void Watchdog::Step(const std::string& rule, bool breaching, double value,
                    double threshold, const std::string& detail,
                    uint64_t t_ms, uint32_t fire_after, uint32_t clear_after) {
  RuleState& st = rules_[rule];
  if (breaching) {
    st.calm_streak = 0;
    if (!st.raised && ++st.breach_streak >= fire_after) {
      st.raised = true;
      st.breach_streak = 0;
      Emit(rule, "raised", value, threshold, detail, t_ms);
    }
  } else {
    st.breach_streak = 0;
    if (st.raised && ++st.calm_streak >= clear_after) {
      st.raised = false;
      st.calm_streak = 0;
      Emit(rule, "cleared", value, threshold, detail, t_ms);
    }
  }
}

void Watchdog::ForceClear(const std::string& rule, const std::string& detail,
                          uint64_t t_ms) {
  RuleState& st = rules_[rule];
  st.breach_streak = 0;
  st.calm_streak = 0;
  if (st.raised) {
    st.raised = false;
    Emit(rule, "cleared", 0, 0, detail, t_ms);
  }
}

void Watchdog::Observe(const Sample& s) {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t t = s.t_ms;

  // --- queue saturation ---
  const SeriesPoint* depth = s.Find("server.queue_depth");
  const SeriesPoint* cap = s.Find("server.max_queue_depth");
  if (depth != nullptr && cap != nullptr && cap->value > 0) {
    const double threshold = options_.queue_saturation_frac * cap->value;
    Step("queue_saturation", depth->value >= threshold, depth->value,
         threshold,
         "request queue near admission limit", t, options_.fire_after,
         options_.clear_after);
  }

  // --- degraded-mode flips (no hysteresis: a flip is the event) ---
  if (const SeriesPoint* deg = s.Find("server.degraded")) {
    Step("degraded", deg->value != 0, deg->value, 1.0,
         "server in degraded read-only mode", t, 1, 1);
  }

  // --- WAL flush backlog ---
  {
    const SeriesPoint* wedged = s.Find("wal.wedged_flushes");
    const SeriesPoint* give_ups = s.Find("wal.give_ups");
    if (wedged != nullptr || give_ups != nullptr) {
      const uint64_t failing = (wedged != nullptr ? wedged->delta : 0) +
                               (give_ups != nullptr ? give_ups->delta : 0);
      Step("wal_backlog", failing > 0, static_cast<double>(failing), 0.0,
           "WAL flushes failing or refused this interval", t,
           options_.fire_after, options_.clear_after);
    }
  }

  // --- admission-control rejections ---
  if (const SeriesPoint* rej = s.Find("server.requests_rejected")) {
    Step("admission_rejects",
         rej->delta > 0 && rej->rate_per_s >= options_.reject_rate_per_s,
         rej->rate_per_s, options_.reject_rate_per_s,
         "admission control rejecting requests", t, options_.fire_after,
         options_.clear_after);
  }

  // --- clustering drift -> recluster_recommended ---
  const SeriesPoint* runs = s.Find("cluster.reorg_runs");
  const SeriesPoint* reads = s.Find("disk.reads");
  const SeriesPoint* crossings = s.Find("cluster.traversal_crossings");
  if (runs != nullptr && reads != nullptr && crossings != nullptr) {
    if (!drift_have_epoch_ || runs->raw != drift_epoch_) {
      // Reorganize() ran (or first sight of the series): adopt the new
      // epoch, drop the baseline, and clear any standing advisory — the
      // operator did what the alert asked for. The tick that contains
      // the reorg itself is skipped entirely, so the rewrite's own I/O
      // never pollutes a drift window.
      drift_epoch_ = runs->raw;
      drift_have_epoch_ = true;
      drift_have_baseline_ = false;
      ForceClear("recluster_recommended", "baseline reset by reorganize", t);
    } else if (crossings->delta >= options_.drift_min_crossings) {
      const double bpt =
          static_cast<double>(reads->delta) / crossings->delta;
      if (!drift_have_baseline_) {
        // First qualifying window after the reorg: this is the
        // post-reorg blocks/traversal figure drift is measured against.
        drift_baseline_ = bpt;
        drift_have_baseline_ = true;
      } else {
        const double threshold =
            drift_baseline_ * (1.0 + options_.drift_frac);
        Step("recluster_recommended", bpt > threshold, bpt, threshold,
             "observed blocks/traversal drifted above the post-reorg "
             "baseline; placement is stale",
             t, options_.fire_after, options_.clear_after);
      }
    }
    // Ticks with too few crossings carry no signal: streaks freeze.
  }
}

std::vector<Alert> Watchdog::Log(size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  const size_t take = n == 0 ? log_.size() : std::min(n, log_.size());
  return std::vector<Alert>(log_.end() - take, log_.end());
}

std::vector<std::string> Watchdog::Active() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [rule, st] : rules_) {
    if (st.raised) out.push_back(rule);
  }
  return out;
}

bool Watchdog::IsActive(const std::string& rule) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = rules_.find(rule);
  return it != rules_.end() && it->second.raised;
}

std::string Watchdog::AlertsJson(size_t n) const {
  std::lock_guard<std::mutex> lk(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("active").BeginArray();
  for (const auto& [rule, st] : rules_) {
    if (st.raised) w.String(rule);
  }
  w.EndArray();
  const size_t take = n == 0 ? log_.size() : std::min(n, log_.size());
  w.Key("count").Uint(take);
  w.Key("dropped").Uint(dropped_);
  w.Key("alerts").BeginArray();
  for (size_t i = log_.size() - take; i < log_.size(); ++i) {
    const Alert& a = log_[i];
    w.BeginObject();
    w.Key("seq").Uint(a.seq);
    w.Key("t_ms").Uint(a.t_ms);
    w.Key("rule").String(a.rule);
    w.Key("state").String(a.state);
    w.Key("value").Double(a.value);
    w.Key("threshold").Double(a.threshold);
    w.Key("detail").String(a.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace cactis::obs
