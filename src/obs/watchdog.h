#ifndef CACTIS_OBS_WATCHDOG_H_
#define CACTIS_OBS_WATCHDOG_H_

// Declarative rules over sampler ticks, emitting structured alerts into
// a bounded log.
//
// Every rule is level-triggered with hysteresis: it must breach for
// `fire_after` consecutive ticks to raise and hold below threshold for
// `clear_after` consecutive ticks to clear, so a gauge flapping around
// its threshold produces one raised alert, not one per tick. A raised
// rule stays raised (silently) until it clears; raise and clear are the
// only events the log records.
//
// Built-in rules (series names refer to the Sampler's "<group>.<name>"
// scheme; a rule whose inputs are absent from a sample simply does not
// advance):
//
//   queue_saturation       server.queue_depth >= frac * server.max_queue_depth
//   degraded               server.degraded != 0 (fires/clears immediately:
//                          a mode flip is an event, not noise)
//   wal_backlog            interval delta of wal.wedged_flushes +
//                          wal.give_ups > 0 — flushes are failing faster
//                          than the probe restores them
//   admission_rejects      rate of server.requests_rejected >= threshold/s
//   recluster_recommended  observed blocks/traversal — interval
//                          delta(disk.reads) / delta(cluster.traversal_
//                          crossings) — exceeds the post-reorg baseline
//                          by drift_frac. The baseline is the first
//                          qualifying window after the epoch recorded by
//                          Database::Reorganize() (a cluster.reorg_runs
//                          bump resets it and force-clears the alert).
//                          This advisory is the trigger half of the
//                          ROADMAP's online-reclustering item.
//
// Thread-safety: Observe() and the accessors take one internal mutex;
// the sampler calls Observe() from its tick thread while statements read
// AlertsJson() lock-free with respect to the database.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sampler.h"

namespace cactis::obs {

struct WatchdogOptions {
  size_t alert_capacity = 128;  ///< raise/clear events retained
  uint32_t fire_after = 2;      ///< consecutive breaching ticks to raise
  uint32_t clear_after = 2;     ///< consecutive calm ticks to clear
  double queue_saturation_frac = 0.8;
  double reject_rate_per_s = 1.0;
  /// Drift tolerance: recommend reclustering when windowed
  /// blocks/traversal exceeds baseline * (1 + drift_frac).
  double drift_frac = 0.25;
  /// Ticks with fewer traversal crossings than this carry no clustering
  /// signal and neither advance nor clear the drift rule.
  uint64_t drift_min_crossings = 32;
};

struct Alert {
  uint64_t seq = 0;
  uint64_t t_ms = 0;
  std::string rule;
  std::string state;  ///< "raised" | "cleared"
  double value = 0;
  double threshold = 0;
  std::string detail;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options = {});

  /// Evaluates every rule against one sampler tick.
  void Observe(const Sample& sample);

  /// The alert log, oldest first (n == 0: everything retained), plus
  /// currently-active rules:
  ///   {"active":["recluster_recommended",...],"count":N,"dropped":N,
  ///    "alerts":[{"seq":..,"t_ms":..,"rule":"..","state":"raised",
  ///               "value":..,"threshold":..,"detail":".."},...]}
  std::string AlertsJson(size_t n = 0) const;

  std::vector<Alert> Log(size_t n = 0) const;
  std::vector<std::string> Active() const;
  bool IsActive(const std::string& rule) const;

 private:
  struct RuleState {
    uint32_t breach_streak = 0;
    uint32_t calm_streak = 0;
    bool raised = false;
  };

  /// One hysteresis step for `rule`. Returns the rule's raised state.
  void Step(const std::string& rule, bool breaching, double value,
            double threshold, const std::string& detail, uint64_t t_ms,
            uint32_t fire_after, uint32_t clear_after);
  void Emit(const std::string& rule, const char* state, double value,
            double threshold, const std::string& detail, uint64_t t_ms);
  /// Clears `rule` immediately (no hysteresis) if raised.
  void ForceClear(const std::string& rule, const std::string& detail,
                  uint64_t t_ms);

  WatchdogOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, RuleState> rules_;
  std::deque<Alert> log_;
  uint64_t next_seq_ = 1;
  uint64_t dropped_ = 0;

  // Clustering-drift state. The epoch marker is cluster.reorg_runs; a
  // change means Reorganize() ran and recorded a fresh placement.
  bool drift_have_epoch_ = false;
  uint64_t drift_epoch_ = 0;
  bool drift_have_baseline_ = false;
  double drift_baseline_ = 0;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_WATCHDOG_H_
