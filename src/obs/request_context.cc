#include "obs/request_context.h"

#include "obs/json_writer.h"

namespace cactis::obs {

thread_local RequestContext RequestScope::current_ctx_{};
thread_local StatementCost* RequestScope::current_cost_ = nullptr;

void StatementCost::WriteFields(JsonWriter* w) const {
  w->Key("blocks_read").Uint(blocks_read);
  w->Key("blocks_written").Uint(blocks_written);
  w->Key("cache_hits").Uint(cache_hits);
  w->Key("cache_misses").Uint(cache_misses);
  w->Key("attrs_reevaluated").Uint(attrs_reevaluated);
  w->Key("chunks_scheduled").Uint(chunks_scheduled);
  w->Key("wal_bytes").Uint(wal_bytes);
  w->Key("queue_wait_us").Uint(queue_wait_us);
  w->Key("lock_wait_shared_us").Uint(lock_wait_shared_us);
  w->Key("lock_wait_excl_us").Uint(lock_wait_excl_us);
  w->Key("exec_us").Uint(exec_us);
  w->Key("shared_path").Bool(shared_path);
  w->Key("snapshot_path").Bool(snapshot_path);
}

std::string StatementCost::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  WriteFields(&w);
  w.EndObject();
  return w.str();
}

}  // namespace cactis::obs
