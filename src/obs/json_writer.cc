#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>

namespace cactis::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Sep() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Sep();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!needs_comma_.empty()) needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Sep();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!needs_comma_.empty()) needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Sep();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  Sep();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t v) {
  Sep();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Sep();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Sep();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Sep();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Sep();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  Sep();
  out_ += json;
  return *this;
}

}  // namespace cactis::obs
