#ifndef CACTIS_OBS_METRICS_H_
#define CACTIS_OBS_METRICS_H_

// Unified metrics layer.
//
// Two complementary mechanisms share one registry and one JSON snapshot:
//
//  1. Snapshot sources. Subsystems that already keep their own stats
//     structs (DiskStats, BufferPoolStats, EvalStats, ...) register a
//     callback that exports those counters into a MetricsGroup at
//     snapshot time. The hot path pays nothing: counting stays in the
//     existing struct fields and the export runs only when someone asks
//     for a snapshot.
//
//  2. Registry-owned instruments. Counter / Gauge / Histogram objects
//     handed out by name for call sites with no pre-existing struct
//     (e.g. transaction lifecycle counts). Each instrument checks a
//     shared enabled flag before touching its state, so disabled-mode
//     overhead is a predicted-not-taken branch.
//
// The histogram is "histogram-lite": power-of-two buckets (bucket i
// counts samples with i significant bits) plus count and sum. Enough to
// see a distribution's shape without per-sample storage.
//
// Thread-safety: the registry's own structures (source list, instrument
// tables) are guarded by an internal mutex, so registering and
// unregistering sources is safe against a concurrent snapshot — in
// particular, UnregisterSource() does not return while a snapshot may
// still be invoking the callback, which makes "unregister, then destroy
// the state the callback reads" a correct shutdown sequence (the
// TcpServer does exactly this). Source callbacks therefore must not call
// back into the registry. Instrument updates are relaxed atomics: cheap,
// and safe to read from a sampler thread while workers count.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cactis::obs {

class MetricsRegistry;

class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0};
};

class Histogram {
 public:
  static constexpr size_t kBuckets = 32;

  void Record(uint64_t sample) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  // Bucket 0 holds sample 0; bucket i >= 1 holds samples in
  // [2^(i-1), 2^i). Samples beyond 2^31 collapse into the last bucket.
  static size_t BucketOf(uint64_t sample) {
    size_t b = 0;
    while (sample > 0 && b + 1 < kBuckets) {
      sample >>= 1;
      ++b;
    }
    return b;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// A histogram's exported state: a point-in-time copy a sampler can
/// diff against an earlier copy to get interval quantiles.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, Histogram::kBuckets> buckets{};
};

// The sink a snapshot source fills in. Entries keep insertion order so
// snapshots are deterministic.
class MetricsGroup {
 public:
  void AddCounter(std::string name, uint64_t value) {
    counters_.emplace_back(std::move(name), value);
  }
  void AddGauge(std::string name, double value) {
    gauges_.emplace_back(std::move(name), value);
  }
  void AddHistogram(std::string name, HistogramData data) {
    histograms_.emplace_back(std::move(name), std::move(data));
  }
  /// A pre-serialised JSON value spliced verbatim into the group (the
  /// caller vouches for validity). For structured exports that are
  /// neither counter nor gauge — e.g. the server's slow-statement log
  /// and per-session accounting arrays.
  void AddJson(std::string name, std::string json) {
    json_.emplace_back(std::move(name), std::move(json));
  }

  const std::vector<std::pair<std::string, uint64_t>>& counters() const {
    return counters_;
  }
  const std::vector<std::pair<std::string, double>>& gauges() const {
    return gauges_;
  }
  const std::vector<std::pair<std::string, HistogramData>>& histograms()
      const {
    return histograms_;
  }
  const std::vector<std::pair<std::string, std::string>>& json_values()
      const {
    return json_;
  }

 private:
  std::vector<std::pair<std::string, uint64_t>> counters_;
  std::vector<std::pair<std::string, double>> gauges_;
  std::vector<std::pair<std::string, HistogramData>> histograms_;
  std::vector<std::pair<std::string, std::string>> json_;
};

/// A full structured snapshot: every source exported into its group,
/// plus the registry-owned instruments (whose names are already dotted,
/// e.g. "txn.begun"). This is what the time-series Sampler consumes;
/// SnapshotJson() is the same data serialised for humans.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, MetricsGroup>> groups;
  MetricsGroup instruments;
};

class MetricsRegistry {
 public:
  using SourceFn = std::function<void(MetricsGroup*)>;

  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Enables/disables registry-owned instruments. Snapshot sources are
  // unaffected: their counting lives in subsystem stats structs that
  // predate this registry.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Registers (or replaces) the snapshot source for `group`. The
  // callback must outlive its registration. UnregisterSource() blocks
  // until any in-flight snapshot has finished with the callback, after
  // which it is guaranteed never to run again.
  void RegisterSource(const std::string& group, SourceFn fn);
  void UnregisterSource(const std::string& group);

  // Named instruments, created on first use. Pointers stay valid for
  // the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Structured export of every source group plus the registry-owned
  /// instruments. Callers that need a consistent view across subsystems
  /// must provide their own serialization (the Executor samples under
  /// its statement lock).
  MetricsSnapshot Snapshot() const;

  // One JSON document:
  //   {"enabled":bool,
  //    "sources":{<group>:{<counter>:n,...},...},
  //    "counters":{<name>:n,...},
  //    "gauges":{<name>:x,...},
  //    "histograms":{<name>:{"count":n,"sum":n,"buckets":[...]},...}}
  // Within a source group, exported counters render as integers,
  // exported gauges as floating-point numbers, and exported histograms
  // as {"count","sum","buckets"} objects.
  std::string SnapshotJson() const;

 private:
  std::atomic<bool> enabled_;
  // Guards the source list and instrument tables — including while a
  // snapshot invokes source callbacks, so unregistration synchronises
  // with snapshots (see class comment).
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, SourceFn>> sources_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_METRICS_H_
