#ifndef CACTIS_OBS_TRACE_H_
#define CACTIS_OBS_TRACE_H_

// Span-event tracer for chunk traversals and storage traffic.
//
// The evaluator's behaviour is a sequence of chunk runs interleaved with
// block faults; the paper's §2.2–§2.3 arguments are all about that
// ordering. A TraceSink captures it as a bounded ring of (kind, subject,
// detail) events cheap enough to leave compiled in: when disabled (the
// default), Record() is a single branch.
//
// Event vocabulary — `subject` and `detail` are kind-dependent:
//   mark/gather/resolve/compute chunk : subject = instance id,
//                                       detail  = attribute index
//   block fetch / evict / discard     : subject = block id,
//                                       detail  = 1 if dirty write-back
//   wal append                        : subject = log sequence number,
//                                       detail  = payload bytes
//   txn begin / commit / abort        : subject = transaction id,
//                                       detail  = delta record count
//                                                 (commit only)

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>

#include "obs/request_context.h"

namespace cactis::obs {

enum class SpanKind : uint8_t {
  kMarkChunk = 0,
  kGatherChunk,
  kResolveChunk,
  kComputeChunk,
  kBlockFetch,
  kBlockEvict,
  kBlockDiscard,
  kWalAppend,
  kTxnBegin,
  kTxnCommit,
  kTxnAbort,
};

std::string_view SpanKindName(SpanKind kind);

struct TraceEvent {
  SpanKind kind;
  uint64_t seq = 0;  // sink-assigned, monotonic across drops
  uint64_t subject = 0;
  uint64_t detail = 0;
  /// Request identity: RequestScope::CurrentTraceId() of the recording
  /// thread at Record() time. 0 when no statement was in flight (e.g.
  /// direct library use outside the service layer, session disposal).
  uint64_t trace_id = 0;
};

class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceSink(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  size_t capacity() const { return capacity_; }

  // NOT thread-safe: every Record() site runs under the service layer's
  // exclusive statement lock (or in single-threaded library use), which
  // also means the recording thread's RequestScope identifies the
  // statement the event belongs to. The trace_id lookup happens after
  // the enabled check, preserving the one-branch disabled discipline.
  void Record(SpanKind kind, uint64_t subject, uint64_t detail = 0) {
    if (!enabled_) return;
    if (events_.size() == capacity_) {
      events_.pop_front();
      ++dropped_;
    }
    events_.push_back(TraceEvent{kind, next_seq_++, subject, detail,
                                 RequestScope::CurrentTraceId()});
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  // Total events ever recorded, including those dropped off the ring.
  uint64_t total_recorded() const { return next_seq_; }
  uint64_t dropped() const { return dropped_; }

  void Clear() {
    events_.clear();
    dropped_ = 0;
    next_seq_ = 0;
  }

  // {"capacity":n,"total":n,"dropped":n,
  //  "events":[{"seq":n,"kind":"block_fetch","subject":n,"detail":n,
  //             "trace":n},...]}
  std::string ToJson() const;

 private:
  bool enabled_ = false;
  size_t capacity_;
  std::deque<TraceEvent> events_;
  uint64_t next_seq_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace cactis::obs

#endif  // CACTIS_OBS_TRACE_H_
