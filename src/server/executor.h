// Executor: the threaded request engine of the multi-session service
// layer.
//
// Architecture (DESIGN.md "Service layer"):
//
//   clients -> Submit() -> bounded queue -> worker pool -> Database
//
// * Admission control. The queue holds at most max_queue_depth requests.
//   A Submit() against a full queue completes immediately with
//   kRejected — backpressure surfaces to the client instead of queueing
//   unboundedly. Shutdown rejects everything still queued.
//
// * Statement batching. One queue slot carries a whole pipeline of
//   statements; a client round-trips once for
//   `begin; set obj(7).val = val + 1; commit`.
//
// * Concurrency discipline. Workers parse statements in parallel
//   (parsing is pure) and serialize on the session mutex (one batch per
//   session at a time). Database access goes through a reader/writer
//   statement lock: mutating statements hold it exclusively (the
//   mutation path of the core is single-threaded by design). Read-only
//   auto-commit statements (get/peek/select/instances) first try the
//   MVCC snapshot path: a commit-sequence snapshot resolved against the
//   Database's per-instance version chains, with NO statement lock and
//   NO timestamp-ordering marks — a snapshot read can never abort a
//   writer. Only when the chains cannot prove the answer (derived
//   attribute, relationship traversal, uncached history) does the read
//   fall back to the shared statement lock and the cached fast-path
//   entry points, and from there to the exclusive side. `fetch` only
//   advances the session cursor and takes no lock at all. The paper's
//   multi-user concurrency is still timestamp ordering over interleaved
//   mutations; in-transaction reads participate through atomic
//   read-mark updates. Conflicts surface as clean kAborted responses;
//   the client retries.
//
// * Group commit. `commit` is split-phase: the delta is staged in the
//   WAL's group-commit queue under the exclusive lock, the durability
//   wait happens with NO statement lock held (so other statements — and
//   other commits, which batch into one WAL write — proceed during the
//   flush), and the commit is published under the exclusive lock once
//   durable. See DESIGN.md "Group commit".
//
// * Graceful degradation. A mutating statement that fails with a storage
//   fault (a WAL append or block write that survived its retry budget)
//   flips the executor into degraded READ-ONLY mode: further mutations
//   are refused immediately with kUnavailable, while reads — which serve
//   from the buffer pool and caches — keep running. A background probe
//   thread retests the storage layer (scratch-block write/read) every
//   degraded_probe_interval_ms and restores read-write automatically
//   once the disk answers again. The `health` statement and shell
//   `\health` report the state lock-free; metrics carry a
//   server.degraded gauge plus entered/exited/probe/reject counters.
//
// * Observability. The executor registers a "server" metrics group with
//   the database's registry: queue depth gauge, admission rejections,
//   active sessions, per-statement latency histogram (with p50/p99/p999
//   and max gauges), shared-lock acquisitions, fast-path hit/fallback
//   counters, and a live/peak reader-concurrency gauge. (WAL batch-size
//   counters live in the "wal" group.) Snapshot through
//   Executor::SnapshotMetrics(), which takes the statement lock
//   exclusively — Database::SnapshotMetrics() itself is as
//   single-threaded as the rest of the core.

#ifndef CACTIS_SERVER_EXECUTOR_H_
#define CACTIS_SERVER_EXECUTOR_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "core/database.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/sampler.h"
#include "obs/slow_log.h"
#include "obs/watchdog.h"
#include "server/protocol.h"
#include "server/session.h"
#include "server/statement.h"

namespace cactis::server {

struct ServerOptions {
  /// Worker threads. 0 means no threads are started: requests queue and
  /// are drained manually with RunOne() (deterministic tests).
  size_t num_workers = 4;
  /// Admission control: requests queued beyond this are rejected.
  size_t max_queue_depth = 64;
  /// Idle sessions past this are expired (open transactions rolled
  /// back). 0 disables expiry.
  uint64_t session_timeout_ms = 60'000;
  /// Millisecond clock for session-idle accounting. Null = steady clock.
  /// Injectable so expiry tests are deterministic.
  std::function<uint64_t()> now_ms;
  /// Slow-statement log threshold: statements whose latency (lock wait +
  /// execution) reaches this are candidates for the log. 0 logs every
  /// statement (tests, tail-latency hunts).
  uint64_t slow_statement_us = 10'000;
  /// Slow-statement log capacity (the N worst by latency are retained).
  /// 0 disables the log.
  size_t slow_log_capacity = 32;
  /// How often the background health probe re-tests the storage layer
  /// while the server is degraded (a scratch-block write/read round
  /// trip). 0 disables the probe thread: degraded mode then only exits
  /// through an explicit ProbeOnce() call (deterministic tests).
  uint64_t degraded_probe_interval_ms = 25;
  /// Telemetry sampling tick (obs::Sampler): every interval the metrics
  /// registry is snapshotted under the statement lock into the
  /// time-series ring and the watchdog rules run. 0 disables the
  /// sampler thread; SampleMetricsOnce() still works (deterministic
  /// tests, benches). The sampler reuses now_ms when set.
  uint64_t sampler_interval_ms = 1000;
  /// Time-series ring capacity (samples retained; 2 minutes at 1 Hz).
  size_t sampler_ring = 120;
  /// Watchdog rule thresholds / hysteresis (obs/watchdog.h).
  obs::WatchdogOptions watchdog;
};

/// Service-layer counters. All fields are atomics: they are written from
/// client threads (admission) and worker threads (execution) and read by
/// the metrics exporter without any lock.
struct ServerStats {
  std::atomic<uint64_t> requests_submitted{0};
  std::atomic<uint64_t> requests_rejected{0};
  std::atomic<uint64_t> requests_completed{0};
  std::atomic<uint64_t> statements_executed{0};
  std::atomic<uint64_t> statement_errors{0};
  std::atomic<uint64_t> txn_conflicts{0};  // aborts from timestamp conflicts
  std::atomic<uint64_t> txn_aborts{0};     // every abort surfaced to a client
  std::atomic<uint64_t> sessions_opened{0};
  std::atomic<uint64_t> sessions_closed{0};
  std::atomic<uint64_t> sessions_expired{0};
  std::atomic<uint64_t> queue_depth{0};
  std::atomic<uint64_t> queue_depth_peak{0};

  // Concurrent read path. Every non-fetch read lands in exactly one of
  // snapshot_reads / fast_path_reads / fast_path_fallbacks;
  // snapshot_fallbacks additionally counts the snapshot-eligible
  // statements among the latter two (attempted the lock-free path and
  // missed into a locked one).
  std::atomic<uint64_t> shared_lock_acquisitions{0};
  std::atomic<uint64_t> snapshot_reads{0};       // answered lock-free (MVCC)
  std::atomic<uint64_t> snapshot_fallbacks{0};   // snapshot miss -> locked
  std::atomic<uint64_t> fast_path_reads{0};      // answered under shared lock
  std::atomic<uint64_t> fast_path_fallbacks{0};  // retried exclusively
  std::atomic<uint64_t> readers_active{0};       // live gauge
  std::atomic<uint64_t> readers_peak{0};

  // Request-scoped cost attribution, aggregated over every statement
  // (per-session splits live in Session::acct; the worst offenders in
  // the slow-statement log).
  std::atomic<uint64_t> cost_blocks_read{0};
  std::atomic<uint64_t> cost_blocks_written{0};
  std::atomic<uint64_t> cost_cache_hits{0};
  std::atomic<uint64_t> cost_cache_misses{0};
  std::atomic<uint64_t> cost_attrs_reevaluated{0};
  std::atomic<uint64_t> cost_chunks_scheduled{0};
  std::atomic<uint64_t> cost_wal_bytes{0};
  std::atomic<uint64_t> cost_lock_wait_shared_us{0};
  std::atomic<uint64_t> cost_lock_wait_excl_us{0};
  std::atomic<uint64_t> profile_statements{0};  // `profile ...` executed
  std::atomic<uint64_t> explain_statements{0};  // `explain ...` executed
  std::atomic<uint64_t> slow_statements{0};     // admitted past threshold

  // Degraded read-only mode (persistent storage failure).
  std::atomic<uint64_t> degraded{0};            // gauge: 1 while degraded
  std::atomic<uint64_t> degraded_entered{0};
  std::atomic<uint64_t> degraded_exited{0};
  std::atomic<uint64_t> degraded_probes{0};     // health probes attempted
  std::atomic<uint64_t> degraded_rejects{0};    // mutations refused

  void AccumulateCost(const obs::StatementCost& c) {
    auto add = [](std::atomic<uint64_t>& a, uint64_t v) {
      if (v != 0) a.fetch_add(v, std::memory_order_relaxed);
    };
    add(cost_blocks_read, c.blocks_read);
    add(cost_blocks_written, c.blocks_written);
    add(cost_cache_hits, c.cache_hits);
    add(cost_cache_misses, c.cache_misses);
    add(cost_attrs_reevaluated, c.attrs_reevaluated);
    add(cost_chunks_scheduled, c.chunks_scheduled);
    add(cost_wal_bytes, c.wal_bytes);
    add(cost_lock_wait_shared_us, c.lock_wait_shared_us);
    add(cost_lock_wait_excl_us, c.lock_wait_excl_us);
  }

  /// Per-statement latency, power-of-two microsecond buckets (same
  /// shape as obs::Histogram, but atomic).
  static constexpr size_t kLatencyBuckets = 32;
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_buckets{};
  std::atomic<uint64_t> latency_count{0};
  std::atomic<uint64_t> latency_sum_us{0};
  std::atomic<uint64_t> latency_max_us{0};

  void RecordLatencyUs(uint64_t us) {
    latency_buckets[obs::Histogram::BucketOf(us)].fetch_add(
        1, std::memory_order_relaxed);
    latency_count.fetch_add(1, std::memory_order_relaxed);
    latency_sum_us.fetch_add(us, std::memory_order_relaxed);
    uint64_t prev = latency_max_us.load(std::memory_order_relaxed);
    while (us > prev && !latency_max_us.compare_exchange_weak(
                            prev, us, std::memory_order_relaxed)) {
    }
  }

  /// Quantile estimate from the buckets (upper bucket bound), e.g.
  /// q=0.5 / q=0.99. Returns 0 when empty.
  double LatencyQuantileUs(double q) const;

  /// Exports into the "server" metrics group (active_sessions and
  /// num_workers are supplied by the executor).
  void ExportTo(obs::MetricsGroup* g) const;
};

class Executor {
 public:
  /// `db` must outlive the executor. Load the schema before starting
  /// workers (or through LoadSchema(), which serializes correctly).
  Executor(core::Database* db, ServerOptions options);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Starts the worker pool. Idempotent.
  void Start();

  /// Stops workers, rejects everything still queued, expires every
  /// session (rolling back open transactions). Idempotent.
  void Shutdown();

  // --- Session lifecycle --------------------------------------------------

  Result<SessionId> OpenSession();
  Status CloseSession(SessionId id);

  /// Connection-teardown close: removes the session from the table
  /// immediately and rolls back its open transaction. A batch executing
  /// right now normally disposes the session itself the moment it
  /// finishes (see SessionManager::EagerClose); this call then waits at
  /// most one batch to confirm. The network layer calls it from its
  /// teardown thread when a client disconnects uncleanly, so an orphaned
  /// transaction never lingers to idle-timeout.
  Status CloseSessionEager(SessionId id);

  size_t session_count() const { return sessions_.active_count(); }

  // --- Requests -----------------------------------------------------------

  /// Admission-controlled asynchronous submit. The future completes with
  /// kRejected immediately when the queue is full.
  std::future<Response> Submit(Request request);

  /// Callback-style submit for the network layer: `done` is invoked with
  /// the response — on a worker thread after execution, or inline on the
  /// calling thread when admission control rejects the request. Exactly
  /// one invocation, always (shutdown rejects everything still queued).
  void SubmitWithCallback(Request request, std::function<void(Response)> done);

  /// Submit + wait.
  Response Call(Request request);

  /// Pops and executes one queued request on the calling thread.
  /// Returns false when the queue is empty. For num_workers == 0
  /// (deterministic tests) — safe alongside workers too.
  bool RunOne();

  // --- Serialized database access ------------------------------------------

  /// Loads schema under the statement mutex (usable while serving).
  Status LoadSchema(std::string_view source);

  /// Database::SnapshotMetrics() under the statement mutex.
  std::string SnapshotMetrics();

  // --- Telemetry (sampler + watchdog) ---------------------------------------

  /// Takes one sampler tick synchronously (snapshot under the statement
  /// mutex, delta conversion, watchdog evaluation). For deterministic
  /// tests and benches; the background thread does exactly this.
  void SampleMetricsOnce() { sampler_->SampleOnce(); }

  /// The `metrics history [group] [n]` payload (obs::Sampler schema).
  /// Lock-free with respect to the database: reads only the sampler
  /// ring, so it answers in degraded mode and on the snapshot path.
  std::string MetricsHistoryJson(const std::string& group, size_t n) {
    return sampler_->HistoryJson(group, n);
  }

  /// The `alerts` payload (obs::Watchdog schema). Lock-free likewise.
  std::string AlertsJson() { return watchdog_->AlertsJson(); }

  obs::Sampler* sampler() { return sampler_.get(); }
  obs::Watchdog* watchdog() { return watchdog_.get(); }

  // --- Degraded read-only mode ----------------------------------------------

  /// True while the server refuses mutations after a persistent storage
  /// failure (a WAL append or block write that survived its retry
  /// budget). Reads keep serving throughout.
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  /// Probes the storage layer once: allocate a scratch block, write,
  /// read back, free. On success while degraded, flips back to
  /// read-write. Returns true when the probe succeeded. Thread-safe;
  /// called by the background probe thread and directly by tests.
  bool ProbeOnce();

  /// The `health` statement / shell `\health` payload: degraded state,
  /// reason, probe counters. Lock-free — answers even when storage is
  /// down and workers are wedged on it.
  std::string HealthJson();

  // --- Slow-statement log ---------------------------------------------------

  /// JSON array of the retained slow statements, worst-first.
  std::string SnapshotSlowLogJson() const { return slow_log_.SnapshotJson(); }
  /// Same, but empties the log (shell `\slow`, CI artifact dumps).
  std::string DrainSlowLogJson() { return slow_log_.DrainJson(); }
  const obs::SlowStatementLog& slow_log() const { return slow_log_; }

  const ServerStats& stats() const { return stats_; }
  core::Database* db() { return db_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Task {
    Request request;
    std::promise<Response> promise;
    /// Set for callback-style submissions (the network layer): invoked
    /// with the response instead of fulfilling the promise.
    std::function<void(Response)> done;
    uint64_t enqueue_us = 0;
  };

  /// Delivers the response through whichever channel the task carries.
  static void Complete(Task* task, Response r);

  /// Shared admission-control path behind Submit / SubmitWithCallback.
  void Enqueue(Task task);

  uint64_t NowMs() const;
  static uint64_t NowUs();

  void WorkerLoop();
  Response Process(Task* task);
  /// Exclusive-lock statement execution (caller holds db_mu_ exclusive).
  StatementResult ExecuteStatement(Session* s, Statement* st);
  /// Read-only statement: shared lock + fast path, exclusive fallback.
  /// Takes db_mu_ itself.
  StatementResult ExecuteReadStatement(Session* s, Statement* st);
  /// Shared fast path proper (caller holds db_mu_ shared). nullopt means
  /// the cached state could not answer — retry exclusively.
  std::optional<StatementResult> TryExecuteReadShared(Session* s,
                                                      Statement* st);
  /// MVCC snapshot path: resolves an auto-commit read against the
  /// version chains with no statement lock at all (caller holds
  /// schema_mu_ shared to pin the catalog). nullopt means the chains
  /// could not prove the answer, or the statement is ineligible (inside
  /// a transaction, `members`) — fall through to the locked paths.
  std::optional<StatementResult> TryExecuteReadSnapshot(Session* s,
                                                        Statement* st);
  /// Split-phase commit (stage / wait durable / publish). Takes db_mu_
  /// itself, releasing it around the durability wait.
  StatementResult ExecuteCommitStatement(Session* s);
  /// `explain <stmt>`: reports the plan (residency, dependency edges,
  /// scheduling policy) without executing the statement's side effects.
  /// Caller holds db_mu_ exclusive.
  StatementResult ExecuteExplain(Session* s, const Statement& st);
  Result<InstanceId> Resolve(Session* s, const Target& t);

  /// Rolls back and destroys expired/closed sessions' transactions under
  /// the statement mutex.
  void DisposeSessions(std::vector<std::shared_ptr<Session>> dead,
                       bool expired);
  void ReapExpiredSessions();

  /// Flips into degraded read-only mode (idempotent; records the cause
  /// and wakes the probe thread).
  void EnterDegraded(const Status& cause);
  /// Storage is healthy again: resume read-write.
  void ExitDegraded();
  void ProbeLoop();

  core::Database* db_;
  ServerOptions options_;
  SessionManager sessions_;
  ServerStats stats_;
  /// The N worst statements by latency (see ServerOptions). Internally
  /// synchronized; drained via DrainSlowLogJson() or the metrics export.
  obs::SlowStatementLog slow_log_;
  /// Monotonic trace-id mint for statements whose request carries no
  /// client-minted id (local callers). Wire requests propagate the
  /// client's id instead, so spans join across the socket.
  std::atomic<uint64_t> next_trace_id_{0};

  /// Telemetry pipeline: the sampler periodically snapshots the metrics
  /// registry (under db_mu_, via its snapshot callback) into the
  /// time-series ring; the watchdog digests every tick. Both outlive
  /// the worker pool within this object and are stopped in Shutdown().
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::unique_ptr<obs::Sampler> sampler_;

  /// THE statement lock: all Database access goes through it. Mutating
  /// statements hold it exclusively; read-only statements hold it shared
  /// and use the Database's shared fast-path entry points. The MVCC
  /// snapshot path deliberately does NOT take it.
  std::shared_mutex db_mu_;

  /// Pins the schema catalog for snapshot readers: LoadSchema holds it
  /// exclusively (before db_mu_ — never acquire them in the other
  /// order), the snapshot read path holds it shared. Uncontended in
  /// steady state, so the shared acquisition is a single atomic op.
  std::shared_mutex schema_mu_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
  bool started_ = false;
  bool shut_down_ = false;

  // Degraded read-only mode. The flag is the routing hot path (one
  // relaxed-ish load per mutating statement); reason/since sit behind
  // their own mutex and are only touched on transitions and `health`.
  std::atomic<bool> degraded_{false};
  mutable std::mutex degraded_mu_;
  std::string degraded_reason_;
  uint64_t degraded_since_ms_ = 0;

  // Background probe thread: parked until the server degrades, then
  // retests storage every degraded_probe_interval_ms.
  std::thread probe_thread_;
  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
};

}  // namespace cactis::server

#endif  // CACTIS_SERVER_EXECUTOR_H_
