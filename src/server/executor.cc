#include "server/executor.h"

#include <algorithm>
#include <chrono>

#include "common/error_taxonomy.h"
#include "lang/interpreter.h"
#include "obs/json_writer.h"
#include "schema/catalog.h"

namespace cactis::server {

namespace {

/// EvalContext for request expressions (`set obj(7).val = val + 1`,
/// select predicates are handled by Database::SelectWhere itself).
/// Attribute reads go through the session's transaction when one is
/// open, so read-modify-write is atomic under timestamp ordering; the
/// database serialization mutex is held by the caller.
class SessionEvalContext : public lang::EvalContext {
 public:
  SessionEvalContext(core::Database* db, core::Transaction* txn,
                     InstanceId self)
      : db_(db), txn_(txn), self_(self) {}

  Result<Value> GetLocalAttr(const std::string& name) override {
    return txn_ != nullptr ? txn_->Get(self_, name) : db_->Get(self_, name);
  }

  bool HasLocalAttr(const std::string& name) const override {
    auto cls = db_->ClassOf(self_);
    if (!cls.ok()) return false;
    const schema::ObjectClass* oc = db_->catalog()->GetClass(*cls);
    return oc != nullptr && oc->FindAttr(name) != nullptr;
  }

  bool HasPort(const std::string& name) const override {
    auto cls = db_->ClassOf(self_);
    if (!cls.ok()) return false;
    const schema::ObjectClass* oc = db_->catalog()->GetClass(*cls);
    return oc != nullptr && oc->FindPort(name) != nullptr;
  }

  Result<std::vector<Neighbor>> GetNeighbors(
      const std::string& port) override {
    (void)port;
    return Status::InvalidArgument(
        "request expressions cannot traverse relationships; use a derived "
        "attribute rule");
  }

  Result<Value> GetRemoteValue(const Neighbor&,
                               const std::string& name) override {
    return Status::InvalidArgument("no remote value '" + name +
                                   "' in request expressions");
  }

  Status SetLocalAttr(const std::string&, Value) override {
    return Status::InvalidArgument(
        "request expressions cannot assign attributes");
  }

  const lang::BuiltinRegistry& builtins() const override {
    return *db_->builtins();
  }

 private:
  core::Database* const db_;
  core::Transaction* const txn_;
  const InstanceId self_;
};

bool IsAbort(const Status& s) {
  return s.IsTransactionAborted() || s.IsConflict();
}

/// Tracks live/peak reader concurrency while a shared-lock statement is
/// in flight.
class ReaderScope {
 public:
  explicit ReaderScope(ServerStats* stats) : stats_(stats) {
    uint64_t active =
        stats_->readers_active.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = stats_->readers_peak.load(std::memory_order_relaxed);
    while (active > peak && !stats_->readers_peak.compare_exchange_weak(
                                peak, active, std::memory_order_relaxed)) {
    }
  }
  ~ReaderScope() {
    stats_->readers_active.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  ServerStats* const stats_;
};

bool IsConflictAbort(const Status& s) {
  // MaybeAbort wraps the triggering status into the abort message, so a
  // timestamp-ordering conflict reads "... aborted: Conflict: ...".
  return s.IsConflict() ||
         (s.IsTransactionAborted() &&
          s.message().find("Conflict") != std::string::npos);
}

std::string_view StatementKindName(StatementKind k) {
  switch (k) {
    case StatementKind::kBegin:
      return "begin";
    case StatementKind::kCommit:
      return "commit";
    case StatementKind::kAbort:
      return "abort";
    case StatementKind::kCreate:
      return "create";
    case StatementKind::kDelete:
      return "delete";
    case StatementKind::kSet:
      return "set";
    case StatementKind::kGet:
      return "get";
    case StatementKind::kPeek:
      return "peek";
    case StatementKind::kConnect:
      return "connect";
    case StatementKind::kDisconnect:
      return "disconnect";
    case StatementKind::kSelect:
      return "select";
    case StatementKind::kInstances:
      return "instances";
    case StatementKind::kMembers:
      return "members";
    case StatementKind::kFetch:
      return "fetch";
    case StatementKind::kHealth:
      return "health";
    case StatementKind::kReorganize:
      return "reorganize";
    case StatementKind::kMetricsHistory:
      return "metrics history";
    case StatementKind::kAlerts:
      return "alerts";
  }
  return "unknown";
}

/// Charges the calling statement for time spent waiting on a lock.
void ChargeLockWait(bool shared, uint64_t us) {
  if (auto* c = obs::RequestScope::CurrentCost()) {
    if (shared) {
      c->lock_wait_shared_us += us;
    } else {
      c->lock_wait_excl_us += us;
    }
  }
}

}  // namespace

std::string_view ResponseStatusToString(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk:
      return "ok";
    case ResponseStatus::kError:
      return "error";
    case ResponseStatus::kAborted:
      return "aborted";
    case ResponseStatus::kRejected:
      return "rejected";
    case ResponseStatus::kNoSession:
      return "no-session";
    case ResponseStatus::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

double ServerStats::LatencyQuantileUs(double q) const {
  uint64_t total = latency_count.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    cumulative += latency_buckets[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // Bucket 0 holds sample 0; bucket i >= 1 holds [2^(i-1), 2^i).
      // Report the upper bound.
      return i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << i);
    }
  }
  return static_cast<double>(uint64_t{1} << (kLatencyBuckets - 1));
}

void ServerStats::ExportTo(obs::MetricsGroup* g) const {
  auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  g->AddCounter("requests_submitted", load(requests_submitted));
  g->AddCounter("requests_rejected", load(requests_rejected));
  g->AddCounter("requests_completed", load(requests_completed));
  g->AddCounter("statements_executed", load(statements_executed));
  g->AddCounter("statement_errors", load(statement_errors));
  g->AddCounter("txn_conflicts", load(txn_conflicts));
  g->AddCounter("txn_aborts", load(txn_aborts));
  g->AddCounter("sessions_opened", load(sessions_opened));
  g->AddCounter("sessions_closed", load(sessions_closed));
  g->AddCounter("sessions_expired", load(sessions_expired));
  g->AddCounter("queue_depth_peak", load(queue_depth_peak));
  g->AddGauge("queue_depth", static_cast<double>(load(queue_depth)));
  g->AddCounter("shared_lock_acquisitions", load(shared_lock_acquisitions));
  g->AddCounter("snapshot_reads", load(snapshot_reads));
  g->AddCounter("snapshot_fallbacks", load(snapshot_fallbacks));
  g->AddCounter("fast_path_reads", load(fast_path_reads));
  g->AddCounter("fast_path_fallbacks", load(fast_path_fallbacks));
  g->AddGauge("reader_concurrency", static_cast<double>(load(readers_active)));
  g->AddCounter("reader_concurrency_peak", load(readers_peak));
  g->AddCounter("cost_blocks_read", load(cost_blocks_read));
  g->AddCounter("cost_blocks_written", load(cost_blocks_written));
  g->AddCounter("cost_cache_hits", load(cost_cache_hits));
  g->AddCounter("cost_cache_misses", load(cost_cache_misses));
  g->AddCounter("cost_attrs_reevaluated", load(cost_attrs_reevaluated));
  g->AddCounter("cost_chunks_scheduled", load(cost_chunks_scheduled));
  g->AddCounter("cost_wal_bytes", load(cost_wal_bytes));
  g->AddCounter("cost_lock_wait_shared_us", load(cost_lock_wait_shared_us));
  g->AddCounter("cost_lock_wait_excl_us", load(cost_lock_wait_excl_us));
  g->AddCounter("profile_statements", load(profile_statements));
  g->AddCounter("explain_statements", load(explain_statements));
  g->AddCounter("slow_statements", load(slow_statements));
  g->AddGauge("degraded", static_cast<double>(load(degraded)));
  g->AddCounter("degraded_entered", load(degraded_entered));
  g->AddCounter("degraded_exited", load(degraded_exited));
  g->AddCounter("degraded_probes", load(degraded_probes));
  g->AddCounter("degraded_rejects", load(degraded_rejects));
  g->AddCounter("statement_latency_count", load(latency_count));
  g->AddCounter("statement_latency_sum_us", load(latency_sum_us));
  g->AddGauge("statement_latency_p50_us", LatencyQuantileUs(0.5));
  g->AddGauge("statement_latency_p99_us", LatencyQuantileUs(0.99));
  g->AddGauge("statement_latency_p999_us", LatencyQuantileUs(0.999));
  g->AddGauge("statement_latency_max_us",
              static_cast<double>(load(latency_max_us)));
  // Full bucket export: the sampler diffs consecutive snapshots of this
  // histogram into interval p50/p99 (the lifetime quantiles above go
  // flat the moment the workload shifts; the interval ones do not).
  obs::HistogramData lat;
  lat.count = load(latency_count);
  lat.sum = load(latency_sum_us);
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    lat.buckets[i] = load(latency_buckets[i]);
  }
  g->AddHistogram("statement_latency_us", std::move(lat));
}

Executor::Executor(core::Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      sessions_(options_.session_timeout_ms),
      slow_log_(options_.slow_log_capacity, options_.slow_statement_us) {
  // Snapshots run through Executor::SnapshotMetrics() (statement mutex),
  // so reading these atomics plus the session table is safe. Everything
  // exported here is internally synchronized regardless (stats_ and
  // session accounting are atomics, the slow log has its own mutex), so
  // the export also tolerates concurrent statement execution — see the
  // snapshot-under-load test.
  db_->metrics()->RegisterSource("server", [this](obs::MetricsGroup* g) {
    stats_.ExportTo(g);
    g->AddGauge("active_sessions",
                static_cast<double>(sessions_.active_count()));
    g->AddGauge("num_workers", static_cast<double>(options_.num_workers));
    // Admission limit, so the watchdog's saturation rule needs no
    // out-of-band configuration.
    g->AddGauge("max_queue_depth",
                static_cast<double>(options_.max_queue_depth));
    g->AddCounter("slow_statements_logged", slow_log_.total_logged());
    g->AddJson("slow_statements", slow_log_.SnapshotJson());
    obs::JsonWriter w;
    w.BeginArray();
    sessions_.ForEach([&w](const Session& s) {
      auto load = [](const std::atomic<uint64_t>& a) {
        return a.load(std::memory_order_relaxed);
      };
      w.BeginObject();
      w.Key("session").Uint(s.id.value);
      w.Key("statements").Uint(load(s.acct.statements));
      w.Key("blocks_read").Uint(load(s.acct.blocks_read));
      w.Key("blocks_written").Uint(load(s.acct.blocks_written));
      w.Key("cache_hits").Uint(load(s.acct.cache_hits));
      w.Key("cache_misses").Uint(load(s.acct.cache_misses));
      w.Key("attrs_reevaluated").Uint(load(s.acct.attrs_reevaluated));
      w.Key("chunks_scheduled").Uint(load(s.acct.chunks_scheduled));
      w.Key("wal_bytes").Uint(load(s.acct.wal_bytes));
      w.Key("queue_wait_us").Uint(load(s.acct.queue_wait_us));
      w.Key("lock_wait_shared_us").Uint(load(s.acct.lock_wait_shared_us));
      w.Key("lock_wait_excl_us").Uint(load(s.acct.lock_wait_excl_us));
      w.Key("exec_us").Uint(load(s.acct.exec_us));
      w.EndObject();
    });
    w.EndArray();
    g->AddJson("per_session", w.str());
  });

  // Telemetry pipeline: sampler ticks snapshot the registry under the
  // statement lock (exclusive — the same discipline as
  // SnapshotMetrics(), so subsystem stats structs are quiescent while
  // exported) and feed the watchdog. One tick per second by default;
  // E17 gates the cost at <2% of throughput.
  watchdog_ = std::make_unique<obs::Watchdog>(options_.watchdog);
  obs::SamplerOptions sopts;
  sopts.interval_ms = options_.sampler_interval_ms;
  sopts.ring_capacity = options_.sampler_ring;
  sopts.now_ms = options_.now_ms;  // fake clocks flow through
  sampler_ = std::make_unique<obs::Sampler>(
      [this] {
        std::lock_guard<std::shared_mutex> dlk(db_mu_);
        return db_->metrics()->Snapshot();
      },
      std::move(sopts));
  sampler_->SetObserver(
      [this](const obs::Sample& s) { watchdog_->Observe(s); });
}

Executor::~Executor() {
  Shutdown();
  db_->metrics()->UnregisterSource("server");
}

uint64_t Executor::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Executor::NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Executor::Start() {
  std::lock_guard<std::mutex> lk(queue_mu_);
  if (started_ || stopping_) return;
  started_ = true;
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (options_.degraded_probe_interval_ms > 0) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
  sampler_->Start();  // no-op when sampler_interval_ms == 0
}

void Executor::Shutdown() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    stopping_ = true;
  }
  // Stop the sampler first: its snapshot callback takes db_mu_, and
  // nothing below should contend with a tick mid-teardown.
  sampler_->Stop();
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lk(probe_mu_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();

  // Reject everything still queued: nothing half-executes at shutdown.
  std::deque<Task> leftover;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    leftover.swap(queue_);
    stats_.queue_depth.store(0, std::memory_order_relaxed);
  }
  for (auto& task : leftover) {
    Response r;
    r.status = ResponseStatus::kRejected;
    r.payload = "server shutting down";
    stats_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    Complete(&task, std::move(r));
  }

  // Expire every session; open transactions roll back.
  DisposeSessions(sessions_.TakeAll(), /*expired=*/false);

  // Publish any staged commits whose batches flushed (their owners were
  // already acknowledged) so the final state matches what clients saw.
  {
    std::lock_guard<std::shared_mutex> dlk(db_mu_);
    (void)db_->DrainCommits();
  }
}

Result<SessionId> Executor::OpenSession() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopping_) return Status::InvalidArgument("server shutting down");
  }
  auto s = sessions_.Open(NowMs());
  stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  return s->id;
}

Status Executor::CloseSession(SessionId id) {
  auto victim = sessions_.Close(id);
  if (victim == nullptr) {
    return Status::NotFound("no session " + std::to_string(id.value));
  }
  stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::shared_ptr<Session>> dead;
  dead.push_back(std::move(victim));
  DisposeSessions(std::move(dead), /*expired=*/false);
  return Status::OK();
}

Status Executor::CloseSessionEager(SessionId id) {
  bool deferred = false;
  auto victim = sessions_.EagerClose(id, &deferred);
  if (victim == nullptr) {
    return Status::NotFound("no session " + std::to_string(id.value));
  }
  stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  if (deferred) {
    // A batch was executing when the connection died. The worker usually
    // sees the disconnected flag at batch end and disposes the corpse
    // itself, but that check can race the flag store — so confirm with a
    // blocking wait (bounded by one batch; this runs on the network
    // layer's teardown thread, never on the event loop).
    std::unique_lock<std::mutex> slk(victim->mu);
    if (victim->closed) return Status::OK();  // the worker got it
    victim->closed = true;
    slk.unlock();
  }
  std::vector<std::shared_ptr<Session>> dead;
  dead.push_back(std::move(victim));
  DisposeSessions(std::move(dead), /*expired=*/false);
  return Status::OK();
}

void Executor::DisposeSessions(std::vector<std::shared_ptr<Session>> dead,
                               bool expired) {
  if (dead.empty()) return;
  std::lock_guard<std::shared_mutex> dlk(db_mu_);
  for (auto& s : dead) {
    // The session is out of the table and marked closed; nothing else
    // touches it. Destroying an open transaction rolls it back.
    s->txn.reset();
    if (expired) {
      stats_.sessions_expired.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Executor::ReapExpiredSessions() {
  DisposeSessions(sessions_.ReapExpired(NowMs()), /*expired=*/true);
}

void Executor::Complete(Task* task, Response r) {
  if (task->done) {
    task->done(std::move(r));
  } else {
    task->promise.set_value(std::move(r));
  }
}

void Executor::Enqueue(Task task) {
  stats_.requests_submitted.fetch_add(1, std::memory_order_relaxed);
  task.enqueue_us = NowUs();
  bool rejected = false;
  const char* reason = nullptr;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (stopping_) {
      rejected = true;
      reason = "server shutting down";
    } else if (queue_.size() >= options_.max_queue_depth) {
      rejected = true;
      reason = "request queue full";
    } else {
      queue_.push_back(std::move(task));
      uint64_t depth = queue_.size();
      stats_.queue_depth.store(depth, std::memory_order_relaxed);
      uint64_t peak = stats_.queue_depth_peak.load(std::memory_order_relaxed);
      while (depth > peak &&
             !stats_.queue_depth_peak.compare_exchange_weak(
                 peak, depth, std::memory_order_relaxed)) {
      }
    }
  }
  if (rejected) {
    stats_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.status = ResponseStatus::kRejected;
    r.payload = reason;
    Complete(&task, std::move(r));
  } else {
    queue_cv_.notify_one();
  }
}

std::future<Response> Executor::Submit(Request request) {
  Task task;
  task.request = std::move(request);
  std::future<Response> fut = task.promise.get_future();
  Enqueue(std::move(task));
  return fut;
}

void Executor::SubmitWithCallback(Request request,
                                  std::function<void(Response)> done) {
  Task task;
  task.request = std::move(request);
  task.done = std::move(done);
  Enqueue(std::move(task));
}

Response Executor::Call(Request request) {
  return Submit(std::move(request)).get();
}

bool Executor::RunOne() {
  Task task;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
  }
  Response r = Process(&task);
  stats_.requests_completed.fetch_add(1, std::memory_order_relaxed);
  Complete(&task, std::move(r));
  return true;
}

void Executor::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping; leftovers rejected later
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
    }
    Response r = Process(&task);
    stats_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    Complete(&task, std::move(r));
  }
}

Status Executor::LoadSchema(std::string_view source) {
  // schema_mu_ first (snapshot readers pin the catalog through it
  // without ever touching db_mu_), then the statement lock.
  std::lock_guard<std::shared_mutex> slk(schema_mu_);
  std::lock_guard<std::shared_mutex> dlk(db_mu_);
  return db_->LoadSchema(source);
}

std::string Executor::SnapshotMetrics() {
  std::lock_guard<std::shared_mutex> dlk(db_mu_);
  // Publish every already-durable staged commit first, so the committed-
  // transaction gauge and WAL counters agree with what clients were told.
  (void)db_->DrainCommits();
  return db_->SnapshotMetrics();
}

Response Executor::Process(Task* task) {
  const uint64_t picked_up_us = NowUs();

  Response resp;
  resp.metrics.queue_wait_us = picked_up_us - task->enqueue_us;

  auto session = sessions_.Find(task->request.session);
  if (session == nullptr) {
    ReapExpiredSessions();
    resp.status = ResponseStatus::kNoSession;
    resp.payload = "unknown or expired session";
    return resp;
  }
  std::unique_lock<std::mutex> slk(session->mu);
  if (session->closed) {
    resp.status = ResponseStatus::kNoSession;
    resp.payload = "session closed";
    return resp;
  }
  // Refresh before reaping: issuing a request *is* activity, so the
  // requester never counts as idle (the reaper also skips it because its
  // mutex is held here).
  session->last_active_ms.store(NowMs(), std::memory_order_relaxed);
  ReapExpiredSessions();

  bool first_statement = true;
  uint64_t stmt_index = 0;
  for (const std::string& text : task->request.statements) {
    auto parsed = ParseStatement(text);
    StatementResult result;
    if (!parsed.ok()) {
      result.status = parsed.status();
      stats_.statement_errors.fetch_add(1, std::memory_order_relaxed);
      resp.statements.push_back(std::move(result));
      resp.status = ResponseStatus::kError;
      break;
    }
    {
      // Request-scoped observability: mint this statement's identity and
      // install it thread-locally. Every instrumented subsystem below
      // (disk, buffer pool, eval engine, scheduler, WAL) attributes work
      // to it through RequestScope — trace events carry the trace id and
      // the cost accumulator collects the resource breakdown.
      obs::RequestContext ctx;
      // End-to-end tracing: a wire request carries the trace id the
      // client minted (statement i of the batch gets id + i), so the id
      // a remote `profile` returns is the one the client logged. Local
      // callers leave it 0 and get a server-minted id as before.
      ctx.trace_id =
          task->request.trace_id != 0
              ? task->request.trace_id + stmt_index
              : next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
      ++stmt_index;
      ctx.session_id = session->id.value;
      ctx.statement_seq = ++session->statement_seq;
      obs::StatementCost cost;
      // The request waited in the queue once; charge its first statement.
      if (first_statement) cost.queue_wait_us = resp.metrics.queue_wait_us;
      first_statement = false;
      obs::RequestScope scope(ctx, &cost);

      const bool is_profile =
          parsed->modifier == StatementModifier::kProfile;

      // Mutating statements (everything that is neither a read, an
      // abort — which only releases resources — nor `health`) are
      // refused while the server is degraded, and flip the server INTO
      // degraded mode when they die on a storage fault.
      const bool is_mutation =
          !IsReadOnlyStatement(*parsed) &&
          parsed->modifier != StatementModifier::kExplain &&
          parsed->kind != StatementKind::kAbort &&
          parsed->kind != StatementKind::kHealth &&
          parsed->kind != StatementKind::kMetricsHistory &&
          parsed->kind != StatementKind::kAlerts;

      // Latency includes the statement-lock wait: that contention is the
      // very thing the reader/writer split is meant to shrink.
      const uint64_t t0 = NowUs();
      if (parsed->kind == StatementKind::kHealth) {
        // Lock-free by design: health must answer while storage is down.
        result.payload = HealthJson();
      } else if (parsed->kind == StatementKind::kMetricsHistory) {
        // Also lock-free: reads only the sampler's ring, so history is
        // inspectable in degraded mode and never blocks on a writer.
        result.payload = MetricsHistoryJson(
            parsed->class_name, static_cast<size_t>(parsed->count));
      } else if (parsed->kind == StatementKind::kAlerts) {
        result.payload = AlertsJson();
      } else if (is_mutation && degraded()) {
        stats_.degraded_rejects.fetch_add(1, std::memory_order_relaxed);
        std::string reason;
        {
          std::lock_guard<std::mutex> lk(degraded_mu_);
          reason = degraded_reason_;
        }
        result.status = Status::Unavailable(
            "server degraded (read-only): " + reason);
      } else if (parsed->modifier == StatementModifier::kExplain) {
        const uint64_t lk0 = NowUs();
        std::lock_guard<std::shared_mutex> dlk(db_mu_);
        cost.lock_wait_excl_us += NowUs() - lk0;
        result = ExecuteExplain(session.get(), *parsed);
        stats_.explain_statements.fetch_add(1, std::memory_order_relaxed);
      } else if (IsReadOnlyStatement(*parsed)) {
        result = ExecuteReadStatement(session.get(), &*parsed);
      } else if (parsed->kind == StatementKind::kCommit) {
        result = ExecuteCommitStatement(session.get());
      } else {
        const uint64_t lk0 = NowUs();
        std::lock_guard<std::shared_mutex> dlk(db_mu_);
        cost.lock_wait_excl_us += NowUs() - lk0;
        result = ExecuteStatement(session.get(), &*parsed);
      }
      // A mutation that died on a storage fault — a transient give-up
      // (kUnavailable) or a permanent write failure (kIoError) — means
      // the write path is gone: degrade to read-only rather than let
      // every subsequent mutation grind through the same retry budget.
      if (is_mutation && IsStorageFault(result.status)) {
        EnterDegraded(result.status);
      }

      const uint64_t dt = NowUs() - t0;
      cost.exec_us = dt;
      resp.metrics.exec_us += dt;
      stats_.RecordLatencyUs(dt);

      // Fold the statement's cost into the aggregates and, when it
      // qualifies, the slow-statement log.
      stats_.AccumulateCost(cost);
      session->acct.Add(cost);
      if (options_.slow_log_capacity > 0 && dt >= options_.slow_statement_us) {
        stats_.slow_statements.fetch_add(1, std::memory_order_relaxed);
      }
      slow_log_.MaybeRecord(ctx, text, dt, cost);

      if (is_profile) {
        stats_.profile_statements.fetch_add(1, std::memory_order_relaxed);
        // `profile` replaces the payload with the result + cost JSON.
        obs::JsonWriter w;
        w.BeginObject();
        w.Key("trace_id").Uint(ctx.trace_id);
        w.Key("session").Uint(ctx.session_id);
        w.Key("seq").Uint(ctx.statement_seq);
        w.Key("status").String(result.status.ok() ? "ok"
                                                  : result.status.ToString());
        w.Key("result").String(result.payload);
        w.Key("cost");
        w.BeginObject();
        cost.WriteFields(&w);
        w.EndObject();
        w.EndObject();
        result.payload = w.str();
      }
    }
    ++resp.metrics.statements_run;
    stats_.statements_executed.fetch_add(1, std::memory_order_relaxed);
    const bool failed = !result.status.ok();
    const bool abort = IsAbort(result.status);
    const bool unavailable = result.status.IsUnavailable();
    if (failed && !abort && !unavailable) {
      stats_.statement_errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (abort) {
      stats_.txn_aborts.fetch_add(1, std::memory_order_relaxed);
      if (IsConflictAbort(result.status)) {
        stats_.txn_conflicts.fetch_add(1, std::memory_order_relaxed);
        ++session->conflicts;
      }
    }
    resp.statements.push_back(std::move(result));
    if (failed) {
      resp.status = abort         ? ResponseStatus::kAborted
                    : unavailable ? ResponseStatus::kUnavailable
                                  : ResponseStatus::kError;
      break;
    }
  }

  for (size_t i = 0; i < resp.statements.size(); ++i) {
    if (i > 0) resp.payload += '\n';
    resp.payload += resp.statements[i].status.ok()
                        ? resp.statements[i].payload
                        : resp.statements[i].status.ToString();
  }
  resp.metrics.session_ts = session->last_ts;
  session->last_active_ms.store(NowMs(), std::memory_order_relaxed);

  // Eager close raced this batch: the client's connection died while we
  // were executing. The manager already removed the session from its
  // table; roll back its transaction now instead of letting it linger to
  // idle-timeout. If this load misses a concurrent flag store,
  // CloseSessionEager's blocking fallback (which waits on the session
  // mutex we still hold) disposes the corpse instead; `closed` flips
  // under the mutex on whichever path wins, so it is rolled back exactly
  // once.
  bool dispose = false;
  if (session->disconnected.load(std::memory_order_seq_cst) &&
      !session->closed) {
    session->closed = true;
    dispose = true;
  }
  slk.unlock();
  if (dispose) {
    std::vector<std::shared_ptr<Session>> dead;
    dead.push_back(session);
    DisposeSessions(std::move(dead), /*expired=*/false);
  }
  return resp;
}

Result<InstanceId> Executor::Resolve(Session* s, const Target& t) {
  if (t.raw.valid()) return t.raw;
  auto it = s->bindings.find(t.name);
  if (it == s->bindings.end()) {
    return Status::NotFound("unknown name '" + t.name +
                            "' (bind with: create <class> as " + t.name +
                            ")");
  }
  return it->second;
}

StatementResult Executor::ExecuteReadStatement(Session* s, Statement* st) {
  // `fetch` reads only session-local cursor state (protected by the
  // session mutex, which the caller holds): no database, no lock.
  if (st->kind == StatementKind::kFetch) {
    StatementResult r;
    if (s->cursor_pos >= s->cursor.size()) {
      r.payload = "end";
      return r;
    }
    size_t take = std::min(static_cast<size_t>(st->count),
                           s->cursor.size() - s->cursor_pos);
    for (size_t i = 0; i < take; ++i) {
      if (i > 0) r.payload += ' ';
      r.payload += FormatInstance(s->cursor[s->cursor_pos + i]);
    }
    s->cursor_pos += take;
    return r;
  }

  // MVCC snapshot first: resolve against the version chains with no
  // statement lock and no timestamp-ordering marks. A snapshot-eligible
  // statement that misses here is counted in snapshot_fallbacks and
  // continues into the locked paths below.
  {
    std::shared_lock<std::shared_mutex> slk(schema_mu_);
    ReaderScope readers(&stats_);
    std::optional<StatementResult> snap = TryExecuteReadSnapshot(s, st);
    if (snap.has_value()) {
      stats_.snapshot_reads.fetch_add(1, std::memory_order_relaxed);
      if (auto* c = obs::RequestScope::CurrentCost()) c->snapshot_path = true;
      return std::move(*snap);
    }
  }

  {
    const uint64_t lk0 = NowUs();
    std::shared_lock<std::shared_mutex> dlk(db_mu_);
    ChargeLockWait(/*shared=*/true, NowUs() - lk0);
    stats_.shared_lock_acquisitions.fetch_add(1, std::memory_order_relaxed);
    ReaderScope readers(&stats_);
    std::optional<StatementResult> fast = TryExecuteReadShared(s, st);
    if (fast.has_value()) {
      stats_.fast_path_reads.fetch_add(1, std::memory_order_relaxed);
      if (auto* c = obs::RequestScope::CurrentCost()) c->shared_path = true;
      return std::move(*fast);
    }
  }
  // The cached state could not answer (block not resident, derived value
  // out of date, unsubscribed, or a CC conflict that must abort
  // properly): run the full statement exclusively.
  stats_.fast_path_fallbacks.fetch_add(1, std::memory_order_relaxed);
  const uint64_t lk0 = NowUs();
  std::lock_guard<std::shared_mutex> dlk(db_mu_);
  ChargeLockWait(/*shared=*/false, NowUs() - lk0);
  return ExecuteStatement(s, st);
}

std::optional<StatementResult> Executor::TryExecuteReadShared(Session* s,
                                                              Statement* st) {
  StatementResult r;
  switch (st->kind) {
    case StatementKind::kGet:
    case StatementKind::kPeek: {
      auto id = Resolve(s, st->a);
      if (!id.ok()) {
        r.status = id.status();
        return r;
      }
      // Peek is an auto-commit read regardless of any open transaction
      // (same as the exclusive path); Get reads through the session's
      // transaction when one is open.
      const bool is_get = st->kind == StatementKind::kGet;
      core::Transaction* txn = is_get ? s->txn.get() : nullptr;
      auto v = db_->TryGetShared(txn, *id, st->attr_a, /*subscribe=*/is_get);
      if (!v.has_value()) return std::nullopt;
      if (!v->ok()) {
        // Only definitive errors (e.g. unknown attribute) come back
        // engaged; conflicts miss instead, so no abort handling here.
        r.status = v->status();
        return r;
      }
      r.payload = (*v)->ToString();
      return r;
    }
    case StatementKind::kInstances: {
      auto ids = db_->InstancesOfShared(st->class_name);
      if (!ids.ok()) {
        r.status = ids.status();
        return r;
      }
      s->cursor = std::move(*ids);
      s->cursor_pos = 0;
      r.payload = "count=" + std::to_string(s->cursor.size());
      return r;
    }
    case StatementKind::kMembers: {
      auto ids = db_->TryMembersOfSubtypeShared(st->class_name);
      if (!ids.has_value()) return std::nullopt;
      if (!ids->ok()) {
        r.status = ids->status();
        return r;
      }
      s->cursor = std::move(**ids);
      s->cursor_pos = 0;
      r.payload = "count=" + std::to_string(s->cursor.size());
      return r;
    }
    case StatementKind::kSelect: {
      auto ids = db_->TrySelectWhereShared(st->class_name, st->predicate);
      if (!ids.has_value()) return std::nullopt;
      if (!ids->ok()) {
        r.status = ids->status();
        return r;
      }
      s->cursor = std::move(**ids);
      s->cursor_pos = 0;
      r.payload = "count=" + std::to_string(s->cursor.size());
      return r;
    }
    default:
      return std::nullopt;
  }
}

std::optional<StatementResult> Executor::TryExecuteReadSnapshot(Session* s,
                                                                Statement* st) {
  // Eligible: auto-commit reads only. A `get` inside an open transaction
  // must see the transaction's own uncommitted writes and take part in
  // concurrency control; `members` needs subtype predicates, which are
  // derived and never chained. Ineligible statements return nullopt
  // without counting a snapshot fallback.
  StatementResult r;
  // Miss on an eligible statement: record the fallback, then fall
  // through to the locked paths.
  auto miss = [this]() -> std::optional<StatementResult> {
    stats_.snapshot_fallbacks.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  };
  switch (st->kind) {
    case StatementKind::kGet:
    case StatementKind::kPeek: {
      if (st->kind == StatementKind::kGet && s->txn != nullptr) {
        return std::nullopt;
      }
      auto id = Resolve(s, st->a);
      if (!id.ok()) {
        r.status = id.status();
        return r;
      }
      txn::SnapshotIndex::Snapshot snap = db_->AcquireSnapshot();
      auto v = db_->TryGetSnapshot(snap, *id, st->attr_a);
      if (!v.has_value()) return miss();
      if (!v->ok()) {
        // Only definitive errors (unknown attribute) come back engaged.
        r.status = v->status();
        return r;
      }
      r.payload = (*v)->ToString();
      return r;
    }
    case StatementKind::kInstances: {
      txn::SnapshotIndex::Snapshot snap = db_->AcquireSnapshot();
      auto ids = db_->TryInstancesOfSnapshot(snap, st->class_name);
      if (!ids.has_value()) return miss();
      if (!ids->ok()) {
        r.status = ids->status();
        return r;
      }
      s->cursor = std::move(**ids);
      s->cursor_pos = 0;
      r.payload = "count=" + std::to_string(s->cursor.size());
      return r;
    }
    case StatementKind::kSelect: {
      txn::SnapshotIndex::Snapshot snap = db_->AcquireSnapshot();
      auto ids = db_->TrySelectWhereSnapshot(snap, st->class_name,
                                             st->predicate);
      if (!ids.has_value()) return miss();
      if (!ids->ok()) {
        r.status = ids->status();
        return r;
      }
      s->cursor = std::move(**ids);
      s->cursor_pos = 0;
      r.payload = "count=" + std::to_string(s->cursor.size());
      return r;
    }
    default:
      return std::nullopt;
  }
}

StatementResult Executor::ExecuteCommitStatement(Session* s) {
  StatementResult r;
  if (s->txn == nullptr) {
    r.status = Status::InvalidArgument("no open transaction");
    return r;
  }
  // Phase 1 (exclusive): stage the delta in the WAL's group-commit queue.
  uint64_t ticket = 0;
  {
    const uint64_t lk0 = NowUs();
    std::lock_guard<std::shared_mutex> dlk(db_mu_);
    ChargeLockWait(/*shared=*/false, NowUs() - lk0);
    auto staged = s->txn->StageCommit();
    if (!staged.ok()) {
      s->txn.reset();
      ++s->aborts;
      r.status = staged.status();
      return r;
    }
    ticket = *staged;
  }
  // Phase 2 (no lock): wait for the batch flush. Other statements — and
  // other commits, which batch into the same WAL write — run meanwhile.
  Status durable = s->txn->WaitCommitDurable(ticket);
  // Phase 3 (exclusive): publish, or record the abort on flush failure.
  Status status;
  {
    const uint64_t lk0 = NowUs();
    std::lock_guard<std::shared_mutex> dlk(db_mu_);
    ChargeLockWait(/*shared=*/false, NowUs() - lk0);
    status = s->txn->FinishCommit(ticket, std::move(durable));
  }
  s->txn.reset();
  if (status.ok()) {
    ++s->commits;
    r.payload = "committed";
    r.status = status;
  } else {
    ++s->aborts;
    r.status = status;
  }
  return r;
}

StatementResult Executor::ExecuteExplain(Session* s, const Statement& st) {
  StatementResult r;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("explain").String(StatementKindName(st.kind));

  switch (st.kind) {
    case StatementKind::kGet:
    case StatementKind::kPeek:
    case StatementKind::kSet: {
      auto id = Resolve(s, st.a);
      if (!id.ok()) {
        r.status = id.status();
        return r;
      }
      auto info = db_->ExplainAttr(*id, st.attr_a);
      if (!info.ok()) {
        r.status = info.status();
        return r;
      }
      w.Key("target").String(FormatInstance(*id));
      w.Key("attr").String(st.attr_a);
      w.Key("class").String(info->class_name);
      w.Key("attr_kind").String(info->attr_kind);
      w.Key("block").Uint(info->block);
      w.Key("resident").Bool(info->resident);
      w.Key("cached").Bool(info->cached);
      w.Key("out_of_date").Bool(info->out_of_date);
      w.Key("subscribed").Bool(info->subscribed);
      w.Key("depends_on");
      w.BeginArray();
      for (const auto& d : info->depends_on) w.String(d);
      w.EndArray();
      w.Key("dependents");
      w.BeginArray();
      for (const auto& d : info->dependents) w.String(d);
      w.EndArray();
      w.Key("policy").String(
          sched::SchedulingPolicyToString(db_->options().policy));
      // Plan hint: what executing this statement would actually do.
      std::string action;
      if (st.kind == StatementKind::kSet) {
        action = "assign";
        if (!info->dependents.empty()) {
          action += "; invalidate " + std::to_string(info->dependents.size()) +
                    " dependent attribute(s)";
        }
      } else if (!info->resident) {
        action = "fault block " + std::to_string(info->block) +
                 " from disk, then " +
                 (info->out_of_date ? std::string("re-evaluate via rule")
                                    : std::string("read stored value"));
      } else if (info->out_of_date) {
        action = "re-evaluate via rule (value out of date)";
      } else {
        action = "read cached value";
      }
      w.Key("action").String(action);
      break;
    }
    case StatementKind::kSelect:
    case StatementKind::kInstances:
    case StatementKind::kMembers: {
      w.Key("class").String(st.class_name);
      if (st.kind == StatementKind::kSelect) {
        w.Key("predicate").String(st.predicate);
      }
      w.Key("action").String(st.kind == StatementKind::kMembers
                                 ? "enumerate subtype members"
                                 : "scan instances of class");
      break;
    }
    case StatementKind::kCreate: {
      w.Key("class").String(st.class_name);
      if (!st.binding.empty()) w.Key("binding").String(st.binding);
      w.Key("action").String("allocate instance; initialize attributes");
      break;
    }
    case StatementKind::kReorganize: {
      // Report the policy that *would* run; `explain` must not mutate the
      // configured selection.
      const char* policy =
          cluster::PolicyKindName(db_->cluster_policy());
      if (!st.class_name.empty()) {
        if (auto kind = cluster::PolicyKindFromName(st.class_name)) {
          policy = cluster::PolicyKindName(*kind);
        }
      }
      w.Key("policy").String(policy);
      w.Key("instances").Uint(db_->instance_count());
      w.Key("action").String(
          "exclusive maintenance: fold usage statistics, repack every "
          "instance into fresh blocks, recompute worst-case estimates");
      break;
    }
    default: {
      // begin/commit/abort/fetch/delete/connect/disconnect: nothing
      // plan-shaped to report beyond session state.
      w.Key("txn_open").Bool(s->txn != nullptr);
      w.Key("action").String("session/transaction operation");
      break;
    }
  }

  w.EndObject();
  r.payload = w.str();
  return r;
}

StatementResult Executor::ExecuteStatement(Session* s, Statement* st) {
  StatementResult r;
  core::Transaction* txn = s->txn.get();

  // Collapses the session transaction once an operation aborted it (the
  // core has already rolled it back; the unique_ptr just holds a husk).
  auto note_abort = [&](const Status& status) {
    if (IsAbort(status) && s->txn != nullptr) {
      s->txn.reset();
      ++s->aborts;
    }
    r.status = status;
  };

  switch (st->kind) {
    case StatementKind::kBegin: {
      if (txn != nullptr) {
        r.status = Status::AlreadyExists(
            "transaction already open (commit or abort first)");
        break;
      }
      s->txn = db_->Begin();
      ++s->txns_begun;
      s->last_ts = s->txn->ts();
      r.payload = "ts=" + std::to_string(s->last_ts);
      break;
    }
    case StatementKind::kCommit: {
      if (txn == nullptr) {
        r.status = Status::InvalidArgument("no open transaction");
        break;
      }
      Status status = txn->Commit();
      s->txn.reset();
      if (status.ok()) {
        ++s->commits;
        r.payload = "committed";
        r.status = status;
      } else {
        ++s->aborts;
        r.status = status;
      }
      break;
    }
    case StatementKind::kAbort: {
      if (txn == nullptr) {
        r.status = Status::InvalidArgument("no open transaction");
        break;
      }
      Status status = txn->Undo();
      s->txn.reset();
      ++s->aborts;
      r.status = status.ok() || status.IsTransactionAborted() ? Status::OK()
                                                              : status;
      r.payload = "rolled back";
      break;
    }
    case StatementKind::kCreate: {
      auto id = txn != nullptr ? txn->Create(st->class_name)
                               : db_->Create(st->class_name);
      if (!id.ok()) {
        note_abort(id.status());
        break;
      }
      if (!st->binding.empty()) s->bindings[st->binding] = *id;
      r.payload = FormatInstance(*id);
      break;
    }
    case StatementKind::kDelete: {
      auto id = Resolve(s, st->a);
      if (!id.ok()) {
        r.status = id.status();
        break;
      }
      Status status = txn != nullptr ? txn->Delete(*id) : db_->Delete(*id);
      if (!status.ok()) {
        note_abort(status);
        break;
      }
      r.payload = "ok";
      break;
    }
    case StatementKind::kSet: {
      auto id = Resolve(s, st->a);
      if (!id.ok()) {
        r.status = id.status();
        break;
      }
      SessionEvalContext ctx(db_, txn, *id);
      auto value = lang::Interpreter::EvalExpr(*st->expr, &ctx);
      if (!value.ok()) {
        note_abort(value.status());
        break;
      }
      Status status = txn != nullptr
                          ? txn->Set(*id, st->attr_a, std::move(*value))
                          : db_->Set(*id, st->attr_a, std::move(*value));
      if (!status.ok()) {
        note_abort(status);
        break;
      }
      r.payload = "ok";
      break;
    }
    case StatementKind::kGet: {
      auto id = Resolve(s, st->a);
      if (!id.ok()) {
        r.status = id.status();
        break;
      }
      auto v = txn != nullptr ? txn->Get(*id, st->attr_a)
                              : db_->Get(*id, st->attr_a);
      if (!v.ok()) {
        note_abort(v.status());
        break;
      }
      r.payload = v->ToString();
      break;
    }
    case StatementKind::kPeek: {
      auto id = Resolve(s, st->a);
      if (!id.ok()) {
        r.status = id.status();
        break;
      }
      // Peek is an auto-commit, non-marking read regardless of any open
      // transaction (polling semantics; see Database::Peek).
      auto v = db_->Peek(*id, st->attr_a);
      if (!v.ok()) {
        note_abort(v.status());
        break;
      }
      r.payload = v->ToString();
      break;
    }
    case StatementKind::kConnect: {
      auto a = Resolve(s, st->a);
      auto b = Resolve(s, st->b);
      if (!a.ok() || !b.ok()) {
        r.status = a.ok() ? b.status() : a.status();
        break;
      }
      auto edge = txn != nullptr
                      ? txn->Connect(*a, st->attr_a, *b, st->attr_b)
                      : db_->Connect(*a, st->attr_a, *b, st->attr_b);
      if (!edge.ok()) {
        note_abort(edge.status());
        break;
      }
      r.payload = "ok";
      break;
    }
    case StatementKind::kDisconnect: {
      auto a = Resolve(s, st->a);
      auto b = Resolve(s, st->b);
      if (!a.ok() || !b.ok()) {
        r.status = a.ok() ? b.status() : a.status();
        break;
      }
      auto edges = db_->EdgesOf(*a, st->attr_a);
      auto neighbors = db_->NeighborsOf(*a, st->attr_a);
      if (!edges.ok() || !neighbors.ok()) {
        r.status = edges.ok() ? neighbors.status() : edges.status();
        break;
      }
      EdgeId victim;
      for (size_t i = 0; i < edges->size() && i < neighbors->size(); ++i) {
        if ((*neighbors)[i] == *b) {
          victim = (*edges)[i];
          break;
        }
      }
      if (!victim.valid()) {
        r.status = Status::NotFound("no edge between the given ports");
        break;
      }
      Status status =
          txn != nullptr ? txn->Disconnect(victim) : db_->Disconnect(victim);
      if (!status.ok()) {
        note_abort(status);
        break;
      }
      r.payload = "ok";
      break;
    }
    case StatementKind::kSelect:
    case StatementKind::kInstances:
    case StatementKind::kMembers: {
      Result<std::vector<InstanceId>> ids =
          st->kind == StatementKind::kSelect
              ? db_->SelectWhere(st->class_name, st->predicate)
              : st->kind == StatementKind::kInstances
                    ? db_->InstancesOf(st->class_name)
                    : db_->MembersOfSubtype(st->class_name);
      if (!ids.ok()) {
        note_abort(ids.status());
        break;
      }
      s->cursor = std::move(*ids);
      s->cursor_pos = 0;
      r.payload = "count=" + std::to_string(s->cursor.size());
      break;
    }
    case StatementKind::kFetch: {
      if (s->cursor_pos >= s->cursor.size()) {
        r.payload = "end";
        break;
      }
      size_t take = std::min(static_cast<size_t>(st->count),
                             s->cursor.size() - s->cursor_pos);
      for (size_t i = 0; i < take; ++i) {
        if (i > 0) r.payload += ' ';
        r.payload += FormatInstance(s->cursor[s->cursor_pos + i]);
      }
      s->cursor_pos += take;
      break;
    }
    case StatementKind::kHealth: {
      // Normally short-circuited lock-free in Process(); kept here so a
      // direct call still answers.
      r.payload = HealthJson();
      break;
    }
    case StatementKind::kMetricsHistory: {
      // Same: Process() short-circuits these lock-free.
      r.payload =
          MetricsHistoryJson(st->class_name, static_cast<size_t>(st->count));
      break;
    }
    case StatementKind::kAlerts: {
      r.payload = AlertsJson();
      break;
    }
    case StatementKind::kReorganize: {
      if (!st->class_name.empty()) {
        auto kind = cluster::PolicyKindFromName(st->class_name);
        if (!kind) {
          r.status = Status::InvalidArgument(
              "unknown clustering policy '" + st->class_name +
              "' (greedy_usage | dstc | typegraph)");
          break;
        }
        db_->set_cluster_policy(*kind);
      }
      // Publish every durably-flushed commit first: reorganisation reads
      // the whole store, so it must see the acknowledged state.
      Status status = db_->DrainCommits();
      if (status.ok()) status = db_->Reorganize();
      if (!status.ok()) {
        r.status = status;
        break;
      }
      const core::ClusterStats& cs = db_->cluster_stats();
      obs::JsonWriter w;
      w.BeginObject();
      w.Key("policy").String(cluster::PolicyKindName(db_->cluster_policy()));
      w.Key("reorg_runs").Uint(cs.reorg_runs);
      w.Key("instances").Uint(cs.instances_placed);
      w.Key("clusters").Uint(cs.clusters_produced);
      w.Key("blocks").Uint(cs.blocks_produced);
      w.Key("fill_factor_pct")
          .Uint(static_cast<uint64_t>(cs.fill_factor * 100.0 + 0.5));
      w.Key("placement_us").Uint(cs.placement_us);
      w.Key("blocks_read").Uint(cs.reorg_blocks_read);
      w.Key("blocks_written").Uint(cs.reorg_blocks_written);
      w.EndObject();
      r.payload = w.str();
      break;
    }
  }
  return r;
}

// --- Degraded read-only mode -------------------------------------------------

void Executor::EnterDegraded(const Status& cause) {
  if (degraded_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    degraded_reason_ = cause.ToString();
    degraded_since_ms_ = NowMs();
  }
  stats_.degraded.store(1, std::memory_order_relaxed);
  stats_.degraded_entered.fetch_add(1, std::memory_order_relaxed);
  probe_cv_.notify_all();
}

void Executor::ExitDegraded() {
  if (!degraded_.exchange(false, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    degraded_reason_.clear();
    degraded_since_ms_ = 0;
  }
  stats_.degraded.store(0, std::memory_order_relaxed);
  stats_.degraded_exited.fetch_add(1, std::memory_order_relaxed);
}

bool Executor::ProbeOnce() {
  stats_.degraded_probes.fetch_add(1, std::memory_order_relaxed);
  // Raw scratch-block round trip on the database's disk. This bypasses
  // the buffer pool and WAL deliberately: the question is whether the
  // device answers, not whether any cached state is consistent.
  storage::SimulatedDisk* disk = db_->disk();
  BlockId scratch = disk->Allocate();
  if (!scratch.valid()) return false;
  const std::string payload = "health-probe";
  bool healthy = disk->Write(scratch, payload).ok();
  if (healthy) {
    Result<std::string> back = disk->Read(scratch);
    healthy = back.ok() && *back == payload;
  }
  (void)disk->Free(scratch);
  if (healthy) {
    // Storage answers again: un-wedge the WAL (it refuses every flush
    // after a failed one until told the device is back) and resume
    // read-write.
    if (auto* wal = db_->mutable_wal()) wal->ClearWedge();
    if (degraded()) ExitDegraded();
  }
  return healthy;
}

void Executor::ProbeLoop() {
  std::unique_lock<std::mutex> lk(probe_mu_);
  for (;;) {
    // Parked until the server degrades (or shuts down): a healthy server
    // pays nothing for the probe thread.
    probe_cv_.wait(lk, [this] { return probe_stop_ || degraded(); });
    if (probe_stop_) return;
    lk.unlock();
    ProbeOnce();
    lk.lock();
    if (probe_stop_) return;
    if (degraded()) {
      probe_cv_.wait_for(
          lk, std::chrono::milliseconds(options_.degraded_probe_interval_ms),
          [this] { return probe_stop_; });
    }
  }
}

std::string Executor::HealthJson() {
  auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  obs::JsonWriter w;
  w.BeginObject();
  const bool deg = degraded();
  w.Key("status").String(deg ? "degraded" : "ok");
  w.Key("degraded").Bool(deg);
  {
    std::lock_guard<std::mutex> lk(degraded_mu_);
    w.Key("reason").String(degraded_reason_);
    w.Key("degraded_since_ms").Uint(degraded_since_ms_);
  }
  w.Key("degraded_entered").Uint(load(stats_.degraded_entered));
  w.Key("degraded_exited").Uint(load(stats_.degraded_exited));
  w.Key("probes").Uint(load(stats_.degraded_probes));
  w.Key("rejected_mutations").Uint(load(stats_.degraded_rejects));
  w.Key("active_sessions").Uint(sessions_.active_count());
  w.Key("queue_depth").Uint(load(stats_.queue_depth));
  w.Key("workers").Uint(options_.num_workers);
  w.EndObject();
  return w.str();
}

}  // namespace cactis::server
