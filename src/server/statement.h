// The service layer's request language.
//
// Requests are parsed with the existing data-language front-end: the
// `lang` lexer tokenizes each statement and `lang::Parser` parses every
// embedded expression (set right-hand sides, select predicates), so
// literals, arithmetic, builtins and attribute reads all behave exactly
// as they do in rules.
//
// Grammar (keywords case-insensitive, one statement per string; batches
// are split on top-level ';'):
//
//   stmt := "profile" stmt                   run stmt, return its cost JSON
//         | "explain" stmt                   report the plan, no execution
//         | "begin"                          open an explicit transaction
//         | "commit"                         commit it
//         | "abort" | "undo"                 roll it back
//         | "create" CLASS ["as" NAME]       create instance, bind NAME
//         | "delete" target
//         | "set" target "." ATTR "=" expr   expr may read target's attrs
//         | "get" target "." ATTR            evaluating, marks important
//         | "peek" target "." ATTR           non-marking read (auto-commit)
//         | "connect" target "." PORT "to" target "." PORT
//         | "disconnect" target "." PORT "to" target "." PORT
//         | "select" CLASS "where" expr      cursor := matching instances
//         | "instances" CLASS                cursor := instances of CLASS
//         | "members" SUBTYPE                cursor := subtype members
//         | "fetch" [INT]                    next INT ids off the cursor
//         | "health"                         server health JSON (degraded
//                                            state, probe counters); runs
//                                            lock-free so it answers even
//                                            while the storage layer is
//                                            down
//         | "metrics" "history" [GROUP] [INT]  time-series window JSON:
//                                            the last INT sampler ticks
//                                            (default: whole ring),
//                                            series filtered to GROUP
//                                            when given. Lock-free
//                                            (sampler ring only), so it
//                                            answers in degraded mode
//         | "alerts"                         watchdog alert log JSON
//                                            (active rules + bounded
//                                            raise/clear history);
//                                            lock-free likewise
//         | "reorganize" [POLICY]            clustering reorganisation
//                                            (paper 2.3) under the
//                                            exclusive lock; optional
//                                            POLICY (greedy_usage | dstc
//                                            | typegraph) selects the
//                                            cluster::Policy first.
//                                            Returns a JSON summary
//                                            (blocks, fill factor, I/O).
//                                            A mutation: rejected while
//                                            the server is degraded
//
//   target := NAME                           session binding (create ... as)
//           | "obj" "(" INT ")"              raw instance id (shareable
//                                            across sessions; responses
//                                            print instances this way)
//
// Parsing is pure (no database access): it can run on any worker thread
// outside the statement serialization mutex.

#ifndef CACTIS_SERVER_STATEMENT_H_
#define CACTIS_SERVER_STATEMENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "lang/ast.h"

namespace cactis::server {

enum class StatementKind {
  kBegin,
  kCommit,
  kAbort,
  kCreate,
  kDelete,
  kSet,
  kGet,
  kPeek,
  kConnect,
  kDisconnect,
  kSelect,
  kInstances,
  kMembers,
  kFetch,
  kHealth,
  kReorganize,
  kMetricsHistory,
  kAlerts,
};

/// An instance reference: a session-local binding name or a raw id.
struct Target {
  std::string name;  // set when the client used a binding
  InstanceId raw;    // set when the client wrote obj(N)
  bool empty() const { return name.empty() && !raw.valid(); }
};

/// Observability wrapper on a statement. `profile` executes the wrapped
/// statement normally and replaces the payload with a JSON document
/// carrying the result plus the statement's StatementCost breakdown.
/// `explain` does not execute at all: it reports how the statement
/// *would* run (attribute kinds, residency, dependents, scheduling
/// policy) from catalog and cache state, with no side effects.
enum class StatementModifier {
  kNone,
  kProfile,
  kExplain,
};

struct Statement {
  StatementModifier modifier = StatementModifier::kNone;
  StatementKind kind = StatementKind::kBegin;
  std::string class_name;  // create / select / instances / members;
                           // metrics history: optional group filter
  std::string binding;     // create ... as NAME
  Target a, b;             // b used by connect / disconnect
  std::string attr_a;      // attribute or port on a
  std::string attr_b;      // port on b
  lang::ExprPtr expr;      // set RHS
  std::string predicate;   // select ... where <source>
  int64_t count = 1;       // fetch N; metrics history N (0 = whole ring)
};

/// True for statements the executor may run under the *shared* side of
/// its statement lock: they never mutate database state through the fast
/// path (get/peek answer only from cached, up-to-date values; fetch only
/// advances the session cursor). Everything else — including commit,
/// which has its own split-phase path — requires the exclusive side.
inline bool IsReadOnlyStatement(const Statement& st) {
  // `explain` inspects catalog and cache state that the shared entry
  // points do not cover; it runs (briefly) under the exclusive side.
  // `profile` follows its wrapped statement's routing, so profiled reads
  // exercise — and measure — the real concurrent read path.
  if (st.modifier == StatementModifier::kExplain) return false;
  switch (st.kind) {
    case StatementKind::kGet:
    case StatementKind::kPeek:
    case StatementKind::kSelect:
    case StatementKind::kInstances:
    case StatementKind::kMembers:
    case StatementKind::kFetch:
      return true;
    default:
      return false;
  }
}

/// Parses one statement. Pure; thread-safe.
Result<Statement> ParseStatement(std::string_view text);

/// Splits request text into statements on top-level ';' (quote-aware,
/// `--` comments stripped). Empty statements are dropped.
std::vector<std::string> SplitStatements(std::string_view text);

/// Renders an instance id the way targets are written: "obj(N)".
std::string FormatInstance(InstanceId id);

}  // namespace cactis::server

#endif  // CACTIS_SERVER_STATEMENT_H_
