// Session: per-client state of the service layer, and its manager.
//
// A Session owns what a connected client accumulates between requests:
//   * an open explicit transaction (`begin` ... `commit`/`abort`) whose
//     timestamp — issued by the core's TimestampManager — is the
//     session's identity for timestamp-ordering concurrency control;
//   * a binding table (`create task as t1` names live instance ids);
//   * a statement cursor (the id list produced by the last
//     select/instances/members, consumed by `fetch`);
//   * isolation bookkeeping: transactions begun / committed / rolled
//     back, and conflicts observed.
//
// The SessionManager creates, looks up and expires sessions. Lookup is
// guarded by the manager mutex; the per-session mutex serializes the
// batches of one session (two requests racing on one session execute one
// after the other). Expiry is cooperative: the executor calls
// ReapExpired() on its worker threads and disposes the corpses — which
// may hold open transactions that must roll back — under the database
// serialization mutex.

#ifndef CACTIS_SERVER_SESSION_H_
#define CACTIS_SERVER_SESSION_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "core/database.h"
#include "obs/request_context.h"

namespace cactis::server {

/// Cumulative per-session resource accounting, folded in after every
/// statement. All fields are relaxed atomics: workers add while the
/// metrics exporter reads without the session mutex. Exposed in the
/// "server" metrics group as a per_session JSON array.
struct SessionAccounting {
  std::atomic<uint64_t> statements{0};
  std::atomic<uint64_t> blocks_read{0};
  std::atomic<uint64_t> blocks_written{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> attrs_reevaluated{0};
  std::atomic<uint64_t> chunks_scheduled{0};
  std::atomic<uint64_t> wal_bytes{0};
  std::atomic<uint64_t> queue_wait_us{0};
  std::atomic<uint64_t> lock_wait_shared_us{0};
  std::atomic<uint64_t> lock_wait_excl_us{0};
  std::atomic<uint64_t> exec_us{0};

  void Add(const obs::StatementCost& c) {
    auto add = [](std::atomic<uint64_t>& a, uint64_t v) {
      if (v != 0) a.fetch_add(v, std::memory_order_relaxed);
    };
    statements.fetch_add(1, std::memory_order_relaxed);
    add(blocks_read, c.blocks_read);
    add(blocks_written, c.blocks_written);
    add(cache_hits, c.cache_hits);
    add(cache_misses, c.cache_misses);
    add(attrs_reevaluated, c.attrs_reevaluated);
    add(chunks_scheduled, c.chunks_scheduled);
    add(wal_bytes, c.wal_bytes);
    add(queue_wait_us, c.queue_wait_us);
    add(lock_wait_shared_us, c.lock_wait_shared_us);
    add(lock_wait_excl_us, c.lock_wait_excl_us);
    add(exec_us, c.exec_us);
  }
};

struct Session {
  Session(SessionId sid, uint64_t now_ms)
      : id(sid), last_active_ms(now_ms) {}

  const SessionId id;

  /// Serializes request batches on this session and protects every field
  /// below. Lock order: session mutex before the executor's db mutex.
  std::mutex mu;

  /// Set once the session has been closed or expired; a worker that
  /// acquired the pointer before removal finds out here.
  bool closed = false;

  /// Set (without the session mutex) by the eager-close path when the
  /// client's connection died while a batch was executing on this
  /// session. The worker observes it at batch end and disposes the
  /// corpse itself — rolling back the open transaction immediately
  /// instead of letting it linger to idle-timeout.
  std::atomic<bool> disconnected{false};

  /// Open explicit transaction, if any. Its ts() is the session's
  /// current concurrency-control timestamp.
  std::unique_ptr<core::Transaction> txn;

  /// Name -> instance bindings (`create <class> as <name>`).
  std::unordered_map<std::string, InstanceId> bindings;

  /// Statement cursor: result of the last select/instances/members.
  std::vector<InstanceId> cursor;
  size_t cursor_pos = 0;

  // Isolation bookkeeping.
  uint64_t txns_begun = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;     // explicit `abort` plus consistency aborts
  uint64_t conflicts = 0;  // aborts caused by timestamp-ordering conflicts
  uint64_t last_ts = 0;    // timestamp of the current / most recent txn

  /// Statements executed on this session, feeding RequestContext's
  /// statement_seq (protected by the session mutex like the fields
  /// above).
  uint64_t statement_seq = 0;

  /// Cumulative cost accounting (atomics; see SessionAccounting).
  SessionAccounting acct;

  /// Last request activity, for timeout expiry. Atomic so the reaper can
  /// read it without the session mutex.
  std::atomic<uint64_t> last_active_ms;
};

class SessionManager {
 public:
  /// `timeout_ms` of 0 disables expiry.
  explicit SessionManager(uint64_t timeout_ms) : timeout_ms_(timeout_ms) {}

  /// Creates a session. Thread-safe.
  std::shared_ptr<Session> Open(uint64_t now_ms);

  /// Removes the session from the table and returns it (marked closed
  /// under its own mutex) for the caller to dispose — its transaction, if
  /// open, must be rolled back under the database mutex. Null when the
  /// id is unknown.
  std::shared_ptr<Session> Close(SessionId id);

  /// Looks the session up without expiry side effects. Thread-safe.
  std::shared_ptr<Session> Find(SessionId id);

  /// Eager close for connection teardown: removes the session from the
  /// table *immediately* (no new batch can find it). If the session is
  /// idle, it is marked closed and returned with *deferred = false; the
  /// caller disposes it (rolling back its transaction under the database
  /// mutex). If a batch is executing right now, the session's
  /// `disconnected` flag is set and the victim is returned with
  /// *deferred = true: the worker running the batch disposes the corpse
  /// the moment it finishes, and the caller must confirm with a bounded
  /// blocking wait (Executor::CloseSessionEager does). Unknown id:
  /// nullptr.
  std::shared_ptr<Session> EagerClose(SessionId id, bool* deferred);

  /// Removes every session idle past the timeout and returns the corpses
  /// for disposal. Sessions whose mutex is currently held (a batch is
  /// executing) are skipped — they are active by definition.
  ///
  /// Cheap on the hot path: a next-deadline watermark makes the common
  /// call (nothing can have expired yet) a single atomic load with no
  /// table scan and no manager lock.
  std::vector<std::shared_ptr<Session>> ReapExpired(uint64_t now_ms);

  /// Removes and returns every session (server shutdown). Waits for
  /// in-flight batches: each session is marked closed under its mutex.
  std::vector<std::shared_ptr<Session>> TakeAll();

  size_t active_count() const;

  /// Visits every live session under the manager mutex, in ascending id
  /// order (deterministic exports). `fn` must not call back into the
  /// manager and should only read atomic session fields — it runs while
  /// workers may be executing on those sessions.
  void ForEach(const std::function<void(const Session&)>& fn) const;

 private:
  const uint64_t timeout_ms_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 0;
  std::unordered_map<SessionId, std::shared_ptr<Session>> sessions_;
  /// Earliest time any current session could expire, set by each full
  /// scan. ReapExpired returns immediately while now < watermark. 0
  /// (initial) forces the first scan. Conservative by construction:
  /// activity only pushes real deadlines later, never earlier.
  std::atomic<uint64_t> next_deadline_ms_{0};
};

}  // namespace cactis::server

#endif  // CACTIS_SERVER_SESSION_H_
