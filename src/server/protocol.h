// Wire-level types of the multi-session service layer.
//
// A Request is a batch of data-language statements bound to one session:
// one queue slot carries a whole pipeline, so a client can ship
// `begin; set obj(7).val = val + 1; commit` as a single round trip. A
// Response reports the batch outcome, per-statement results, and the
// request's service metrics (queue wait, execution time).
//
// Response statuses are the admission-control and isolation contract:
//   kOk       — every statement executed successfully.
//   kError    — a statement failed (parse error, unknown name, ...); the
//               batch stopped there. Session state is otherwise intact.
//   kAborted  — a statement hit a timestamp-ordering conflict or
//               constraint violation: the session's transaction rolled
//               back cleanly. The client should retry the transaction.
//   kRejected — admission control refused the request (queue full or
//               server shutting down). Nothing executed; retry later.
//   kNoSession— the session id is unknown, closed, or expired.
//   kUnavailable — the server is in degraded read-only mode after a
//               persistent storage failure: mutations are refused until a
//               health probe restores read-write. Reads still serve;
//               retry the mutation later.

#ifndef CACTIS_SERVER_PROTOCOL_H_
#define CACTIS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace cactis::server {

enum class ResponseStatus {
  kOk,
  kError,
  kAborted,
  kRejected,
  kNoSession,
  kUnavailable,
};

std::string_view ResponseStatusToString(ResponseStatus s);

/// One batch of statements addressed to a session.
struct Request {
  SessionId session;
  std::vector<std::string> statements;
  /// Client-minted trace id for end-to-end correlation: statement i of
  /// the batch runs under `trace_id + i`, so a remote `profile` returns
  /// the same id the client logged. 0 = let the server mint one.
  uint64_t trace_id = 0;
};

/// Outcome of one statement of a batch.
struct StatementResult {
  Status status;
  std::string payload;  // e.g. "obj(7)", "42", "count=3", "ok"
};

/// Service-side measurements for one request.
struct ResponseMetrics {
  uint64_t queue_wait_us = 0;  // enqueue -> worker pickup
  uint64_t exec_us = 0;        // statement execution (db time)
  uint32_t statements_run = 0; // statements actually executed
  uint64_t session_ts = 0;     // timestamp of the session's current/last txn
};

struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  /// Per-statement payloads joined with '\n' (convenience for clients
  /// that do not inspect `statements`).
  std::string payload;
  ResponseMetrics metrics;
  std::vector<StatementResult> statements;

  bool ok() const { return status == ResponseStatus::kOk; }
  bool aborted() const { return status == ResponseStatus::kAborted; }
  bool rejected() const { return status == ResponseStatus::kRejected; }
  bool unavailable() const { return status == ResponseStatus::kUnavailable; }
};

}  // namespace cactis::server

#endif  // CACTIS_SERVER_PROTOCOL_H_
