// LoopbackTransport: the deterministic in-process client API.
//
// A transport is what a network front-end would be — connect, submit
// request text, await a Response — without sockets, so tests, benches
// and the shell exercise the full service path (admission control,
// queueing, worker threads, session isolation) hermetically.
//
//   cactis::core::Database db;
//   cactis::server::Executor exec(&db, {.num_workers = 4});
//   exec.Start();
//   cactis::server::LoopbackTransport client(&exec);
//   auto s = *client.Connect();
//   auto r = client.Call(s, "create task as t1; set t1.effort = 3");
//
// Request text is split into statements on top-level ';' / newlines
// (SplitStatements); one Call is one queue slot, i.e. one batch.

#ifndef CACTIS_SERVER_TRANSPORT_H_
#define CACTIS_SERVER_TRANSPORT_H_

#include <future>
#include <string_view>

#include "server/executor.h"
#include "server/protocol.h"

namespace cactis::server {

class LoopbackTransport {
 public:
  explicit LoopbackTransport(Executor* executor) : executor_(executor) {}

  Result<SessionId> Connect() { return executor_->OpenSession(); }
  Status Disconnect(SessionId session) {
    return executor_->CloseSession(session);
  }

  /// Asynchronous submit; the future completes with kRejected
  /// immediately under backpressure.
  std::future<Response> Submit(SessionId session, std::string_view text);

  /// Submit + await.
  Response Call(SessionId session, std::string_view text);

  Executor* executor() { return executor_; }

 private:
  Executor* executor_;
};

}  // namespace cactis::server

#endif  // CACTIS_SERVER_TRANSPORT_H_
