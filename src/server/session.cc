#include "server/session.h"

#include <algorithm>

namespace cactis::server {

std::shared_ptr<Session> SessionManager::Open(uint64_t now_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  SessionId id(++next_id_);
  auto session = std::make_shared<Session>(id, now_ms);
  sessions_.emplace(id, session);
  return session;
}

std::shared_ptr<Session> SessionManager::Close(SessionId id) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return nullptr;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // Mark closed under the session mutex so an in-flight batch that
  // acquired the pointer before removal observes it. This may wait for
  // that batch to finish — closing is rare and the wait is bounded.
  std::lock_guard<std::mutex> slk(victim->mu);
  victim->closed = true;
  return victim;
}

std::shared_ptr<Session> SessionManager::EagerClose(SessionId id,
                                                    bool* deferred) {
  *deferred = false;
  std::shared_ptr<Session> victim;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return nullptr;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  std::unique_lock<std::mutex> slk(victim->mu, std::try_to_lock);
  if (slk.owns_lock()) {
    victim->closed = true;
    return victim;
  }
  // A batch holds the session mutex. Set the disconnected flag so the
  // worker disposes the corpse at batch end (the fast path), and return
  // the victim so the caller can fall back to a bounded blocking wait —
  // the flag store can race the worker's end-of-batch check, and an
  // orphaned transaction must never survive that window.
  victim->disconnected.store(true, std::memory_order_seq_cst);
  *deferred = true;
  return victim;
}

std::shared_ptr<Session> SessionManager::Find(SessionId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<Session>> SessionManager::ReapExpired(
    uint64_t now_ms) {
  std::vector<std::shared_ptr<Session>> dead;
  if (timeout_ms_ == 0) return dead;
  // Watermark early-out: no session's deadline has arrived, so skip the
  // table scan (and the manager lock) entirely. This runs on every
  // request, so it must stay one atomic load in the common case.
  if (now_ms < next_deadline_ms_.load(std::memory_order_relaxed)) {
    return dead;
  }
  std::lock_guard<std::mutex> lk(mu_);
  // With the table empty the next possible deadline is a full timeout
  // away (a session opened right now expires no earlier).
  uint64_t soonest = now_ms + timeout_ms_;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    Session& s = *it->second;
    uint64_t last = s.last_active_ms.load(std::memory_order_relaxed);
    if (now_ms - last < timeout_ms_) {
      soonest = std::min(soonest, last + timeout_ms_);
      ++it;
      continue;
    }
    // A held mutex means a batch is executing right now: active. Its
    // last_active refresh may race this scan, so re-check immediately on
    // the next call rather than trusting a deadline.
    std::unique_lock<std::mutex> slk(s.mu, std::try_to_lock);
    if (!slk.owns_lock()) {
      soonest = now_ms;
      ++it;
      continue;
    }
    s.closed = true;
    dead.push_back(std::move(it->second));
    it = sessions_.erase(it);
  }
  next_deadline_ms_.store(soonest, std::memory_order_relaxed);
  return dead;
}

std::vector<std::shared_ptr<Session>> SessionManager::TakeAll() {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lk(mu_);
    all.reserve(sessions_.size());
    for (auto& [id, s] : sessions_) all.push_back(std::move(s));
    sessions_.clear();
  }
  for (auto& s : all) {
    std::lock_guard<std::mutex> slk(s->mu);
    s->closed = true;
  }
  return all;
}

size_t SessionManager::active_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sessions_.size();
}

void SessionManager::ForEach(
    const std::function<void(const Session&)>& fn) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const Session*> ordered;
  ordered.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) ordered.push_back(s.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Session* a, const Session* b) {
              return a->id.value < b->id.value;
            });
  for (const Session* s : ordered) fn(*s);
}

}  // namespace cactis::server
