#include "server/transport.h"

#include "server/statement.h"

namespace cactis::server {

std::future<Response> LoopbackTransport::Submit(SessionId session,
                                                std::string_view text) {
  Request req;
  req.session = session;
  req.statements = SplitStatements(text);
  return executor_->Submit(std::move(req));
}

Response LoopbackTransport::Call(SessionId session, std::string_view text) {
  return Submit(session, text).get();
}

}  // namespace cactis::server
