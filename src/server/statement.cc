#include "server/statement.h"

#include <algorithm>
#include <cctype>

#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/token.h"

namespace cactis::server {

namespace {

using lang::Token;
using lang::TokenType;

/// Small cursor over the token stream (the lang lexer lower-cases
/// identifiers, so verb matching is naturally case-insensitive).
class TokenCursor {
 public:
  explicit TokenCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[std::min(pos_++, Last())]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool MatchIdent(std::string_view word) {
    if (Peek().type == TokenType::kIdentifier && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchType(TokenType t) {
    if (Peek().type == t) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Status ExpectType(TokenType t, const char* what) {
    if (!MatchType(t)) {
      return Status::ParseError(std::string("expected ") + what);
    }
    return Status::OK();
  }

  Status ExpectEnd() {
    if (!AtEnd()) {
      return Status::ParseError("trailing input after statement");
    }
    return Status::OK();
  }

 private:
  size_t Last() const { return tokens_.size() - 1; }
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Target> ParseTarget(TokenCursor* c) {
  auto name = c->ExpectIdent("instance name or obj(N)");
  if (!name.ok()) return name.status();
  Target t;
  if (*name == "obj" && c->MatchType(TokenType::kLParen)) {
    if (c->Peek().type != TokenType::kIntLiteral) {
      return Status::ParseError("expected integer inside obj(...)");
    }
    t.raw = InstanceId(static_cast<uint64_t>(c->Advance().int_value));
    CACTIS_RETURN_IF_ERROR(c->ExpectType(TokenType::kRParen, "')'"));
  } else {
    t.name = *name;
  }
  return t;
}

/// target "." attr
Status ParseTargetDotAttr(TokenCursor* c, Target* t, std::string* attr) {
  auto target = ParseTarget(c);
  if (!target.ok()) return target.status();
  *t = *target;
  CACTIS_RETURN_IF_ERROR(c->ExpectType(TokenType::kDot, "'.'"));
  auto a = c->ExpectIdent("attribute name");
  if (!a.ok()) return a.status();
  *attr = *a;
  return Status::OK();
}

/// The RHS of `set` / the predicate of `select where` is everything after
/// the delimiter in the raw text; re-parsed with the lang expression
/// parser so it gets the full expression grammar.
Result<std::string> TailAfter(std::string_view text, char delimiter) {
  size_t pos = text.find(delimiter);
  if (pos == std::string_view::npos) {
    return Status::ParseError(std::string("expected '") + delimiter + "'");
  }
  return std::string(text.substr(pos + 1));
}

/// Tail after the first whole word `word` (used for `where`; the only
/// tokens before it are `select` and the class identifier, so the first
/// word match is the keyword).
Result<std::string> TailAfterWord(std::string_view text,
                                  std::string_view word) {
  for (size_t i = 0; i + word.size() <= text.size(); ++i) {
    bool left_ok = i == 0 || !std::isalnum(static_cast<unsigned char>(
                                 text[i - 1]));
    size_t end = i + word.size();
    bool right_ok =
        end == text.size() ||
        !std::isalnum(static_cast<unsigned char>(text[end]));
    if (left_ok && right_ok) {
      std::string_view cand = text.substr(i, word.size());
      bool eq = std::equal(cand.begin(), cand.end(), word.begin(),
                           [](char a, char b) {
                             return std::tolower(static_cast<unsigned char>(
                                        a)) == b;
                           });
      if (eq) return std::string(text.substr(end));
    }
  }
  return Status::ParseError(std::string("expected '") + std::string(word) +
                            "'");
}

}  // namespace

std::string FormatInstance(InstanceId id) {
  return "obj(" + std::to_string(id.value) + ")";
}

Result<Statement> ParseStatement(std::string_view text) {
  lang::Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  TokenCursor c(std::move(*tokens));

  Statement st;

  // Observability modifiers wrap a whole statement. Strip the verb off
  // the *raw text* and re-parse the remainder, because several statement
  // forms (set RHS, select predicates) re-scan their own raw text.
  if (c.Peek().type == TokenType::kIdentifier &&
      (c.Peek().text == "profile" || c.Peek().text == "explain")) {
    const bool is_profile = c.Peek().text == "profile";
    size_t start = text.find_first_not_of(" \t\r\n");
    auto inner = ParseStatement(text.substr(start + 7));  // both verbs: 7 chars
    if (!inner.ok()) return inner.status();
    if (inner->modifier != StatementModifier::kNone) {
      return Status::ParseError(
          "profile/explain cannot wrap another profile/explain");
    }
    inner->modifier = is_profile ? StatementModifier::kProfile
                                 : StatementModifier::kExplain;
    return inner;
  }

  // Transaction control verbs. `begin` is a lang keyword; the rest are
  // plain identifiers.
  if (c.MatchType(TokenType::kKwBegin)) {
    st.kind = StatementKind::kBegin;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }
  if (c.MatchIdent("commit")) {
    st.kind = StatementKind::kCommit;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }
  if (c.MatchIdent("abort") || c.MatchIdent("undo")) {
    st.kind = StatementKind::kAbort;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("create")) {
    st.kind = StatementKind::kCreate;
    auto cls = c.ExpectIdent("class name");
    if (!cls.ok()) return cls.status();
    st.class_name = *cls;
    if (c.MatchIdent("as")) {
      auto name = c.ExpectIdent("binding name");
      if (!name.ok()) return name.status();
      st.binding = *name;
    }
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("delete")) {
    st.kind = StatementKind::kDelete;
    auto t = ParseTarget(&c);
    if (!t.ok()) return t.status();
    st.a = *t;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("set")) {
    st.kind = StatementKind::kSet;
    CACTIS_RETURN_IF_ERROR(ParseTargetDotAttr(&c, &st.a, &st.attr_a));
    CACTIS_RETURN_IF_ERROR(c.ExpectType(TokenType::kAssign, "'='"));
    // Everything after the first '=' is the expression (the prefix —
    // verb, target, attribute — cannot contain one).
    auto rhs = TailAfter(text, '=');
    if (!rhs.ok()) return rhs.status();
    auto expr = lang::Parser::ParseExpression(*rhs);
    if (!expr.ok()) return expr.status();
    st.expr = *expr;
    return st;
  }

  if (c.Peek().type == TokenType::kIdentifier &&
      (c.Peek().text == "get" || c.Peek().text == "peek")) {
    st.kind = c.Advance().text == "peek" ? StatementKind::kPeek
                                         : StatementKind::kGet;
    CACTIS_RETURN_IF_ERROR(ParseTargetDotAttr(&c, &st.a, &st.attr_a));
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.Peek().type == TokenType::kIdentifier &&
      (c.Peek().text == "connect" || c.Peek().text == "disconnect")) {
    st.kind = c.Advance().text == "disconnect" ? StatementKind::kDisconnect
                                               : StatementKind::kConnect;
    CACTIS_RETURN_IF_ERROR(ParseTargetDotAttr(&c, &st.a, &st.attr_a));
    // `to` is a lang keyword (For Each ... Related To).
    CACTIS_RETURN_IF_ERROR(c.ExpectType(TokenType::kKwTo, "'to'"));
    CACTIS_RETURN_IF_ERROR(ParseTargetDotAttr(&c, &st.b, &st.attr_b));
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("select")) {
    st.kind = StatementKind::kSelect;
    auto cls = c.ExpectIdent("class name");
    if (!cls.ok()) return cls.status();
    st.class_name = *cls;
    CACTIS_RETURN_IF_ERROR(c.ExpectType(TokenType::kKwWhere, "'where'"));
    auto pred = TailAfterWord(text, "where");
    if (!pred.ok()) return pred.status();
    // Validate the predicate now so parse errors surface at the
    // statement, not buried inside execution.
    auto parsed = lang::Parser::ParseExpression(*pred);
    if (!parsed.ok()) return parsed.status();
    st.predicate = *pred;
    return st;
  }

  if (c.MatchIdent("instances")) {
    st.kind = StatementKind::kInstances;
    auto cls = c.ExpectIdent("class name");
    if (!cls.ok()) return cls.status();
    st.class_name = *cls;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("members")) {
    st.kind = StatementKind::kMembers;
    auto sub = c.ExpectIdent("subtype name");
    if (!sub.ok()) return sub.status();
    st.class_name = *sub;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("health")) {
    st.kind = StatementKind::kHealth;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("metrics")) {
    if (!c.MatchIdent("history")) {
      return Status::ParseError("expected 'history' after 'metrics'");
    }
    st.kind = StatementKind::kMetricsHistory;
    st.count = 0;  // whole ring unless narrowed below
    // Optional group filter, then optional sample count; validated at
    // execution like the reorganize policy (group names are not part of
    // the token language).
    if (c.Peek().type == TokenType::kIdentifier) {
      st.class_name = c.Advance().text;
    }
    if (c.Peek().type == TokenType::kIntLiteral) {
      st.count = c.Advance().int_value;
      if (st.count <= 0) {
        return Status::ParseError("metrics history count must be positive");
      }
    }
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("alerts")) {
    st.kind = StatementKind::kAlerts;
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("reorganize") || c.MatchIdent("reorg")) {
    st.kind = StatementKind::kReorganize;
    // Optional clustering-policy name; validated at execution (the parser
    // stays pure and policy names are not part of the token language).
    if (c.Peek().type == TokenType::kIdentifier) {
      st.class_name = c.Advance().text;
    }
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.MatchIdent("fetch")) {
    st.kind = StatementKind::kFetch;
    st.count = 1;
    if (c.Peek().type == TokenType::kIntLiteral) {
      st.count = c.Advance().int_value;
      if (st.count <= 0) {
        return Status::ParseError("fetch count must be positive");
      }
    }
    CACTIS_RETURN_IF_ERROR(c.ExpectEnd());
    return st;
  }

  if (c.AtEnd()) return Status::ParseError("empty statement");
  return Status::ParseError("unknown statement verb '" + c.Peek().text +
                            "'");
}

std::vector<std::string> SplitStatements(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  auto flush = [&] {
    size_t b = current.find_first_not_of(" \t\r\n");
    if (b != std::string::npos) {
      size_t e = current.find_last_not_of(" \t\r\n");
      out.push_back(current.substr(b, e - b + 1));
    }
    current.clear();
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char ch = text[i];
    if (in_string) {
      current += ch;
      if (ch == '"') in_string = false;
      continue;
    }
    if (ch == '"') {
      in_string = true;
      current += ch;
      continue;
    }
    // `--` comment: skip to end of line.
    if (ch == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (ch == ';' || ch == '\n') {
      flush();
      continue;
    }
    current += ch;
  }
  flush();
  return out;
}

}  // namespace cactis::server
