// Checkpointing: bounded-time recovery and WAL truncation.
//
// Without checkpoints, recovery replays the whole journal — O(history).
// A checkpoint writes a consistent snapshot of the database (the
// *image*) to a reserved platter region, records the WAL position it
// covers (the resume LSN), and lets TruncateBefore() drop every journal
// entry older than that LSN. Recovery becomes load-image + replay-tail:
// O(WAL tail), independent of how long the database has lived.
//
// On-disk layout. Two *slot* blocks are reserved right after the WAL's
// superblock and first tail block (blocks 3 and 4 of a fresh database).
// The image itself lives in a chain of freshly allocated blocks:
//
//   slot:  [crc32][slot magic u64][generation u64][chain head block u64]
//          [wal resume seq u64][wal resume block u64]
//
//   chain: [crc32][chain magic u32][next block u64]
//          [image piece (length-prefixed)]       (next == 0 ends the chain)
//
// Writing a checkpoint is double-buffered: the new image chain is written
// to fresh blocks, then the *inactive* slot (the one with the lower
// generation) is overwritten in a single block write — the atomic commit
// point. The active slot and its chain are never touched, so a crash at
// any write during checkpointing leaves either the old or the new
// checkpoint fully intact, never garbage. LoadLatest() validates slots in
// descending generation order and falls back to the older one if the
// newer fails anywhere (torn slot, damaged chain, undecodable image).
//
// The image (built by Database::BuildCheckpointImage) carries the id
// counters, a bootstrap delta that recreates every live instance, its
// intrinsic attributes and every edge, and the full version-store state
// (retained history, position, name table) — the tail may contain undo/
// checkout meta-actions that walk the history, so it must survive.

#ifndef CACTIS_TXN_CHECKPOINT_H_
#define CACTIS_TXN_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/simulated_disk.h"
#include "txn/delta.h"

namespace cactis::txn {

/// Everything a fresh database needs to reconstruct the checkpointed
/// state. The bootstrap delta replays through the same redo machinery as
/// a committed transaction (forced ids bump the counters); derived
/// attributes are re-evaluated on load, exactly as WAL replay does.
struct CheckpointImage {
  uint64_t next_instance = 0;
  uint64_t next_edge = 0;
  uint64_t next_txn = 0;
  /// kCreate per live instance (ascending id), kSetAttr per intrinsic
  /// attribute, kConnect per edge (ascending edge id).
  TransactionDelta bootstrap;
  /// Version facility state, verbatim. `history_base` is the number of
  /// pruned leading deltas: the retained history covers the absolute
  /// positions history_base+1 .. history_base+history.size().
  std::vector<TransactionDelta> history;
  uint64_t history_base = 0;
  uint64_t position = 0;
  std::map<std::string, uint64_t> versions;
  uint64_t next_version = 0;
};

std::string EncodeCheckpointImage(const CheckpointImage& image);
Result<CheckpointImage> DecodeCheckpointImage(std::string_view bytes);

struct CheckpointStats {
  uint64_t checkpoints_written = 0;
  uint64_t chain_blocks_written = 0;
  uint64_t image_bytes = 0;    ///< bytes of the most recent image
  uint64_t retries = 0;        ///< transient write faults retried
  uint64_t give_ups = 0;       ///< retry budgets exhausted
  uint64_t backoff_us = 0;

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("checkpoints_written", checkpoints_written);
    g->AddCounter("chain_blocks_written", chain_blocks_written);
    g->AddGauge("image_bytes", static_cast<double>(image_bytes));
    g->AddCounter("retries", retries);
    g->AddCounter("give_ups", give_ups);
    g->AddCounter("backoff_us", backoff_us);
  }
};

class CheckpointStore {
 public:
  static constexpr uint64_t kSlotMagic = 0x434143544943504BULL;  // "CACTICPK"
  static constexpr uint32_t kChainMagic = 0x4B504843;            // "CHPK"
  /// Slot addresses on a conventional platter: the two allocations right
  /// after the WAL's superblock (1) and first tail block (2).
  static constexpr uint64_t kSlotA = 3;
  static constexpr uint64_t kSlotB = 4;

  explicit CheckpointStore(storage::SimulatedDisk* disk) : disk_(disk) {}

  /// Reserves the two slot blocks. Must run right after the WAL
  /// initializes (so the slots land at kSlotA/kSlotB) and performs NO
  /// writes — a fresh database's platter carries no checkpoint until the
  /// first Checkpoint() call.
  Status AllocateSlots();

  /// Writes `image` as a new checkpoint covering the WAL up to (but not
  /// including) `wal_resume_seq`, whose first chunk will land in
  /// `wal_resume_block`. Crash-safe per the double-buffer protocol above.
  Status WriteCheckpoint(const std::string& image, uint64_t wal_resume_seq,
                         BlockId wal_resume_block);

  struct Loaded {
    std::string image;
    uint64_t generation = 0;
    uint64_t wal_resume_seq = 1;
    BlockId wal_resume_block;
  };

  /// Offline: returns the newest fully-valid checkpoint on the platter,
  /// or NotFound if neither slot holds one (fresh or pre-checkpoint
  /// platter).
  static Result<Loaded> LoadLatest(const storage::SimulatedDisk& platter);

  void set_retry_policy(BackoffPolicy policy) { retry_policy_ = policy; }
  const CheckpointStats& stats() const { return stats_; }

 private:
  Status WriteWithRetry(BlockId id, const std::string& framed);

  storage::SimulatedDisk* disk_;
  BlockId slots_[2];
  BackoffPolicy retry_policy_;
  CheckpointStats stats_;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_CHECKPOINT_H_
