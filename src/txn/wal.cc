#include "txn/wal.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/error_taxonomy.h"
#include "obs/request_context.h"
#include "storage/checksum.h"

namespace cactis::txn {
namespace {

// Fixed bytes of a chunk header: chunk magic (4) + entry seq (8) +
// chunk index (4) + chunk count (4) + next block (8) + payload length
// prefix (4).
constexpr size_t kChunkHeaderBytes = 32;

Status EncodeFailure(std::string what) {
  return Status::Corruption("WAL " + std::move(what));
}

/// Parses a raw platter block as a sealed WAL chunk and returns its entry
/// sequence number; nullopt for anything that is not a well-formed chunk
/// (data blocks, checkpoint blocks, torn frames). Used by the salvage
/// sweep to look for sealed entries beyond a damaged block.
std::optional<uint64_t> SealedChunkSeq(const std::string& raw) {
  Result<std::string> content = storage::UnwrapChecksum(raw);
  if (!content.ok() || content->empty()) return std::nullopt;
  BinaryReader r(*content);
  Result<uint32_t> magic = r.GetU32();
  if (!magic.ok() || *magic != WriteAheadLog::kChunkMagic) return std::nullopt;
  Result<uint64_t> seq = r.GetU64();
  if (!seq.ok()) return std::nullopt;
  return *seq;
}

}  // namespace

std::string_view WalEventKindToString(WalEventKind kind) {
  switch (kind) {
    case WalEventKind::kCommit:
      return "commit";
    case WalEventKind::kUndo:
      return "undo";
    case WalEventKind::kCheckout:
      return "checkout";
    case WalEventKind::kVersion:
      return "version";
    case WalEventKind::kBatch:
      return "batch";
  }
  return "unknown";
}

void EncodeDeltaRecord(const DeltaRecord& rec, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(rec.op));
  w->PutU64(rec.instance.value);
  switch (rec.op) {
    case DeltaOp::kSetAttr:
      w->PutU32(static_cast<uint32_t>(rec.attr_index));
      ValueCodec::Encode(rec.old_value, w);
      ValueCodec::Encode(rec.new_value, w);
      break;
    case DeltaOp::kCreate:
      w->PutU64(rec.class_id.value);
      break;
    case DeltaOp::kDelete:
      w->PutU64(rec.class_id.value);
      w->PutU32(static_cast<uint32_t>(rec.intrinsic_snapshot.size()));
      for (const auto& [index, value] : rec.intrinsic_snapshot) {
        w->PutU32(static_cast<uint32_t>(index));
        ValueCodec::Encode(value, w);
      }
      break;
    case DeltaOp::kConnect:
    case DeltaOp::kDisconnect:
      w->PutU64(rec.edge.value);
      w->PutU64(rec.from.value);
      w->PutU32(static_cast<uint32_t>(rec.from_port));
      w->PutU64(rec.to.value);
      w->PutU32(static_cast<uint32_t>(rec.to_port));
      break;
  }
}

Result<DeltaRecord> DecodeDeltaRecord(BinaryReader* r) {
  DeltaRecord rec;
  CACTIS_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
  if (op > static_cast<uint8_t>(DeltaOp::kDisconnect)) {
    return EncodeFailure("delta record has unknown op " + std::to_string(op));
  }
  rec.op = static_cast<DeltaOp>(op);
  CACTIS_ASSIGN_OR_RETURN(rec.instance.value, r->GetU64());
  switch (rec.op) {
    case DeltaOp::kSetAttr: {
      CACTIS_ASSIGN_OR_RETURN(uint32_t index, r->GetU32());
      rec.attr_index = index;
      CACTIS_ASSIGN_OR_RETURN(rec.old_value, ValueCodec::Decode(r));
      CACTIS_ASSIGN_OR_RETURN(rec.new_value, ValueCodec::Decode(r));
      break;
    }
    case DeltaOp::kCreate: {
      CACTIS_ASSIGN_OR_RETURN(rec.class_id.value, r->GetU64());
      break;
    }
    case DeltaOp::kDelete: {
      CACTIS_ASSIGN_OR_RETURN(rec.class_id.value, r->GetU64());
      CACTIS_ASSIGN_OR_RETURN(uint32_t count, r->GetU32());
      rec.intrinsic_snapshot.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        CACTIS_ASSIGN_OR_RETURN(uint32_t index, r->GetU32());
        CACTIS_ASSIGN_OR_RETURN(Value value, ValueCodec::Decode(r));
        rec.intrinsic_snapshot.emplace_back(index, std::move(value));
      }
      break;
    }
    case DeltaOp::kConnect:
    case DeltaOp::kDisconnect: {
      CACTIS_ASSIGN_OR_RETURN(rec.edge.value, r->GetU64());
      CACTIS_ASSIGN_OR_RETURN(rec.from.value, r->GetU64());
      CACTIS_ASSIGN_OR_RETURN(uint32_t from_port, r->GetU32());
      rec.from_port = from_port;
      CACTIS_ASSIGN_OR_RETURN(rec.to.value, r->GetU64());
      CACTIS_ASSIGN_OR_RETURN(uint32_t to_port, r->GetU32());
      rec.to_port = to_port;
      break;
    }
  }
  return rec;
}

void EncodeDelta(const TransactionDelta& delta, BinaryWriter* w) {
  w->PutU64(delta.txn.value);
  w->PutU64(delta.commit_seq);
  w->PutU32(static_cast<uint32_t>(delta.records.size()));
  for (const DeltaRecord& rec : delta.records) EncodeDeltaRecord(rec, w);
}

Result<TransactionDelta> DecodeDelta(BinaryReader* r) {
  TransactionDelta delta;
  CACTIS_ASSIGN_OR_RETURN(delta.txn.value, r->GetU64());
  CACTIS_ASSIGN_OR_RETURN(delta.commit_seq, r->GetU64());
  CACTIS_ASSIGN_OR_RETURN(uint32_t count, r->GetU32());
  delta.records.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CACTIS_ASSIGN_OR_RETURN(DeltaRecord rec, DecodeDeltaRecord(r));
    delta.records.push_back(std::move(rec));
  }
  return delta;
}

std::string EncodeEvent(const WalEvent& event) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(event.kind));
  switch (event.kind) {
    case WalEventKind::kCommit:
      EncodeDelta(event.delta, &w);
      break;
    case WalEventKind::kUndo:
      break;
    case WalEventKind::kCheckout:
      w.PutU64(event.checkout_target);
      break;
    case WalEventKind::kVersion:
      w.PutString(event.version_name);
      break;
    case WalEventKind::kBatch:
      // Batch containers are framed directly by WriteBatch (the members
      // are each EncodeEvent'd); a kBatch WalEvent never exists.
      break;
  }
  return w.Take();
}

Result<WalEvent> DecodeEvent(std::string_view bytes) {
  BinaryReader r(bytes);
  WalEvent event;
  CACTIS_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind < static_cast<uint8_t>(WalEventKind::kCommit) ||
      kind > static_cast<uint8_t>(WalEventKind::kVersion)) {
    return EncodeFailure("event has unknown kind " + std::to_string(kind));
  }
  event.kind = static_cast<WalEventKind>(kind);
  switch (event.kind) {
    case WalEventKind::kCommit: {
      CACTIS_ASSIGN_OR_RETURN(event.delta, DecodeDelta(&r));
      break;
    }
    case WalEventKind::kUndo:
      break;
    case WalEventKind::kCheckout: {
      CACTIS_ASSIGN_OR_RETURN(event.checkout_target, r.GetU64());
      break;
    }
    case WalEventKind::kBatch:
      // Unreachable: the kind range check above rejects batch containers
      // (ScanPlatter unwraps them before DecodeEvent ever runs).
      return EncodeFailure("batch container passed to DecodeEvent");
    case WalEventKind::kVersion: {
      CACTIS_ASSIGN_OR_RETURN(event.version_name, r.GetString());
      break;
    }
  }
  if (!r.AtEnd()) {
    return EncodeFailure("event payload has trailing bytes");
  }
  return event;
}

size_t WriteAheadLog::ChunkCapacity() const {
  size_t overhead = storage::kChecksumFrameBytes + kChunkHeaderBytes;
  if (disk_->block_size() <= overhead) return 0;
  return disk_->block_size() - overhead;
}

Status WriteAheadLog::Initialize() {
  if (ChunkCapacity() == 0) {
    return Status::InvalidArgument(
        "disk block size too small for a WAL chunk (need > " +
        std::to_string(storage::kChecksumFrameBytes + kChunkHeaderBytes) +
        " bytes)");
  }
  BlockId super = disk_->Allocate();
  if (super.value != kSuperblockId) {
    return Status::Internal(
        "WAL superblock must be the first allocated block, got " +
        std::to_string(super.value));
  }
  tail_block_ = disk_->Allocate();
  if (!tail_block_.valid()) {
    return Status::IoError("disk crashed before the WAL could initialize");
  }
  BinaryWriter w;
  w.PutU64(kMagic);
  w.PutU64(tail_block_.value);
  CACTIS_RETURN_IF_ERROR(
      WriteWithRetry(super, storage::WrapWithChecksum(w.data())));
  ++stats_.blocks_written;
  return Status::OK();
}

Status WriteAheadLog::WriteWithRetry(BlockId id, const std::string& framed) {
  Status s = disk_->Write(id, framed);
  if (s.ok() || !IsTransientFault(s)) return s;
  Backoff backoff(retry_policy_);
  while (backoff.ShouldRetry()) {
    ++stats_.retries;
    s = disk_->Write(id, framed);
    if (s.ok() || !IsTransientFault(s)) break;
  }
  stats_.backoff_us += backoff.slept_us();
  if (!s.ok() && IsTransientFault(s)) ++stats_.give_ups;
  return s;
}

Status WriteAheadLog::TruncateBefore(uint64_t before_seq) {
  while (!entry_blocks_.empty() && entry_blocks_.front().first < before_seq) {
    for (BlockId b : entry_blocks_.front().second) {
      CACTIS_RETURN_IF_ERROR(disk_->Free(b));
      ++stats_.truncated_blocks;
    }
    ++stats_.truncated_entries;
    entry_blocks_.pop_front();
  }
  return Status::OK();
}

Status WriteAheadLog::Append(const WalEvent& event) {
  uint64_t ticket = Stage(event);
  Status s = WaitDurable(ticket);
  if (!s.ok()) ForgetTicket(ticket);
  return s;
}

uint64_t WriteAheadLog::Stage(const WalEvent& event) {
  StagedEntry entry;
  entry.payload = EncodeEvent(event);
  // Charged to the staging statement: the flush may be performed later by
  // another ticket's leader, but these bytes exist because of this
  // commit.
  if (auto* c = obs::RequestScope::CurrentCost()) {
    c->wal_bytes += entry.payload.size();
  }
  std::lock_guard<std::mutex> lk(group_mu_);
  entry.ticket = ++next_ticket_;
  if (trace_) {
    // The trace sink is not thread-safe; Stage runs under the exclusive
    // statement lock, so record here rather than at flush time. The
    // subject is the ticket (== the platter seq in single-threaded runs).
    trace_->Record(obs::SpanKind::kWalAppend, entry.ticket,
                   entry.payload.size());
  }
  uint64_t ticket = entry.ticket;
  staged_.push_back(std::move(entry));
  return ticket;
}

Status WriteAheadLog::WaitDurable(uint64_t ticket) {
  std::unique_lock<std::mutex> lk(group_mu_);
  for (;;) {
    auto failed = failed_tickets_.find(ticket);
    if (failed != failed_tickets_.end()) return failed->second;
    if (resolved_ticket_ >= ticket) return Status::OK();
    if (!flush_in_progress_) {
      if (staged_.empty()) {
        // Our entry is neither staged, resolved, nor in flight — cannot
        // happen when Stage/WaitDurable are paired, but never spin.
        group_cv_.wait(lk);
        continue;
      }
      flush_in_progress_ = true;
      std::vector<StagedEntry> batch(
          std::make_move_iterator(staged_.begin()),
          std::make_move_iterator(staged_.end()));
      staged_.clear();
      if (wedged_) {
        // A previous flush gave up and its batches are still being rolled
        // back: refuse fast, without touching the disk. (Mutating stats_
        // is safe here: flush_in_progress_ keeps every other leader out.)
        Status s = Status::Unavailable("wal wedged after failed flush");
        ++stats_.wedged_flushes;
        for (const StagedEntry& e : batch) failed_tickets_.emplace(e.ticket, s);
        resolved_ticket_ = batch.back().ticket;
        flush_in_progress_ = false;
        group_cv_.notify_all();
        continue;
      }
      lk.unlock();
      Status s = WriteBatch(batch);
      lk.lock();
      flush_in_progress_ = false;
      if (!s.ok()) {
        wedged_ = true;
        for (const StagedEntry& e : batch) failed_tickets_.emplace(e.ticket, s);
      }
      resolved_ticket_ = batch.back().ticket;
      group_cv_.notify_all();
      continue;
    }
    group_cv_.wait(lk);
  }
}

bool WriteAheadLog::TicketFailed(uint64_t ticket) {
  std::lock_guard<std::mutex> lk(group_mu_);
  return failed_tickets_.contains(ticket);
}

void WriteAheadLog::ForgetTicket(uint64_t ticket) {
  std::lock_guard<std::mutex> lk(group_mu_);
  failed_tickets_.erase(ticket);
}

bool WriteAheadLog::wedged() {
  std::lock_guard<std::mutex> lk(group_mu_);
  return wedged_;
}

void WriteAheadLog::ClearWedge() {
  std::lock_guard<std::mutex> lk(group_mu_);
  wedged_ = false;
}

void WriteAheadLog::WaitIdle() {
  std::unique_lock<std::mutex> lk(group_mu_);
  group_cv_.wait(lk,
                 [&] { return !flush_in_progress_ && staged_.empty(); });
}

uint64_t WriteAheadLog::ResolvedTicket() {
  std::lock_guard<std::mutex> lk(group_mu_);
  return resolved_ticket_;
}

Status WriteAheadLog::WriteBatch(const std::vector<StagedEntry>& batch) {
  if (!tail_block_.valid()) {
    return Status::Internal("WAL used before Initialize()");
  }
  // A batch of one is written exactly as a classic Append; a larger batch
  // wraps its members in a kBatch container so the whole group costs one
  // chained log entry.
  std::string payload;
  if (batch.size() == 1) {
    payload = batch.front().payload;
  } else {
    BinaryWriter w;
    w.PutU8(static_cast<uint8_t>(WalEventKind::kBatch));
    w.PutU32(static_cast<uint32_t>(batch.size()));
    for (const StagedEntry& e : batch) w.PutString(e.payload);
    payload = w.Take();
  }
  size_t cap = ChunkCapacity();
  size_t chunk_count = payload.empty() ? 1 : (payload.size() + cap - 1) / cap;

  // Pre-allocate the whole chain plus the new tail before writing anything:
  // every chunk names its successor, and a crash mid-append leaves an
  // incomplete entry that the scan discards.
  std::vector<BlockId> blocks;
  blocks.reserve(chunk_count + 1);
  blocks.push_back(tail_block_);
  for (size_t i = 0; i < chunk_count; ++i) {
    BlockId next = disk_->Allocate();
    if (!next.valid()) return Status::IoError("disk crashed during WAL append");
    blocks.push_back(next);
  }

  for (size_t i = 0; i < chunk_count; ++i) {
    size_t offset = i * cap;
    size_t piece_len =
        payload.size() > offset ? std::min(cap, payload.size() - offset) : 0;
    BinaryWriter w;
    w.PutU32(kChunkMagic);
    w.PutU64(next_seq_);
    w.PutU32(static_cast<uint32_t>(i));
    w.PutU32(static_cast<uint32_t>(chunk_count));
    w.PutU64(blocks[i + 1].value);
    w.PutString(std::string_view(payload).substr(offset, piece_len));
    CACTIS_RETURN_IF_ERROR(
        WriteWithRetry(blocks[i], storage::WrapWithChecksum(w.data())));
    ++stats_.blocks_written;
  }

  entry_blocks_.emplace_back(
      next_seq_, std::vector<BlockId>(blocks.begin(), blocks.end() - 1));
  tail_block_ = blocks.back();
  ++next_seq_;
  stats_.entries_appended += batch.size();
  stats_.bytes_logged += payload.size();
  ++stats_.group_batches;
  stats_.group_batched_entries += batch.size();
  size_t bucket = obs::Histogram::BucketOf(batch.size());
  if (bucket >= WalStats::kBatchSizeBuckets) {
    bucket = WalStats::kBatchSizeBuckets - 1;
  }
  ++stats_.batch_size_buckets[bucket];
  return Status::OK();
}

Result<BlockId> WriteAheadLog::ReadFirstBlock(
    const storage::SimulatedDisk& platter) {
  Result<std::string> super = platter.PeekRaw(BlockId(kSuperblockId));
  if (!super.ok()) return Status::NotFound("platter has no WAL superblock");
  Result<std::string> super_payload = storage::UnwrapChecksum(*super);
  if (!super_payload.ok() || super_payload->empty()) {
    return Status::NotFound("platter WAL superblock unreadable");
  }
  BinaryReader sr(*super_payload);
  Result<uint64_t> magic = sr.GetU64();
  if (!magic.ok() || *magic != kMagic) {
    return Status::NotFound("platter carries no WAL magic");
  }
  CACTIS_ASSIGN_OR_RETURN(uint64_t first_block, sr.GetU64());
  return BlockId(first_block);
}

Result<std::vector<WalEvent>> WriteAheadLog::ScanPlatter(
    const storage::SimulatedDisk& platter) {
  CACTIS_ASSIGN_OR_RETURN(BlockId first, ReadFirstBlock(platter));
  CACTIS_ASSIGN_OR_RETURN(WalScanResult scan,
                          ScanPlatterFrom(platter, first, 1));
  return std::move(scan.events);
}

Result<WalScanResult> WriteAheadLog::ScanPlatterFrom(
    const storage::SimulatedDisk& platter, BlockId start_block,
    uint64_t start_seq) {
  WalScanResult result;
  uint64_t expected_seq = start_seq;
  BlockId cursor = start_block;
  // Set when the chain stops at a block that carries bytes but fails
  // verification (torn or bit-rotted) — as opposed to the clean end, the
  // pre-allocated, never-written tail block.
  bool damaged_stop = false;
  uint64_t damaged_bytes = 0;
  for (;;) {
    // Assemble one entry; any irregularity means we hit the unsealed tail.
    std::string payload;
    BlockId next = cursor;
    uint32_t chunk_count = 1;
    bool complete = true;
    for (uint32_t chunk = 0; chunk < chunk_count; ++chunk) {
      Result<std::string> raw = platter.PeekRaw(next);
      if (!raw.ok() || raw->empty()) {
        // Clean end of the chain. A partially assembled payload means the
        // append was cut mid-entry; its sealed prefix chunks are discarded
        // tail bytes like any other salvage.
        complete = false;
        if (!payload.empty()) damaged_stop = true;
        damaged_bytes += payload.size();
        break;
      }
      Result<std::string> content = storage::UnwrapChecksum(*raw);
      BinaryReader r(content.ok() ? std::string_view(*content)
                                  : std::string_view());
      Result<uint32_t> chunk_magic = r.GetU32();
      Result<uint64_t> seq = r.GetU64();
      Result<uint32_t> index = r.GetU32();
      Result<uint32_t> count = r.GetU32();
      Result<uint64_t> next_value = r.GetU64();
      Result<std::string> piece = r.GetString();
      if (!content.ok() || content->empty() || !chunk_magic.ok() ||
          *chunk_magic != kChunkMagic || !seq.ok() || !index.ok() ||
          !count.ok() || !next_value.ok() || !piece.ok() ||
          *seq != expected_seq || *index != chunk || *count == 0 ||
          (chunk > 0 && *count != chunk_count)) {
        complete = false;
        damaged_stop = true;
        damaged_bytes += raw->size() + payload.size();
        break;
      }
      if (chunk == 0) chunk_count = *count;
      payload += *piece;
      next = BlockId(*next_value);
    }
    if (complete) {
      // The entry's bytes are sound; a payload that still fails to decode
      // is damage too (it can only be an encoder torn mid-batch).
      bool decoded = true;
      if (!payload.empty() &&
          static_cast<uint8_t>(payload[0]) ==
              static_cast<uint8_t>(WalEventKind::kBatch)) {
        // Group-commit container: flatten its members in staging order.
        BinaryReader br(payload);
        (void)br.GetU8();
        Result<uint32_t> count = br.GetU32();
        std::vector<WalEvent> members;
        if (count.ok()) {
          members.reserve(*count);
          for (uint32_t i = 0; i < *count && decoded; ++i) {
            Result<std::string> piece = br.GetString();
            if (!piece.ok()) {
              decoded = false;
              break;
            }
            Result<WalEvent> member = DecodeEvent(*piece);
            if (!member.ok()) {
              decoded = false;
              break;
            }
            members.push_back(*std::move(member));
          }
          if (decoded && !br.AtEnd()) decoded = false;
        } else {
          decoded = false;
        }
        if (decoded) {
          for (WalEvent& member : members) {
            result.events.push_back(std::move(member));
          }
        }
      } else {
        Result<WalEvent> event = DecodeEvent(payload);
        if (event.ok()) {
          result.events.push_back(*std::move(event));
        } else {
          decoded = false;
        }
      }
      if (!decoded) {
        complete = false;
        damaged_stop = true;
        damaged_bytes += payload.size();
      }
    }
    if (!complete) break;
    ++expected_seq;
    cursor = next;
  }

  if (damaged_stop) {
    // The chain stopped at damage. If any *sealed* chunk with a later
    // sequence number exists anywhere on the platter, entries beyond the
    // damage were durable — and durable entries are acknowledged commits,
    // because the log seals entries strictly in order. Losing one is
    // unrecoverable corruption. Otherwise the damage is the unsealed tail
    // (a torn append, or bit rot on the very last record — which is
    // indistinguishable from a torn append and dropped the same way).
    for (BlockId b : platter.AllocatedBlocks()) {
      Result<std::string> raw = platter.PeekRaw(b);
      if (!raw.ok()) continue;
      std::optional<uint64_t> seq = SealedChunkSeq(*raw);
      if (seq.has_value() && *seq > expected_seq) {
        return Status::Corruption(
            "WAL damaged at entry " + std::to_string(expected_seq) +
            " but sealed entry " + std::to_string(*seq) +
            " lies beyond it: an acknowledged commit would be lost");
      }
    }
    result.salvaged_tail_bytes += damaged_bytes;
  }
  result.next_seq = expected_seq;
  return result;
}

}  // namespace cactis::txn
