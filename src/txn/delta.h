// Delta records: the undo/redo log of Cactis (paper sections 2.2 and 3).
//
// "All of the actions that take place as a consequence of changing an
// attribute value can be undone simply by restoring the old value of the
// attribute. Updates resulting from structural changes can be undone by
// restoring the old structure." Only *primitive* changes are logged —
// intrinsic attribute writes and structural operations — never derived
// ripple, which is recomputed. This is the paper's "delta proportional in
// size to the initial changes" property (measured in experiment E7).
//
// Each record carries both old and new state, so a committed delta chain
// supports undo (walk backwards) and redo (walk forwards), which is the
// basis of the version facility.

#ifndef CACTIS_TXN_DELTA_H_
#define CACTIS_TXN_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/value.h"

namespace cactis::txn {

enum class DeltaOp : uint8_t {
  kSetAttr,     // intrinsic attribute write
  kCreate,      // instance creation
  kDelete,      // instance deletion (snapshot of intrinsic values)
  kConnect,     // relationship established
  kDisconnect,  // relationship broken
};

std::string_view DeltaOpToString(DeltaOp op);

struct DeltaRecord {
  DeltaOp op = DeltaOp::kSetAttr;
  InstanceId instance;

  // kSetAttr
  size_t attr_index = 0;
  Value old_value;
  Value new_value;

  // kCreate / kDelete
  ClassId class_id;
  /// kDelete: the intrinsic attribute values at deletion time, so undo can
  /// rebuild the instance (derived values are recomputed, not logged).
  std::vector<std::pair<size_t, Value>> intrinsic_snapshot;

  // kConnect / kDisconnect
  EdgeId edge;
  InstanceId from;
  size_t from_port = 0;
  InstanceId to;
  size_t to_port = 0;

  /// Approximate serialized size in bytes; experiment E7 measures delta
  /// growth against ripple size with this.
  size_t ByteSize() const;
};

/// The delta of one transaction, in execution order.
struct TransactionDelta {
  TxnId txn;
  uint64_t commit_seq = 0;  // position in the committed history
  std::vector<DeltaRecord> records;

  size_t ByteSize() const;
  bool empty() const { return records.empty(); }
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_DELTA_H_
