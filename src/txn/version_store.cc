#include "txn/version_store.h"

#include <limits>

namespace cactis::txn {

uint64_t VersionStore::Append(TransactionDelta delta) {
  if (position_ < end()) {
    // Truncate the redo tail and every version naming a truncated point.
    history_.resize(position_ - base_);
    for (auto it = versions_.begin(); it != versions_.end();) {
      if (it->second > position_) {
        it = versions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  delta.commit_seq = end() + 1;
  history_.push_back(std::move(delta));
  position_ = end();
  return position_;
}

Result<VersionId> VersionStore::CreateVersion(const std::string& name) {
  if (versions_.contains(name)) {
    return Status::AlreadyExists("version '" + name + "' already exists");
  }
  versions_[name] = position_;
  return VersionId(++next_version_);
}

Result<uint64_t> VersionStore::PositionOf(const std::string& name) const {
  auto it = versions_.find(name);
  if (it == versions_.end()) {
    return Status::NotFound("unknown version '" + name + "'");
  }
  return it->second;
}

Result<std::vector<const TransactionDelta*>> VersionStore::DeltasToUndo(
    uint64_t target) const {
  if (target < base_ && target < position_) {
    return Status::OutOfRange(
        "cannot undo past position " + std::to_string(base_) +
        ": older deltas were pruned");
  }
  std::vector<const TransactionDelta*> out;
  for (uint64_t i = position_; i > target; --i) {
    out.push_back(&history_[i - 1 - base_]);
  }
  return out;
}

Result<std::vector<const TransactionDelta*>> VersionStore::DeltasToRedo(
    uint64_t target) const {
  if (position_ < base_) {
    return Status::OutOfRange(
        "position below pruned base: cannot redo");
  }
  std::vector<const TransactionDelta*> out;
  uint64_t stop = target > end() ? end() : target;
  for (uint64_t i = position_; i < stop; ++i) {
    out.push_back(&history_[i - base_]);
  }
  return out;
}

Result<TransactionDelta> VersionStore::PopLast() {
  if (history_.empty()) {
    if (base_ > 0) {
      return Status::OutOfRange(
          "the remaining committed history was pruned and cannot be "
          "undone");
    }
    return Status::NotFound("no committed transaction to undo");
  }
  if (position_ != end()) {
    return Status::InvalidArgument(
        "cannot pop the last transaction while positioned at an old "
        "version; check out the newest state first");
  }
  TransactionDelta delta = std::move(history_.back());
  history_.pop_back();
  position_ = end();
  for (auto it = versions_.begin(); it != versions_.end();) {
    if (it->second > position_) {
      it = versions_.erase(it);
    } else {
      ++it;
    }
  }
  return delta;
}

uint64_t VersionStore::PruneTo(uint64_t floor) {
  if (floor > position_) floor = position_;
  if (floor > end()) floor = end();
  if (floor <= base_) return 0;
  uint64_t drop = floor - base_;
  history_.erase(history_.begin(),
                 history_.begin() + static_cast<ptrdiff_t>(drop));
  base_ = floor;
  pruned_deltas_ += drop;
  return drop;
}

uint64_t VersionStore::OldestNamedPosition() const {
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (const auto& [name, pos] : versions_) {
    (void)name;
    if (pos < oldest) oldest = pos;
  }
  return oldest;
}

size_t VersionStore::TotalDeltaBytes() const {
  size_t n = 0;
  for (const TransactionDelta& d : history_) n += d.ByteSize();
  return n;
}

std::vector<std::string> VersionStore::VersionNames() const {
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [name, pos] : versions_) {
    (void)pos;
    out.push_back(name);
  }
  return out;
}

}  // namespace cactis::txn
