#include "txn/version_store.h"

namespace cactis::txn {

uint64_t VersionStore::Append(TransactionDelta delta) {
  if (position_ < history_.size()) {
    // Truncate the redo tail and every version naming a truncated point.
    history_.resize(position_);
    for (auto it = versions_.begin(); it != versions_.end();) {
      if (it->second > position_) {
        it = versions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  delta.commit_seq = history_.size() + 1;
  history_.push_back(std::move(delta));
  position_ = history_.size();
  return position_;
}

Result<VersionId> VersionStore::CreateVersion(const std::string& name) {
  if (versions_.contains(name)) {
    return Status::AlreadyExists("version '" + name + "' already exists");
  }
  versions_[name] = position_;
  return VersionId(++next_version_);
}

Result<uint64_t> VersionStore::PositionOf(const std::string& name) const {
  auto it = versions_.find(name);
  if (it == versions_.end()) {
    return Status::NotFound("unknown version '" + name + "'");
  }
  return it->second;
}

std::vector<const TransactionDelta*> VersionStore::DeltasToUndo(
    uint64_t target) const {
  std::vector<const TransactionDelta*> out;
  for (uint64_t i = position_; i > target; --i) {
    out.push_back(&history_[i - 1]);
  }
  return out;
}

std::vector<const TransactionDelta*> VersionStore::DeltasToRedo(
    uint64_t target) const {
  std::vector<const TransactionDelta*> out;
  uint64_t stop = target > history_.size() ? history_.size() : target;
  for (uint64_t i = position_; i < stop; ++i) {
    out.push_back(&history_[i]);
  }
  return out;
}

Result<TransactionDelta> VersionStore::PopLast() {
  if (history_.empty()) {
    return Status::NotFound("no committed transaction to undo");
  }
  if (position_ != history_.size()) {
    return Status::InvalidArgument(
        "cannot pop the last transaction while positioned at an old "
        "version; check out the newest state first");
  }
  TransactionDelta delta = std::move(history_.back());
  history_.pop_back();
  position_ = history_.size();
  for (auto it = versions_.begin(); it != versions_.end();) {
    if (it->second > position_) {
      it = versions_.erase(it);
    } else {
      ++it;
    }
  }
  return delta;
}

size_t VersionStore::TotalDeltaBytes() const {
  size_t n = 0;
  for (const TransactionDelta& d : history_) n += d.ByteSize();
  return n;
}

std::vector<std::string> VersionStore::VersionNames() const {
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [name, pos] : versions_) {
    (void)pos;
    out.push_back(name);
  }
  return out;
}

}  // namespace cactis::txn
