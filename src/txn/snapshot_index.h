// SnapshotIndex: per-instance version chains for MVCC snapshot reads.
//
// The VersionStore retains every committed TransactionDelta as a linear
// history, which is perfect for undo/redo but useless for point reads: a
// reader asking "what was obj.v at commit seq S?" would have to scan the
// whole log. This index reorganises the same committed facts into
// per-instance chains of immutable version nodes, newest first, so a
// read-only statement can resolve any intrinsic attribute against the
// newest version <= its snapshot sequence without taking the statement
// lock and without touching the timestamp-ordering marks.
//
// Threading model (the whole point of this file):
//   - All mutators (Record*, TruncateAfter, Prune, SetLatestPublished)
//     run under the database's exclusive statement lock, so they are
//     serialised against each other. Readers are NOT excluded.
//   - A reader copies a chain head under a striped shared_mutex, then
//     walks prev pointers with no lock at all: nodes are immutable once
//     published and kept alive by shared_ptr, so a concurrent truncate or
//     prune can only unhook nodes the reader already holds.
//   - latest_published_ is a release-store / acquire-load sequence
//     number: a snapshot acquired at S is guaranteed to see every chain
//     node with seq <= S, because the node inserts happen-before the
//     SetLatestPublished(S) that made S visible.
//
// Strict-miss rule: the index never guesses. Any situation where the
// chain cannot prove the committed value at S — derived attribute (never
// chained), instance with no node <= S (created later, or pruned past S),
// newest node <= S is a delete, membership list disabled for size — is a
// *miss*, and the caller falls back to the locked read path. A miss is
// never wrong, only slower.
//
// Pruning folds every node with seq <= floor into a single base node at
// the floor (full intrinsic state), bounding memory. The caller picks a
// floor no newer than the oldest live snapshot, the oldest named
// version, and the current checkout position, so a fold can never steal
// a version a live reader still needs.

#ifndef CACTIS_TXN_SNAPSHOT_INDEX_H_
#define CACTIS_TXN_SNAPSHOT_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "obs/metrics.h"

namespace cactis::txn {

class SnapshotIndex {
 public:
  /// Concurrent statements that can hold a snapshot at once. Acquire()
  /// returns an invalid handle when all slots are busy; the caller falls
  /// back to the locked path.
  static constexpr size_t kMaxSnapshots = 64;

  /// Membership chains stop tracking a class once its extent outgrows
  /// this; `instances of` / `select` on such a class falls back.
  static constexpr size_t kMaxChainedMembers = 4096;

  enum class Lookup { kHit, kMiss };

  /// RAII registration of a live snapshot: while alive, Prune() will not
  /// fold past its sequence. Movable, not copyable.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&& other) noexcept { *this = std::move(other); }
    Snapshot& operator=(Snapshot&& other) noexcept {
      Release();
      index_ = other.index_;
      slot_ = other.slot_;
      seq_ = other.seq_;
      epoch_ = other.epoch_;
      other.index_ = nullptr;
      other.slot_ = -1;
      return *this;
    }
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    ~Snapshot() { Release(); }

    bool valid() const { return index_ != nullptr; }
    uint64_t seq() const { return seq_; }
    uint64_t epoch() const { return epoch_; }
    void Release();

   private:
    friend class SnapshotIndex;
    Snapshot(SnapshotIndex* index, int slot, uint64_t seq, uint64_t epoch)
        : index_(index), slot_(slot), seq_(seq), epoch_(epoch) {}

    SnapshotIndex* index_ = nullptr;
    int slot_ = -1;
    uint64_t seq_ = 0;
    uint64_t epoch_ = 0;
  };

  /// Registers a snapshot at the latest published sequence. Invalid when
  /// every slot is taken (caller falls back).
  Snapshot Acquire();

  /// The smallest sequence any live snapshot holds, or UINT64_MAX.
  uint64_t OldestLiveSnapshot() const;

  /// Publishes sequence `seq`: chain nodes ingested before this call
  /// become visible to snapshots acquired after it. Release-store.
  void SetLatestPublished(uint64_t seq) {
    latest_published_.store(seq, std::memory_order_release);
  }
  uint64_t latest_published() const {
    return latest_published_.load(std::memory_order_acquire);
  }

  // --- Ingest (exclusive statement lock held by the caller) ---------------

  /// A committed intrinsic write at `seq`. Dropped (not an error) when
  /// the instance has no chain: reads of such an instance miss anyway.
  void RecordWrite(InstanceId id, uint64_t seq, size_t attr_index, Value v);

  /// A committed instance creation with its full intrinsic state, plus
  /// class-extent membership. `track_membership` is false only when
  /// replaying pre-checkpoint history, whose extents are unknown below
  /// the checkpoint position (membership is seeded there instead).
  void RecordCreate(InstanceId id, uint64_t seq, ClassId cls,
                    std::vector<std::pair<size_t, Value>> intrinsics,
                    bool track_membership = true);

  /// A checkpoint-bootstrap base version: like RecordCreate but the
  /// instance is known to pre-date `seq` rather than be created at it.
  void RecordBase(InstanceId id, uint64_t seq, ClassId cls,
                  std::vector<std::pair<size_t, Value>> intrinsics);

  /// A committed instance deletion (also leaves the class extent).
  void RecordDelete(InstanceId id, uint64_t seq, ClassId cls,
                    bool track_membership = true);

  /// Seeds a class extent wholesale (checkpoint restore). `members` must
  /// be sorted.
  void SeedMembership(ClassId cls, uint64_t seq,
                      std::vector<InstanceId> members);

  /// Ensures `cls` has a membership chain whose genesis (empty) node sits
  /// at the coverage floor, so "no members yet" is provable rather than a
  /// miss. Called when a class is registered.
  void EnsureMembership(ClassId cls);

  // --- Reader side (lock-free walks; safe against all mutators) -----------

  /// Resolves intrinsic attribute `attr_index` of `id` as of `snap`.
  /// kHit fills `out` with the committed value; kMiss means the chain
  /// cannot prove it (fall back to the locked path). Every lookup misses
  /// once the epoch moved past the snapshot's (an undo meta-action
  /// truncated history, so the snapshot's sequence numbers may have been
  /// reissued to different commits).
  Lookup ReadAttr(const Snapshot& snap, InstanceId id, size_t attr_index,
                  Value* out) const;

  /// Resolves the class of `id` as of `snap` (miss when the instance is
  /// unproven or deleted at the snapshot).
  Lookup ClassAt(const Snapshot& snap, InstanceId id, ClassId* out) const;

  /// The sorted extent of `cls` as of `snap`, or miss.
  Lookup MembersAt(const Snapshot& snap, ClassId cls,
                   std::vector<InstanceId>* out) const;

  // --- Maintenance (exclusive statement lock held by the caller) ----------

  /// Drops every node with seq > position: the redo tail was truncated
  /// (undo meta-action followed by new work) and those sequence numbers
  /// will be reissued to different deltas. Bumps the epoch, expiring
  /// every live snapshot (their reads turn into fallbacks).
  void TruncateAfter(uint64_t position);

  /// Folds all versions with seq <= floor into one base node per chain.
  /// The caller guarantees floor <= every live snapshot, named version
  /// and the current checkout position.
  void Prune(uint64_t floor);

  /// Sequence below which the index has no coverage (checkpoint restore
  /// or pruning). Reads below it miss structurally; new membership
  /// chains anchor their genesis here.
  uint64_t coverage_floor() const {
    return coverage_floor_.load(std::memory_order_relaxed);
  }
  void SetCoverageFloor(uint64_t floor) {
    coverage_floor_.store(floor, std::memory_order_relaxed);
  }

  /// Drops all chains and registers nothing (fresh Recover()).
  void Reset();

  // --- Observability ------------------------------------------------------

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t pruned_versions() const {
    return pruned_versions_.load(std::memory_order_relaxed);
  }
  uint64_t chain_nodes() const {
    return chain_nodes_.load(std::memory_order_relaxed);
  }
  uint64_t live_snapshots() const;

  void ExportTo(obs::MetricsGroup* g) const;

 private:
  struct VersionNode;
  using NodePtr = std::shared_ptr<const VersionNode>;

  enum class NodeKind : uint8_t { kBase, kCreate, kWrite, kDelete };

  // One committed version of one instance. Immutable after publication.
  struct VersionNode {
    uint64_t seq = 0;
    NodeKind kind = NodeKind::kWrite;
    ClassId class_id;  // kBase / kCreate only
    // kWrite: the attributes this commit wrote (sparse). kBase/kCreate:
    // the full intrinsic state. Empty for kDelete.
    std::vector<std::pair<size_t, Value>> attrs;
    NodePtr prev;
  };

  struct MemberNode {
    uint64_t seq = 0;
    // Sorted extent at `seq`. nullptr = tracking disabled (extent grew
    // past kMaxChainedMembers); every read at or past this node misses.
    std::shared_ptr<const std::vector<InstanceId>> members;
    std::shared_ptr<const MemberNode> prev;
  };
  using MemberPtr = std::shared_ptr<const MemberNode>;

  static constexpr size_t kStripes = 16;
  struct Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<InstanceId, NodePtr> heads;
  };

  Stripe& StripeFor(InstanceId id) {
    return stripes_[id.value % kStripes];
  }
  const Stripe& StripeFor(InstanceId id) const {
    return stripes_[id.value % kStripes];
  }

  NodePtr HeadOf(InstanceId id) const;
  void PushNode(InstanceId id, VersionNode node);
  MemberPtr MemberHeadOf(ClassId cls) const;
  void PushMembers(ClassId cls, uint64_t seq,
                   std::shared_ptr<const std::vector<InstanceId>> members);
  void MutateMembership(ClassId cls, uint64_t seq, InstanceId id, bool add);

  void ReleaseSlot(int slot);

  // Counters declared before the chains so node teardown in the
  // destructor never outlives them. hits_/misses_ are mutable because
  // the reader-side lookups are const.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> pruned_versions_{0};
  std::atomic<uint64_t> chain_nodes_{0};
  std::atomic<uint64_t> member_nodes_{0};
  std::atomic<uint64_t> snapshot_acquire_failures_{0};

  std::atomic<uint64_t> latest_published_{0};
  // Bumped whenever committed history is truncated (sequence numbers get
  // reissued); snapshots from an older epoch always miss.
  std::atomic<uint64_t> epoch_{0};
  // seq + 1 of the registered snapshot; 0 = free slot.
  std::atomic<uint64_t> slots_[kMaxSnapshots] = {};

  // Mutated only under the exclusive statement lock; atomic because the
  // metrics scrape may read it from another thread.
  std::atomic<uint64_t> coverage_floor_{0};

  Stripe stripes_[kStripes];
  mutable std::shared_mutex members_mu_;
  std::unordered_map<ClassId, MemberPtr> member_heads_;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_SNAPSHOT_INDEX_H_
