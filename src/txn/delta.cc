#include "txn/delta.h"

namespace cactis::txn {

std::string_view DeltaOpToString(DeltaOp op) {
  switch (op) {
    case DeltaOp::kSetAttr:
      return "set-attr";
    case DeltaOp::kCreate:
      return "create";
    case DeltaOp::kDelete:
      return "delete";
    case DeltaOp::kConnect:
      return "connect";
    case DeltaOp::kDisconnect:
      return "disconnect";
  }
  return "?";
}

size_t DeltaRecord::ByteSize() const {
  size_t n = 1 + 8;  // op + instance id
  switch (op) {
    case DeltaOp::kSetAttr:
      n += 4 + old_value.SerializedSize() + new_value.SerializedSize();
      break;
    case DeltaOp::kCreate:
      n += 8;
      break;
    case DeltaOp::kDelete:
      n += 8;
      for (const auto& [idx, value] : intrinsic_snapshot) {
        (void)idx;
        n += 4 + value.SerializedSize();
      }
      break;
    case DeltaOp::kConnect:
    case DeltaOp::kDisconnect:
      n += 8 + 8 + 8 + 4 + 4;  // edge, from, to, ports
      break;
  }
  return n;
}

size_t TransactionDelta::ByteSize() const {
  size_t n = 16;
  for (const DeltaRecord& r : records) n += r.ByteSize();
  return n;
}

}  // namespace cactis::txn
