#include "txn/checkpoint.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "common/error_taxonomy.h"
#include "common/serial.h"
#include "storage/checksum.h"
#include "txn/wal.h"

namespace cactis::txn {
namespace {

constexpr uint64_t kImageMagic = 0x434B50494D414745ULL;  // "CKPIMAGE"

// Fixed bytes of a chain block header: chain magic (4) + next block (8) +
// piece length prefix (4).
constexpr size_t kChainHeaderBytes = 16;

struct SlotContent {
  uint64_t generation = 0;
  BlockId chain_head;
  uint64_t resume_seq = 1;
  BlockId resume_block;
};

/// Parses a slot block; nullopt when the slot is empty, torn, or carries
/// no checkpoint (a fresh platter, or a platter from before checkpointing
/// existed).
std::optional<SlotContent> ParseSlot(const storage::SimulatedDisk& platter,
                                     BlockId slot) {
  Result<std::string> raw = platter.PeekRaw(slot);
  if (!raw.ok() || raw->empty()) return std::nullopt;
  Result<std::string> payload = storage::UnwrapChecksum(*raw);
  if (!payload.ok() || payload->empty()) return std::nullopt;
  BinaryReader r(*payload);
  Result<uint64_t> magic = r.GetU64();
  if (!magic.ok() || *magic != CheckpointStore::kSlotMagic) return std::nullopt;
  SlotContent content;
  Result<uint64_t> generation = r.GetU64();
  Result<uint64_t> head = r.GetU64();
  Result<uint64_t> seq = r.GetU64();
  Result<uint64_t> resume = r.GetU64();
  if (!generation.ok() || !head.ok() || !seq.ok() || !resume.ok() ||
      !r.AtEnd()) {
    return std::nullopt;
  }
  content.generation = *generation;
  content.chain_head = BlockId(*head);
  content.resume_seq = *seq;
  content.resume_block = BlockId(*resume);
  return content;
}

/// Walks an image chain, validating every block. Returns the reassembled
/// image and the blocks visited, or an error if the chain is damaged
/// (which LoadLatest treats as "this slot is unusable" and WriteCheckpoint
/// treats as "nothing left to free").
Result<std::pair<std::string, std::vector<BlockId>>> WalkChain(
    const storage::SimulatedDisk& platter, BlockId head) {
  std::string image;
  std::vector<BlockId> blocks;
  std::unordered_set<uint64_t> visited;
  BlockId cursor = head;
  while (cursor.valid()) {
    if (!visited.insert(cursor.value).second) {
      return Status::Corruption("checkpoint chain loops");
    }
    Result<std::string> raw = platter.PeekRaw(cursor);
    if (!raw.ok() || raw->empty()) {
      return Status::Corruption("checkpoint chain block missing");
    }
    Result<std::string> payload = storage::UnwrapChecksum(*raw);
    if (!payload.ok() || payload->empty()) {
      return Status::Corruption("checkpoint chain block damaged");
    }
    BinaryReader r(*payload);
    Result<uint32_t> magic = r.GetU32();
    Result<uint64_t> next = r.GetU64();
    Result<std::string> piece = r.GetString();
    if (!magic.ok() || *magic != CheckpointStore::kChainMagic || !next.ok() ||
        !piece.ok() || !r.AtEnd()) {
      return Status::Corruption("checkpoint chain block malformed");
    }
    blocks.push_back(cursor);
    image += *piece;
    cursor = BlockId(*next);
  }
  return std::make_pair(std::move(image), std::move(blocks));
}

}  // namespace

std::string EncodeCheckpointImage(const CheckpointImage& image) {
  BinaryWriter w;
  w.PutU64(kImageMagic);
  w.PutU64(image.next_instance);
  w.PutU64(image.next_edge);
  w.PutU64(image.next_txn);
  EncodeDelta(image.bootstrap, &w);
  w.PutU32(static_cast<uint32_t>(image.history.size()));
  for (const TransactionDelta& delta : image.history) EncodeDelta(delta, &w);
  w.PutU64(image.history_base);
  w.PutU64(image.position);
  w.PutU32(static_cast<uint32_t>(image.versions.size()));
  for (const auto& [name, pos] : image.versions) {
    w.PutString(name);
    w.PutU64(pos);
  }
  w.PutU64(image.next_version);
  return w.Take();
}

Result<CheckpointImage> DecodeCheckpointImage(std::string_view bytes) {
  BinaryReader r(bytes);
  CheckpointImage image;
  CACTIS_ASSIGN_OR_RETURN(uint64_t magic, r.GetU64());
  if (magic != kImageMagic) {
    return Status::Corruption("checkpoint image has wrong magic");
  }
  CACTIS_ASSIGN_OR_RETURN(image.next_instance, r.GetU64());
  CACTIS_ASSIGN_OR_RETURN(image.next_edge, r.GetU64());
  CACTIS_ASSIGN_OR_RETURN(image.next_txn, r.GetU64());
  CACTIS_ASSIGN_OR_RETURN(image.bootstrap, DecodeDelta(&r));
  CACTIS_ASSIGN_OR_RETURN(uint32_t history_count, r.GetU32());
  image.history.reserve(history_count);
  for (uint32_t i = 0; i < history_count; ++i) {
    CACTIS_ASSIGN_OR_RETURN(TransactionDelta delta, DecodeDelta(&r));
    image.history.push_back(std::move(delta));
  }
  CACTIS_ASSIGN_OR_RETURN(image.history_base, r.GetU64());
  CACTIS_ASSIGN_OR_RETURN(image.position, r.GetU64());
  CACTIS_ASSIGN_OR_RETURN(uint32_t version_count, r.GetU32());
  for (uint32_t i = 0; i < version_count; ++i) {
    CACTIS_ASSIGN_OR_RETURN(std::string name, r.GetString());
    CACTIS_ASSIGN_OR_RETURN(uint64_t pos, r.GetU64());
    image.versions.emplace(std::move(name), pos);
  }
  CACTIS_ASSIGN_OR_RETURN(image.next_version, r.GetU64());
  if (!r.AtEnd()) {
    return Status::Corruption("checkpoint image has trailing bytes");
  }
  return image;
}

Status CheckpointStore::AllocateSlots() {
  for (int i = 0; i < 2; ++i) {
    slots_[i] = disk_->Allocate();
    if (!slots_[i].valid()) {
      return Status::IoError("disk crashed before checkpoint slots existed");
    }
  }
  if (slots_[0].value != kSlotA || slots_[1].value != kSlotB) {
    return Status::Internal(
        "checkpoint slots must be blocks " + std::to_string(kSlotA) + "/" +
        std::to_string(kSlotB) + ", got " + std::to_string(slots_[0].value) +
        "/" + std::to_string(slots_[1].value));
  }
  return Status::OK();
}

Status CheckpointStore::WriteWithRetry(BlockId id, const std::string& framed) {
  Status s = disk_->Write(id, framed);
  if (s.ok() || !IsTransientFault(s)) return s;
  Backoff backoff(retry_policy_);
  while (backoff.ShouldRetry()) {
    ++stats_.retries;
    s = disk_->Write(id, framed);
    if (s.ok() || !IsTransientFault(s)) break;
  }
  stats_.backoff_us += backoff.slept_us();
  if (!s.ok() && IsTransientFault(s)) ++stats_.give_ups;
  return s;
}

Status CheckpointStore::WriteCheckpoint(const std::string& image,
                                        uint64_t wal_resume_seq,
                                        BlockId wal_resume_block) {
  if (!slots_[0].valid() || !slots_[1].valid()) {
    return Status::Internal("checkpoint store used before AllocateSlots()");
  }
  size_t overhead = storage::kChecksumFrameBytes + kChainHeaderBytes;
  if (disk_->block_size() <= overhead) {
    return Status::InvalidArgument(
        "disk block size too small for a checkpoint chain block");
  }
  size_t cap = disk_->block_size() - overhead;

  // Pick the inactive slot: the one whose generation is lower (or which
  // holds no valid checkpoint at all). The active slot and its chain stay
  // untouched until the new checkpoint has fully committed.
  std::optional<SlotContent> a = ParseSlot(*disk_, slots_[0]);
  std::optional<SlotContent> b = ParseSlot(*disk_, slots_[1]);
  uint64_t new_generation = 1;
  if (a.has_value()) new_generation = std::max(new_generation, a->generation + 1);
  if (b.has_value()) new_generation = std::max(new_generation, b->generation + 1);
  int target;
  if (!a.has_value()) {
    target = 0;
  } else if (!b.has_value()) {
    target = 1;
  } else {
    target = a->generation <= b->generation ? 0 : 1;
  }
  const std::optional<SlotContent>& old = target == 0 ? a : b;

  // Recycle the superseded (grandparent) chain the target slot still
  // references. If that chain is already damaged — e.g. a crash landed
  // between chain-free and slot-seal last time — there is nothing to free.
  if (old.has_value() && old->chain_head.valid()) {
    auto walked = WalkChain(*disk_, old->chain_head);
    if (walked.ok()) {
      for (BlockId blk : walked->second) {
        CACTIS_RETURN_IF_ERROR(disk_->Free(blk));
      }
    }
  }

  // Write the new image chain to fresh blocks, last piece first so every
  // block names its successor at write time.
  size_t chunk_count = image.empty() ? 1 : (image.size() + cap - 1) / cap;
  std::vector<BlockId> chain;
  chain.reserve(chunk_count);
  for (size_t i = 0; i < chunk_count; ++i) {
    BlockId blk = disk_->Allocate();
    if (!blk.valid()) {
      return Status::IoError("disk crashed during checkpoint");
    }
    chain.push_back(blk);
  }
  for (size_t i = 0; i < chunk_count; ++i) {
    size_t offset = i * cap;
    size_t piece_len =
        image.size() > offset ? std::min(cap, image.size() - offset) : 0;
    BinaryWriter w;
    w.PutU32(kChainMagic);
    w.PutU64(i + 1 < chunk_count ? chain[i + 1].value : 0);
    w.PutString(std::string_view(image).substr(offset, piece_len));
    CACTIS_RETURN_IF_ERROR(
        WriteWithRetry(chain[i], storage::WrapWithChecksum(w.data())));
    ++stats_.chain_blocks_written;
  }

  // The atomic commit point: one write that flips the inactive slot to the
  // highest generation. A crash before this write leaves the old
  // checkpoint authoritative; after it, the new one.
  BinaryWriter w;
  w.PutU64(kSlotMagic);
  w.PutU64(new_generation);
  w.PutU64(chain.front().value);
  w.PutU64(wal_resume_seq);
  w.PutU64(wal_resume_block.value);
  CACTIS_RETURN_IF_ERROR(
      WriteWithRetry(slots_[target], storage::WrapWithChecksum(w.data())));
  ++stats_.checkpoints_written;
  stats_.image_bytes = image.size();
  return Status::OK();
}

Result<CheckpointStore::Loaded> CheckpointStore::LoadLatest(
    const storage::SimulatedDisk& platter) {
  std::optional<SlotContent> candidates[2] = {
      ParseSlot(platter, BlockId(kSlotA)), ParseSlot(platter, BlockId(kSlotB))};
  // Newest generation first; fall back to the other slot if its chain or
  // image fails validation anywhere.
  if (candidates[0].has_value() && candidates[1].has_value() &&
      candidates[1]->generation > candidates[0]->generation) {
    std::swap(candidates[0], candidates[1]);
  } else if (!candidates[0].has_value()) {
    std::swap(candidates[0], candidates[1]);
  }
  for (const std::optional<SlotContent>& slot : candidates) {
    if (!slot.has_value()) continue;
    auto walked = WalkChain(platter, slot->chain_head);
    if (!walked.ok()) continue;
    if (!DecodeCheckpointImage(walked->first).ok()) continue;
    Loaded loaded;
    loaded.image = std::move(walked->first);
    loaded.generation = slot->generation;
    loaded.wal_resume_seq = slot->resume_seq;
    loaded.wal_resume_block = slot->resume_block;
    return loaded;
  }
  return Status::NotFound("platter carries no valid checkpoint");
}

}  // namespace cactis::txn
