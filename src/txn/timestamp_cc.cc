#include "txn/timestamp_cc.h"

namespace cactis::txn {

Status TimestampManager::CheckRead(InstanceId id, uint64_t ts) {
  ++stats_.reads_checked;
  Marks& m = marks_[id];
  if (ts < m.write_ts) {
    ++stats_.read_rejections;
    return Status::Conflict(
        "read of instance " + std::to_string(id.value) + " by txn ts " +
        std::to_string(ts) + " arrives after write ts " +
        std::to_string(m.write_ts));
  }
  if (ts > m.read_ts) m.read_ts = ts;
  return Status::OK();
}

Status TimestampManager::CheckWrite(InstanceId id, uint64_t ts) {
  ++stats_.writes_checked;
  Marks& m = marks_[id];
  if (ts < m.read_ts || ts < m.write_ts) {
    ++stats_.write_rejections;
    return Status::Conflict(
        "write of instance " + std::to_string(id.value) + " by txn ts " +
        std::to_string(ts) + " conflicts (read ts " +
        std::to_string(m.read_ts) + ", write ts " +
        std::to_string(m.write_ts) + ")");
  }
  m.write_ts = ts;
  return Status::OK();
}

}  // namespace cactis::txn
