#include "txn/timestamp_cc.h"

namespace cactis::txn {

Status TimestampManager::CheckRead(InstanceId id, uint64_t ts) {
  stats_.reads_checked.fetch_add(1, std::memory_order_relaxed);
  Marks& m = marks_[id];
  if (ts < m.write_ts.load(std::memory_order_relaxed)) {
    stats_.read_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Conflict(
        "read of instance " + std::to_string(id.value) + " by txn ts " +
        std::to_string(ts) + " arrives after write ts " +
        std::to_string(m.write_ts.load(std::memory_order_relaxed)));
  }
  uint64_t cur = m.read_ts.load(std::memory_order_relaxed);
  while (ts > cur &&
         !m.read_ts.compare_exchange_weak(cur, ts,
                                          std::memory_order_relaxed)) {
  }
  return Status::OK();
}

SharedReadCheck TimestampManager::CheckReadShared(InstanceId id, uint64_t ts) {
  auto it = marks_.find(id);
  if (it == marks_.end()) return SharedReadCheck::kUnknownInstance;
  Marks& m = it->second;
  if (ts < m.write_ts.load(std::memory_order_relaxed)) {
    // The exclusive fallback re-runs CheckRead and counts the rejection.
    return SharedReadCheck::kConflict;
  }
  // Atomic max: concurrent readers may race here; whichever loses the CAS
  // reloads and retries, so the largest reader timestamp always sticks.
  uint64_t cur = m.read_ts.load(std::memory_order_relaxed);
  while (ts > cur &&
         !m.read_ts.compare_exchange_weak(cur, ts,
                                          std::memory_order_relaxed)) {
  }
  stats_.reads_checked.fetch_add(1, std::memory_order_relaxed);
  return SharedReadCheck::kOk;
}

Status TimestampManager::CheckWrite(InstanceId id, uint64_t ts,
                                    uint64_t txn) {
  stats_.writes_checked.fetch_add(1, std::memory_order_relaxed);
  Marks& m = marks_[id];
  if (m.pending_txn != 0 && m.pending_txn != txn) {
    // First-updater-wins: another transaction wrote this instance and has
    // not staged or rolled back yet. Admitting a second writer now could
    // let it commit first, putting its WAL entry *before* the first
    // writer's — replay would then finish on the older value.
    stats_.write_rejections.fetch_add(1, std::memory_order_relaxed);
    stats_.dirty_write_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Conflict(
        "write of instance " + std::to_string(id.value) + " by txn " +
        std::to_string(txn) + ": txn " + std::to_string(m.pending_txn) +
        " holds an uncommitted write");
  }
  const uint64_t read_ts = m.read_ts.load(std::memory_order_relaxed);
  const uint64_t write_ts = m.write_ts.load(std::memory_order_relaxed);
  if (ts < read_ts || ts < write_ts) {
    stats_.write_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Conflict(
        "write of instance " + std::to_string(id.value) + " by txn ts " +
        std::to_string(ts) + " conflicts (read ts " +
        std::to_string(read_ts) + ", write ts " + std::to_string(write_ts) +
        ")");
  }
  m.write_ts.store(ts, std::memory_order_relaxed);
  m.pending_txn = txn;
  return Status::OK();
}

void TimestampManager::ReleaseWrite(InstanceId id, uint64_t txn) {
  auto it = marks_.find(id);
  if (it != marks_.end() && it->second.pending_txn == txn) {
    it->second.pending_txn = 0;
  }
}

}  // namespace cactis::txn
