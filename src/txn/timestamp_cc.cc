#include "txn/timestamp_cc.h"

namespace cactis::txn {

Status TimestampManager::CheckRead(InstanceId id, uint64_t ts) {
  stats_.reads_checked.fetch_add(1, std::memory_order_relaxed);
  Marks& m = marks_[id];
  if (ts < m.write_ts.load(std::memory_order_relaxed)) {
    stats_.read_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Conflict(
        "read of instance " + std::to_string(id.value) + " by txn ts " +
        std::to_string(ts) + " arrives after write ts " +
        std::to_string(m.write_ts.load(std::memory_order_relaxed)));
  }
  uint64_t cur = m.read_ts.load(std::memory_order_relaxed);
  while (ts > cur &&
         !m.read_ts.compare_exchange_weak(cur, ts,
                                          std::memory_order_relaxed)) {
  }
  return Status::OK();
}

SharedReadCheck TimestampManager::CheckReadShared(InstanceId id, uint64_t ts) {
  auto it = marks_.find(id);
  if (it == marks_.end()) return SharedReadCheck::kUnknownInstance;
  Marks& m = it->second;
  if (ts < m.write_ts.load(std::memory_order_relaxed)) {
    // The exclusive fallback re-runs CheckRead and counts the rejection.
    return SharedReadCheck::kConflict;
  }
  // Atomic max: concurrent readers may race here; whichever loses the CAS
  // reloads and retries, so the largest reader timestamp always sticks.
  uint64_t cur = m.read_ts.load(std::memory_order_relaxed);
  while (ts > cur &&
         !m.read_ts.compare_exchange_weak(cur, ts,
                                          std::memory_order_relaxed)) {
  }
  stats_.reads_checked.fetch_add(1, std::memory_order_relaxed);
  return SharedReadCheck::kOk;
}

Status TimestampManager::CheckWrite(InstanceId id, uint64_t ts) {
  stats_.writes_checked.fetch_add(1, std::memory_order_relaxed);
  Marks& m = marks_[id];
  const uint64_t read_ts = m.read_ts.load(std::memory_order_relaxed);
  const uint64_t write_ts = m.write_ts.load(std::memory_order_relaxed);
  if (ts < read_ts || ts < write_ts) {
    stats_.write_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Conflict(
        "write of instance " + std::to_string(id.value) + " by txn ts " +
        std::to_string(ts) + " conflicts (read ts " +
        std::to_string(read_ts) + ", write ts " + std::to_string(write_ts) +
        ")");
  }
  m.write_ts.store(ts, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace cactis::txn
