// Timestamp-ordering concurrency control.
//
// The paper (section 1.1) states Cactis "uses a timestamping concurrency
// control technique". We implement basic timestamp ordering at instance
// granularity: every transaction receives a start timestamp; each instance
// carries the largest read and write timestamps that touched it.
//
//   read(I)  by T: reject if ts(T) < write_ts(I); else read_ts = max(...)
//   write(I) by T: reject if ts(T) < read_ts(I) or ts(T) < write_ts(I);
//                  else write_ts = ts(T)
//
// A rejected operation aborts the transaction, which rolls back through
// its delta. (The classic Thomas write rule is deliberately not applied:
// derived-attribute propagation makes "ignore the write" unsound.)

#ifndef CACTIS_TXN_TIMESTAMP_CC_H_
#define CACTIS_TXN_TIMESTAMP_CC_H_

#include <cstdint>
#include <unordered_map>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cactis::txn {

struct ConcurrencyStats {
  uint64_t reads_checked = 0;
  uint64_t writes_checked = 0;
  uint64_t read_rejections = 0;
  uint64_t write_rejections = 0;

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("reads_checked", reads_checked);
    g->AddCounter("writes_checked", writes_checked);
    g->AddCounter("read_rejections", read_rejections);
    g->AddCounter("write_rejections", write_rejections);
  }
};

class TimestampManager {
 public:
  /// Issues a fresh, strictly increasing transaction timestamp.
  uint64_t BeginTransaction() { return clock_.Tick(); }

  /// Validates and records a read of `id` by a transaction with timestamp
  /// `ts`. Conflict means the transaction must abort.
  Status CheckRead(InstanceId id, uint64_t ts);

  /// Validates and records a write.
  Status CheckWrite(InstanceId id, uint64_t ts);

  /// Forgets an instance (deleted).
  void Forget(InstanceId id) { marks_.erase(id); }

  const ConcurrencyStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ConcurrencyStats{}; }

 private:
  struct Marks {
    uint64_t read_ts = 0;
    uint64_t write_ts = 0;
  };

  LogicalClock clock_;
  std::unordered_map<InstanceId, Marks> marks_;
  ConcurrencyStats stats_;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_TIMESTAMP_CC_H_
