// Timestamp-ordering concurrency control.
//
// The paper (section 1.1) states Cactis "uses a timestamping concurrency
// control technique". We implement basic timestamp ordering at instance
// granularity: every transaction receives a start timestamp; each instance
// carries the largest read and write timestamps that touched it.
//
//   read(I)  by T: reject if ts(T) < write_ts(I); else read_ts = max(...)
//   write(I) by T: reject if ts(T) < read_ts(I) or ts(T) < write_ts(I);
//                  else write_ts = ts(T)
//
// A rejected operation aborts the transaction, which rolls back through
// its delta. (The classic Thomas write rule is deliberately not applied:
// derived-attribute propagation makes "ignore the write" unsound.)
//
// On top of basic TO, writes enforce a first-updater-wins rule: while a
// transaction has written an instance and is still open and *unstaged*
// (no WAL ticket yet), any other transaction's write to that instance is
// rejected. Without this, in-memory updates (applied eagerly at
// statement time) and WAL tickets (assigned at commit time) can order
// two writers oppositely; replaying the journal's absolute-value deltas
// in ticket order would then resurrect the older value after a crash —
// a lost acked update. Once the first writer stages, its ticket is
// fixed, so any later writer stages later and replay order matches
// apply order. The pending mark is released when the writer stages,
// commits without journaling, or rolls back.
//
// Thread model: a successful read is still a metadata *write* (it raises
// read_ts), so concurrent read-only statements running under the shared
// statement lock must not lose each other's updates — a lost read_ts max
// is a serializability hole, because a later writer would be admitted at
// a timestamp an unrecorded reader already observed past. The marks are
// therefore atomics: CheckReadShared raises read_ts with a CAS-max loop
// and is safe from any number of concurrent reader threads, while the
// map's shape (insert/erase) is only ever changed under the exclusive
// lock (CheckRead, Ensure, Forget). Stats counters are atomics for the
// same reason.

#ifndef CACTIS_TXN_TIMESTAMP_CC_H_
#define CACTIS_TXN_TIMESTAMP_CC_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace cactis::txn {

struct ConcurrencyStats {
  std::atomic<uint64_t> reads_checked{0};
  std::atomic<uint64_t> writes_checked{0};
  std::atomic<uint64_t> read_rejections{0};
  std::atomic<uint64_t> write_rejections{0};
  std::atomic<uint64_t> dirty_write_rejections{0};

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("reads_checked", reads_checked.load());
    g->AddCounter("writes_checked", writes_checked.load());
    g->AddCounter("read_rejections", read_rejections.load());
    g->AddCounter("write_rejections", write_rejections.load());
    g->AddCounter("dirty_write_rejections", dirty_write_rejections.load());
  }
};

/// Outcome of a lock-free read check on the shared statement path.
enum class SharedReadCheck {
  kOk,               // read admitted, read_ts raised
  kConflict,         // timestamp-order violation: abort the transaction
  kUnknownInstance,  // no marks entry: caller must fall back to exclusive
};

class TimestampManager {
 public:
  /// Issues a fresh, strictly increasing transaction timestamp.
  uint64_t BeginTransaction() { return clock_.Tick(); }

  /// Issues a timestamp without any transaction bookkeeping — used to
  /// stamp auto-commit reads on the shared statement path.
  uint64_t IssueTimestamp() { return clock_.Tick(); }

  /// Validates and records a read of `id` by a transaction with timestamp
  /// `ts`. Conflict means the transaction must abort. Exclusive-lock only
  /// (may insert a marks entry).
  Status CheckRead(InstanceId id, uint64_t ts);

  /// Lock-free read check for the shared statement path: never changes
  /// the map's shape, raises read_ts with an atomic max. On kConflict the
  /// caller is expected to retry under the exclusive lock (which recounts
  /// the stats), so only kOk is counted here.
  SharedReadCheck CheckReadShared(InstanceId id, uint64_t ts);

  /// Validates and records a write by transaction `txn` (first-updater-
  /// wins: rejects while another open, unstaged transaction holds a
  /// pending write on `id`). Exclusive-lock only.
  Status CheckWrite(InstanceId id, uint64_t ts, uint64_t txn);

  /// Drops `txn`'s pending-writer mark on `id`, admitting later writers.
  /// Called when the transaction stages its commit (WAL ticket fixed),
  /// commits without journaling, or rolls back. Exclusive-lock only.
  void ReleaseWrite(InstanceId id, uint64_t txn);

  /// Ensures `id` has a marks entry so the shared read path never misses
  /// it. Called at instance creation, under the exclusive lock.
  void Ensure(InstanceId id) { marks_.try_emplace(id); }

  /// Forgets an instance (deleted). Exclusive-lock only.
  void Forget(InstanceId id) { marks_.erase(id); }

  const ConcurrencyStats& stats() const { return stats_; }
  void ResetStats() {
    stats_.reads_checked.store(0);
    stats_.writes_checked.store(0);
    stats_.read_rejections.store(0);
    stats_.write_rejections.store(0);
    stats_.dirty_write_rejections.store(0);
  }

 private:
  struct Marks {
    std::atomic<uint64_t> read_ts{0};
    std::atomic<uint64_t> write_ts{0};
    // Transaction currently holding an unstaged write on this instance
    // (0 = none). Only touched under the exclusive statement lock, like
    // the map's shape, so a plain field suffices; the shared read path
    // never looks at it.
    uint64_t pending_txn = 0;
  };

  LogicalClock clock_;
  std::unordered_map<InstanceId, Marks> marks_;
  ConcurrencyStats stats_;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_TIMESTAMP_CC_H_
