#include "txn/snapshot_index.h"

#include <algorithm>
#include <limits>
#include <mutex>

namespace cactis::txn {

// --- Snapshot handles --------------------------------------------------------

void SnapshotIndex::Snapshot::Release() {
  if (index_ != nullptr && slot_ >= 0) {
    index_->ReleaseSlot(slot_);
  }
  index_ = nullptr;
  slot_ = -1;
}

SnapshotIndex::Snapshot SnapshotIndex::Acquire() {
  for (size_t i = 0; i < kMaxSnapshots; ++i) {
    if (slots_[i].load(std::memory_order_relaxed) != 0) continue;
    // Read the sequence before claiming: if a prune races past it, the
    // strict-miss walk turns the stale snapshot into fallbacks, never
    // into wrong data (and the pruner's retention slack makes the race
    // practically unhittable).
    uint64_t seq = latest_published();
    uint64_t expected = 0;
    if (slots_[i].compare_exchange_strong(expected, seq + 1,
                                          std::memory_order_acq_rel)) {
      return Snapshot(this, static_cast<int>(i), seq,
                      epoch_.load(std::memory_order_acquire));
    }
  }
  snapshot_acquire_failures_.fetch_add(1, std::memory_order_relaxed);
  return Snapshot();
}

void SnapshotIndex::ReleaseSlot(int slot) {
  slots_[slot].store(0, std::memory_order_release);
}

uint64_t SnapshotIndex::OldestLiveSnapshot() const {
  uint64_t oldest = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < kMaxSnapshots; ++i) {
    uint64_t v = slots_[i].load(std::memory_order_acquire);
    if (v != 0) oldest = std::min(oldest, v - 1);
  }
  return oldest;
}

uint64_t SnapshotIndex::live_snapshots() const {
  uint64_t n = 0;
  for (size_t i = 0; i < kMaxSnapshots; ++i) {
    if (slots_[i].load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

// --- Ingest ------------------------------------------------------------------

SnapshotIndex::NodePtr SnapshotIndex::HeadOf(InstanceId id) const {
  const Stripe& s = StripeFor(id);
  std::shared_lock lock(s.mu);
  auto it = s.heads.find(id);
  return it == s.heads.end() ? nullptr : it->second;
}

void SnapshotIndex::PushNode(InstanceId id, VersionNode node) {
  Stripe& s = StripeFor(id);
  std::unique_lock lock(s.mu);
  NodePtr& head = s.heads[id];
  node.prev = head;
  head = std::make_shared<const VersionNode>(std::move(node));
  chain_nodes_.fetch_add(1, std::memory_order_relaxed);
}

void SnapshotIndex::RecordWrite(InstanceId id, uint64_t seq,
                                size_t attr_index, Value v) {
  Stripe& s = StripeFor(id);
  std::unique_lock lock(s.mu);
  auto it = s.heads.find(id);
  // No chain means the creation itself is unproven (pre-index instance or
  // defensively dropped); reads of it miss, so the write may be dropped
  // without losing correctness.
  if (it == s.heads.end()) return;
  VersionNode node;
  node.seq = seq;
  node.kind = NodeKind::kWrite;
  node.attrs.emplace_back(attr_index, std::move(v));
  node.prev = it->second;
  it->second = std::make_shared<const VersionNode>(std::move(node));
  chain_nodes_.fetch_add(1, std::memory_order_relaxed);
}

void SnapshotIndex::RecordCreate(InstanceId id, uint64_t seq, ClassId cls,
                                 std::vector<std::pair<size_t, Value>>
                                     intrinsics,
                                 bool track_membership) {
  VersionNode node;
  node.seq = seq;
  node.kind = NodeKind::kCreate;
  node.class_id = cls;
  node.attrs = std::move(intrinsics);
  PushNode(id, std::move(node));
  if (track_membership) MutateMembership(cls, seq, id, /*add=*/true);
}

void SnapshotIndex::RecordBase(InstanceId id, uint64_t seq, ClassId cls,
                               std::vector<std::pair<size_t, Value>>
                                   intrinsics) {
  VersionNode node;
  node.seq = seq;
  node.kind = NodeKind::kBase;
  node.class_id = cls;
  node.attrs = std::move(intrinsics);
  PushNode(id, std::move(node));
}

void SnapshotIndex::RecordDelete(InstanceId id, uint64_t seq, ClassId cls,
                                 bool track_membership) {
  Stripe& s = StripeFor(id);
  {
    std::unique_lock lock(s.mu);
    auto it = s.heads.find(id);
    if (it != s.heads.end()) {
      VersionNode node;
      node.seq = seq;
      node.kind = NodeKind::kDelete;
      node.prev = it->second;
      it->second = std::make_shared<const VersionNode>(std::move(node));
      chain_nodes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (track_membership) MutateMembership(cls, seq, id, /*add=*/false);
}

void SnapshotIndex::SeedMembership(ClassId cls, uint64_t seq,
                                   std::vector<InstanceId> members) {
  std::unique_lock lock(members_mu_);
  auto node = std::make_shared<MemberNode>();
  node->seq = seq;
  node->members =
      std::make_shared<const std::vector<InstanceId>>(std::move(members));
  member_heads_[cls] = std::move(node);
  member_nodes_.fetch_add(1, std::memory_order_relaxed);
}

void SnapshotIndex::EnsureMembership(ClassId cls) {
  std::unique_lock lock(members_mu_);
  MemberPtr& head = member_heads_[cls];
  if (head != nullptr) return;
  auto node = std::make_shared<MemberNode>();
  node->seq = coverage_floor();
  node->members = std::make_shared<const std::vector<InstanceId>>();
  head = std::move(node);
  member_nodes_.fetch_add(1, std::memory_order_relaxed);
}

void SnapshotIndex::MutateMembership(ClassId cls, uint64_t seq, InstanceId id,
                                     bool add) {
  std::unique_lock lock(members_mu_);
  MemberPtr& head = member_heads_[cls];
  if (head == nullptr) {
    if (!add) return;
    // Lazily opened extent: its genesis (provably empty) sits at the
    // coverage floor, because the index has observed every committed
    // create since then.
    auto genesis = std::make_shared<MemberNode>();
    genesis->seq = coverage_floor();
    genesis->members = std::make_shared<const std::vector<InstanceId>>();
    head = std::move(genesis);
    member_nodes_.fetch_add(1, std::memory_order_relaxed);
  }
  if (head->members == nullptr) return;  // tracking disabled; stays so
  std::vector<InstanceId> next(*head->members);
  if (add) {
    auto pos = std::lower_bound(next.begin(), next.end(), id);
    if (pos == next.end() || *pos != id) next.insert(pos, id);
  } else {
    auto pos = std::lower_bound(next.begin(), next.end(), id);
    if (pos == next.end() || *pos != id) return;  // nothing to remove
    next.erase(pos);
  }
  auto node = std::make_shared<MemberNode>();
  node->seq = seq;
  node->members =
      next.size() > kMaxChainedMembers
          ? nullptr  // extent outgrew tracking: disable, readers fall back
          : std::make_shared<const std::vector<InstanceId>>(std::move(next));
  node->prev = head;
  head = std::move(node);
  member_nodes_.fetch_add(1, std::memory_order_relaxed);
}

// --- Reader side -------------------------------------------------------------

SnapshotIndex::Lookup SnapshotIndex::ReadAttr(const Snapshot& snap,
                                              InstanceId id,
                                              size_t attr_index,
                                              Value* out) const {
  if (epoch_.load(std::memory_order_acquire) != snap.epoch()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Lookup::kMiss;
  }
  for (NodePtr n = HeadOf(id); n != nullptr; n = n->prev) {
    if (n->seq > snap.seq()) continue;
    if (n->kind == NodeKind::kDelete) break;  // gone at S: fall back
    for (const auto& [idx, v] : n->attrs) {
      if (idx == attr_index) {
        *out = v;
        // Re-check the epoch after the walk: a concurrent history
        // truncation may have reissued this node's sequence number.
        if (epoch_.load(std::memory_order_acquire) != snap.epoch()) break;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return Lookup::kHit;
      }
    }
    // A base/create node carries the full intrinsic state: absence there
    // means the attribute is derived or unknown — unprovable here.
    if (n->kind != NodeKind::kWrite) break;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return Lookup::kMiss;
}

SnapshotIndex::Lookup SnapshotIndex::ClassAt(const Snapshot& snap,
                                             InstanceId id,
                                             ClassId* out) const {
  if (epoch_.load(std::memory_order_acquire) != snap.epoch()) {
    return Lookup::kMiss;
  }
  bool newest = true;
  for (NodePtr n = HeadOf(id); n != nullptr; n = n->prev) {
    if (n->seq > snap.seq()) continue;
    if (newest && n->kind == NodeKind::kDelete) break;
    newest = false;
    if (n->kind == NodeKind::kBase || n->kind == NodeKind::kCreate) {
      *out = n->class_id;
      if (epoch_.load(std::memory_order_acquire) != snap.epoch()) break;
      return Lookup::kHit;
    }
  }
  return Lookup::kMiss;
}

SnapshotIndex::Lookup SnapshotIndex::MembersAt(
    const Snapshot& snap, ClassId cls, std::vector<InstanceId>* out) const {
  if (epoch_.load(std::memory_order_acquire) != snap.epoch()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Lookup::kMiss;
  }
  MemberPtr head = MemberHeadOf(cls);
  for (MemberPtr n = head; n != nullptr; n = n->prev) {
    if (n->seq > snap.seq()) continue;
    if (n->members == nullptr) break;  // tracking disabled at S
    *out = *n->members;
    if (epoch_.load(std::memory_order_acquire) != snap.epoch()) break;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return Lookup::kHit;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return Lookup::kMiss;
}

SnapshotIndex::MemberPtr SnapshotIndex::MemberHeadOf(ClassId cls) const {
  std::shared_lock lock(members_mu_);
  auto it = member_heads_.find(cls);
  return it == member_heads_.end() ? nullptr : it->second;
}

// --- Maintenance -------------------------------------------------------------

void SnapshotIndex::TruncateAfter(uint64_t position) {
  // Expire every live snapshot first: the sequence numbers above
  // `position` are about to be reissued to different commits.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  for (Stripe& s : stripes_) {
    std::unique_lock lock(s.mu);
    for (auto it = s.heads.begin(); it != s.heads.end();) {
      NodePtr n = it->second;
      uint64_t dropped = 0;
      while (n != nullptr && n->seq > position) {
        n = n->prev;
        ++dropped;
      }
      if (dropped > 0) chain_nodes_.fetch_sub(dropped);
      if (n == nullptr) {
        it = s.heads.erase(it);
      } else {
        it->second = std::move(n);
        ++it;
      }
    }
  }
  std::unique_lock lock(members_mu_);
  for (auto it = member_heads_.begin(); it != member_heads_.end();) {
    MemberPtr n = it->second;
    uint64_t dropped = 0;
    while (n != nullptr && n->seq > position) {
      n = n->prev;
      ++dropped;
    }
    if (dropped > 0) member_nodes_.fetch_sub(dropped);
    if (n == nullptr) {
      it = member_heads_.erase(it);
    } else {
      it->second = std::move(n);
      ++it;
    }
  }
}

void SnapshotIndex::Prune(uint64_t floor) {
  if (floor > coverage_floor()) SetCoverageFloor(floor);
  for (Stripe& s : stripes_) {
    std::unique_lock lock(s.mu);
    for (auto it = s.heads.begin(); it != s.heads.end();) {
      // Split the chain at the floor.
      std::vector<const VersionNode*> retained;  // newest first, seq > floor
      NodePtr n = it->second;
      while (n != nullptr && n->seq > floor) {
        retained.push_back(n.get());
        n = n->prev;
      }
      // Already a lone base at or below the floor: nothing to fold.
      if (n == nullptr || (n->prev == nullptr && n->kind != NodeKind::kWrite &&
                           n->kind != NodeKind::kDelete)) {
        ++it;
        continue;
      }
      uint64_t old_len = retained.size();
      for (NodePtr w = n; w != nullptr; w = w->prev) ++old_len;

      // Resolve the full committed state at the floor.
      bool deleted = n->kind == NodeKind::kDelete;
      VersionNode fold;
      fold.seq = floor;
      fold.kind = NodeKind::kBase;
      if (!deleted) {
        for (NodePtr w = n; w != nullptr; w = w->prev) {
          for (const auto& [idx, v] : w->attrs) {
            bool seen = false;
            for (const auto& [have, hv] : fold.attrs) {
              if (have == idx) {
                seen = true;
                break;
              }
            }
            if (!seen) fold.attrs.emplace_back(idx, v);
          }
          if (w->kind == NodeKind::kBase || w->kind == NodeKind::kCreate) {
            fold.class_id = w->class_id;
            break;
          }
        }
        // A chain whose floor-state has no base/create node cannot prove
        // its class; drop it entirely (reads fall back).
        if (!fold.class_id.valid()) deleted = true;
      }

      if (deleted && retained.empty()) {
        // Gone at the floor with nothing newer: the id is never reused,
        // so the whole chain can go.
        pruned_versions_.fetch_add(old_len, std::memory_order_relaxed);
        chain_nodes_.fetch_sub(old_len, std::memory_order_relaxed);
        it = s.heads.erase(it);
        continue;
      }
      if (deleted) {
        // Defensive: nodes above a floor-deletion should not exist (ids
        // are never reused); dropping the chain keeps reads safe.
        pruned_versions_.fetch_add(old_len, std::memory_order_relaxed);
        chain_nodes_.fetch_sub(old_len, std::memory_order_relaxed);
        it = s.heads.erase(it);
        continue;
      }

      // Rebuild: fold node at the bottom, retained nodes re-linked above
      // it (nodes are immutable, so re-linking means copying).
      NodePtr rebuilt = std::make_shared<const VersionNode>(std::move(fold));
      for (auto r = retained.rbegin(); r != retained.rend(); ++r) {
        VersionNode copy;
        copy.seq = (*r)->seq;
        copy.kind = (*r)->kind;
        copy.class_id = (*r)->class_id;
        copy.attrs = (*r)->attrs;
        copy.prev = std::move(rebuilt);
        rebuilt = std::make_shared<const VersionNode>(std::move(copy));
      }
      uint64_t new_len = retained.size() + 1;
      pruned_versions_.fetch_add(old_len - new_len,
                                 std::memory_order_relaxed);
      chain_nodes_.fetch_sub(old_len - new_len, std::memory_order_relaxed);
      it->second = std::move(rebuilt);
      ++it;
    }
  }

  std::unique_lock lock(members_mu_);
  for (auto& [cls, head] : member_heads_) {
    std::vector<const MemberNode*> retained;
    MemberPtr n = head;
    while (n != nullptr && n->seq > floor) {
      retained.push_back(n.get());
      n = n->prev;
    }
    if (n == nullptr || n->prev == nullptr) continue;
    uint64_t old_len = retained.size();
    for (MemberPtr w = n; w != nullptr; w = w->prev) ++old_len;

    auto fold = std::make_shared<MemberNode>();
    fold->seq = floor;
    fold->members = n->members;  // state at floor (or disabled marker)
    MemberPtr rebuilt = std::move(fold);
    for (auto r = retained.rbegin(); r != retained.rend(); ++r) {
      auto copy = std::make_shared<MemberNode>();
      copy->seq = (*r)->seq;
      copy->members = (*r)->members;
      copy->prev = std::move(rebuilt);
      rebuilt = std::move(copy);
    }
    uint64_t new_len = retained.size() + 1;
    member_nodes_.fetch_sub(old_len - new_len, std::memory_order_relaxed);
    head = std::move(rebuilt);
  }
}

void SnapshotIndex::Reset() {
  for (Stripe& s : stripes_) {
    std::unique_lock lock(s.mu);
    s.heads.clear();
  }
  {
    std::unique_lock lock(members_mu_);
    member_heads_.clear();
  }
  chain_nodes_.store(0, std::memory_order_relaxed);
  member_nodes_.store(0, std::memory_order_relaxed);
  SetCoverageFloor(0);
  latest_published_.store(0, std::memory_order_release);
}

// --- Observability -----------------------------------------------------------

void SnapshotIndex::ExportTo(obs::MetricsGroup* g) const {
  g->AddCounter("snapshot_hits", hits());
  g->AddCounter("snapshot_misses", misses());
  g->AddCounter("pruned_versions", pruned_versions());
  g->AddCounter("acquire_failures",
                snapshot_acquire_failures_.load(std::memory_order_relaxed));
  g->AddCounter("chain_nodes", chain_nodes());
  g->AddCounter("member_nodes",
                member_nodes_.load(std::memory_order_relaxed));
  g->AddCounter("live_snapshots", live_snapshots());
  g->AddCounter("latest_published", latest_published());
  g->AddCounter("coverage_floor", coverage_floor());
}

}  // namespace cactis::txn
