// VersionStore: the delta-based version facility (paper section 3).
//
// Committed transaction deltas form a linear history. A *version* names a
// position in that history. Checking out an older version walks deltas
// backwards (undo); returning to a newer one walks forwards (redo). "The
// information needed to remember a delta is proportional in size to the
// initial changes made to the database rather than the total change ...
// which may result because of derived data."
//
// Committing new work while positioned before the end truncates the redo
// tail (linear history, like an editor's undo stack). The store only
// manages bookkeeping; applying a delta to the database is the core
// layer's job, via the records this class hands back.

#ifndef CACTIS_TXN_VERSION_STORE_H_
#define CACTIS_TXN_VERSION_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "txn/delta.h"

namespace cactis::txn {

class VersionStore {
 public:
  /// Appends a committed transaction delta. If the current position is not
  /// at the end of history, the tail beyond it (and any versions naming
  /// positions inside the truncated tail) is discarded first.
  /// Returns the commit sequence number.
  uint64_t Append(TransactionDelta delta);

  /// Names the current position. Version names are unique.
  Result<VersionId> CreateVersion(const std::string& name);

  /// Position lookup.
  Result<uint64_t> PositionOf(const std::string& name) const;

  uint64_t position() const { return position_; }
  uint64_t end() const { return history_.size(); }

  /// The deltas to undo, newest first, to move from the current position
  /// back to `target`. Empty when target >= position.
  std::vector<const TransactionDelta*> DeltasToUndo(uint64_t target) const;

  /// The deltas to redo, oldest first, to move forward to `target`.
  std::vector<const TransactionDelta*> DeltasToRedo(uint64_t target) const;

  /// Moves the position marker after the core has applied the deltas.
  void SetPosition(uint64_t position) { position_ = position; }

  /// Pops the most recent delta entirely (the Undo meta-action on the last
  /// committed transaction). Only valid when positioned at the end.
  Result<TransactionDelta> PopLast();

  /// Total bytes held by all retained deltas (experiment E7).
  size_t TotalDeltaBytes() const;

  std::vector<std::string> VersionNames() const;

  // --- Checkpoint snapshot/restore ----------------------------------------
  //
  // A checkpoint image must carry the whole version facility: the retained
  // history (tail meta-actions and post-recovery checkouts walk it), the
  // position marker, and the name table. The accessors expose the state
  // for encoding; Restore() replaces it wholesale on a fresh store during
  // recovery.

  const std::vector<TransactionDelta>& history() const { return history_; }
  const std::map<std::string, uint64_t>& versions() const { return versions_; }
  uint64_t next_version() const { return next_version_; }

  void Restore(std::vector<TransactionDelta> history, uint64_t position,
               std::map<std::string, uint64_t> versions,
               uint64_t next_version) {
    history_ = std::move(history);
    position_ = position;
    versions_ = std::move(versions);
    next_version_ = next_version;
  }

 private:
  std::vector<TransactionDelta> history_;
  uint64_t position_ = 0;  // number of applied deltas
  std::map<std::string, uint64_t> versions_;
  uint64_t next_version_ = 0;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_VERSION_STORE_H_
