// VersionStore: the delta-based version facility (paper section 3).
//
// Committed transaction deltas form a linear history. A *version* names a
// position in that history. Checking out an older version walks deltas
// backwards (undo); returning to a newer one walks forwards (redo). "The
// information needed to remember a delta is proportional in size to the
// initial changes made to the database rather than the total change ...
// which may result because of derived data."
//
// Committing new work while positioned before the end truncates the redo
// tail (linear history, like an editor's undo stack). The store only
// manages bookkeeping; applying a delta to the database is the core
// layer's job, via the records this class hands back.
//
// Pruning: retained history would otherwise grow without bound, so
// PruneTo(floor) discards the deltas at positions <= floor while keeping
// every position number ABSOLUTE — `base_` remembers how many were
// dropped, and position()/end()/commit_seq keep counting from the start
// of time. The trade-off is bounded undo depth: PopLast and checkouts
// below the base fail with FailedPrecondition. The database layer picks
// a floor no newer than the oldest live snapshot, the oldest named
// version and the current checkout position.

#ifndef CACTIS_TXN_VERSION_STORE_H_
#define CACTIS_TXN_VERSION_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "txn/delta.h"

namespace cactis::txn {

class VersionStore {
 public:
  /// Appends a committed transaction delta. If the current position is not
  /// at the end of history, the tail beyond it (and any versions naming
  /// positions inside the truncated tail) is discarded first.
  /// Returns the commit sequence number.
  uint64_t Append(TransactionDelta delta);

  /// Names the current position. Version names are unique.
  Result<VersionId> CreateVersion(const std::string& name);

  /// Position lookup.
  Result<uint64_t> PositionOf(const std::string& name) const;

  uint64_t position() const { return position_; }
  uint64_t end() const { return base_ + history_.size(); }

  /// First retained position: deltas at positions <= base() are pruned.
  uint64_t base() const { return base_; }

  /// The deltas to undo, newest first, to move from the current position
  /// back to `target`. Empty when target >= position. Fails when the walk
  /// would cross pruned history (target < base()).
  Result<std::vector<const TransactionDelta*>> DeltasToUndo(
      uint64_t target) const;

  /// The deltas to redo, oldest first, to move forward to `target`.
  /// Fails when the current position itself sits below the base (cannot
  /// happen unless pruning ignored the position floor).
  Result<std::vector<const TransactionDelta*>> DeltasToRedo(
      uint64_t target) const;

  /// Moves the position marker after the core has applied the deltas.
  void SetPosition(uint64_t position) { position_ = position; }

  /// Pops the most recent delta entirely (the Undo meta-action on the last
  /// committed transaction). Only valid when positioned at the end, and
  /// only while the last delta has not been pruned.
  Result<TransactionDelta> PopLast();

  /// Discards the deltas at positions <= floor. Clamped to the current
  /// position (never prunes unapplied redo state). Named versions keep
  /// working as long as the database layer keeps the floor at or below
  /// the oldest named position. Returns the number of deltas dropped.
  uint64_t PruneTo(uint64_t floor);

  /// Cumulative number of deltas dropped by PruneTo (metrics).
  uint64_t pruned_deltas() const { return pruned_deltas_; }

  /// Smallest position a named version refers to, or UINT64_MAX when no
  /// versions exist. Pruning must not pass this.
  uint64_t OldestNamedPosition() const;

  /// Total bytes held by all retained deltas (experiment E7).
  size_t TotalDeltaBytes() const;

  std::vector<std::string> VersionNames() const;

  // --- Checkpoint snapshot/restore ----------------------------------------
  //
  // A checkpoint image must carry the whole version facility: the retained
  // history (tail meta-actions and post-recovery checkouts walk it), the
  // base offset of that history, the position marker, and the name table.
  // The accessors expose the state for encoding; Restore() replaces it
  // wholesale on a fresh store during recovery.

  const std::vector<TransactionDelta>& history() const { return history_; }
  const std::map<std::string, uint64_t>& versions() const { return versions_; }
  uint64_t next_version() const { return next_version_; }

  void Restore(std::vector<TransactionDelta> history, uint64_t base,
               uint64_t position, std::map<std::string, uint64_t> versions,
               uint64_t next_version) {
    history_ = std::move(history);
    base_ = base;
    position_ = position;
    versions_ = std::move(versions);
    next_version_ = next_version;
  }

 private:
  std::vector<TransactionDelta> history_;  // positions base_+1 .. end()
  uint64_t base_ = 0;      // number of pruned (dropped) leading deltas
  uint64_t position_ = 0;  // number of applied deltas (absolute)
  uint64_t pruned_deltas_ = 0;
  std::map<std::string, uint64_t> versions_;
  uint64_t next_version_ = 0;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_VERSION_STORE_H_
