// Write-ahead delta log: durability for the paper's delta machinery.
//
// Sections 2.2/3 of the paper sell cheap rollback because "all of the
// actions ... can be undone simply by restoring the old value" — but that
// only survives a failure if the deltas themselves are durable. The WAL
// journals every committed TransactionDelta (and the version meta-actions
// that reposition history) to dedicated disk blocks *before* the commit is
// acknowledged; the data blocks may then be written back lazily by the
// buffer pool. After a crash, Database::Recover() replays the journal from
// the surviving platter: committed transactions redo, an incomplete tail
// entry (the transaction that was mid-append when power died) is
// discarded.
//
// On-disk layout. The log is a chain of write-once blocks:
//
//   superblock (the first block the WAL allocates; block 1 of a fresh
//   database):  [crc32][magic u64][first-entry block id u64]
//
//   entry chunk: [crc32][chunk magic u32][entry seq u64][chunk index u32]
//                [chunk count u32][next block id u64]
//                [payload piece (length-prefixed)]
//
// An entry's payload (one serialized WalEvent) is split across as many
// chunks as needed; each chunk, including the last, names the block the
// chain continues in, and that block is pre-allocated before any chunk is
// written. Every chunk block is written exactly once, so a torn write can
// only ever hit the *unsealed* tail of the log — committed entries are
// never rewritten and therefore never at risk. Recovery walks the chain
// until it meets an empty block (clean end), a checksum failure (torn
// tail), or a sequence discontinuity, and truncates there. The chunk
// magic lets an offline *salvage sweep* tell WAL chunks apart from data
// blocks: when the chain stops at a damaged block, the sweep looks for
// sealed chunks with a later sequence number anywhere on the platter —
// finding one proves the damage sits *before* the durable tail (real
// corruption, recovery must fail); finding none means the damage is the
// unsealed tail itself, which is safely discarded and reported as
// wal.salvaged_tail_bytes.
//
// Checkpointing (txn/checkpoint.h) truncates the log: TruncateBefore()
// frees the blocks of every entry older than the checkpoint LSN, so the
// log holds only the tail that recovery actually replays.
//
// Transient disk faults (kUnavailable) are retried in place with bounded
// exponential backoff: rewriting the same chunk block after a transient
// error is safe because the platter was untouched. Retries, give-ups and
// backoff time are surfaced through WalStats.

#ifndef CACTIS_TXN_WAL_H_
#define CACTIS_TXN_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/backoff.h"
#include "common/result.h"
#include "common/serial.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/simulated_disk.h"
#include "txn/delta.h"

namespace cactis::txn {

/// One journaled event. Commits carry the transaction's delta; the meta
/// events mirror the version facility's history repositioning so recovery
/// reproduces it.
enum class WalEventKind : uint8_t {
  kCommit = 1,    ///< a committed transaction delta (redo on recovery)
  kUndo = 2,      ///< the Undo meta-action popped the last commit
  kCheckout = 3,  ///< history repositioned to `checkout_target`
  kVersion = 4,   ///< the current position was named `version_name`
  kBatch = 5,     ///< group-commit container: N events in one log entry.
                  ///< Never carried in a WalEvent — ScanPlatter flattens
                  ///< batches back into their member events.
};

std::string_view WalEventKindToString(WalEventKind kind);

struct WalEvent {
  WalEventKind kind = WalEventKind::kCommit;
  TransactionDelta delta;        // kCommit
  uint64_t checkout_target = 0;  // kCheckout
  std::string version_name;      // kVersion

  static WalEvent Commit(TransactionDelta d) {
    WalEvent e;
    e.kind = WalEventKind::kCommit;
    e.delta = std::move(d);
    return e;
  }
  static WalEvent Undo() {
    WalEvent e;
    e.kind = WalEventKind::kUndo;
    return e;
  }
  static WalEvent Checkout(uint64_t target) {
    WalEvent e;
    e.kind = WalEventKind::kCheckout;
    e.checkout_target = target;
    return e;
  }
  static WalEvent Version(std::string name) {
    WalEvent e;
    e.kind = WalEventKind::kVersion;
    e.version_name = std::move(name);
    return e;
  }
};

/// Serialization of deltas and events (exposed so tests can round-trip
/// every DeltaOp without a disk).
void EncodeDeltaRecord(const DeltaRecord& rec, BinaryWriter* w);
Result<DeltaRecord> DecodeDeltaRecord(BinaryReader* r);
void EncodeDelta(const TransactionDelta& delta, BinaryWriter* w);
Result<TransactionDelta> DecodeDelta(BinaryReader* r);
std::string EncodeEvent(const WalEvent& event);
Result<WalEvent> DecodeEvent(std::string_view bytes);

struct WalStats {
  static constexpr size_t kBatchSizeBuckets = 16;

  uint64_t entries_appended = 0;
  uint64_t blocks_written = 0;  ///< WAL block writes (the E-metric overhead)
  uint64_t bytes_logged = 0;
  uint64_t group_batches = 0;          ///< flushes (one chained write each)
  uint64_t group_batched_entries = 0;  ///< events carried by those flushes
  uint64_t retries = 0;        ///< transient write faults retried in place
  uint64_t give_ups = 0;       ///< retry budgets exhausted (flush failed)
  uint64_t backoff_us = 0;     ///< total time slept between retries
  uint64_t wedged_flushes = 0; ///< flushes refused while the log was wedged
  uint64_t truncated_entries = 0;  ///< entries dropped by TruncateBefore
  uint64_t truncated_blocks = 0;   ///< blocks freed by TruncateBefore
  uint64_t salvaged_tail_bytes = 0;  ///< damaged tail bytes discarded by scan
  /// Power-of-two batch-size histogram, same convention as obs::Histogram:
  /// bucket i >= 1 counts flushes of [2^(i-1), 2^i) entries.
  uint64_t batch_size_buckets[kBatchSizeBuckets] = {};

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("entries_appended", entries_appended);
    g->AddCounter("blocks_written", blocks_written);
    g->AddCounter("bytes_logged", bytes_logged);
    g->AddCounter("group_batches", group_batches);
    g->AddCounter("group_batched_entries", group_batched_entries);
    g->AddCounter("retries", retries);
    g->AddCounter("give_ups", give_ups);
    g->AddCounter("backoff_us", backoff_us);
    g->AddCounter("wedged_flushes", wedged_flushes);
    g->AddCounter("truncated_entries", truncated_entries);
    g->AddCounter("truncated_blocks", truncated_blocks);
    g->AddCounter("salvaged_tail_bytes", salvaged_tail_bytes);
    for (size_t i = 1; i < kBatchSizeBuckets; ++i) {
      if (batch_size_buckets[i] == 0) continue;
      g->AddCounter("batch_size_lt_" + std::to_string(uint64_t{1} << i),
                    batch_size_buckets[i]);
    }
  }
};

/// Result of an offline platter scan: the replayable events, the sequence
/// number the log's next entry would carry, and how many bytes of damaged
/// unsealed tail (torn or bit-rotted last entry) were discarded.
struct WalScanResult {
  std::vector<WalEvent> events;
  uint64_t next_seq = 1;
  uint64_t salvaged_tail_bytes = 0;
};

class WriteAheadLog {
 public:
  /// The WAL must be created before anything else touches the disk so its
  /// superblock lands at a well-known address for recovery.
  static constexpr uint64_t kMagic = 0x434143544957414CULL;  // "CACTIWAL"
  /// Leading u32 of every entry chunk; distinguishes WAL chunks from data
  /// and checkpoint blocks during salvage sweeps.
  static constexpr uint32_t kChunkMagic = 0x57414C43;  // "CLAW"
  static constexpr uint64_t kSuperblockId = 1;

  explicit WriteAheadLog(storage::SimulatedDisk* disk) : disk_(disk) {}

  /// Allocates the superblock and the first tail block and seals the
  /// superblock. Must be called exactly once, on a disk whose next
  /// allocation is block kSuperblockId.
  Status Initialize();

  /// Journals one event durably: the commit path calls this *before*
  /// acknowledging the transaction. On failure (crash, transient error)
  /// nothing is acknowledged and recovery will discard the partial entry.
  /// Equivalent to Stage() + WaitDurable() + ForgetTicket-on-failure.
  Status Append(const WalEvent& event);

  // --- Group commit --------------------------------------------------------
  //
  // Concurrent committers amortize disk appends: each caller Stages its
  // event (cheap, returns a ticket), then blocks in WaitDurable. The
  // first waiter with undurable work elects itself flush leader, drains
  // the whole staging queue, and writes it as ONE chained log entry (a
  // kBatch container when more than one event is staged — a batch of one
  // is byte-identical to a classic Append). Followers sleep on a
  // condition variable until the leader broadcasts the commit ack.
  //
  // Stage must run under the database's exclusive statement lock (it
  // orders tickets against the in-memory commit order); WaitDurable must
  // NOT hold that lock, so readers and other writers proceed while the
  // leader is on the disk. A failed flush records a per-ticket failure
  // status (queried via TicketFailed, released via ForgetTicket) and the
  // un-advanced tail means the next flush rewrites the same chain — the
  // same transient-error retry semantics Append always had.

  /// Encodes and enqueues one event; returns its commit ticket. Tickets
  /// are issued in WAL order: callers must invoke Stage in the order the
  /// events must appear on the platter (i.e. under the exclusive lock).
  uint64_t Stage(const WalEvent& event);

  /// Blocks until the ticket's batch is flushed; returns the flush
  /// outcome for this ticket. Must be called exactly once per ticket.
  Status WaitDurable(uint64_t ticket);

  /// True while `ticket` has a recorded flush failure.
  bool TicketFailed(uint64_t ticket);

  /// Releases the failure record for `ticket` (no-op if none).
  void ForgetTicket(uint64_t ticket);

  /// True after a flush exhausted its retry budget. A wedged log fails
  /// every subsequent flush fast (no disk attempt) until ClearWedge():
  /// letting a later batch land while the failed ones are still being
  /// rolled back in memory would diverge the in-memory state from the
  /// platter. The health probe clears the wedge once storage answers.
  bool wedged();
  void ClearWedge();

  /// Blocks until no flush is running and nothing is staged. Callers
  /// hold the exclusive statement lock, so no new Stage can race in.
  void WaitIdle();

  /// Highest ticket whose flush has completed (successfully or not).
  uint64_t ResolvedTicket();

  const WalStats& stats() const { return stats_; }

  /// The block the next entry's first chunk will land in (pre-allocated,
  /// never yet written) and the sequence number it will carry. Together
  /// they are the resume point a checkpoint records. Callers hold the
  /// exclusive statement lock with the log idle.
  BlockId tail_block() const { return tail_block_; }
  uint64_t next_seq() const { return next_seq_; }

  /// Frees the blocks of every sealed entry with seq < `before_seq`
  /// (checkpoint truncation: those entries are covered by the checkpoint
  /// image and will never be replayed). Counted in WalStats. Caller holds
  /// the exclusive statement lock and has called WaitIdle(), so no flush
  /// leader is touching the chain.
  Status TruncateBefore(uint64_t before_seq);

  /// Bounded-backoff policy for transient write faults. Replaceable so
  /// tests can shrink (or zero) the budget.
  void set_retry_policy(BackoffPolicy policy) { retry_policy_ = policy; }

  /// Recovery credit: records tail bytes a platter scan had to discard so
  /// the loss shows up in this (recovered) database's metrics.
  void NoteSalvagedTailBytes(uint64_t bytes) {
    stats_.salvaged_tail_bytes += bytes;
  }

  /// Optional span tracer; records one wal_append event per entry.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Offline scan of a platter (possibly of a crashed disk): returns every
  /// complete journal entry in order, silently truncating at the first
  /// empty block, checksum failure, or sequence discontinuity. NotFound if
  /// the platter carries no WAL superblock.
  static Result<std::vector<WalEvent>> ScanPlatter(
      const storage::SimulatedDisk& platter);

  /// Reads the superblock of a platter and returns the first entry block.
  /// NotFound if the platter carries no WAL.
  static Result<BlockId> ReadFirstBlock(const storage::SimulatedDisk& platter);

  /// Scan from an explicit resume point (checkpoint-aware recovery): walks
  /// the chain starting at `start_block`, expecting `start_seq` first.
  /// When the chain stops at a damaged block, a salvage sweep over every
  /// allocated block decides between a discardable unsealed tail (scan
  /// succeeds, salvaged_tail_bytes > 0) and damage before the durable tail
  /// (kCorruption: an acked commit would be lost).
  static Result<WalScanResult> ScanPlatterFrom(
      const storage::SimulatedDisk& platter, BlockId start_block,
      uint64_t start_seq);

 private:
  struct StagedEntry {
    uint64_t ticket = 0;
    std::string payload;  // one encoded WalEvent
  };

  /// Usable payload bytes per chunk block.
  size_t ChunkCapacity() const;

  /// Writes `batch` as one chained log entry. Leader-only (at most one
  /// caller at a time, enforced by flush_in_progress_); holds no locks,
  /// so tail_block_/next_seq_/stats_ are leader-private while it runs.
  Status WriteBatch(const std::vector<StagedEntry>& batch);

  /// Writes one framed block, retrying transient faults with bounded
  /// backoff (rewriting is safe: a transient fault leaves the platter
  /// unchanged). Runs leader-private, like WriteBatch.
  Status WriteWithRetry(BlockId id, const std::string& framed);

  storage::SimulatedDisk* disk_;
  BlockId tail_block_;       ///< pre-allocated, never-written next head
  uint64_t next_seq_ = 1;    ///< entry sequence number of the next Append
  WalStats stats_;
  BackoffPolicy retry_policy_;
  /// Chunk blocks of each sealed entry, oldest first, for TruncateBefore.
  /// Leader-private (appended by WriteBatch, drained by TruncateBefore
  /// under the exclusive lock with the log idle).
  std::deque<std::pair<uint64_t, std::vector<BlockId>>> entry_blocks_;
  obs::TraceSink* trace_ = nullptr;

  std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::deque<StagedEntry> staged_;
  uint64_t next_ticket_ = 0;      ///< last issued ticket
  uint64_t resolved_ticket_ = 0;  ///< all tickets <= this have an outcome
  std::unordered_map<uint64_t, Status> failed_tickets_;
  bool flush_in_progress_ = false;
  bool wedged_ = false;  ///< set on flush give-up, cleared by ClearWedge()
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_WAL_H_
