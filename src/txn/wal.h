// Write-ahead delta log: durability for the paper's delta machinery.
//
// Sections 2.2/3 of the paper sell cheap rollback because "all of the
// actions ... can be undone simply by restoring the old value" — but that
// only survives a failure if the deltas themselves are durable. The WAL
// journals every committed TransactionDelta (and the version meta-actions
// that reposition history) to dedicated disk blocks *before* the commit is
// acknowledged; the data blocks may then be written back lazily by the
// buffer pool. After a crash, Database::Recover() replays the journal from
// the surviving platter: committed transactions redo, an incomplete tail
// entry (the transaction that was mid-append when power died) is
// discarded.
//
// On-disk layout. The log is a chain of write-once blocks:
//
//   superblock (the first block the WAL allocates; block 1 of a fresh
//   database):  [crc32][magic u64][first-entry block id u64]
//
//   entry chunk: [crc32][entry seq u64][chunk index u32][chunk count u32]
//                [next block id u64][payload piece (length-prefixed)]
//
// An entry's payload (one serialized WalEvent) is split across as many
// chunks as needed; each chunk, including the last, names the block the
// chain continues in, and that block is pre-allocated before any chunk is
// written. Every chunk block is written exactly once, so a torn write can
// only ever hit the *unsealed* tail of the log — committed entries are
// never rewritten and therefore never at risk. Recovery walks the chain
// until it meets an empty block (clean end), a checksum failure (torn
// tail), or a sequence discontinuity, and truncates there.

#ifndef CACTIS_TXN_WAL_H_
#define CACTIS_TXN_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/serial.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/simulated_disk.h"
#include "txn/delta.h"

namespace cactis::txn {

/// One journaled event. Commits carry the transaction's delta; the meta
/// events mirror the version facility's history repositioning so recovery
/// reproduces it.
enum class WalEventKind : uint8_t {
  kCommit = 1,    ///< a committed transaction delta (redo on recovery)
  kUndo = 2,      ///< the Undo meta-action popped the last commit
  kCheckout = 3,  ///< history repositioned to `checkout_target`
  kVersion = 4,   ///< the current position was named `version_name`
};

std::string_view WalEventKindToString(WalEventKind kind);

struct WalEvent {
  WalEventKind kind = WalEventKind::kCommit;
  TransactionDelta delta;        // kCommit
  uint64_t checkout_target = 0;  // kCheckout
  std::string version_name;      // kVersion

  static WalEvent Commit(TransactionDelta d) {
    WalEvent e;
    e.kind = WalEventKind::kCommit;
    e.delta = std::move(d);
    return e;
  }
  static WalEvent Undo() {
    WalEvent e;
    e.kind = WalEventKind::kUndo;
    return e;
  }
  static WalEvent Checkout(uint64_t target) {
    WalEvent e;
    e.kind = WalEventKind::kCheckout;
    e.checkout_target = target;
    return e;
  }
  static WalEvent Version(std::string name) {
    WalEvent e;
    e.kind = WalEventKind::kVersion;
    e.version_name = std::move(name);
    return e;
  }
};

/// Serialization of deltas and events (exposed so tests can round-trip
/// every DeltaOp without a disk).
void EncodeDeltaRecord(const DeltaRecord& rec, BinaryWriter* w);
Result<DeltaRecord> DecodeDeltaRecord(BinaryReader* r);
void EncodeDelta(const TransactionDelta& delta, BinaryWriter* w);
Result<TransactionDelta> DecodeDelta(BinaryReader* r);
std::string EncodeEvent(const WalEvent& event);
Result<WalEvent> DecodeEvent(std::string_view bytes);

struct WalStats {
  uint64_t entries_appended = 0;
  uint64_t blocks_written = 0;  ///< WAL block writes (the E-metric overhead)
  uint64_t bytes_logged = 0;

  void ExportTo(obs::MetricsGroup* g) const {
    g->AddCounter("entries_appended", entries_appended);
    g->AddCounter("blocks_written", blocks_written);
    g->AddCounter("bytes_logged", bytes_logged);
  }
};

class WriteAheadLog {
 public:
  /// The WAL must be created before anything else touches the disk so its
  /// superblock lands at a well-known address for recovery.
  static constexpr uint64_t kMagic = 0x434143544957414CULL;  // "CACTIWAL"
  static constexpr uint64_t kSuperblockId = 1;

  explicit WriteAheadLog(storage::SimulatedDisk* disk) : disk_(disk) {}

  /// Allocates the superblock and the first tail block and seals the
  /// superblock. Must be called exactly once, on a disk whose next
  /// allocation is block kSuperblockId.
  Status Initialize();

  /// Journals one event durably: the commit path calls this *before*
  /// acknowledging the transaction. On failure (crash, transient error)
  /// nothing is acknowledged and recovery will discard the partial entry.
  Status Append(const WalEvent& event);

  const WalStats& stats() const { return stats_; }

  /// Optional span tracer; records one wal_append event per entry.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  /// Offline scan of a platter (possibly of a crashed disk): returns every
  /// complete journal entry in order, silently truncating at the first
  /// empty block, checksum failure, or sequence discontinuity. NotFound if
  /// the platter carries no WAL superblock.
  static Result<std::vector<WalEvent>> ScanPlatter(
      const storage::SimulatedDisk& platter);

 private:
  /// Usable payload bytes per chunk block.
  size_t ChunkCapacity() const;

  storage::SimulatedDisk* disk_;
  BlockId tail_block_;       ///< pre-allocated, never-written next head
  uint64_t next_seq_ = 1;    ///< entry sequence number of the next Append
  WalStats stats_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace cactis::txn

#endif  // CACTIS_TXN_WAL_H_
