#!/usr/bin/env bash
# Two-process demo of the telemetry pipeline: one cactis_shell serves,
# a second connects over loopback, generates traffic, and then watches
# the server through every telemetry surface — the `metrics history`
# time-series statement, the watchdog `alerts` log, the interactive
# `\top` dashboard, and the scriptable one-shot `--top` flag.
#
#   tools/telemetry_demo.sh [build-dir] [port]
set -euo pipefail

BUILD="${1:-build}"
PORT="${2:-${CACTIS_DEMO_PORT:-$((20000 + RANDOM % 20000))}}"
SHELL_BIN="$BUILD/examples/cactis_shell"

if [[ ! -x "$SHELL_BIN" ]]; then
  echo "error: $SHELL_BIN not built (cmake --build $BUILD)" >&2
  exit 1
fi

"$SHELL_BIN" --serve "127.0.0.1:$PORT" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true; wait "$SERVER" 2>/dev/null || true' EXIT

for _ in $(seq 1 50); do
  if "$SHELL_BIN" --connect "127.0.0.1:$PORT" </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

if ! kill -0 "$SERVER" 2>/dev/null; then
  echo "telemetry demo FAILED: server exited before accepting connections (port $PORT in use?)" >&2
  exit 1
fi

# Generate traffic, let the 1 Hz sampler take a few ticks, then read the
# telemetry back over the wire. `sleep 2.5` inside the heredoc would be
# ideal but the shell has no sleep statement, so the traffic itself is
# split across two connections with a pause between them.
"$SHELL_BIN" --connect "127.0.0.1:$PORT" >/dev/null <<'EOF'
schema
object class task is
  attributes
    label : string;
    effort : int;
end object;
end schema
create task as t1
set t1.label = "watch the telemetry"; set t1.effort = 3
begin; set obj(1).effort = 9; commit
quit
EOF

sleep 2.5

OUT="$("$SHELL_BIN" --connect "127.0.0.1:$PORT" <<'EOF'
get obj(1).effort
metrics history server 2
alerts
\top txn 1
\alerts
quit
EOF
)"
echo "$OUT"

# The time-series window must have real, rate-converted samples.
if ! grep -q '"samples_taken":' <<<"$OUT"; then
  echo "telemetry demo FAILED: no metrics history over the wire" >&2
  exit 1
fi
if ! grep -q '"rate_per_s":' <<<"$OUT"; then
  echo "telemetry demo FAILED: history carries no rates" >&2
  exit 1
fi
# The watchdog answers (idle server: no active alerts expected).
if ! grep -q '"active":\[\]' <<<"$OUT"; then
  echo "telemetry demo FAILED: expected an empty active-alert set" >&2
  exit 1
fi
# The \top dashboard renders the txn group's committed counter.
if ! grep -q 'txn.committed' <<<"$OUT"; then
  echo "telemetry demo FAILED: \\top did not render txn.committed" >&2
  exit 1
fi

# One-shot --top: a single frame straight from the command line.
TOP="$("$SHELL_BIN" --connect "127.0.0.1:$PORT" --top server)"
echo "$TOP"
if ! grep -q 'cactis top:' <<<"$TOP"; then
  echo "telemetry demo FAILED: --top rendered no dashboard frame" >&2
  exit 1
fi
if ! grep -q 'server.num_workers' <<<"$TOP"; then
  echo "telemetry demo FAILED: --top frame missing server gauges" >&2
  exit 1
fi

if ! kill -TERM "$SERVER" 2>/dev/null; then
  echo "telemetry demo FAILED: server died mid-demo" >&2
  exit 1
fi
wait "$SERVER" || true
trap - EXIT
echo "telemetry demo ok"
