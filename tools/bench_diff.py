#!/usr/bin/env python3
"""Compare fresh bench JSON against committed baselines and gate on regressions.

Usage:
    tools/bench_diff.py --baseline tools/bench_baselines --fresh perf-artifacts \
        [--threshold 0.25] [--raw]

Reads BENCH_server.json and BENCH_recovery.json from both directories and
fails (exit 1) when:

  * lost_updates != 0 in the fresh server bench (hard gate, no threshold);
  * readers stall writers: the fresh server bench must report
    e13_speedup_x100_w8 > 100 — 8-worker read-heavy throughput strictly
    above 1 worker (hard gate; MVCC snapshot reads make scaling real);
  * recovery-after-checkpoint replays more than the WAL tail: the fresh
    recovery bench must report e11c_replayed_entries ==
    e11c_total_txns - e11c_checkpoint_at exactly (hard gate);
  * chaos invariants violated in BENCH_chaos.json, when present:
    e14_lost_acked_commits, e14_phantom_updates and e14_failed_recoveries
    must all be 0 and e14_storm_restored must be 1 (hard gates);
  * soak invariants violated in BENCH_soak.json, when present:
    lost_updates, session_leaks, op_failures and framing_errors must all
    be 0, and peak_sessions must reach the configured session count
    (hard gates; rejects may be nonzero — admission control is expected
    to fire — but nothing may be silently lost);
  * telemetry overhead past budget in BENCH_telemetry.json: the E17
    sampler+watchdog on/off throughput ratios must report
    e17_overhead_ratio_x100_w{0,1,4} >= 98 — the always-on telemetry
    pipeline may cost at most 2% throughput at a 100 ms tick, 10x the
    production sampling rate (hard gates);
  * clustering invariants violated in BENCH_clustering.json: on every
    E16 scenario the default policy must beat unclustered placement
    (e16_<scenario>_ratio_x100 > 100), and it must strictly beat the
    paper's raw-counter greedy packer on at least two scenarios
    (e16_default_wins_vs_greedy >= 2) — both hard gates;
  * a gated metric regressed by more than --threshold (default 25%).

Gated metrics are chosen to be machine-independent so the gate is
meaningful across CI hosts:

  server     e13_speedup_x100_w4     4-worker/1-worker read scaling ratio
  recovery   e11b blocks-per-commit  WAL blocks / committed txn (w1, w4)
  recovery   e11b entries-per-batch  group-commit batching efficiency (w4)
  clustering e16_*_bpt_x100          blocks read per traversal, per
                                     scenario, for the default policy
                                     (deterministic: seeded workload,
                                     simulated disk, cold buffer pool)

Raw throughput counters (e13_stmt_per_s_w*) are wall-clock and therefore
hardware-dependent: they are compared only when the fresh and baseline
reports come from hosts with the same CPU count, or always under --raw.
Skipped comparisons are reported, never silently dropped.
"""

import argparse
import json
import os
import sys


class Gate:
    """One metric comparison: fresh vs baseline with a relative threshold."""

    def __init__(self, name, baseline, fresh, threshold, higher_is_better=True):
        self.name = name
        self.baseline = baseline
        self.fresh = fresh
        self.threshold = threshold
        self.higher_is_better = higher_is_better

    @property
    def change(self):
        if self.baseline == 0:
            return 0.0
        return (self.fresh - self.baseline) / self.baseline

    @property
    def ok(self):
        if self.higher_is_better:
            return self.fresh >= self.baseline * (1.0 - self.threshold)
        return self.fresh <= self.baseline * (1.0 + self.threshold)

    def row(self):
        direction = "higher-better" if self.higher_is_better else "lower-better"
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"  {self.name:<32} baseline={self.baseline:<12.4g} "
            f"fresh={self.fresh:<12.4g} change={self.change:+7.1%} "
            f"[{direction}] {verdict}"
        )


def load(directory, name):
    path = os.path.join(directory, name)
    if not os.path.exists(path):
        return None, path
    with open(path) as f:
        return json.load(f), path


def counter(doc, key):
    return doc.get("counters", {}).get(key)


def server_gates(base, fresh, threshold, raw, notes):
    gates = []
    for key in ("e13_speedup_x100_w4", "e13_speedup_x100_w8"):
        b, f = counter(base, key), counter(fresh, key)
        if b is not None and f is not None:
            gates.append(Gate(key, b, f, threshold))
        else:
            notes.append(f"{key} missing from server report; skipped")

    base_cpus = base.get("config", {}).get("host_cpus")
    fresh_cpus = fresh.get("config", {}).get("host_cpus")
    comparable = raw or (base_cpus is not None and base_cpus == fresh_cpus)
    for w in (1, 2, 4, 8):
        key = f"e13_stmt_per_s_w{w}"
        b, f = counter(base, key), counter(fresh, key)
        if b is None or f is None:
            continue
        if comparable:
            gates.append(Gate(key, b, f, threshold))
        else:
            notes.append(
                f"{key}: wall-clock metric skipped (baseline host_cpus="
                f"{base_cpus}, fresh={fresh_cpus}; pass --raw to force)"
            )
    return gates


def recovery_gates(base, fresh, threshold, notes):
    gates = []
    for w in (1, 4):
        bb = counter(base, f"e11b_wal_blocks_w{w}")
        bc = counter(base, f"e11b_commits_w{w}")
        fb = counter(fresh, f"e11b_wal_blocks_w{w}")
        fc = counter(fresh, f"e11b_commits_w{w}")
        if None in (bb, bc, fb, fc) or bc == 0 or fc == 0:
            notes.append(f"e11b w{w} counters incomplete; blocks/commit skipped")
            continue
        gates.append(
            Gate(
                f"e11b_wal_blocks_per_commit_w{w}",
                bb / bc,
                fb / fc,
                threshold,
                higher_is_better=False,
            )
        )
    # Batching efficiency only matters where commits overlap (w4).
    bc = counter(base, "e11b_commits_w4")
    bt = counter(base, "e11b_batches_w4")
    fc = counter(fresh, "e11b_commits_w4")
    ft = counter(fresh, "e11b_batches_w4")
    if None in (bc, bt, fc, ft) or bt == 0 or ft == 0:
        notes.append("e11b w4 batch counters incomplete; entries/batch skipped")
    else:
        gates.append(Gate("e11b_entries_per_batch_w4", bc / bt, fc / ft, threshold))
    return gates


def server_hard_gates(fresh, failures):
    """Read scaling must be real: 8 read-heavy workers must beat 1 worker
    outright. Snapshot reads take no lock and raise no read marks, so this
    holds even on a single-CPU host (pipelining plus zero reader-induced
    aborts); a value <= 100 means readers are stalling writers again."""
    w8 = counter(fresh, "e13_speedup_x100_w8")
    if w8 is None:
        failures.append("fresh server report has no e13_speedup_x100_w8 counter")
    elif w8 <= 100:
        failures.append(
            f"e13_speedup_x100_w8 = {w8} (must be > 100: 8-worker "
            "throughput must strictly exceed 1-worker)"
        )


def checkpoint_hard_gate(fresh, failures):
    """Recovery replay must be O(WAL tail): exactly total - checkpoint_at
    journal entries replayed. Deterministic event counts, no threshold."""
    total = counter(fresh, "e11c_total_txns")
    at = counter(fresh, "e11c_checkpoint_at")
    replayed = counter(fresh, "e11c_replayed_entries")
    if None in (total, at, replayed):
        failures.append("fresh recovery report has no e11c checkpoint counters")
        return
    if replayed != total - at:
        failures.append(
            f"e11c_replayed_entries = {replayed}: checkpoint at txn {at} of "
            f"{total} must replay exactly the {total - at}-entry tail"
        )


def soak_hard_gates(fresh, failures):
    """E15 invariants are absolute — no baseline, no threshold. The soak's
    rejects counter may be nonzero (admission control working as designed);
    what must be zero is anything *lost*: updates, sessions, or requests
    that failed past the retry budget."""
    for key in ("lost_updates", "session_leaks", "op_failures",
                "framing_errors"):
        v = counter(fresh, key)
        if v is None:
            failures.append(f"fresh soak report has no {key} counter")
        elif v != 0:
            failures.append(f"soak {key} = {v} (must be 0)")
    peak = counter(fresh, "peak_sessions")
    want = fresh.get("config", {}).get("sessions")
    if peak is None or want is None:
        failures.append("fresh soak report has no peak_sessions/sessions")
    elif peak < want:
        failures.append(
            f"soak peak_sessions = {peak} < configured {want}: the run "
            "never actually held every session open concurrently"
        )


def soak_gates(base, fresh, threshold, raw, notes):
    gates = []
    base_cpus = base.get("config", {}).get("host_cpus")
    fresh_cpus = fresh.get("config", {}).get("host_cpus")
    comparable = raw or (base_cpus is not None and base_cpus == fresh_cpus)
    for key in ("p50_us", "p99_us"):
        b, f = counter(base, key), counter(fresh, key)
        if b is None or f is None:
            notes.append(f"soak {key} missing; skipped")
            continue
        if comparable:
            gates.append(Gate(f"soak_{key}", b, f, threshold,
                              higher_is_better=False))
        else:
            notes.append(
                f"soak {key}: wall-clock metric skipped (baseline host_cpus="
                f"{base_cpus}, fresh={fresh_cpus}; pass --raw to force)"
            )
    return gates


CLUSTER_SCENARIOS = ("stable_tree", "shift_dfs", "shift_pull", "cold_uniform")


def clustering_hard_gates(fresh, failures):
    """E16 invariants are deterministic (seeded workload, simulated disk):
    the default clustering policy must beat no-clustering on EVERY
    scenario, and must strictly beat the paper's raw-counter greedy packer
    on at least two (the shifting-workload scenarios, where decayed
    statistics are the whole point). No baseline, no threshold."""
    for scen in CLUSTER_SCENARIOS:
        key = f"e16_{scen}_ratio_x100"
        v = counter(fresh, key)
        if v is None:
            failures.append(f"fresh clustering report has no {key} counter")
        elif v <= 100:
            failures.append(
                f"{key} = {v} (must be > 100: the default policy must beat "
                "unclustered placement on every scenario)"
            )
    wins = counter(fresh, "e16_default_wins_vs_greedy")
    if wins is None:
        failures.append(
            "fresh clustering report has no e16_default_wins_vs_greedy counter"
        )
    elif wins < 2:
        failures.append(
            f"e16_default_wins_vs_greedy = {wins} (must be >= 2: the default "
            "policy must strictly beat greedy_usage on the shift scenarios)"
        )


def clustering_gates(base, fresh, threshold, notes):
    """Baseline-relative gates on the default policy's blocks-per-traversal.
    The counters are deterministic, so any drift is a real placement
    change; the smoke flag must match because op-stream sizes differ."""
    gates = []
    base_smoke = base.get("config", {}).get("smoke")
    fresh_smoke = fresh.get("config", {}).get("smoke")
    if base_smoke != fresh_smoke:
        notes.append(
            f"clustering smoke flags differ (baseline={base_smoke}, "
            f"fresh={fresh_smoke}); bpt baseline gates skipped"
        )
        return gates
    default_policy = fresh.get("config", {}).get("default_policy")
    if not default_policy:
        notes.append("clustering report has no default_policy; bpt gates skipped")
        return gates
    for scen in CLUSTER_SCENARIOS:
        key = f"e16_{scen}_{default_policy}_bpt_x100"
        b, f = counter(base, key), counter(fresh, key)
        if b is None or f is None:
            notes.append(f"{key} missing; skipped")
            continue
        gates.append(Gate(key, b, f, threshold, higher_is_better=False))
    return gates


def telemetry_hard_gates(fresh, failures):
    """E17 overhead budget is absolute: telemetry on vs off throughput
    must stay within 2% on every workload shape, even sampling 10x
    faster than production. Best-of-trials on both arms makes the ratio
    a capability measure, so no baseline or threshold is needed."""
    for w in (0, 1, 4):
        key = f"e17_overhead_ratio_x100_w{w}"
        v = counter(fresh, key)
        if v is None:
            failures.append(f"fresh telemetry report has no {key} counter")
        elif v < 98:
            failures.append(
                f"{key} = {v} (must be >= 98: the sampler+watchdog "
                "pipeline may cost at most 2% throughput)"
            )


def telemetry_gates(base, fresh, threshold, notes):
    """Baseline-relative trend on the same ratios. The ratio is already
    host-normalized (on/off on the same machine), so it is comparable
    across CI hosts without a host_cpus check."""
    gates = []
    for w in (0, 1, 4):
        key = f"e17_overhead_ratio_x100_w{w}"
        b, f = counter(base, key), counter(fresh, key)
        if b is None or f is None:
            notes.append(f"{key} missing; skipped")
            continue
        gates.append(Gate(key, b, f, threshold))
    return gates


def chaos_hard_gates(fresh, failures):
    """E14 invariants are absolute — no baseline, no threshold."""
    for key in ("e14_lost_acked_commits", "e14_phantom_updates",
                "e14_failed_recoveries"):
        v = counter(fresh, key)
        if v is None:
            failures.append(f"fresh chaos report has no {key} counter")
        elif v != 0:
            failures.append(f"{key} = {v} (must be 0)")
    restored = counter(fresh, "e14_storm_restored")
    if restored is None:
        failures.append("fresh chaos report has no e14_storm_restored counter")
    elif restored != 1:
        failures.append("e14_storm_restored = 0: probe failed to restore "
                        "read-write after the storm")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True, help="directory of committed baselines")
    ap.add_argument("--fresh", required=True, help="directory of freshly produced bench JSON")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="maximum tolerated relative regression (default 0.25)")
    ap.add_argument("--raw", action="store_true",
                    help="compare wall-clock throughput even across differing hosts")
    args = ap.parse_args()

    failures = []
    notes = []
    gates = []

    fresh_server, fresh_server_path = load(args.fresh, "BENCH_server.json")
    base_server, base_server_path = load(args.baseline, "BENCH_server.json")
    if fresh_server is None:
        failures.append(f"missing fresh server report: {fresh_server_path}")
    else:
        lost = counter(fresh_server, "lost_updates")
        if lost is None:
            failures.append("fresh server report has no lost_updates counter")
        elif lost != 0:
            failures.append(f"lost_updates = {lost} (must be 0)")
        server_hard_gates(fresh_server, failures)
        if base_server is None:
            failures.append(f"missing committed baseline: {base_server_path}")
        else:
            gates += server_gates(base_server, fresh_server, args.threshold,
                                  args.raw, notes)

    fresh_rec, fresh_rec_path = load(args.fresh, "BENCH_recovery.json")
    base_rec, base_rec_path = load(args.baseline, "BENCH_recovery.json")
    if fresh_rec is None:
        failures.append(f"missing fresh recovery report: {fresh_rec_path}")
    else:
        checkpoint_hard_gate(fresh_rec, failures)
        if base_rec is None:
            failures.append(f"missing committed baseline: {base_rec_path}")
        else:
            gates += recovery_gates(base_rec, fresh_rec, args.threshold, notes)

    fresh_clu, fresh_clu_path = load(args.fresh, "BENCH_clustering.json")
    base_clu, base_clu_path = load(args.baseline, "BENCH_clustering.json")
    if fresh_clu is None:
        failures.append(f"missing fresh clustering report: {fresh_clu_path}")
    else:
        clustering_hard_gates(fresh_clu, failures)
        if base_clu is None:
            failures.append(f"missing committed baseline: {base_clu_path}")
        else:
            gates += clustering_gates(base_clu, fresh_clu, args.threshold,
                                      notes)

    fresh_tel, fresh_tel_path = load(args.fresh, "BENCH_telemetry.json")
    base_tel, base_tel_path = load(args.baseline, "BENCH_telemetry.json")
    if fresh_tel is None:
        failures.append(f"missing fresh telemetry report: {fresh_tel_path}")
    else:
        telemetry_hard_gates(fresh_tel, failures)
        if base_tel is None:
            failures.append(f"missing committed baseline: {base_tel_path}")
        else:
            gates += telemetry_gates(base_tel, fresh_tel, args.threshold,
                                     notes)

    fresh_chaos, _ = load(args.fresh, "BENCH_chaos.json")
    if fresh_chaos is None:
        notes.append("no fresh BENCH_chaos.json; E14 invariant gates skipped")
    else:
        chaos_hard_gates(fresh_chaos, failures)

    fresh_soak, _ = load(args.fresh, "BENCH_soak.json")
    base_soak, _ = load(args.baseline, "BENCH_soak.json")
    if fresh_soak is None:
        notes.append("no fresh BENCH_soak.json; E15 invariant gates skipped")
    else:
        soak_hard_gates(fresh_soak, failures)
        if base_soak is None:
            notes.append("no committed BENCH_soak.json baseline; "
                         "soak latency gates skipped")
        else:
            gates += soak_gates(base_soak, fresh_soak, args.threshold,
                                args.raw, notes)

    print(f"bench_diff: threshold {args.threshold:.0%}")
    for g in gates:
        print(g.row())
        if not g.ok:
            failures.append(
                f"{g.name} regressed {g.change:+.1%} "
                f"(baseline {g.baseline:.4g}, fresh {g.fresh:.4g})"
            )
    for n in notes:
        print(f"  note: {n}")

    if failures:
        print("\nbench_diff FAILED:")
        for f in failures:
            print(f"  * {f}")
        return 1
    print("\nbench_diff OK: no gated metric regressed past the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
