#!/usr/bin/env bash
# Two-process demo of the TCP transport: one cactis_shell serves, a
# second connects over loopback, loads schema, runs a transaction, and
# reads the server's metrics — all over the binary wire protocol.
#
#   tools/net_demo.sh [build-dir] [port]
set -euo pipefail

# Default to a randomized port so a stale listener from an earlier run
# (or a parallel CI job) can't be mistaken for the server we just spawned.
BUILD="${1:-build}"
PORT="${2:-${CACTIS_DEMO_PORT:-$((20000 + RANDOM % 20000))}}"
SHELL_BIN="$BUILD/examples/cactis_shell"

if [[ ! -x "$SHELL_BIN" ]]; then
  echo "error: $SHELL_BIN not built (cmake --build $BUILD)" >&2
  exit 1
fi

"$SHELL_BIN" --serve "127.0.0.1:$PORT" &
SERVER=$!
trap 'kill "$SERVER" 2>/dev/null || true; wait "$SERVER" 2>/dev/null || true' EXIT

# Wait for the listener (the server prints its banner once bound).
for _ in $(seq 1 50); do
  if "$SHELL_BIN" --connect "127.0.0.1:$PORT" </dev/null >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done

# If our server died (e.g. bind failure), anything answering on the port
# is somebody else's process — fail loudly instead of talking to it.
if ! kill -0 "$SERVER" 2>/dev/null; then
  echo "net demo FAILED: server exited before accepting connections (port $PORT in use?)" >&2
  exit 1
fi

OUT="$("$SHELL_BIN" --connect "127.0.0.1:$PORT" <<'EOF'
schema
object class task is
  attributes
    label : string;
    effort : int;
end object;
end schema
create task as t1
set t1.label = "ship the wire protocol"; set t1.effort = 3
begin; set obj(1).effort = 9; commit
get obj(1).effort
\health
quit
EOF
)"
echo "$OUT"

# The transaction's committed value must round-trip over TCP.
if ! grep -Eq '(^|> )9$' <<<"$OUT"; then
  echo "net demo FAILED: expected committed value 9 in output" >&2
  exit 1
fi

if ! kill -TERM "$SERVER" 2>/dev/null; then
  echo "net demo FAILED: server died mid-demo" >&2
  exit 1
fi
wait "$SERVER" || true
trap - EXIT
echo "net demo ok"
