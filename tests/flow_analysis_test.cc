// Flow analysis as attribute evaluation (paper section 4): definitely-
// defined sets propagate forward through a structured CFG; edits
// re-propagate incrementally.

#include <gtest/gtest.h>

#include "env/flow_analysis.h"

namespace cactis::env {
namespace {

class FlowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fa = FlowAnalysis::Attach(&db_);
    ASSERT_TRUE(fa.ok()) << fa.status();
    fa_ = std::move(fa).value();
  }

  // entry: x :=        (defines x)
  // then:  y := x      (defines y, uses x)
  // use:   print(x, y, z)   (uses x, y, z -- z never defined!)
  void BuildStraightLine() {
    ASSERT_TRUE(fa_->AddStatement("entry", {"x"}, {}).ok());
    ASSERT_TRUE(fa_->AddStatement("assign_y", {"y"}, {"x"}).ok());
    ASSERT_TRUE(fa_->AddStatement("use", {}, {"x", "y", "z"}).ok());
    ASSERT_TRUE(fa_->AddFlow("entry", "assign_y").ok());
    ASSERT_TRUE(fa_->AddFlow("assign_y", "use").ok());
  }

  core::Database db_;
  std::unique_ptr<FlowAnalysis> fa_;
};

TEST_F(FlowTest, DefinedSetsPropagateForward) {
  BuildStraightLine();
  auto on_entry = fa_->DefinedOnEntry("use");
  ASSERT_TRUE(on_entry.ok()) << on_entry.status();
  EXPECT_EQ(*on_entry, (std::vector<std::string>{"x", "y"}));
}

TEST_F(FlowTest, UndefinedUsesDetected) {
  BuildStraightLine();
  auto undef = fa_->UndefinedUses("use");
  ASSERT_TRUE(undef.ok());
  EXPECT_EQ(*undef, (std::vector<std::string>{"z"}));
  // The earlier statement's use of x is fine.
  EXPECT_TRUE(fa_->UndefinedUses("assign_y")->empty());
}

TEST_F(FlowTest, EditingAStatementRepropagates) {
  BuildStraightLine();
  ASSERT_EQ(fa_->UndefinedUses("use")->size(), 1u);
  // Fix the program: define z at the entry.
  ASSERT_TRUE(fa_->SetDefs("entry", {"x", "z"}).ok());
  EXPECT_TRUE(fa_->UndefinedUses("use")->empty());
  // Break it differently: entry no longer defines x.
  ASSERT_TRUE(fa_->SetDefs("entry", {"z"}).ok());
  auto undef = fa_->UndefinedUses("use");
  // y := x is now also a use-before-def, and so is x at `use`.
  EXPECT_EQ(*fa_->UndefinedUses("assign_y"),
            (std::vector<std::string>{"x"}));
  EXPECT_EQ(*undef, (std::vector<std::string>{"x"}));
}

TEST_F(FlowTest, BranchesMergeDefinitions) {
  // Diamond CFG: both branches define different variables; only what is
  // on *a* path is "defined" under our union (may-be-defined) analysis.
  ASSERT_TRUE(fa_->AddStatement("top", {"a"}, {}).ok());
  ASSERT_TRUE(fa_->AddStatement("left", {"l"}, {"a"}).ok());
  ASSERT_TRUE(fa_->AddStatement("right", {"r"}, {"a"}).ok());
  ASSERT_TRUE(fa_->AddStatement("join", {}, {"l", "r"}).ok());
  ASSERT_TRUE(fa_->AddFlow("top", "left").ok());
  ASSERT_TRUE(fa_->AddFlow("top", "right").ok());
  ASSERT_TRUE(fa_->AddFlow("left", "join").ok());
  ASSERT_TRUE(fa_->AddFlow("right", "join").ok());

  auto on_entry = fa_->DefinedOnEntry("join");
  ASSERT_TRUE(on_entry.ok());
  EXPECT_EQ(*on_entry, (std::vector<std::string>{"a", "l", "r"}));
  EXPECT_TRUE(fa_->UndefinedUses("join")->empty());
}

TEST_F(FlowTest, LoopsResolveByFixedPoint) {
  // The paper's [Far86] extension: loops in the CFG are circular-but-
  // well-defined; the propagation attributes are declared `circular` and
  // converge by fixed-point iteration.
  ASSERT_TRUE(fa_->AddStatement("init", {"i"}, {}).ok());
  ASSERT_TRUE(fa_->AddStatement("head", {}, {"i"}).ok());
  ASSERT_TRUE(fa_->AddStatement("body", {"acc"}, {"i", "acc"}).ok());
  ASSERT_TRUE(fa_->AddStatement("after", {}, {"acc"}).ok());
  ASSERT_TRUE(fa_->AddFlow("init", "head").ok());
  ASSERT_TRUE(fa_->AddFlow("head", "body").ok());
  ASSERT_TRUE(fa_->AddFlow("body", "head").ok());  // the loop back-edge
  ASSERT_TRUE(fa_->AddFlow("head", "after").ok());

  // Around the loop: i defined before entry; acc defined only inside the
  // body, so its use in the body is a (may) use-before-def on the first
  // iteration path, while i is always fine.
  auto head_in = fa_->DefinedOnEntry("head");
  ASSERT_TRUE(head_in.ok()) << head_in.status();
  EXPECT_EQ(*head_in, (std::vector<std::string>{"acc", "i"}));
  EXPECT_TRUE(fa_->UndefinedUses("after")->empty());
  EXPECT_TRUE(fa_->UndefinedUses("head")->empty());
}

TEST_F(FlowTest, LoopAnalysisUpdatesIncrementally) {
  ASSERT_TRUE(fa_->AddStatement("a", {"x"}, {}).ok());
  ASSERT_TRUE(fa_->AddStatement("b", {}, {"x", "z"}).ok());
  ASSERT_TRUE(fa_->AddFlow("a", "b").ok());
  ASSERT_TRUE(fa_->AddFlow("b", "a").ok());  // loop
  EXPECT_EQ(*fa_->UndefinedUses("b"), (std::vector<std::string>{"z"}));
  // Edit inside the loop: now z is defined by a.
  ASSERT_TRUE(fa_->SetDefs("a", {"x", "z"}).ok());
  EXPECT_TRUE(fa_->UndefinedUses("b")->empty());
}

TEST_F(FlowTest, UnknownLabelsRejected) {
  EXPECT_FALSE(fa_->AddFlow("ghost", "ghost").ok());
  EXPECT_FALSE(fa_->UndefinedUses("ghost").ok());
  ASSERT_TRUE(fa_->AddStatement("s", {}, {}).ok());
  EXPECT_FALSE(fa_->AddStatement("s", {}, {}).ok());  // duplicate
}

}  // namespace
}  // namespace cactis::env
