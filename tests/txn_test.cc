// Transactions: commit, the Undo meta-action, destructor-abort, delta
// bookkeeping, and timestamp-ordering concurrency control (multi-user
// interleavings).

#include <gtest/gtest.h>

#include "core/database.h"
#include "txn/timestamp_cc.h"

namespace cactis::core {
namespace {

const char* kSchema = R"(
  object class doc is
    relationships
      refs : cites multi plug;
      cited_by : cites multi socket;
    attributes
      title : string;
      words : int;
      cited_words : int;
    rules
      cited_words = begin
        t : int = 0;
        for each d related to cited_by do
          t = t + d.words;
        end;
        return t;
      end;
  end object;
)";

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(db_.LoadSchema(kSchema).ok()); }
  Database db_;
};

TEST_F(TxnTest, CommitMakesDeltaPermanent) {
  auto t = db_.Begin();
  auto id = t->Create("doc");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(t->Set(*id, "words", Value::Int(100)).ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_FALSE(t->open());
  EXPECT_EQ(*db_.Get(*id, "words"), Value::Int(100));
  EXPECT_GT(db_.delta_bytes(), 0u);
}

TEST_F(TxnTest, ExplicitUndoRollsEverythingBack) {
  auto base = *db_.Create("doc");
  ASSERT_TRUE(db_.Set(base, "words", Value::Int(1)).ok());

  auto t = db_.Begin();
  auto extra = *t->Create("doc");
  ASSERT_TRUE(t->Set(base, "words", Value::Int(99)).ok());
  ASSERT_TRUE(t->Connect(base, "refs", extra, "cited_by").ok());
  ASSERT_TRUE(t->Undo().ok());

  // "No actions need have permanent effect."
  EXPECT_EQ(*db_.Get(base, "words"), Value::Int(1));
  EXPECT_FALSE(db_.Get(extra, "words").ok());  // creation undone
  EXPECT_TRUE(db_.NeighborsOf(base, "refs")->empty());
  EXPECT_EQ(db_.InstancesOf("doc")->size(), 1u);
}

TEST_F(TxnTest, DestructorAbortsOpenTransaction) {
  auto base = *db_.Create("doc");
  {
    auto t = db_.Begin();
    ASSERT_TRUE(t->Set(base, "words", Value::Int(42)).ok());
    // no commit: destructor must roll back
  }
  EXPECT_EQ(*db_.Get(base, "words"), Value::Int(0));
}

TEST_F(TxnTest, CommitOnAbortedTransactionFails) {
  auto t = db_.Begin();
  ASSERT_TRUE(t->Undo().ok());
  EXPECT_TRUE(t->Commit().IsTransactionAborted());
}

TEST_F(TxnTest, UndoLastRevertsCommittedTransaction) {
  auto id = *db_.Create("doc");
  ASSERT_TRUE(db_.Set(id, "words", Value::Int(7)).ok());
  ASSERT_TRUE(db_.UndoLast().ok());  // undo the Set
  EXPECT_EQ(*db_.Get(id, "words"), Value::Int(0));
  ASSERT_TRUE(db_.UndoLast().ok());  // undo the Create
  EXPECT_FALSE(db_.Get(id, "words").ok());
  EXPECT_FALSE(db_.UndoLast().ok());  // history empty
}

TEST_F(TxnTest, UndoRestoresDerivedRipple) {
  auto a = *db_.Create("doc");
  auto b = *db_.Create("doc");
  ASSERT_TRUE(db_.Connect(a, "refs", b, "cited_by").ok());
  ASSERT_TRUE(db_.Set(a, "words", Value::Int(10)).ok());
  EXPECT_EQ(*db_.Get(b, "cited_words"), Value::Int(10));
  ASSERT_TRUE(db_.Set(a, "words", Value::Int(20)).ok());
  EXPECT_EQ(*db_.Get(b, "cited_words"), Value::Int(20));
  ASSERT_TRUE(db_.UndoLast().ok());
  // The derived value is restored by recomputation, not by logging.
  EXPECT_EQ(*db_.Get(b, "cited_words"), Value::Int(10));
}

TEST_F(TxnTest, DeltaSizeIndependentOfRippleSize) {
  // Paper section 3: "the information needed to remember a delta is
  // proportional in size to the initial changes made to the database
  // rather than the total change ... because of derived data."
  auto hub = *db_.Create("doc");
  std::vector<InstanceId> readers;
  for (int i = 0; i < 50; ++i) {
    auto r = *db_.Create("doc");
    readers.push_back(r);
    ASSERT_TRUE(db_.Connect(hub, "refs", r, "cited_by").ok());
    ASSERT_TRUE(db_.Get(r, "cited_words").ok());  // subscribe: big ripple
  }
  size_t before = db_.delta_bytes();
  ASSERT_TRUE(db_.Set(hub, "words", Value::Int(123)).ok());
  size_t delta = db_.delta_bytes() - before;
  // One intrinsic write, independent of the 50-attribute ripple.
  EXPECT_LT(delta, 128u);
}

TEST_F(TxnTest, TimestampConflictAbortsLateWriter) {
  auto id = *db_.Create("doc");
  auto t1 = db_.Begin();  // older timestamp
  auto t2 = db_.Begin();  // newer timestamp
  // t2 reads the instance, setting its read timestamp forward.
  ASSERT_TRUE(t2->Get(id, "words").ok());
  // t1 (older) now tries to write: timestamp ordering rejects it.
  auto s = t1->Set(id, "words", Value::Int(5));
  EXPECT_TRUE(s.IsTransactionAborted()) << s;
  EXPECT_TRUE(t1->aborted());
  ASSERT_TRUE(t2->Commit().ok());
}

TEST_F(TxnTest, LateReadAfterNewerWriteAborts) {
  auto id = *db_.Create("doc");
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  ASSERT_TRUE(t2->Set(id, "words", Value::Int(9)).ok());
  auto v = t1->Get(id, "words");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsTransactionAborted());
  ASSERT_TRUE(t2->Commit().ok());
  EXPECT_EQ(*db_.Get(id, "words"), Value::Int(9));
}

TEST_F(TxnTest, NonConflictingTransactionsInterleave) {
  auto a = *db_.Create("doc");
  auto b = *db_.Create("doc");
  auto t1 = db_.Begin();
  auto t2 = db_.Begin();
  ASSERT_TRUE(t1->Set(a, "words", Value::Int(1)).ok());
  ASSERT_TRUE(t2->Set(b, "words", Value::Int(2)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Commit().ok());
  EXPECT_EQ(*db_.Get(a, "words"), Value::Int(1));
  EXPECT_EQ(*db_.Get(b, "words"), Value::Int(2));
}

TEST_F(TxnTest, ConcurrencyCanBeDisabled) {
  DatabaseOptions opts;
  opts.timestamp_cc = false;
  Database db(opts);
  ASSERT_TRUE(db.LoadSchema(kSchema).ok());
  auto id = *db.Create("doc");
  auto t1 = db.Begin();
  auto t2 = db.Begin();
  ASSERT_TRUE(t2->Get(id, "words").ok());
  EXPECT_TRUE(t1->Set(id, "words", Value::Int(5)).ok());  // allowed now
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Commit().ok());
}

TEST(TimestampManagerTest, UnitRules) {
  txn::TimestampManager tsm;
  uint64_t t1 = tsm.BeginTransaction();
  uint64_t t2 = tsm.BeginTransaction();
  ASSERT_GT(t2, t1);
  InstanceId x(1);
  EXPECT_TRUE(tsm.CheckRead(x, t2).ok());
  EXPECT_TRUE(tsm.CheckWrite(x, t2, 2).ok());
  // The same transaction may write x again while its commit is pending.
  EXPECT_TRUE(tsm.CheckWrite(x, t2, 2).ok());
  // Older transaction can no longer read or write x.
  EXPECT_TRUE(tsm.CheckRead(x, t1).IsConflict());
  EXPECT_TRUE(tsm.CheckWrite(x, t1, 1).IsConflict());
  EXPECT_EQ(tsm.stats().read_rejections, 1u);
  EXPECT_EQ(tsm.stats().write_rejections, 1u);
  // First-updater-wins: even a newer transaction is rejected while txn
  // 2's write on x is unstaged...
  uint64_t t3 = tsm.BeginTransaction();
  EXPECT_TRUE(tsm.CheckWrite(x, t3, 3).IsConflict());
  EXPECT_EQ(tsm.stats().dirty_write_rejections, 2u);
  // ...and admitted once the pending write is released.
  tsm.ReleaseWrite(x, 2);
  EXPECT_TRUE(tsm.CheckWrite(x, t3, 3).ok());
  // Forgotten instances reset, including the pending-writer mark.
  tsm.Forget(x);
  EXPECT_TRUE(tsm.CheckWrite(x, t1, 1).ok());
}

}  // namespace
}  // namespace cactis::core
