// Write-ahead log: serialization round trips for every DeltaOp, event
// framing, append/scan over a disk, chunked entries, torn-tail
// truncation and salvage accounting, transient-fault retry, truncation
// behind a checkpoint, and the group-commit staging queue (batch
// formation, flattening on scan, per-ticket failure reporting).

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.h"
#include "storage/checksum.h"
#include "storage/fault_policy.h"
#include "storage/simulated_disk.h"
#include "txn/wal.h"

namespace cactis::txn {
namespace {

TransactionDelta DeltaWithEveryOp() {
  TransactionDelta delta;
  delta.txn = TxnId(42);
  delta.commit_seq = 7;

  DeltaRecord set;
  set.op = DeltaOp::kSetAttr;
  set.instance = InstanceId(3);
  set.attr_index = 2;
  set.old_value = Value::Int(10);
  set.new_value = Value::String("replacement");
  delta.records.push_back(set);

  DeltaRecord create;
  create.op = DeltaOp::kCreate;
  create.instance = InstanceId(4);
  create.class_id = ClassId(9);
  delta.records.push_back(create);

  DeltaRecord del;
  del.op = DeltaOp::kDelete;
  del.instance = InstanceId(5);
  del.class_id = ClassId(9);
  del.intrinsic_snapshot.emplace_back(0, Value::Real(2.5));
  del.intrinsic_snapshot.emplace_back(3, Value::Bool(true));
  delta.records.push_back(del);

  DeltaRecord conn;
  conn.op = DeltaOp::kConnect;
  conn.instance = InstanceId(3);
  conn.edge = EdgeId(11);
  conn.from = InstanceId(3);
  conn.from_port = 1;
  conn.to = InstanceId(4);
  conn.to_port = 0;
  delta.records.push_back(conn);

  DeltaRecord disc = conn;
  disc.op = DeltaOp::kDisconnect;
  delta.records.push_back(disc);

  return delta;
}

void ExpectSameDelta(const TransactionDelta& a, const TransactionDelta& b) {
  EXPECT_EQ(a.txn, b.txn);
  EXPECT_EQ(a.commit_seq, b.commit_seq);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    const DeltaRecord& x = a.records[i];
    const DeltaRecord& y = b.records[i];
    EXPECT_EQ(x.op, y.op) << "record " << i;
    EXPECT_EQ(x.instance, y.instance);
    EXPECT_EQ(x.attr_index, y.attr_index);
    EXPECT_EQ(x.old_value, y.old_value);
    EXPECT_EQ(x.new_value, y.new_value);
    EXPECT_EQ(x.class_id, y.class_id);
    EXPECT_EQ(x.intrinsic_snapshot, y.intrinsic_snapshot);
    EXPECT_EQ(x.edge, y.edge);
    EXPECT_EQ(x.from, y.from);
    EXPECT_EQ(x.from_port, y.from_port);
    EXPECT_EQ(x.to, y.to);
    EXPECT_EQ(x.to_port, y.to_port);
  }
}

TEST(WalCodecTest, DeltaRoundTripsEveryOp) {
  TransactionDelta delta = DeltaWithEveryOp();
  BinaryWriter w;
  EncodeDelta(delta, &w);
  BinaryReader r(w.data());
  auto decoded = DecodeDelta(&r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  ExpectSameDelta(delta, *decoded);
}

TEST(WalCodecTest, EventRoundTrips) {
  // Commit.
  WalEvent commit = WalEvent::Commit(DeltaWithEveryOp());
  auto commit2 = DecodeEvent(EncodeEvent(commit));
  ASSERT_TRUE(commit2.ok());
  EXPECT_EQ(commit2->kind, WalEventKind::kCommit);
  ExpectSameDelta(commit.delta, commit2->delta);

  // Undo.
  auto undo = DecodeEvent(EncodeEvent(WalEvent::Undo()));
  ASSERT_TRUE(undo.ok());
  EXPECT_EQ(undo->kind, WalEventKind::kUndo);

  // Checkout.
  auto checkout = DecodeEvent(EncodeEvent(WalEvent::Checkout(13)));
  ASSERT_TRUE(checkout.ok());
  EXPECT_EQ(checkout->kind, WalEventKind::kCheckout);
  EXPECT_EQ(checkout->checkout_target, 13u);

  // Version.
  auto version = DecodeEvent(EncodeEvent(WalEvent::Version("release-1")));
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version->kind, WalEventKind::kVersion);
  EXPECT_EQ(version->version_name, "release-1");
}

TEST(WalCodecTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(DecodeEvent("").ok());
  EXPECT_FALSE(DecodeEvent(std::string(1, '\x09')).ok());  // unknown kind
  std::string undo_with_tail = EncodeEvent(WalEvent::Undo()) + "x";
  EXPECT_FALSE(DecodeEvent(undo_with_tail).ok());
}

TEST(WalLogTest, AppendThenScanRoundTrips) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());

  ASSERT_TRUE(wal.Append(WalEvent::Commit(DeltaWithEveryOp())).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v1")).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Undo()).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Checkout(1)).ok());
  EXPECT_EQ(wal.stats().entries_appended, 4u);

  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[0].kind, WalEventKind::kCommit);
  ExpectSameDelta((*events)[0].delta, DeltaWithEveryOp());
  EXPECT_EQ((*events)[1].kind, WalEventKind::kVersion);
  EXPECT_EQ((*events)[1].version_name, "v1");
  EXPECT_EQ((*events)[2].kind, WalEventKind::kUndo);
  EXPECT_EQ((*events)[3].kind, WalEventKind::kCheckout);
  EXPECT_EQ((*events)[3].checkout_target, 1u);
}

TEST(WalLogTest, LargeEntrySpansMultipleChunks) {
  // A tiny block size forces even modest entries across several chunks.
  storage::SimulatedDisk disk(64);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());

  WalEvent big = WalEvent::Version(std::string(500, 'x'));
  uint64_t before = wal.stats().blocks_written;
  ASSERT_TRUE(wal.Append(big).ok());
  EXPECT_GT(wal.stats().blocks_written - before, 10u);  // 500B / ~32B chunks

  ASSERT_TRUE(wal.Append(WalEvent::Undo()).ok());
  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].version_name, std::string(500, 'x'));
  EXPECT_EQ((*events)[1].kind, WalEventKind::kUndo);
}

TEST(WalLogTest, TornTailEntryIsDiscarded) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v1")).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v2")).ok());

  // The next append suffers a torn write (power loss mid-write): the
  // entry must not be acknowledged and the scan must not surface it.
  storage::ScriptedFaults faults;
  faults.torn_write_at = static_cast<int64_t>(disk.write_attempts());
  disk.set_fault_policy(&faults);
  EXPECT_FALSE(wal.Append(WalEvent::Version("v3")).ok());
  EXPECT_TRUE(disk.crashed());

  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[1].version_name, "v2");
}

TEST(WalLogTest, CrashBeforeWriteLosesOnlyTheTailEntry) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());
  ASSERT_TRUE(wal.Append(WalEvent::Checkout(0)).ok());

  storage::ScriptedFaults faults;
  faults.crash_after_writes = static_cast<int64_t>(disk.write_attempts());
  disk.set_fault_policy(&faults);
  EXPECT_FALSE(wal.Append(WalEvent::Version("lost")).ok());

  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].kind, WalEventKind::kCheckout);
}

// A torn tail is SALVAGED, not fatal: the committed prefix survives and
// the scan reports how many damaged bytes it dropped.
TEST(WalLogTest, TornTailIsSalvagedWithByteCredit) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v1")).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v2")).ok());

  storage::ScriptedFaults faults;
  faults.torn_write_at = static_cast<int64_t>(disk.write_attempts());
  disk.set_fault_policy(&faults);
  EXPECT_FALSE(wal.Append(WalEvent::Version("torn")).ok());

  auto first = WriteAheadLog::ReadFirstBlock(disk);
  ASSERT_TRUE(first.ok());
  auto scan = WriteAheadLog::ScanPlatterFrom(disk, *first, 1);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->events.size(), 2u);
  EXPECT_EQ(scan->events[1].version_name, "v2");
  EXPECT_EQ(scan->next_seq, 3u);
  EXPECT_GT(scan->salvaged_tail_bytes, 0u);
}

// Bit rot on the LAST entry is indistinguishable from a torn tail (the
// entry's ack raced the damage): salvage the committed prefix.
TEST(WalLogTest, BitRotOnLastEntrySalvagesCommittedPrefix) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v1")).ok());

  storage::ScriptedFaults faults;
  faults.corrupt_write_at = static_cast<int64_t>(disk.write_attempts());
  disk.set_fault_policy(&faults);
  // The write "succeeds" — the damage is silent until the scan's
  // checksum verification.
  ASSERT_TRUE(wal.Append(WalEvent::Version("rotted")).ok());

  auto first = WriteAheadLog::ReadFirstBlock(disk);
  ASSERT_TRUE(first.ok());
  auto scan = WriteAheadLog::ScanPlatterFrom(disk, *first, 1);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->events.size(), 1u);
  EXPECT_EQ(scan->events[0].version_name, "v1");
  EXPECT_GT(scan->salvaged_tail_bytes, 0u);
}

// Damage BEFORE the last durable entry is a different story: sealed
// entries lie beyond the hole, so dropping the tail would lose an
// acknowledged commit. That must hard-fail as corruption.
TEST(WalLogTest, DamageBeforeSealedEntriesIsCorruption) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v1")).ok());

  storage::ScriptedFaults faults;
  faults.corrupt_write_at = static_cast<int64_t>(disk.write_attempts());
  disk.set_fault_policy(&faults);
  ASSERT_TRUE(wal.Append(WalEvent::Version("rotted")).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("v3")).ok());  // sealed beyond

  auto first = WriteAheadLog::ReadFirstBlock(disk);
  ASSERT_TRUE(first.ok());
  auto scan = WriteAheadLog::ScanPlatterFrom(disk, *first, 1);
  EXPECT_TRUE(scan.status().IsCorruption()) << scan.status().ToString();
}

// TruncateBefore frees the platter blocks of entries a checkpoint made
// redundant; the surviving tail still scans from the recorded resume
// point and the log stays appendable.
TEST(WalLogTest, TruncateBeforeFreesBlocksAndKeepsTail) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        wal.Append(WalEvent::Version("old" + std::to_string(i))).ok());
  }
  // The checkpoint's WAL resume point: everything before it goes.
  const BlockId resume_block = wal.tail_block();
  const uint64_t resume_seq = wal.next_seq();
  ASSERT_TRUE(wal.Append(WalEvent::Version("tail1")).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("tail2")).ok());

  const size_t allocated_before = disk.AllocatedBlocks().size();
  ASSERT_TRUE(wal.TruncateBefore(resume_seq).ok());
  EXPECT_EQ(wal.stats().truncated_entries, 3u);
  EXPECT_GE(wal.stats().truncated_blocks, 3u);
  EXPECT_LT(disk.AllocatedBlocks().size(), allocated_before);

  auto scan = WriteAheadLog::ScanPlatterFrom(disk, resume_block, resume_seq);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->events.size(), 2u);
  EXPECT_EQ(scan->events[0].version_name, "tail1");
  EXPECT_EQ(scan->events[1].version_name, "tail2");

  // Truncation is idempotent and the log keeps appending normally.
  ASSERT_TRUE(wal.TruncateBefore(resume_seq).ok());
  EXPECT_EQ(wal.stats().truncated_entries, 3u);
  ASSERT_TRUE(wal.Append(WalEvent::Version("tail3")).ok());
  auto again = WriteAheadLog::ScanPlatterFrom(disk, resume_block, resume_seq);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->events.size(), 3u);
}

TEST(WalLogTest, ScanRejectsPlatterWithoutWal) {
  storage::SimulatedDisk empty(512);
  EXPECT_TRUE(WriteAheadLog::ScanPlatter(empty).status().IsNotFound());

  // A block 1 that carries non-WAL data is not mistaken for a superblock.
  storage::SimulatedDisk junk(512);
  BlockId block = junk.Allocate();
  ASSERT_TRUE(junk.Write(block, storage::WrapWithChecksum("not a wal")).ok());
  EXPECT_TRUE(WriteAheadLog::ScanPlatter(junk).status().IsNotFound());
}

// A Stage+WaitDurable with nobody else staged is a batch of one, which
// must be indistinguishable from the classic Append path — same platter
// layout, same scan, same block/byte accounting.
TEST(WalGroupCommitTest, SingletonBatchMatchesClassicAppend) {
  storage::SimulatedDisk a(4096);
  storage::SimulatedDisk b(4096);
  WriteAheadLog wal_a(&a);
  WriteAheadLog wal_b(&b);
  ASSERT_TRUE(wal_a.Initialize().ok());
  ASSERT_TRUE(wal_b.Initialize().ok());

  const WalEvent events[] = {WalEvent::Commit(DeltaWithEveryOp()),
                             WalEvent::Version("v1"), WalEvent::Undo()};
  for (const WalEvent& e : events) {
    ASSERT_TRUE(wal_a.Append(e).ok());
    uint64_t t = wal_b.Stage(e);
    ASSERT_TRUE(wal_b.WaitDurable(t).ok());
  }

  EXPECT_EQ(wal_a.stats().blocks_written, wal_b.stats().blocks_written);
  EXPECT_EQ(wal_a.stats().bytes_logged, wal_b.stats().bytes_logged);
  auto ea = WriteAheadLog::ScanPlatter(a);
  auto eb = WriteAheadLog::ScanPlatter(b);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  ASSERT_EQ(ea->size(), 3u);
  ASSERT_EQ(eb->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*ea)[i].kind, (*eb)[i].kind);
  }
}

// Pre-staging several events with nobody waiting, then calling the first
// WaitDurable, must drain the whole queue as ONE chained write — and the
// kBatch container must be invisible to recovery (the scan flattens it
// back into the staged events, in ticket order).
TEST(WalGroupCommitTest, StagedBacklogFlushesAsOneBatch) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());

  constexpr int kStaged = 5;
  uint64_t tickets[kStaged];
  for (int i = 0; i < kStaged; ++i) {
    tickets[i] = wal.Stage(WalEvent::Version("v" + std::to_string(i)));
  }
  // Any waiter elects itself leader and flushes everything staged.
  ASSERT_TRUE(wal.WaitDurable(tickets[kStaged - 1]).ok());
  for (int i = 0; i < kStaged - 1; ++i) {
    ASSERT_TRUE(wal.WaitDurable(tickets[i]).ok());
  }
  EXPECT_EQ(wal.ResolvedTicket(), tickets[kStaged - 1]);

  const WalStats& ws = wal.stats();
  EXPECT_EQ(ws.entries_appended, static_cast<uint64_t>(kStaged));
  EXPECT_EQ(ws.group_batches, 1u);
  EXPECT_EQ(ws.group_batched_entries, static_cast<uint64_t>(kStaged));
  // Power-of-two histogram: a 5-entry flush lands in bucket [4, 8).
  EXPECT_EQ(ws.batch_size_buckets[3], 1u);

  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), static_cast<size_t>(kStaged));
  for (int i = 0; i < kStaged; ++i) {
    EXPECT_EQ((*events)[i].kind, WalEventKind::kVersion);
    EXPECT_EQ((*events)[i].version_name, "v" + std::to_string(i));
  }
}

// Classic appends and multi-entry batches interleave in one log; the
// scan yields one flat, ordered stream.
TEST(WalGroupCommitTest, BatchesAndAppendsInterleaveInScan) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());

  ASSERT_TRUE(wal.Append(WalEvent::Version("first")).ok());
  uint64_t t1 = wal.Stage(WalEvent::Version("batched-a"));
  uint64_t t2 = wal.Stage(WalEvent::Version("batched-b"));
  ASSERT_TRUE(wal.WaitDurable(t2).ok());
  ASSERT_TRUE(wal.WaitDurable(t1).ok());
  ASSERT_TRUE(wal.Append(WalEvent::Checkout(2)).ok());

  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[0].version_name, "first");
  EXPECT_EQ((*events)[1].version_name, "batched-a");
  EXPECT_EQ((*events)[2].version_name, "batched-b");
  EXPECT_EQ((*events)[3].kind, WalEventKind::kCheckout);
}

/// Shrinks retry delays to microseconds so fault-path tests stay fast.
BackoffPolicy FastRetry() {
  BackoffPolicy p;
  p.base_us = 1;
  p.max_us = 4;
  return p;
}

// A single transient hiccup is absorbed INSIDE the flush: the write is
// retried with backoff, the ticket still becomes durable, and the retry
// is visible only in the stats.
TEST(WalGroupCommitTest, TransientHiccupIsRetriedTransparently) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  wal.set_retry_policy(FastRetry());
  ASSERT_TRUE(wal.Initialize().ok());

  storage::ScriptedFaults faults;
  faults.transient_write_error_at =
      static_cast<int64_t>(disk.write_attempts());
  disk.set_fault_policy(&faults);

  uint64_t t = wal.Stage(WalEvent::Version("hiccup"));
  EXPECT_TRUE(wal.WaitDurable(t).ok());
  EXPECT_FALSE(wal.TicketFailed(t));
  EXPECT_GE(wal.stats().retries, 1u);
  EXPECT_EQ(wal.stats().give_ups, 0u);

  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 1u);
  EXPECT_EQ((*events)[0].version_name, "hiccup");
}

// A flush that dies on a *persistent* transient storm (the retry budget
// is exhausted) must be reported to the ticket's owner (and only
// released by the owner), must not advance the tail, and must leave the
// log appendable once the storm clears.
TEST(WalGroupCommitTest, FailedFlushReportsPerTicketAndStaysAppendable) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  wal.set_retry_policy(FastRetry());
  ASSERT_TRUE(wal.Initialize().ok());
  ASSERT_TRUE(wal.Append(WalEvent::Version("keep")).ok());

  storage::TransientStorm storm;
  storm.storming.store(true);
  disk.set_fault_policy(&storm);

  uint64_t t = wal.Stage(WalEvent::Version("hiccup"));
  EXPECT_FALSE(wal.WaitDurable(t).ok());
  // The storm outlasted the retry budget...
  EXPECT_GE(wal.stats().give_ups, 1u);
  // ...and the failure record survives until the owner releases it.
  EXPECT_TRUE(wal.TicketFailed(t));
  wal.ForgetTicket(t);
  EXPECT_FALSE(wal.TicketFailed(t));

  // The failed flush wedged the log: even with the storm over, flushes
  // refuse fast (no disk attempt) until the health probe clears the
  // wedge — a success interleaved with failed-batch rollback would let
  // the in-memory state diverge from the platter.
  storm.storming.store(false);
  EXPECT_TRUE(wal.wedged());
  EXPECT_TRUE(wal.Append(WalEvent::Version("refused")).IsUnavailable());
  EXPECT_GE(wal.stats().wedged_flushes, 1u);

  // Un-wedged, the un-advanced tail means the next append rewrites the
  // same chain position: the log stays consistent, the failed entries
  // are gone.
  wal.ClearWedge();
  ASSERT_TRUE(wal.Append(WalEvent::Version("after")).ok());
  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].version_name, "keep");
  EXPECT_EQ((*events)[1].version_name, "after");
}

// Concurrency stress over the staging queue: many threads race Stage +
// WaitDurable; leader election and the commit-ack broadcast must lose
// nothing. (TSan target.)
TEST(WalGroupCommitTest, ConcurrentStagersAllBecomeDurable) {
  storage::SimulatedDisk disk(4096);
  WriteAheadLog wal(&disk);
  ASSERT_TRUE(wal.Initialize().ok());

  constexpr int kThreads = 8;
  constexpr int kEventsEach = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, t] {
      for (int i = 0; i < kEventsEach; ++i) {
        uint64_t ticket = wal.Stage(WalEvent::Version(
            std::to_string(t) + ":" + std::to_string(i)));
        ASSERT_TRUE(wal.WaitDurable(ticket).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  wal.WaitIdle();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kEventsEach;
  EXPECT_EQ(wal.stats().entries_appended, kTotal);
  EXPECT_EQ(wal.stats().group_batched_entries, kTotal);
  EXPECT_LE(wal.stats().group_batches, kTotal);
  auto events = WriteAheadLog::ScanPlatter(disk);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_EQ(events->size(), static_cast<size_t>(kTotal));
}

}  // namespace
}  // namespace cactis::txn
