// Request-scoped observability: `profile` / `explain` statement forms,
// cost attribution, the slow-statement log, and trace-id propagation.
// Deterministic throughout (num_workers = 0, manual draining); the
// threaded/TSan variants live in server_concurrency_test.cc.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "core/database.h"
#include "obs/slow_log.h"
#include "server/executor.h"
#include "server/statement.h"
#include "server/transport.h"

namespace cactis::server {
namespace {

const char* kCounterSchema = R"(
  object class counter is
    attributes
      v : int;
  end object;
)";

const char* kDerivedSchema = R"(
  object class item is
    attributes
      a : int;
      b : int;
      total : int;
    rules
      total = a + b;
  end object;
)";

InstanceId ParseObj(const std::string& payload) {
  uint64_t n = 0;
  EXPECT_EQ(std::sscanf(payload.c_str(), "obj(%" SCNu64 ")", &n), 1)
      << payload;
  return InstanceId(n);
}

// Extracts `"key":<uint>` from a JSON document (first occurrence).
uint64_t JsonUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

bool JsonHas(const std::string& json, const std::string& fragment) {
  return json.find(fragment) != std::string::npos;
}

// Deterministic executor: submit + drain on this thread.
class ProfileTest : public ::testing::Test {
 protected:
  void Init(const char* schema, core::DatabaseOptions db_opts = {},
            ServerOptions opts = {}) {
    db_ = std::make_unique<core::Database>(db_opts);
    ASSERT_TRUE(db_->LoadSchema(schema).ok());
    opts.num_workers = 0;
    exec_ = std::make_unique<Executor>(db_.get(), opts);
    client_ = std::make_unique<LoopbackTransport>(exec_.get());
    session_ = *client_->Connect();
  }

  Response Call(std::string_view text) {
    auto fut = client_->Submit(session_, text);
    while (exec_->RunOne()) {
    }
    return fut.get();
  }

  std::unique_ptr<core::Database> db_;
  std::unique_ptr<Executor> exec_;
  std::unique_ptr<LoopbackTransport> client_;
  SessionId session_;
};

// --- Parsing ----------------------------------------------------------------

TEST(ProfileParseTest, ProfileAndExplainModifiers) {
  auto p = ParseStatement("profile get obj(1).v");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_EQ(p->modifier, StatementModifier::kProfile);
  EXPECT_EQ(p->kind, StatementKind::kGet);

  auto e = ParseStatement("explain set obj(1).v = v + 1");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->modifier, StatementModifier::kExplain);
  EXPECT_EQ(e->kind, StatementKind::kSet);

  // The wrapped statement parses with full expression fidelity.
  ASSERT_NE(e->expr, nullptr);

  auto plain = ParseStatement("get obj(1).v");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->modifier, StatementModifier::kNone);
}

TEST(ProfileParseTest, RejectsNestingAndBareModifier) {
  EXPECT_FALSE(ParseStatement("profile profile get obj(1).v").ok());
  EXPECT_FALSE(ParseStatement("explain profile get obj(1).v").ok());
  EXPECT_FALSE(ParseStatement("profile explain get obj(1).v").ok());
  EXPECT_FALSE(ParseStatement("profile").ok());
  EXPECT_FALSE(ParseStatement("explain").ok());
}

TEST(ProfileParseTest, ExplainRoutesExclusive) {
  auto e = ParseStatement("explain get obj(1).v");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(IsReadOnlyStatement(*e));
  // profile follows the wrapped statement's routing.
  auto p = ParseStatement("profile get obj(1).v");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(IsReadOnlyStatement(*p));
}

// --- profile ----------------------------------------------------------------

TEST_F(ProfileTest, ProfileReturnsCostJson) {
  Init(kCounterSchema);
  auto id = ParseObj(Call("create counter as c").payload);
  Response r = Call("profile set " + FormatInstance(id) + ".v = 7");
  ASSERT_TRUE(r.ok()) << r.payload;
  EXPECT_GT(JsonUint(r.payload, "trace_id"), 0u);
  EXPECT_GT(JsonUint(r.payload, "session"), 0u);
  EXPECT_GT(JsonUint(r.payload, "seq"), 0u);
  EXPECT_TRUE(JsonHas(r.payload, "\"status\":\"ok\""));
  EXPECT_TRUE(JsonHas(r.payload, "\"result\":\"ok\""));
  // Every glossary field is present.
  for (const char* key :
       {"blocks_read", "blocks_written", "cache_hits", "cache_misses",
        "attrs_reevaluated", "chunks_scheduled", "wal_bytes", "queue_wait_us",
        "lock_wait_shared_us", "lock_wait_excl_us", "exec_us",
        "shared_path"}) {
    EXPECT_TRUE(JsonHas(r.payload, std::string("\"") + key + "\":"))
        << key << " missing in " << r.payload;
  }
  // An auto-commit set stages a WAL delta: attributed bytes are nonzero.
  EXPECT_GT(JsonUint(r.payload, "wal_bytes"), 0u);
  EXPECT_EQ(exec_->stats().profile_statements.load(), 1u);
}

// Acceptance: a cold RMW reports strictly more blocks_read than the same
// statement re-profiled hot.
TEST_F(ProfileTest, ProfileColdReadsMoreBlocksThanHot) {
  core::DatabaseOptions db_opts;
  db_opts.block_size = 512;    // small blocks: instances span many
  db_opts.buffer_capacity = 2; // tiny pool: early blocks get evicted
  Init(kCounterSchema, db_opts);

  auto first = ParseObj(Call("create counter as c0").payload);
  // Enough instances to roll the fill block far past the first one and
  // flush it out of the two-frame pool.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(Call("create counter").ok());
  }

  const std::string stmt =
      "profile set " + FormatInstance(first) + ".v = v + 1";
  Response cold = Call(stmt);
  ASSERT_TRUE(cold.ok()) << cold.payload;
  const uint64_t cold_reads = JsonUint(cold.payload, "blocks_read");
  EXPECT_GE(cold_reads, 1u) << cold.payload;

  Response hot = Call(stmt);
  ASSERT_TRUE(hot.ok()) << hot.payload;
  const uint64_t hot_reads = JsonUint(hot.payload, "blocks_read");
  EXPECT_LT(hot_reads, cold_reads)
      << "cold: " << cold.payload << "\nhot: " << hot.payload;

  // The increments themselves both executed.
  Response v = Call("get " + FormatInstance(first) + ".v");
  EXPECT_EQ(v.payload, "2");
}

TEST_F(ProfileTest, ProfiledReadUsesSnapshotPath) {
  Init(kCounterSchema);
  auto id = ParseObj(Call("create counter as c").payload);
  const std::string obj = FormatInstance(id);
  ASSERT_TRUE(Call("set " + obj + ".v = 3").ok());
  // An auto-commit read of a committed intrinsic attribute resolves on
  // the lock-free MVCC snapshot path, and the profile says so.
  ASSERT_TRUE(Call("get " + obj + ".v").ok());
  Response r = Call("profile get " + obj + ".v");
  ASSERT_TRUE(r.ok()) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"result\":\"3\"")) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"snapshot_path\":true")) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"shared_path\":false")) << r.payload;
}

// --- explain ----------------------------------------------------------------

TEST_F(ProfileTest, ExplainReportsAttributePlan) {
  Init(kDerivedSchema);
  auto id = ParseObj(Call("create item as i").payload);
  const std::string obj = FormatInstance(id);

  Response r = Call("explain get " + obj + ".total");
  ASSERT_TRUE(r.ok()) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"explain\":\"get\"")) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"class\":\"item\"")) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"attr_kind\":\"derived\"")) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"depends_on\":[\"a\",\"b\"]"))
      << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"policy\":")) << r.payload;
  EXPECT_TRUE(JsonHas(r.payload, "\"action\":")) << r.payload;

  // Intrinsic attribute: its dependents include the derived total.
  Response a = Call("explain set " + obj + ".a = 5");
  ASSERT_TRUE(a.ok()) << a.payload;
  EXPECT_TRUE(JsonHas(a.payload, "\"attr_kind\":\"intrinsic\"")) << a.payload;
  EXPECT_TRUE(JsonHas(a.payload, "\"dependents\":[\"total\"]")) << a.payload;
  EXPECT_TRUE(JsonHas(a.payload, "invalidate 1 dependent")) << a.payload;
  EXPECT_EQ(exec_->stats().explain_statements.load(), 2u);
}

TEST_F(ProfileTest, ExplainHasNoSideEffects) {
  Init(kDerivedSchema);
  auto id = ParseObj(Call("create item as i").payload);
  const std::string obj = FormatInstance(id);
  ASSERT_TRUE(Call("set " + obj + ".a = 5").ok());

  // Explaining the assignment must not perform it...
  ASSERT_TRUE(Call("explain set " + obj + ".a = 99").ok());
  EXPECT_EQ(Call("get " + obj + ".a").payload, "5");
  // ...and explaining a get must not evaluate the derived value: the
  // plan still reports it out of date afterwards.
  Response before = Call("explain get " + obj + ".total");
  EXPECT_TRUE(JsonHas(before.payload, "\"out_of_date\":true"))
      << before.payload;
  Response again = Call("explain get " + obj + ".total");
  EXPECT_TRUE(JsonHas(again.payload, "\"out_of_date\":true")) << again.payload;
}

TEST_F(ProfileTest, ExplainUnknownTargetsFailCleanly) {
  Init(kCounterSchema);
  EXPECT_FALSE(Call("explain get obj(999).v").ok());
  auto id = ParseObj(Call("create counter as c").payload);
  EXPECT_FALSE(Call("explain get " + FormatInstance(id) + ".nope").ok());
  // Non-attribute statements explain without touching the database.
  Response sel = Call("explain select counter where v > 0");
  ASSERT_TRUE(sel.ok()) << sel.payload;
  EXPECT_TRUE(JsonHas(sel.payload, "\"explain\":\"select\"")) << sel.payload;
  EXPECT_TRUE(JsonHas(sel.payload, "\"predicate\":")) << sel.payload;
  Response beg = Call("explain begin");
  ASSERT_TRUE(beg.ok()) << beg.payload;
  EXPECT_TRUE(JsonHas(beg.payload, "\"txn_open\":false")) << beg.payload;
}

// --- Slow-statement log -----------------------------------------------------

TEST_F(ProfileTest, SlowLogKeepsWorstAndDrains) {
  ServerOptions opts;
  opts.slow_statement_us = 0;  // log everything
  opts.slow_log_capacity = 4;
  Init(kCounterSchema, {}, opts);

  ASSERT_TRUE(Call("create counter as c").ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(Call("set c.v = " + std::to_string(i)).ok());
  }
  const obs::SlowStatementLog& log = exec_->slow_log();
  EXPECT_EQ(log.size(), 4u);             // capacity-bounded
  EXPECT_EQ(log.total_logged(), 7u);     // every admitted statement counted
  EXPECT_EQ(exec_->stats().slow_statements.load(), 7u);

  auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_GE(entries[i - 1].latency_us, entries[i].latency_us);
  }
  for (const auto& e : entries) {
    EXPECT_GT(e.trace_id, 0u);
    EXPECT_FALSE(e.text.empty());
  }

  std::string drained = exec_->DrainSlowLogJson();
  EXPECT_TRUE(JsonHas(drained, "\"stmt\":")) << drained;
  EXPECT_TRUE(JsonHas(drained, "\"latency_us\":")) << drained;
  EXPECT_TRUE(JsonHas(drained, "\"cost\":")) << drained;
  EXPECT_EQ(exec_->slow_log().size(), 0u);
  EXPECT_EQ(exec_->SnapshotSlowLogJson(), "[]");
  // total_logged survives the drain.
  EXPECT_EQ(exec_->slow_log().total_logged(), 7u);
}

TEST_F(ProfileTest, SlowLogDisabledByZeroCapacity) {
  ServerOptions opts;
  opts.slow_statement_us = 0;
  opts.slow_log_capacity = 0;
  Init(kCounterSchema, {}, opts);
  ASSERT_TRUE(Call("create counter as c; set c.v = 1").ok());
  EXPECT_EQ(exec_->slow_log().size(), 0u);
  EXPECT_EQ(exec_->slow_log().total_logged(), 0u);
  EXPECT_EQ(exec_->stats().slow_statements.load(), 0u);
}

// --- Trace-id propagation (deterministic) -----------------------------------

TEST_F(ProfileTest, TraceIdsReachDiskEvalAndWalEvents) {
  core::DatabaseOptions db_opts;
  db_opts.enable_tracing = true;
  Init(kDerivedSchema, db_opts);

  auto id = ParseObj(Call("create item as i").payload);
  const std::string obj = FormatInstance(id);
  db_->trace()->Clear();  // drop setup noise (create, schema load)

  ASSERT_TRUE(Call("begin").ok());
  ASSERT_TRUE(Call("set " + obj + ".a = 2; set " + obj + ".b = 3").ok());
  ASSERT_TRUE(Call("commit").ok());
  ASSERT_TRUE(Call("get " + obj + ".total").ok());

  const auto& events = db_->trace()->events();
  ASSERT_FALSE(events.empty());
  std::set<uint64_t> distinct;
  for (const auto& e : events) {
    EXPECT_NE(e.trace_id, 0u)
        << "untraced event kind=" << static_cast<int>(e.kind);
    distinct.insert(e.trace_id);
  }
  // begin / set / set / commit / get are five statements with five
  // distinct trace ids; at least the eval-bearing ones show up here.
  EXPECT_GE(distinct.size(), 3u);

  // The drained JSON carries the trace field for per-statement slicing.
  std::string json = db_->trace()->ToJson();
  EXPECT_TRUE(JsonHas(json, "\"trace\":")) << json;
}

// --- Metrics surfacing ------------------------------------------------------

TEST_F(ProfileTest, ServerMetricsCarryCostsSlowLogAndSessions) {
  ServerOptions opts;
  opts.slow_statement_us = 0;
  opts.slow_log_capacity = 8;
  Init(kCounterSchema, {}, opts);

  ASSERT_TRUE(Call("create counter as c").ok());
  ASSERT_TRUE(Call("set c.v = 41; set c.v = v + 1").ok());
  ASSERT_TRUE(Call("get c.v").ok());

  std::string m = exec_->SnapshotMetrics();
  for (const char* key :
       {"cost_blocks_read", "cost_blocks_written", "cost_wal_bytes",
        "cost_lock_wait_excl_us", "profile_statements", "explain_statements",
        "slow_statements", "slow_statements_logged"}) {
    EXPECT_TRUE(JsonHas(m, std::string("\"") + key + "\":")) << key;
  }
  EXPECT_TRUE(JsonHas(m, "\"slow_statements\":")) << m;
  EXPECT_TRUE(JsonHas(m, "\"per_session\":[{\"session\":")) << m;
  EXPECT_TRUE(JsonHas(m, "\"exec_us\":")) << m;
  // The database group exports the trace ring's drop counter.
  EXPECT_TRUE(JsonHas(m, "\"trace_dropped_events\":")) << m;

  // Per-session statement counts reflect this session's work.
  uint64_t stmts = JsonUint(m.substr(m.find("per_session")), "statements");
  EXPECT_EQ(stmts, 4u);
}

}  // namespace
}  // namespace cactis::server
