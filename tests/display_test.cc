// The section-4 UIMS example: a widget tree whose screen contents are
// derived attributes; edits re-render exactly the affected path.

#include <gtest/gtest.h>

#include "env/display.h"

namespace cactis::env {
namespace {

class DisplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto d = DisplayManager::Attach(&db_);
    ASSERT_TRUE(d.ok()) << d.status();
    display_ = std::move(d).value();
  }

  void BuildDashboard() {
    ASSERT_TRUE(display_->AddWidget("root", "box", "Build Status").ok());
    ASSERT_TRUE(
        display_->AddWidget("title", "label", "nightly #42", "root").ok());
    ASSERT_TRUE(
        display_->AddWidget("progress", "meter", "tests", "root").ok());
    ASSERT_TRUE(display_->SetLevel("progress", 3).ok());
  }

  core::Database db_;
  std::unique_ptr<DisplayManager> display_;
};

TEST_F(DisplayTest, ComposesChildFragments) {
  BuildDashboard();
  auto screen = display_->Render("root");
  ASSERT_TRUE(screen.ok()) << screen.status();
  EXPECT_EQ(*screen,
            "== Build Status ==\n"
            "  nightly #42\n"
            "  tests [###.......]");
}

TEST_F(DisplayTest, ScreenTracksDataAutomatically) {
  BuildDashboard();
  ASSERT_TRUE(display_->Render("root").ok());
  ASSERT_TRUE(display_->SetLevel("progress", 9).ok());
  ASSERT_TRUE(display_->SetText("title", "nightly #43").ok());
  auto screen = display_->Render("root");
  ASSERT_TRUE(screen.ok());
  EXPECT_NE(screen->find("nightly #43"), std::string::npos);
  EXPECT_NE(screen->find("[#########.]"), std::string::npos);
}

TEST_F(DisplayTest, RedrawIsIncremental) {
  BuildDashboard();
  // A second, unrelated box.
  ASSERT_TRUE(display_->AddWidget("other", "box", "Other Panel").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(display_
                    ->AddWidget("w" + std::to_string(i), "label",
                                "line " + std::to_string(i), "other")
                    .ok());
  }
  ASSERT_TRUE(display_->Render("root").ok());
  ASSERT_TRUE(display_->Render("other").ok());

  // Editing the meter re-renders only meter -> root (and their exports),
  // never the 21 widgets of the other panel.
  db_.ResetStats();
  ASSERT_TRUE(display_->SetLevel("progress", 7).ok());
  ASSERT_TRUE(display_->Render("root").ok());
  EXPECT_LE(db_.eval_stats().rule_evaluations, 4u);
}

TEST_F(DisplayTest, NestedBoxesIndent) {
  ASSERT_TRUE(display_->AddWidget("outer", "box", "Outer").ok());
  ASSERT_TRUE(display_->AddWidget("inner", "box", "Inner", "outer").ok());
  ASSERT_TRUE(display_->AddWidget("leaf", "label", "deep", "inner").ok());
  auto screen = display_->Render("outer");
  ASSERT_TRUE(screen.ok());
  EXPECT_EQ(*screen,
            "== Outer ==\n"
            "  == Inner ==\n"
            "    deep");
}

TEST_F(DisplayTest, UnknownWidgetsRejected) {
  EXPECT_FALSE(display_->Render("ghost").ok());
  EXPECT_FALSE(display_->SetText("ghost", "x").ok());
  ASSERT_TRUE(display_->AddWidget("w", "label", "x").ok());
  EXPECT_FALSE(display_->AddWidget("w", "label", "again").ok());
}

}  // namespace
}  // namespace cactis::env
