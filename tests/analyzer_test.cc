#include "lang/analyzer.h"

#include <gtest/gtest.h>

#include "lang/parser.h"

namespace cactis::lang {
namespace {

ClassContext MilestoneContext() {
  ClassContext ctx;
  ctx.attribute_names = {"sched_compl", "local_work", "exp_compl", "late"};
  ctx.port_names = {"depends_on", "consists_of"};
  return ctx;
}

std::vector<Dependency> Analyze(std::string_view rule,
                                bool allow_assign = false) {
  auto body = Parser::ParseRuleBody(rule);
  EXPECT_TRUE(body.ok()) << body.status();
  auto deps = AnalyzeDependencies(*body, MilestoneContext(), allow_assign);
  EXPECT_TRUE(deps.ok()) << deps.status();
  return deps.ok() ? *deps : std::vector<Dependency>{};
}

bool HasDep(const std::vector<Dependency>& deps, Dependency::Kind kind,
            const std::string& name, const std::string& port) {
  for (const Dependency& d : deps) {
    if (d.kind == kind && d.name == name && d.port == port) return true;
  }
  return false;
}

TEST(AnalyzerTest, LocalAttributeMention) {
  auto deps = Analyze("later_than(exp_compl, sched_compl)");
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kLocal, "exp_compl", ""));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kLocal, "sched_compl", ""));
  EXPECT_EQ(deps.size(), 2u);
}

TEST(AnalyzerTest, UnknownBareNamesAreNotDependencies) {
  // time0 is a builtin, not an attribute: no dependency.
  auto deps = Analyze("time0");
  EXPECT_TRUE(deps.empty());
}

TEST(AnalyzerTest, ForEachYieldsRemoteAndStructural) {
  auto deps = Analyze(R"(
    begin
      latest : time;
      latest = time0;
      for each dep related to depends_on do
        latest = later_of(latest, dep.exp_time);
      end;
      return latest + local_work;
    end)");
  EXPECT_TRUE(
      HasDep(deps, Dependency::Kind::kRemote, "exp_time", "depends_on"));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kStructural, "", "depends_on"));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kLocal, "local_work", ""));
}

TEST(AnalyzerTest, VariablesShadowAttributes) {
  // `late` is re-declared as a local variable: no local dependency.
  auto deps = Analyze("begin late : int = 3; return late; end");
  EXPECT_TRUE(deps.empty());
}

TEST(AnalyzerTest, DirectPortAccess) {
  auto deps = Analyze("consists_of.exp_time");
  EXPECT_TRUE(
      HasDep(deps, Dependency::Kind::kRemote, "exp_time", "consists_of"));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kStructural, "", "consists_of"));
}

TEST(AnalyzerTest, CountIsStructuralOnly) {
  auto deps = Analyze("count(depends_on) > 3");
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].kind, Dependency::Kind::kStructural);
  EXPECT_EQ(deps[0].port, "depends_on");
}

TEST(AnalyzerTest, CountOfNonPortRejected) {
  auto body = Parser::ParseRuleBody("count(local_work)");
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(AnalyzeDependencies(*body, MilestoneContext()).ok());
}

TEST(AnalyzerTest, ForEachOverUnknownPortRejected) {
  auto body = Parser::ParseRuleBody(
      "begin for each d related to nowhere do return 1; end; return 0; end");
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(AnalyzeDependencies(*body, MilestoneContext()).ok());
}

TEST(AnalyzerTest, AttributeAssignmentOnlyInRecovery) {
  auto body = Parser::ParseRuleBody("begin local_work = time0; return 1; end");
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(AnalyzeDependencies(*body, MilestoneContext(), false).ok());
  EXPECT_TRUE(AnalyzeDependencies(*body, MilestoneContext(), true).ok());
}

TEST(AnalyzerTest, AssignmentToUndeclaredNameRejected) {
  auto body = Parser::ParseRuleBody("begin typo = 1; return 1; end");
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(AnalyzeDependencies(*body, MilestoneContext(), true).ok());
}

TEST(AnalyzerTest, DotOnPlainVariableRejectedAsRemote) {
  // A plain (non-loop) variable cannot be crossed with '.';
  // (record field access is resolved dynamically, but the analyzer
  // rejects it on plain variables to catch the common mistake).
  auto body =
      Parser::ParseRuleBody("begin v : int = 1; return v.field; end");
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(AnalyzeDependencies(*body, MilestoneContext()).ok());
}

TEST(AnalyzerTest, LoopVariableScopingRestored) {
  // After the loop, `dep` is no longer bound; using it is an error.
  auto body = Parser::ParseRuleBody(R"(
    begin
      for each dep related to depends_on do
        void(dep.exp_time);
      end;
      return dep.exp_time;
    end)");
  ASSERT_TRUE(body.ok());
  EXPECT_FALSE(AnalyzeDependencies(*body, MilestoneContext()).ok());
}

TEST(AnalyzerTest, NestedLoopsBothRecorded) {
  auto deps = Analyze(R"(
    begin
      acc : time = time0;
      for each a related to depends_on do
        for each b related to consists_of do
          acc = later_of(a.x, b.y);
        end;
      end;
      return acc;
    end)");
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kRemote, "x", "depends_on"));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kRemote, "y", "consists_of"));
}

TEST(AnalyzerTest, DependenciesDeduplicated) {
  auto deps = Analyze("exp_compl + exp_compl + exp_compl");
  EXPECT_EQ(deps.size(), 1u);
}

TEST(AnalyzerTest, IfBranchesBothWalked) {
  auto deps = Analyze(R"(
    begin
      if late then return exp_compl; else return sched_compl; end;
    end)");
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kLocal, "late", ""));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kLocal, "exp_compl", ""));
  EXPECT_TRUE(HasDep(deps, Dependency::Kind::kLocal, "sched_compl", ""));
}

}  // namespace
}  // namespace cactis::lang
