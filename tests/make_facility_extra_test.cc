// Additional make-facility scenarios: deep chains, multiple targets,
// undo interplay, rebuilding after deletions, and the Figure-3 mod_time
// semantics under missing intermediates.

#include <gtest/gtest.h>

#include "core/database.h"
#include "env/command_runner.h"
#include "env/make_facility.h"
#include "env/vfs.h"

namespace cactis::env {
namespace {

class MakeExtraTest : public ::testing::Test {
 protected:
  MakeExtraTest() : vfs_(&clock_) {}
  void SetUp() override {
    make_ = std::move(MakeFacility::Attach(&db_, &vfs_, &runner_))
                .value_or(nullptr);
    ASSERT_NE(make_, nullptr);
  }

  SimClock clock_;
  VirtualFileSystem vfs_;
  CommandRunner runner_;
  core::Database db_;
  std::unique_ptr<MakeFacility> make_;
};

TEST_F(MakeExtraTest, DeepChainBuildsInOrderOnce) {
  // gen0 -> gen1 -> ... -> gen7, each from the previous.
  vfs_.Write("gen0", "seed");
  ASSERT_TRUE(make_->AddSource("gen0").ok());
  for (int i = 1; i < 8; ++i) {
    std::string cur = "gen" + std::to_string(i);
    std::string prev = "gen" + std::to_string(i - 1);
    ASSERT_TRUE(make_->AddRule(cur, "make " + cur, {prev}).ok());
  }
  auto n = make_->Build("gen7");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 7u);
  // Strictly ascending: each stage after its input.
  for (int i = 1; i < 7; ++i) {
    EXPECT_LT(vfs_.MTime("gen" + std::to_string(i)).ticks,
              vfs_.MTime("gen" + std::to_string(i + 1)).ticks);
  }
  // Editing the middle rebuilds only downstream.
  runner_.ClearLog();
  vfs_.Touch("gen4");
  ASSERT_TRUE(make_->Build("gen7").ok());
  EXPECT_EQ(runner_.execution_count(), 3u);  // gen5 gen6 gen7
}

TEST_F(MakeExtraTest, IndependentTargetsDoNotInterfere) {
  vfs_.Write("a.c", "a");
  vfs_.Write("b.c", "b");
  ASSERT_TRUE(make_->AddSource("a.c").ok());
  ASSERT_TRUE(make_->AddSource("b.c").ok());
  ASSERT_TRUE(make_->AddRule("a.out", "cc a", {"a.c"}).ok());
  ASSERT_TRUE(make_->AddRule("b.out", "cc b", {"b.c"}).ok());

  EXPECT_EQ(*make_->Build("a.out"), 1u);
  // b was never built; building a again is a no-op.
  EXPECT_EQ(*make_->Build("a.out"), 0u);
  EXPECT_EQ(*make_->Build("b.out"), 1u);
  EXPECT_FALSE(vfs_.Exists("nonexistent"));
}

TEST_F(MakeExtraTest, DeletedOutputIsRecreated) {
  vfs_.Write("src.c", "x");
  ASSERT_TRUE(make_->AddSource("src.c").ok());
  ASSERT_TRUE(make_->AddRule("out", "cc out", {"src.c"}).ok());
  ASSERT_TRUE(make_->Build("out").ok());
  ASSERT_TRUE(vfs_.Exists("out"));

  ASSERT_TRUE(vfs_.Remove("out").ok());
  auto n = make_->Build("out");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
  EXPECT_TRUE(vfs_.Exists("out"));
}

TEST_F(MakeExtraTest, ModTimeOfChainIsYoungestTransitively) {
  vfs_.Write("s1", "x");
  vfs_.Write("s2", "y");
  ASSERT_TRUE(make_->AddSource("s1").ok());
  ASSERT_TRUE(make_->AddSource("s2").ok());
  ASSERT_TRUE(make_->AddRule("mid", "mk mid", {"s1"}).ok());
  ASSERT_TRUE(make_->AddRule("top", "mk top", {"mid", "s2"}).ok());
  ASSERT_TRUE(make_->Build("top").ok());

  vfs_.Touch("s1");  // deepest leaf becomes the youngest
  auto mt = make_->ModTime("top");
  ASSERT_TRUE(mt.ok());
  EXPECT_EQ(mt->ticks, vfs_.MTime("s1").ticks);
}

TEST_F(MakeExtraTest, UnknownTargetAndDuplicateRules) {
  EXPECT_FALSE(make_->Build("ghost").ok());
  vfs_.Write("f", "x");
  ASSERT_TRUE(make_->AddSource("f").ok());
  EXPECT_FALSE(make_->AddSource("f").ok());
  EXPECT_FALSE(make_->AddRule("g", "cmd", {"missing-input"}).ok());
}

TEST_F(MakeExtraTest, ManyConsumersOfOneHeaderEachRebuildOnce) {
  vfs_.Write("common.h", "h");
  ASSERT_TRUE(make_->AddSource("common.h").ok());
  std::vector<std::string> objs;
  for (int i = 0; i < 12; ++i) {
    std::string src = "m" + std::to_string(i) + ".c";
    std::string obj = "m" + std::to_string(i) + ".o";
    vfs_.Write(src, "s");
    ASSERT_TRUE(make_->AddSource(src).ok());
    ASSERT_TRUE(make_->AddRule(obj, "cc " + obj, {src, "common.h"}).ok());
    objs.push_back(obj);
  }
  ASSERT_TRUE(make_->AddRule("lib", "ar lib", objs).ok());
  EXPECT_EQ(*make_->Build("lib"), 13u);
  runner_.ClearLog();
  vfs_.Touch("common.h");
  EXPECT_EQ(*make_->Build("lib"), 13u);  // all objects + the archive
  // And exactly once each.
  std::set<std::string> unique(runner_.executions().begin(),
                               runner_.executions().end());
  EXPECT_EQ(unique.size(), runner_.executions().size());
}

}  // namespace
}  // namespace cactis::env
