// Checkpointing: image codec round trip, bounded-tail recovery after
// Checkpoint(), generation swap across repeated checkpoints, and the
// crash-at-every-write sweep over the checkpoint protocol itself — a
// crash at ANY write during checkpointing must leave the platter
// recoverable to the full committed state (the double-buffered slots
// guarantee the old checkpoint survives until the new one is sealed).

#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <vector>

#include "core/database.h"
#include "storage/fault_policy.h"
#include "txn/checkpoint.h"

namespace cactis::core {
namespace {

const char* kSchema = R"(
  object class cell is
    relationships
      prev : chain multi socket;
      next : chain multi plug;
    attributes
      base : int;
      acc  : int;
    rules
      acc = begin
        t : int;
        t = base;
        for each p related to prev do
          t = t + p.acc;
        end;
        return t;
      end;
  end object;
)";

DatabaseOptions SmallOptions() {
  DatabaseOptions opts;
  opts.block_size = 256;
  opts.buffer_capacity = 2;
  return opts;
}

const InstanceId kA{1}, kB{2}, kC{3};

/// Same milestone workload as the crash-recovery harness: commits,
/// version meta-actions, an undo, a history truncation, a delete.
std::vector<std::function<Status(Database&)>> WorkloadSteps() {
  return {
      [](Database& db) -> Status {
        auto t = db.Begin();
        CACTIS_ASSIGN_OR_RETURN(InstanceId a, t->Create("cell"));
        CACTIS_RETURN_IF_ERROR(t->Set(a, "base", Value::Int(1)));
        return t->Commit();
      },
      [](Database& db) -> Status {
        auto t = db.Begin();
        CACTIS_ASSIGN_OR_RETURN(InstanceId b, t->Create("cell"));
        CACTIS_RETURN_IF_ERROR(t->Set(b, "base", Value::Int(2)));
        CACTIS_RETURN_IF_ERROR(t->Connect(b, "prev", kA, "next").status());
        return t->Commit();
      },
      [](Database& db) { return db.CreateVersion("v1").status(); },
      [](Database& db) { return db.Set(kA, "base", Value::Int(10)); },
      [](Database& db) { return db.UndoLast(); },
      [](Database& db) -> Status {
        auto t = db.Begin();
        CACTIS_ASSIGN_OR_RETURN(InstanceId c, t->Create("cell"));
        CACTIS_RETURN_IF_ERROR(t->Set(c, "base", Value::Int(3)));
        CACTIS_RETURN_IF_ERROR(t->Connect(c, "prev", kB, "next").status());
        return t->Commit();
      },
      [](Database& db) { return db.CreateVersion("v2").status(); },
      [](Database& db) { return db.CheckoutVersion("v1"); },
      [](Database& db) { return db.Set(kB, "base", Value::Int(20)); },
      [](Database& db) { return db.Delete(kA); },
  };
}

std::string Snapshot(Database* db) {
  std::ostringstream out;
  out << "commits=" << db->committed_transactions() << "\n";
  out << "versions=";
  for (const std::string& name : db->VersionNames()) out << name << ",";
  out << "\n";
  auto cells = db->InstancesOf("cell");
  if (!cells.ok()) return "InstancesOf failed: " + cells.status().ToString();
  for (InstanceId id : *cells) {
    out << "cell " << id.value;
    for (const char* attr : {"base", "acc"}) {
      auto v = db->Peek(id, attr);
      out << " " << attr << "=";
      if (v.ok()) {
        out << v->ToString();
      } else {
        out << "<" << v.status().ToString() << ">";
      }
    }
    for (const char* port : {"prev", "next"}) {
      auto neighbors = db->NeighborsOf(id, port);
      out << " " << port << "=[";
      if (neighbors.ok()) {
        for (InstanceId n : *neighbors) out << n.value << ",";
      }
      out << "]";
    }
    out << "\n";
  }
  return out.str();
}

/// Runs `steps` workload steps, checkpointing after each index listed in
/// `checkpoint_after` (1-based step counts).
void RunWorkload(Database* db, size_t steps,
                 const std::vector<size_t>& checkpoint_after = {}) {
  auto workload = WorkloadSteps();
  for (size_t i = 0; i < steps && i < workload.size(); ++i) {
    Status s = workload[i](*db);
    ASSERT_TRUE(s.ok()) << "step " << i << ": " << s.ToString();
    for (size_t mark : checkpoint_after) {
      if (mark == i + 1) {
        Status cs = db->Checkpoint();
        ASSERT_TRUE(cs.ok()) << "checkpoint after step " << mark << ": "
                             << cs.ToString();
      }
    }
  }
}

std::string ReferenceSnapshot(size_t steps) {
  Database db(SmallOptions());
  EXPECT_TRUE(db.LoadSchema(kSchema).ok());
  RunWorkload(&db, steps);
  return Snapshot(&db);
}

TEST(CheckpointImageTest, CodecRoundTrips) {
  txn::CheckpointImage image;
  image.next_instance = 7;
  image.next_edge = 3;
  image.next_txn = 19;
  txn::DeltaRecord create;
  create.op = txn::DeltaOp::kCreate;
  create.instance = InstanceId(1);
  create.class_id = ClassId(2);
  image.bootstrap.records.push_back(create);
  txn::TransactionDelta hist;
  hist.txn = TxnId(5);
  hist.commit_seq = 1;
  image.history.push_back(hist);
  image.position = 1;
  image.versions["v1"] = 1;
  image.next_version = 2;

  auto decoded = txn::DecodeCheckpointImage(txn::EncodeCheckpointImage(image));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->next_instance, 7u);
  EXPECT_EQ(decoded->next_edge, 3u);
  EXPECT_EQ(decoded->next_txn, 19u);
  ASSERT_EQ(decoded->bootstrap.records.size(), 1u);
  EXPECT_EQ(decoded->bootstrap.records[0].op, txn::DeltaOp::kCreate);
  ASSERT_EQ(decoded->history.size(), 1u);
  EXPECT_EQ(decoded->history[0].txn, TxnId(5));
  EXPECT_EQ(decoded->position, 1u);
  EXPECT_EQ(decoded->versions.at("v1"), 1u);
  EXPECT_EQ(decoded->next_version, 2u);

  // Trailing garbage and wrong magic are rejected, not decoded.
  std::string bytes = txn::EncodeCheckpointImage(image);
  EXPECT_FALSE(txn::DecodeCheckpointImage(bytes + "x").ok());
  bytes[0] ^= 0x01;
  EXPECT_FALSE(txn::DecodeCheckpointImage(bytes).ok());
}

TEST(CheckpointTest, CheckpointThenRecoverReproducesState) {
  Database db(SmallOptions());
  ASSERT_TRUE(db.LoadSchema(kSchema).ok());
  RunWorkload(&db, WorkloadSteps().size(), /*checkpoint_after=*/{6});
  ASSERT_NE(db.checkpoint_store(), nullptr);
  EXPECT_EQ(db.checkpoint_store()->stats().checkpoints_written, 1u);
  EXPECT_GT(db.wal()->stats().truncated_entries, 0u);

  Database recovered(SmallOptions());
  ASSERT_TRUE(recovered.LoadSchema(kSchema).ok());
  Status rs = recovered.Recover(*db.disk());
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  EXPECT_EQ(Snapshot(&recovered), Snapshot(&db));
}

// THE point of checkpointing: recovery replays only the WAL tail past
// the checkpoint, not the whole history. The re-journaled entry count is
// machine-independent: exactly one WAL event per post-checkpoint step.
TEST(CheckpointTest, RecoveryReplaysOnlyTheTail) {
  Database db(SmallOptions());
  ASSERT_TRUE(db.LoadSchema(kSchema).ok());
  RunWorkload(&db, WorkloadSteps().size(), /*checkpoint_after=*/{6});

  Database recovered(SmallOptions());
  ASSERT_TRUE(recovered.LoadSchema(kSchema).ok());
  ASSERT_TRUE(recovered.Recover(*db.disk()).ok());
  EXPECT_EQ(Snapshot(&recovered), ReferenceSnapshot(WorkloadSteps().size()));

  // 10 steps ran, the checkpoint covered the first 6: recovery replayed
  // (and re-journaled) exactly the 4 tail events.
  EXPECT_EQ(recovered.wal()->stats().entries_appended, 4u);
}

// Repeated checkpoints alternate slots; recovery uses the newest.
TEST(CheckpointTest, SecondCheckpointSupersedesFirst) {
  Database db(SmallOptions());
  ASSERT_TRUE(db.LoadSchema(kSchema).ok());
  RunWorkload(&db, WorkloadSteps().size(), /*checkpoint_after=*/{5, 8});
  EXPECT_EQ(db.checkpoint_store()->stats().checkpoints_written, 2u);

  Database recovered(SmallOptions());
  ASSERT_TRUE(recovered.LoadSchema(kSchema).ok());
  ASSERT_TRUE(recovered.Recover(*db.disk()).ok());
  EXPECT_EQ(Snapshot(&recovered), ReferenceSnapshot(WorkloadSteps().size()));
  // Steps 9 and 10 are the only tail past the second checkpoint.
  EXPECT_EQ(recovered.wal()->stats().entries_appended, 2u);
}

// An idle checkpoint (nothing new since the last one) and a checkpoint
// on a WAL-less database both behave sanely.
TEST(CheckpointTest, EdgeCases) {
  Database db(SmallOptions());
  ASSERT_TRUE(db.LoadSchema(kSchema).ok());
  RunWorkload(&db, 3);
  ASSERT_TRUE(db.Checkpoint().ok());
  ASSERT_TRUE(db.Checkpoint().ok());  // idle: nothing to truncate
  EXPECT_EQ(db.checkpoint_store()->stats().checkpoints_written, 2u);

  Database recovered(SmallOptions());
  ASSERT_TRUE(recovered.LoadSchema(kSchema).ok());
  ASSERT_TRUE(recovered.Recover(*db.disk()).ok());
  EXPECT_EQ(Snapshot(&recovered), ReferenceSnapshot(3));

  DatabaseOptions no_wal = SmallOptions();
  no_wal.enable_wal = false;
  Database off(no_wal);
  ASSERT_TRUE(off.LoadSchema(kSchema).ok());
  EXPECT_FALSE(off.Checkpoint().ok());
}

/// Crash-at-every-write sweep over one Checkpoint() call: run the
/// workload prefix, maybe checkpoint once cleanly (so the sweep also
/// covers the grandparent-chain-free path of the SECOND checkpoint),
/// then crash the next Checkpoint() at write index k for every k. The
/// platter must always recover to the full committed state: either the
/// old checkpoint (plus WAL tail) or the new one is intact — never
/// garbage.
void SweepCheckpointCrashes(bool prior_checkpoint) {
  const std::vector<size_t> prior =
      prior_checkpoint ? std::vector<size_t>{4} : std::vector<size_t>{};

  // Baseline: how many writes does the swept Checkpoint() issue?
  uint64_t ckpt_writes = 0;
  std::string want;
  {
    Database db(SmallOptions());
    ASSERT_TRUE(db.LoadSchema(kSchema).ok());
    RunWorkload(&db, WorkloadSteps().size(), prior);
    uint64_t before = db.disk()->write_attempts();
    ASSERT_TRUE(db.Checkpoint().ok());
    ckpt_writes = db.disk()->write_attempts() - before;
    want = Snapshot(&db);
  }
  ASSERT_GT(ckpt_writes, 1u);

  for (uint64_t k = 0; k < ckpt_writes; ++k) {
    SCOPED_TRACE("crash at checkpoint write " + std::to_string(k) +
                 (prior_checkpoint ? " (second checkpoint)" : ""));
    Database db(SmallOptions());
    ASSERT_TRUE(db.LoadSchema(kSchema).ok());
    RunWorkload(&db, WorkloadSteps().size(), prior);
    storage::ScriptedFaults faults;
    faults.crash_after_writes =
        static_cast<int64_t>(db.disk()->write_attempts() + k);
    db.disk()->set_fault_policy(&faults);
    EXPECT_FALSE(db.Checkpoint().ok());
    EXPECT_TRUE(db.disk()->crashed());

    Database recovered(SmallOptions());
    ASSERT_TRUE(recovered.LoadSchema(kSchema).ok());
    Status rs = recovered.Recover(*db.disk());
    ASSERT_TRUE(rs.ok()) << rs.ToString();
    EXPECT_EQ(Snapshot(&recovered), want);
  }
}

TEST(CheckpointTest, CrashAtEveryWriteDuringFirstCheckpointIsSafe) {
  SweepCheckpointCrashes(/*prior_checkpoint=*/false);
}

TEST(CheckpointTest, CrashAtEveryWriteDuringSecondCheckpointIsSafe) {
  SweepCheckpointCrashes(/*prior_checkpoint=*/true);
}

}  // namespace
}  // namespace cactis::core
