// Distribution edge cases: undo at the home site with live mirrors,
// several providers mirrored into one consumer, mirror freshness after
// bursts, and schema agreement across sites.

#include <gtest/gtest.h>

#include "dist/cluster.h"

namespace cactis::dist {
namespace {

const char* kSchema = R"(
  object class cell is
    relationships
      prev : chain multi socket;
      next : chain multi plug;
    attributes
      base : int;
      acc  : int;
    rules
      acc = begin
        t : int;
        t = base;
        for each p related to prev do
          t = t + p.acc;
        end;
        return t;
      end;
  end object;
)";

class DistributedEdgeTest : public ::testing::Test {
 protected:
  DistributedEdgeTest() : cluster_(2) {}
  void SetUp() override { ASSERT_TRUE(cluster_.LoadSchema(kSchema).ok()); }
  DistributedCactis cluster_;
};

TEST_F(DistributedEdgeTest, HomeSiteUndoPropagatesToMirrors) {
  auto producer = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", producer, "next").ok());
  ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(5)).ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(5));

  // Undo at the home site; the change listener fires for the restored
  // value too, so the mirror catches up after delivery.
  ASSERT_TRUE(cluster_.site(0)->UndoLast().ok());
  ASSERT_TRUE(cluster_.network()->DeliverAll().ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(0));
}

TEST_F(DistributedEdgeTest, FanInFromManyRemoteProviders) {
  auto consumer = *cluster_.Create(1, "cell");
  std::vector<GlobalRef> producers;
  for (int i = 0; i < 5; ++i) {
    auto p = *cluster_.Create(0, "cell");
    producers.push_back(p);
    ASSERT_TRUE(cluster_.Set(p, "base", Value::Int(i + 1)).ok());
    ASSERT_TRUE(cluster_.Connect(consumer, "prev", p, "next").ok());
  }
  EXPECT_EQ(cluster_.mirror_count(), 5u);
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(15));
  ASSERT_TRUE(cluster_.Set(producers[2], "base", Value::Int(100)).ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(112));
}

TEST_F(DistributedEdgeTest, BurstsCoalesceThroughStaleness) {
  auto producer = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", producer, "next").ok());
  ASSERT_TRUE(cluster_.Peek(consumer, "acc").status().ok());

  // 100 rapid updates, one read: the final value is correct.
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(i)).ok());
  }
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(100));
}

TEST_F(DistributedEdgeTest, BidirectionalSharing) {
  // Site 0 consumes from site 1 and vice versa (no cycle: two pairs).
  auto p0 = *cluster_.Create(0, "cell");
  auto c0 = *cluster_.Create(0, "cell");
  auto p1 = *cluster_.Create(1, "cell");
  auto c1 = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Set(p0, "base", Value::Int(7)).ok());
  ASSERT_TRUE(cluster_.Set(p1, "base", Value::Int(9)).ok());
  ASSERT_TRUE(cluster_.Connect(c1, "prev", p0, "next").ok());
  ASSERT_TRUE(cluster_.Connect(c0, "prev", p1, "next").ok());
  EXPECT_EQ(*cluster_.Peek(c1, "acc"), Value::Int(7));
  EXPECT_EQ(*cluster_.Peek(c0, "acc"), Value::Int(9));
  EXPECT_EQ(cluster_.mirror_count(), 2u);
}

TEST_F(DistributedEdgeTest, LocalGraphBehindTheMirror) {
  // The remote provider has its own upstream chain at home; the mirrored
  // derived value reflects the whole home-side closure.
  auto deep = *cluster_.Create(0, "cell");
  auto mid = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Set(deep, "base", Value::Int(3)).ok());
  ASSERT_TRUE(cluster_.Set(mid, "base", Value::Int(4)).ok());
  ASSERT_TRUE(cluster_.Connect(mid, "prev", deep, "next").ok());
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", mid, "next").ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(7));
  // A change two hops behind the mirror still arrives.
  ASSERT_TRUE(cluster_.Set(deep, "base", Value::Int(30)).ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(34));
}

// ---- Network fault tolerance ------------------------------------------

TEST_F(DistributedEdgeTest, DuplicatedMessagesAreHarmless) {
  // Every send is delivered twice: updates are idempotent value installs,
  // so the mirror converges to the same state.
  NetworkFaults faults;
  faults.duplicate_every_nth_send = 1;
  cluster_.network()->set_faults(faults);

  auto producer = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", producer, "next").ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(i)).ok());
  }
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(10));
  EXPECT_GT(cluster_.network()->stats().duplicated, 0u);
}

TEST_F(DistributedEdgeTest, LostFetchesAreRetransmitted) {
  // Every other fetch RPC vanishes; the bounded retry hides the loss.
  NetworkFaults faults;
  faults.drop_every_nth_rpc = 2;
  faults.max_rpc_retries = 3;
  cluster_.network()->set_faults(faults);

  auto producer = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(42)).ok());
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", producer, "next").ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(42));
  EXPECT_GT(cluster_.network()->stats().rpc_lost, 0u);
  EXPECT_GT(cluster_.network()->stats().rpc_retries, 0u);
}

TEST_F(DistributedEdgeTest, FetchFailsCleanlyWhenRetriesExhausted) {
  auto producer = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", producer, "next").ok());

  // A fully partitioned link: every fetch RPC is lost, so after the
  // bounded retries the error surfaces instead of hanging.
  NetworkFaults faults;
  faults.drop_every_nth_rpc = 1;
  faults.max_rpc_retries = 3;
  cluster_.network()->set_faults(faults);
  ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(9)).ok());
  auto v = cluster_.Peek(consumer, "acc");
  EXPECT_FALSE(v.ok());

  // The link heals; the next read succeeds.
  cluster_.network()->set_faults(NetworkFaults{});
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(9));
}

TEST_F(DistributedEdgeTest, DroppedTrafficHealsWhenTheLinkRecovers) {
  auto producer = *cluster_.Create(0, "cell");
  auto consumer = *cluster_.Create(1, "cell");
  ASSERT_TRUE(cluster_.Connect(consumer, "prev", producer, "next").ok());

  // Every invalidation message is dropped on the floor.
  NetworkFaults faults;
  faults.drop_every_nth_send = 1;
  cluster_.network()->set_faults(faults);
  ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(5)).ok());
  EXPECT_GT(cluster_.network()->stats().dropped, 0u);

  // After the link recovers, a later update reaches the mirror.
  cluster_.network()->set_faults(NetworkFaults{});
  ASSERT_TRUE(cluster_.Set(producer, "base", Value::Int(6)).ok());
  EXPECT_EQ(*cluster_.Peek(consumer, "acc"), Value::Int(6));
}

}  // namespace
}  // namespace cactis::dist
