// Fixed-point evaluation of `circular` attributes ([Far86]; the paper's
// section-4 note that these techniques "are being incorporated into
// Cactis so that it may support more general forms of flow analysis").

#include <gtest/gtest.h>

#include "core/database.h"

namespace cactis::core {
namespace {

// Nodes propagate the set of reachable node labels around an arbitrary
// graph — the canonical monotone circular attribute.
const char* kReachSchema = R"(
  object class rnode is
    relationships
      in  : arc multi socket;
      out : arc multi plug;
    attributes
      label : string;
      reach : array;   -- labels reachable from (and including) this node
    rules
      circular reach =
        begin
          acc : array;
          acc = set_insert([], label);
          for each s related to in do
            acc = set_union(acc, s.reach);
          end;
          return acc;
        end;
  end object;
)";

class CircularTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(db_.LoadSchema(kReachSchema).ok()); }

  InstanceId Node(const std::string& label) {
    auto id = *db_.Create("rnode");
    EXPECT_TRUE(db_.Set(id, "label", Value::String(label)).ok());
    return id;
  }

  /// b reachable-from a (a's reach flows into b via b's `in` socket).
  void Arc(InstanceId from, InstanceId to) {
    // `in` consumes; provider side is `out`.
    ASSERT_TRUE(db_.Connect(to, "in", from, "out").ok());
  }

  std::vector<std::string> Reach(InstanceId id) {
    auto v = db_.Peek(id, "reach");
    EXPECT_TRUE(v.ok()) << v.status();
    std::vector<std::string> out;
    if (v.ok()) {
      const std::vector<Value> elems = *v->AsArray();
      for (const Value& e : elems) out.push_back(*e.AsString());
    }
    return out;
  }

  Database db_;
};

TEST_F(CircularTest, AcyclicGraphStillWorksNormally) {
  auto a = Node("a"), b = Node("b"), c = Node("c");
  Arc(a, b);
  Arc(b, c);
  EXPECT_EQ(Reach(c), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a"}));
}

TEST_F(CircularTest, TwoCycleConverges) {
  auto a = Node("a"), b = Node("b");
  Arc(a, b);
  Arc(b, a);  // cycle
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(Reach(b), (std::vector<std::string>{"a", "b"}));
}

TEST_F(CircularTest, LargerCycleWithTail) {
  // d -> a -> b -> c -> a  (3-cycle fed by a tail), e off c.
  auto a = Node("a"), b = Node("b"), c = Node("c"), d = Node("d"),
       e = Node("e");
  Arc(d, a);
  Arc(a, b);
  Arc(b, c);
  Arc(c, a);
  Arc(c, e);
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(Reach(e), (std::vector<std::string>{"a", "b", "c", "d", "e"}));
  EXPECT_EQ(Reach(d), (std::vector<std::string>{"d"}));
}

TEST_F(CircularTest, CycleRecomputesAfterEdit) {
  auto a = Node("a"), b = Node("b");
  Arc(a, b);
  Arc(b, a);
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a", "b"}));
  // Renaming a node re-runs the fixed point.
  ASSERT_TRUE(db_.Set(b, "label", Value::String("z")).ok());
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a", "z"}));
}

TEST_F(CircularTest, DisconnectingBreaksTheCycle) {
  auto a = Node("a"), b = Node("b");
  Arc(a, b);
  auto back = db_.Connect(a, "in", b, "out");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(db_.Disconnect(*back).ok());
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a"}));
  EXPECT_EQ(Reach(b), (std::vector<std::string>{"a", "b"}));
}

TEST_F(CircularTest, SelfLoopConverges) {
  auto a = Node("a");
  Arc(a, a);
  EXPECT_EQ(Reach(a), (std::vector<std::string>{"a"}));
}

TEST(CircularSchemaTest, NonCircularCyclesStillRejected) {
  Database db;
  ASSERT_TRUE(db.LoadSchema(R"(
    object class cell is
      relationships
        prev : chain multi socket;
        next : chain multi plug;
      attributes
        base : int;
        acc : int;
      rules
        acc = begin
          t : int;
          t = base;
          for each p related to prev do
            t = t + p.acc;
          end;
          return t;
        end;
    end object;
  )")
                  .ok());
  auto a = *db.Create("cell");
  auto b = *db.Create("cell");
  ASSERT_TRUE(db.Connect(a, "prev", b, "next").ok());
  ASSERT_TRUE(db.Connect(b, "prev", a, "next").ok());
  auto v = db.Get(a, "acc");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsCycleDetected());
  // The error explains the fix.
  EXPECT_NE(v.status().message().find("circular"), std::string::npos);
}

TEST(CircularSchemaTest, NonMonotonicCycleFailsToConverge) {
  // x = y + 1 and y = x + 1 oscillates forever: the iteration cap turns
  // that into a clear error instead of a hang.
  Database db;
  core::DatabaseOptions opts;
  (void)opts;
  ASSERT_TRUE(db.LoadSchema(R"(
    object class osc is
      relationships
        peer_in  : link multi socket;
        peer_out : link multi plug;
      attributes
        v : int;
      rules
        circular v =
          begin
            acc : int = 0;
            for each p related to peer_in do
              acc = acc + p.v + 1;
            end;
            return acc;
          end;
    end object;
  )")
                  .ok());
  auto a = *db.Create("osc");
  auto b = *db.Create("osc");
  ASSERT_TRUE(db.Connect(a, "peer_in", b, "peer_out").ok());
  ASSERT_TRUE(db.Connect(b, "peer_in", a, "peer_out").ok());
  auto v = db.Get(a, "v");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsCycleDetected());
  EXPECT_NE(v.status().message().find("converge"), std::string::npos);
}

TEST(CircularSchemaTest, LocalCircularCycleAcceptedAtSchemaTime) {
  // Two mutually-referencing circular attributes within one class build
  // fine (the static check excludes circular attributes).
  Database db;
  auto s = db.LoadSchema(R"(
    object class m is
      attributes
        x : array;
        y : array;
        seed : array;
      rules
        circular x = set_union(seed, y);
        circular y = x;
    end object;
  )");
  ASSERT_TRUE(s.ok()) << s;
  auto id = *db.Create("m");
  ASSERT_TRUE(
      db.Set(id, "seed", Value::Array({Value::Int(1)})).ok());
  auto v = db.Peek(id, "x");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, Value::Array({Value::Int(1)}));
}

}  // namespace
}  // namespace cactis::core
